/**
 * @file
 * Figure 6 — instruction cache miss ratio versus cache capacity for
 * the Hadoop workloads and PARSEC on the Atom-like in-order simulator
 * configuration. The paper's finding: the Hadoop instruction footprint
 * is ~1024 KB while PARSEC's is ~128 KB.
 *
 * This bench also demonstrates the trace subsystem's record-once/
 * replay-many contract on one workload: a single captured execution
 * feeds the whole 10-point capacity ladder, the replayed miss ratios
 * are checked against a live single-pass sweep for exact equality, and
 * the wall clock of parallel replay is compared against serially
 * re-executing the workload once per capacity (the no-trace world).
 */

#include <chrono>
#include <cmath>

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One live single-capacity execution per rung: the no-trace cost. */
std::vector<double>
serialReexecutionSweep(const WorkloadEntry &entry, double scale)
{
    std::vector<double> curve;
    for (uint32_t kb : paperSweepSizesKb()) {
        WorkloadPtr w = entry.make(scale);
        FootprintSweep sweep({kb});
        runThroughSink(*w, sweep);
        curve.push_back(sweep.missRatios(SweepKind::Instruction)[0]);
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale() * 0.5;  // sweeps ladder 10 caches
    auto hadoop = averageSweep(hadoopGroup(), SweepKind::Instruction,
                               scale);
    auto parsec = averageSweep(parsecGroup(), SweepKind::Instruction,
                               scale);

    printSweepFigure(
        "=== Figure 6: instruction cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC"}, {hadoop, parsec});

    std::cout << "\nHadoop instruction footprint ~"
              << kneeCapacityKb(hadoop) << " KB (paper: ~1024 KB)\n";
    std::cout << "PARSEC instruction footprint ~"
              << kneeCapacityKb(parsec) << " KB (paper: ~128 KB)\n";

    auto group = hadoopGroup();
    if (group.empty())
        return 0;
    const WorkloadEntry &demo = group.front();
    auto sizes = paperSweepSizesKb();
    std::cout << "\n--- record-once/replay-many on " << demo.name
              << " ---\n";

    // The no-trace world: one live execution per capacity, serially.
    auto t0 = std::chrono::steady_clock::now();
    auto serial_curve = serialReexecutionSweep(demo, scale);
    double serial_s = seconds(t0);

    // The live one-pass ladder (what the old bench did).
    t0 = std::chrono::steady_clock::now();
    auto live_curve = liveSweep(demo, SweepKind::Instruction, scale);
    double live_s = seconds(t0);

    // Record once...
    TraceCache &cache = benchTraceCache();
    bool captured = false;
    t0 = std::chrono::steady_clock::now();
    std::string path = cache.ensure(
        demo.name, scale, [&] { return demo.make(scale); }, &captured);
    double capture_s = seconds(t0);

    // ...replay the whole ladder in parallel: each worker decodes the
    // trace once and sweeps its share of the capacities.
    t0 = std::chrono::steady_clock::now();
    auto replay_curve = replaySweepLadder(
        path, SweepKind::Instruction, sizes, benchOptions().jobs);
    double replay_s = seconds(t0);

    size_t mismatches = 0;
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (replay_curve[i] != live_curve[i] ||
            replay_curve[i] != serial_curve[i])
            ++mismatches;
    }
    std::cout << "replayed vs live miss ratios: "
              << (mismatches == 0 ? "identical at all " : "MISMATCH at ")
              << (mismatches == 0 ? sizes.size() : mismatches)
              << " capacities\n";
    std::cout << "serial re-execution (" << sizes.size()
              << " live runs):  " << formatFixed(serial_s, 3) << " s\n";
    std::cout << "live one-pass ladder (1 live run): "
              << formatFixed(live_s, 3) << " s\n";
    std::cout << "trace capture ("
              << (captured ? "cold, 1 live run" : "cache hit")
              << "):      " << formatFixed(capture_s, 3) << " s\n";
    std::cout << "parallel replay of the " << sizes.size()
              << "-rung ladder: " << formatFixed(replay_s, 3) << " s\n";
    std::cout << "speedup vs serial re-execution: "
              << formatFixed(serial_s / std::max(replay_s, 1e-9), 1)
              << "x (replay only), "
              << formatFixed(serial_s /
                                 std::max(capture_s + replay_s, 1e-9),
                             1)
              << "x (capture + replay)\n";
    return mismatches == 0 ? 0 : 1;
}
