/**
 * @file
 * Figure 6 — instruction cache miss ratio versus cache capacity for
 * the Hadoop workloads and PARSEC on the Atom-like in-order simulator
 * configuration. The paper's finding: the Hadoop instruction footprint
 * is ~1024 KB while PARSEC's is ~128 KB.
 */

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main()
{
    double scale = benchScale() * 0.5;  // sweeps ladder 10 caches
    auto hadoop = averageSweep(hadoopGroup(), SweepKind::Instruction,
                               scale);
    auto parsec = averageSweep(parsecGroup(), SweepKind::Instruction,
                               scale);

    printSweepFigure(
        "=== Figure 6: instruction cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC"}, {hadoop, parsec});

    std::cout << "\nHadoop instruction footprint ~"
              << kneeCapacityKb(hadoop) << " KB (paper: ~1024 KB)\n";
    std::cout << "PARSEC instruction footprint ~"
              << kneeCapacityKb(parsec) << " KB (paper: ~128 KB)\n";
    return 0;
}
