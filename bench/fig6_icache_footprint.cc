/**
 * @file
 * Figure 6 — instruction cache miss ratio versus cache capacity for
 * the Hadoop workloads and PARSEC on the Atom-like in-order simulator
 * configuration. The paper's finding: the Hadoop instruction footprint
 * is ~1024 KB while PARSEC's is ~128 KB.
 *
 * This bench also demonstrates the trace subsystem's record-once/
 * replay-many contract on one workload: a single captured execution
 * feeds the whole 10-point capacity ladder, the replayed miss ratios
 * are checked against a live run of the same curve model for exact
 * equality, and the wall clock of the replayed ladder is compared
 * against serially re-executing the workload once per capacity (the
 * no-trace world). The checks follow --mrc-mode: stack (default)
 * checks replay-vs-live bit-identity of the single-pass profile;
 * oracle additionally checks against the serial per-rung
 * re-execution (all three are the same 8-way model); verify runs
 * profile and oracle over one decode, checks both identities and
 * enforces the documented stack-vs-oracle divergence bound — the CI
 * equivalence gate.
 */

#include <chrono>
#include <cmath>

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One live single-capacity execution per rung: the no-trace cost. */
std::vector<double>
serialReexecutionSweep(const WorkloadEntry &entry, double scale)
{
    std::vector<double> curve;
    for (uint32_t kb : paperSweepSizesKb()) {
        WorkloadPtr w = entry.make(scale);
        FootprintSweep sweep({kb});
        runThroughSink(*w, sweep);
        curve.push_back(sweep.missRatios(SweepKind::Instruction)[0]);
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesAll | kBenchUsesMrcMode);
    MrcMode mode = benchOptions().mrcMode;
    // Roster, sweep kind and scale factor come from the checked-in
    // scenario — the same file scenario_tool runs, so the two paths
    // cannot drift apart.
    ScenarioSpec scn = loadBenchScenario("fig6_icache.scn");
    double scale = benchScale() * scn.scaleFactor;
    auto hadoop = averageSweepMrc(benchGroup(scn, "Hadoop"),
                                  scn.sweepKind, scale);
    auto parsec = averageSweepMrc(benchGroup(scn, "PARSEC"),
                                  scn.sweepKind, scale);

    printSweepFigure(
        "=== Figure 6: instruction cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC"}, {hadoop.curve, parsec.curve});

    std::cout << "\nmrc mode: " << toString(mode) << "\n";
    std::cout << "Hadoop instruction footprint "
              << kneeLabel(hadoop.curve) << " (paper: ~1024 KB)\n";
    std::cout << "PARSEC instruction footprint "
              << kneeLabel(parsec.curve) << " (paper: ~128 KB)\n";

    bool diverged = false;
    if (mode == MrcMode::Verify) {
        double group_div = std::max(hadoop.maxDivergence,
                                    parsec.maxDivergence);
        diverged = group_div > kMrcOracleDivergenceBound;
        std::cout << "max |stack - oracle| over both groups: "
                  << formatFixed(group_div * 100, 3) << "% (bound "
                  << formatFixed(kMrcOracleDivergenceBound * 100, 1)
                  << "%): " << (diverged ? "EXCEEDED" : "ok") << "\n";
    }

    auto group = benchGroup(scn, "Hadoop");
    if (group.empty())
        return diverged ? 1 : 0;
    const WorkloadEntry &demo = group.front();
    auto sizes = paperSweepSizesKb();
    std::cout << "\n--- record-once/replay-many on " << demo.name
              << " (" << toString(mode) << " mode) ---\n";

    // The no-trace world: one live execution per capacity, serially.
    auto t0 = std::chrono::steady_clock::now();
    auto serial_curve = serialReexecutionSweep(demo, scale);
    double serial_s = seconds(t0);

    // The live one-pass ladder through the active mode's model.
    t0 = std::chrono::steady_clock::now();
    auto live_curve = liveSweep(demo, SweepKind::Instruction, scale);
    double live_s = seconds(t0);

    // Record once...
    TraceCache &cache = benchTraceCache();
    bool captured = false;
    t0 = std::chrono::steady_clock::now();
    std::string path = cache.ensure(
        demo.name, scale, [&] { return demo.make(scale); }, &captured);
    double capture_s = seconds(t0);

    // ...replay the whole ladder from the trace through the mode.
    t0 = std::chrono::steady_clock::now();
    MrcResult replay = replaySweepLadder(path, SweepKind::Instruction,
                                         sizes, mode,
                                         benchOptions().jobs);
    double replay_s = seconds(t0);

    // Replay must reproduce the live run of the same model exactly,
    // in every mode. The serial per-rung re-execution is the 8-way
    // oracle model, so it only enters the bit-identity check when an
    // oracle curve exists: replay.ratios in oracle mode,
    // replay.oracleRatios in verify mode.
    size_t mismatches = 0;
    const std::vector<double> *oracle_curve = nullptr;
    if (mode == MrcMode::ShardedOracle)
        oracle_curve = &replay.ratios;
    else if (mode == MrcMode::Verify)
        oracle_curve = &replay.oracleRatios;
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (replay.ratios[i] != live_curve[i])
            ++mismatches;
        if (oracle_curve && (*oracle_curve)[i] != serial_curve[i])
            ++mismatches;
    }
    std::cout << "replayed vs live miss ratios: "
              << (mismatches == 0 ? "identical at all " : "MISMATCH at ")
              << (mismatches == 0 ? sizes.size() : mismatches)
              << " capacities\n";
    if (mode == MrcMode::Verify) {
        bool demo_diverged =
            replay.maxDivergence > kMrcOracleDivergenceBound;
        diverged = diverged || demo_diverged;
        std::cout << "demo max |stack - oracle|: "
                  << formatFixed(replay.maxDivergence * 100, 3)
                  << "% (bound "
                  << formatFixed(kMrcOracleDivergenceBound * 100, 1)
                  << "%): " << (demo_diverged ? "EXCEEDED" : "ok")
                  << "\n";
    }
    std::cout << "serial re-execution (" << sizes.size()
              << " live runs):  " << formatFixed(serial_s, 3) << " s\n";
    std::cout << "live one-pass ladder (1 live run): "
              << formatFixed(live_s, 3) << " s\n";
    std::cout << "trace capture ("
              << (captured ? "cold, 1 live run" : "cache hit")
              << "):      " << formatFixed(capture_s, 3) << " s\n";
    std::cout << "replayed " << sizes.size() << "-rung ladder ("
              << toString(mode) << "):  " << formatFixed(replay_s, 3)
              << " s\n";
    std::cout << "speedup vs serial re-execution: "
              << formatFixed(serial_s / std::max(replay_s, 1e-9), 1)
              << "x (replay only), "
              << formatFixed(serial_s /
                                 std::max(capture_s + replay_s, 1e-9),
                             1)
              << "x (capture + replay)\n";
    return (mismatches == 0 && !diverged) ? 0 : 1;
}
