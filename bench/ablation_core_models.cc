/**
 * @file
 * Ablation — analytic pipeline vs cycle-level in-order core, plus the
 * segment-sampling validation of the paper's Section 5.4 methodology.
 *
 * Part 1 runs a set of workloads through both core models on the Atom
 * configuration: they share cache/TLB/branch components, so the
 * comparison isolates the cycle-accounting method. The analytic model
 * is what the figure benches use; the detailed model bounds its error.
 *
 * Part 2 runs the capacity sweep on full traces vs the paper's five
 * 1% sample windows and reports how close the sampled miss ratios get
 * — the justification for simulating segments instead of whole jobs.
 *
 * Both parts are capture-then-replay: each workload executes once
 * into the trace cache and every model consumes the stored stream, so
 * adding a model costs one replay, not another execution. The stored
 * op count also replaces Part 2's counting pre-pass.
 */

#include "bench_common.hh"
#include "sim/footprint.hh"
#include "sim/inorder_core.hh"
#include "trace/sampling.hh"
#include "tracefile/trace_reader.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesFilter | kBenchUsesTraceDir);
    double scale = benchScale() * 0.5;
    TraceCache &cache = benchTraceCache();
    auto tracePath = [&](const char *name) {
        const WorkloadEntry &entry = findWorkload(name);
        return cache.ensure(entry.name, scale,
                            [&] { return entry.make(scale); });
    };

    std::cout << "=== Part 1: analytic vs cycle-level in-order core "
                 "(Atom config, scale "
              << scale << ") ===\n\n";
    Table t({"workload", "analytic IPC", "detailed IPC", "ratio",
             "load-use stall%", "frontend stall%"});
    for (const char *name :
         {"M-WordCount", "H-WordCount", "S-WordCount", "H-Read",
          "S-Kmeans"}) {
        if (!filterAllows(name))
            continue;
        std::string path = tracePath(name);

        TraceReader analytic_reader(path);
        WorkloadRun analytic = profileWorkload(analytic_reader,
                                               atomD510());

        TraceReader detailed_reader(path);
        InOrderCore core(atomD510());
        detailed_reader.replayInto(core);
        InOrderReport detailed = core.report();

        t.cell(name)
            .cell(analytic.report.ipc, 2)
            .cell(detailed.ipc, 2)
            .cell(analytic.report.ipc / std::max(detailed.ipc, 1e-9), 2)
            .cell(detailed.loadUseStallCycles / detailed.cycles * 100,
                  1)
            .cell(detailed.frontendStallCycles / detailed.cycles * 100,
                  1);
        t.endRow();
    }
    t.print(std::cout);
    std::cout << "\n(The models share caches/TLBs/predictors; ratios "
                 "near 1 validate the analytic accounting the figure "
                 "benches use.)\n";

    std::cout << "\n=== Part 2: whole-trace vs 5x1% segment sampling "
                 "(Section 5.4 methodology) ===\n\n";
    Table s({"workload", "full L1I miss% @32KB", "sampled",
             "full @256KB", "sampled", "sample frac"});
    for (const char *name : {"H-WordCount", "H-NaiveBayes"}) {
        if (!filterAllows(name))
            continue;
        std::vector<uint32_t> sizes{32, 256};
        std::string path = tracePath(name);

        TraceReader full_reader(path);
        FootprintSweep full(sizes);
        full_reader.replayInto(full);
        auto full_curve = full.missRatios(SweepKind::Instruction);

        // The stored op count replaces the counting pre-pass.
        TraceReader sampled_reader(path);
        FootprintSweep sampled_sweep(sizes);
        SamplingSink sampler(sampled_sweep, sampled_reader.opCount());
        sampled_reader.replayInto(sampler);
        auto sampled_curve =
            sampled_sweep.missRatios(SweepKind::Instruction);

        s.cell(name)
            .cell(full_curve[0] * 100, 3)
            .cell(sampled_curve[0] * 100, 3)
            .cell(full_curve[1] * 100, 3)
            .cell(sampled_curve[1] * 100, 3)
            .cell(sampler.sampledFraction(), 3);
        s.endRow();
    }
    s.print(std::cout);
    std::cout << "\n(Five 1% windows approximate the whole-trace miss "
                 "ratios at ~5% of the simulation cost — the paper's "
                 "MARSSx86 methodology. Each window starts with cold "
                 "caches, so sampled ratios carry the classic warm-up "
                 "bias, most visible at large capacities.)\n";
    return 0;
}
