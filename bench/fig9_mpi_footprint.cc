/**
 * @file
 * Figure 9 — instruction cache miss ratio versus capacity for the
 * MPI-implemented big data workloads next to Hadoop and PARSEC. The
 * paper's Section 5.5 finding: the MPI curves sit on top of PARSEC,
 * i.e. the thin stack's instruction footprint matches traditional
 * workloads — the big footprints come from the software stacks.
 */

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesAll | kBenchUsesMrcMode);
    ScenarioSpec scn = loadBenchScenario("fig9_mpi.scn");
    double scale = benchScale() * scn.scaleFactor;
    auto hadoop = averageSweep(benchGroup(scn, "Hadoop"),
                               scn.sweepKind, scale);
    auto parsec = averageSweep(benchGroup(scn, "PARSEC"),
                               scn.sweepKind, scale);
    auto mpi = averageSweep(benchGroup(scn, "MPI"), scn.sweepKind,
                            scale);

    printSweepFigure(
        "=== Figure 9: instruction cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC", "MPI"}, {hadoop, parsec, mpi});

    std::cout << "\nFootprint estimates: Hadoop "
              << kneeLabel(hadoop) << ", PARSEC "
              << kneeLabel(parsec) << ", MPI " << kneeLabel(mpi)
              << " (paper: MPI tracks PARSEC, far below Hadoop)\n";
    return 0;
}
