/**
 * @file
 * google-benchmark micro-benchmarks of the toolkit's own hot paths:
 * cache model, branch unit, prefetcher, full SimCpu consume, trace
 * file encode/decode, PCA and K-means. These bound how much workload
 * the figure benches can chew per second.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/footprint.hh"
#include "sim/prefetcher.hh"
#include "sim/sim_cpu.hh"
#include "sim/stack_distance.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "trace/mix_counter.hh"
#include "trace/sampling.hh"
#include "tracefile/replay.hh"
#include "tracefile/shm_ring.hh"
#include "tracefile/trace_reader.hh"
#include "tracefile/trace_writer.hh"

using namespace wcrt;

namespace {

/**
 * Worker cap for the threaded rows, set by `--jobs N` (0 = hardware).
 * Maps straight onto the replay runners' `threads` argument, i.e. the
 * executor cap on the process-wide WorkerPool.
 */
unsigned g_jobs = 0;

unsigned
benchJobs()
{
    return g_jobs;
}

/** A SimCpu-shaped synthetic op mix (30% load, 10% store, 15% branch). */
std::vector<MicroOp>
syntheticOps(size_t count)
{
    Rng rng(17);
    std::vector<MicroOp> ops(count);
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        uint64_t pick = rng.nextBelow(100);
        op.pc = 0x400000 + (i % 2048) * 4;
        if (pick < 30) {
            op.kind = OpKind::Load;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 40) {
            op.kind = OpKind::Store;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 55) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.3);
            op.target = 0x400000 + rng.nextBelow(8192);
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = IntPurpose::IntAddress;
        }
    }
    return ops;
}

std::string
benchTracePath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bench", 32 * 1024, 8, 64});
    Rng rng(1);
    std::vector<uint64_t> addrs(4096);
    for (auto &a : addrs)
        a = rng.nextBelow(1 << 20);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    BranchUnit bu(xeonE5645Branch());
    Rng rng(2);
    MicroOp op;
    op.kind = OpKind::BranchCond;
    size_t i = 0;
    for (auto _ : state) {
        op.pc = 0x4000 + (i & 255) * 16;
        op.taken = (i & 7) != 0;
        op.target = 0x9000;
        benchmark::DoNotOptimize(bu.predict(op));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_PrefetcherObserve(benchmark::State &state)
{
    StreamPrefetcher pf;
    uint64_t addr = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pf.observe(addr));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetcherObserve);

void
BM_SimCpuConsume(benchmark::State &state)
{
    SimCpu cpu(xeonE5645());
    Rng rng(3);
    std::vector<MicroOp> ops(8192);
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        uint64_t pick = rng.nextBelow(100);
        op.pc = 0x400000 + (i % 2048) * 4;
        if (pick < 30) {
            op.kind = OpKind::Load;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 40) {
            op.kind = OpKind::Store;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 55) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.3);
            op.target = 0x400000 + rng.nextBelow(8192);
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = IntPurpose::IntAddress;
        }
    }
    size_t i = 0;
    for (auto _ : state) {
        cpu.consume(ops[i++ & 8191]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimCpuConsume);

/**
 * Forwards op by op through the virtual boundary — reproduces the
 * pre-batching per-op dispatch cost for same-run comparison. Its
 * inherited default consumeBatch() loops over consume(), so putting
 * this shim in front of any sink measures the old transport.
 */
class PerOpShim : public TraceSink
{
  public:
    explicit PerOpShim(TraceSink &down) : down(down) {}
    void consume(const MicroOp &op) override { down.consume(op); }

  private:
    TraceSink &down;
};

/** Push `ops` through the sink interface in OpBlock-sized batches. */
void
dispatchBatched(TraceSink &sink, const std::vector<MicroOp> &ops)
{
    // One reused SoA block, refilled per batch — the same shape and
    // amortized cost as the Tracer's emit/flush cycle.
    static thread_local OpBlock block(defaultOpBlockOps);
    for (size_t i = 0; i < ops.size(); i += defaultOpBlockOps) {
        size_t n = std::min(defaultOpBlockOps, ops.size() - i);
        block.clear();
        for (size_t j = 0; j < n; ++j)
            block.push(ops[i + j]);
        sink.consumeBlock(block);
    }
}

/**
 * A traced-workload-shaped stream for the transport rows: sequential
 * code runs over a 16 KB loop body and streaming loads/stores over a
 * 128 KB working set, so the machine model itself stays cache-resident
 * and the measurement isolates the op transport, not DRAM.
 */
std::vector<MicroOp>
dispatchStream(size_t count)
{
    Rng rng(29);
    std::vector<MicroOp> ops(count);
    uint64_t read_cursor = 0;
    uint64_t write_cursor = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        op.pc = 0x400000 + (i % 4096) * 4;
        uint64_t pick = rng.nextBelow(100);
        if (pick < 25) {
            op.kind = OpKind::Load;
            op.memAddr = 0x10000000 + (read_cursor % (128 * 1024));
            read_cursor += 8;
            op.memSize = 8;
        } else if (pick < 35) {
            op.kind = OpKind::Store;
            op.memAddr = 0x20000000 + (write_cursor % (128 * 1024));
            write_cursor += 8;
            op.memSize = 8;
        } else if (pick < 50) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.3);
            op.target = 0x400000 + rng.nextBelow(16384);
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = pick < 80 ? IntPurpose::IntAddress
                                   : IntPurpose::Compute;
        }
    }
    return ops;
}

/** batch_dispatch: per-op virtual dispatch into MixCounter. */
void
BM_BatchDispatchMixPerOp(benchmark::State &state)
{
    auto ops = dispatchStream(64 * 1024);
    MixCounter mix;
    TraceSink &sink = mix;
    for (auto _ : state) {
        for (const auto &op : ops)
            sink.consume(op);
    }
    benchmark::DoNotOptimize(mix.total());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(ops.size()));
}
BENCHMARK(BM_BatchDispatchMixPerOp);

/** batch_dispatch: block dispatch into MixCounter. */
void
BM_BatchDispatchMixBatch(benchmark::State &state)
{
    auto ops = dispatchStream(64 * 1024);
    MixCounter mix;
    for (auto _ : state) {
        dispatchBatched(mix, ops);
    }
    benchmark::DoNotOptimize(mix.total());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(ops.size()));
}
BENCHMARK(BM_BatchDispatchMixBatch);

/** batch_dispatch: per-op virtual dispatch into SimCpu. */
void
BM_BatchDispatchSimCpuPerOp(benchmark::State &state)
{
    auto ops = dispatchStream(64 * 1024);
    SimCpu cpu(xeonE5645());
    TraceSink &sink = cpu;
    for (auto _ : state) {
        for (const auto &op : ops)
            sink.consume(op);
    }
    benchmark::DoNotOptimize(cpu.instructions());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(ops.size()));
}
BENCHMARK(BM_BatchDispatchSimCpuPerOp);

/** batch_dispatch: block dispatch into SimCpu. */
void
BM_BatchDispatchSimCpuBatch(benchmark::State &state)
{
    auto ops = dispatchStream(64 * 1024);
    SimCpu cpu(xeonE5645());
    for (auto _ : state) {
        dispatchBatched(cpu, ops);
    }
    benchmark::DoNotOptimize(cpu.instructions());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(ops.size()));
}
BENCHMARK(BM_BatchDispatchSimCpuBatch);

void
BM_TraceWrite(benchmark::State &state)
{
    auto ops = syntheticOps(64 * 1024);
    std::string path = benchTracePath("wcrt-bench-write.wtrace");
    CodeLayout layout;
    layout.addFunction("bench", CodeLayer::Application, 8192);
    TraceMeta meta;
    meta.workload = "bench";
    uint64_t payload_bytes = 0;
    uint64_t ops_written = 0;
    for (auto _ : state) {
        TraceWriter writer(path, meta, layout);
        for (const auto &op : ops)
            writer.consume(op);
        writer.finish();
        payload_bytes += writer.payloadBytes();
        ops_written += writer.opsWritten();
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_written));
    state.SetBytesProcessed(static_cast<int64_t>(payload_bytes));
    state.counters["bytes/op"] =
        ops_written ? static_cast<double>(payload_bytes) /
                          static_cast<double>(ops_written)
                    : 0.0;
    std::filesystem::remove(path);
}
BENCHMARK(BM_TraceWrite);

void
BM_TraceRead(benchmark::State &state)
{
    auto ops = syntheticOps(64 * 1024);
    std::string path = benchTracePath("wcrt-bench-read.wtrace");
    CodeLayout layout;
    layout.addFunction("bench", CodeLayer::Application, 8192);
    TraceMeta meta;
    meta.workload = "bench";
    {
        TraceWriter writer(path, meta, layout);
        for (const auto &op : ops)
            writer.consume(op);
        writer.finish();
    }
    uint64_t payload_bytes = 0;
    uint64_t ops_read = 0;
    for (auto _ : state) {
        // Pin the transport: this row is the buffered-ifstream
        // reference the BM_ReplayMmap* rows are compared against.
        TraceReader reader(path, {TraceIo::Stream, CrcMode::Always});
        CountingSink counter;
        reader.replayInto(counter);
        payload_bytes += reader.payloadBytes();
        ops_read += counter.ops();
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
    state.SetBytesProcessed(static_cast<int64_t>(payload_bytes));
    state.counters["bytes/op"] =
        ops_read ? static_cast<double>(payload_bytes) /
                       static_cast<double>(ops_read)
                 : 0.0;
    std::filesystem::remove(path);
}
BENCHMARK(BM_TraceRead);

/**
 * Repeat-replay rows: one persistent reader, timed replays only.
 * This is the shape of the actual hot loop (sweep ladders and config
 * fans replay the same trace many times), and it is what the
 * transport choice affects: the stream path re-reads and re-copies
 * every chunk payload per replay, the mmap path decodes in place.
 * BM_ReplayStream / BM_ReplayMmap / BM_ReplayMmapCrcOnce differ only
 * in ReaderOptions — same trace, same counting sink.
 */
void
replayTransportRow(benchmark::State &state, const ReaderOptions &opts,
                   const char *tag)
{
    if ((opts.io == TraceIo::Mmap || opts.io == TraceIo::Auto) &&
        !mmapAvailable()) {
        state.SkipWithError("mmap unavailable on this platform");
        return;
    }
    auto ops = syntheticOps(64 * 1024);
    std::string path = benchTracePath(
        (std::string("wcrt-bench-") + tag + ".wtrace").c_str());
    CodeLayout layout;
    layout.addFunction("bench", CodeLayer::Application, 8192);
    TraceMeta meta;
    meta.workload = "bench";
    {
        TraceWriter writer(path, meta, layout);
        for (const auto &op : ops)
            writer.consume(op);
        writer.finish();
    }
    TraceReader reader(path, opts);
    {
        // Warm-up replay: touches every page of the mapping (or warms
        // the stream buffer) and, under CrcMode::Once, performs the
        // one full CRC pass that promotes the file to trusted.
        CountingSink counter;
        reader.replayInto(counter);
    }
    uint64_t payload_bytes = 0;
    uint64_t ops_read = 0;
    for (auto _ : state) {
        CountingSink counter;
        reader.replayInto(counter);
        payload_bytes += reader.payloadBytes();
        ops_read += counter.ops();
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
    state.SetBytesProcessed(static_cast<int64_t>(payload_bytes));
    std::filesystem::remove(path);
}

void
BM_ReplayStream(benchmark::State &state)
{
    replayTransportRow(state, {TraceIo::Stream, CrcMode::Always},
                       "replay-stream");
}
BENCHMARK(BM_ReplayStream);

void
BM_ReplayMmap(benchmark::State &state)
{
    replayTransportRow(state, {TraceIo::Mmap, CrcMode::Always},
                       "replay-mmap");
}
BENCHMARK(BM_ReplayMmap);

/** Steady state of the CRC trust ladder: chunk CRC passes elided. */
void
BM_ReplayMmapCrcOnce(benchmark::State &state)
{
    replayTransportRow(state, {TraceIo::Mmap, CrcMode::Once},
                       "replay-mmap-once");
}
BENCHMARK(BM_ReplayMmapCrcOnce);

/**
 * The shm-ring transport end to end: a producer thread encodes ops
 * through ShmChunkSink into a shared-memory ring while the consumer
 * drains it (ShmSource) and replays the stream into a counting sink —
 * the cross-process serve/attach pipeline, minus the fork, so the row
 * is comparable with BM_TraceWrite + BM_TraceRead (the file pipeline
 * over the same op count).
 */
void
BM_ShmRing(benchmark::State &state)
{
    if (!shmAvailable()) {
        state.SkipWithError("shm unavailable on this platform");
        return;
    }
    auto ops = dispatchStream(64 * 1024);
    CodeLayout layout;
    layout.addFunction("bench", CodeLayer::Application, 8192);
    TraceMeta meta;
    meta.workload = "bench";
    std::string ring_name = "wcrt.bench.shmring";
    ShmRing::unlink(ring_name);
    uint64_t payload_bytes = 0;
    uint64_t ops_read = 0;
    for (auto _ : state) {
        ShmRing producer_ring = ShmRing::create(
            ring_name, ShmRing::Role::Producer);
        ShmRing consumer_ring =
            ShmRing::open(ring_name, ShmRing::Role::Consumer);
        std::thread producer([&] {
            ShmChunkSink sink(producer_ring, meta, layout);
            for (const auto &op : ops)
                sink.consume(op);
            sink.finish();
        });
        ShmSource drained(consumer_ring);
        producer.join();
        TraceReader reader(
            std::make_unique<ShmSource>(drained.payload()),
            "shm:" + ring_name);
        CountingSink counter;
        reader.replayInto(counter);
        payload_bytes += reader.payloadBytes();
        ops_read += counter.ops();
        ShmRing::unlink(ring_name);
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
    state.SetBytesProcessed(static_cast<int64_t>(payload_bytes));
}
BENCHMARK(BM_ShmRing)->UseRealTime();

/** Write one shared trace for the replay-to-sink rows. */
const std::string &
replayBenchTrace()
{
    static const std::string path = [] {
        std::string p = benchTracePath("wcrt-bench-replay.wtrace");
        auto ops = dispatchStream(256 * 1024);
        CodeLayout layout;
        layout.addFunction("bench", CodeLayer::Application, 8192);
        TraceMeta meta;
        meta.workload = "bench";
        TraceWriter writer(p, meta, layout);
        writer.consumeOps(ops.data(), ops.size());
        writer.finish();
        return p;
    }();
    return path;
}

/** File replay into a sink, per-op (via shim) or chunk-batched. */
template <typename MakeSink>
void
replayRows(benchmark::State &state, MakeSink make_sink, bool per_op)
{
    TraceReader reader(replayBenchTrace());
    uint64_t ops_read = 0;
    for (auto _ : state) {
        auto sink = make_sink();
        if (per_op) {
            PerOpShim shim(sink);
            ops_read += reader.replayInto(shim);
        } else {
            ops_read += reader.replayInto(sink);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
}

void
BM_ReplayMixPerOp(benchmark::State &state)
{
    replayRows(state, [] { return MixCounter(); }, true);
}
BENCHMARK(BM_ReplayMixPerOp);

void
BM_ReplayMixBatch(benchmark::State &state)
{
    replayRows(state, [] { return MixCounter(); }, false);
}
BENCHMARK(BM_ReplayMixBatch);

void
BM_ReplaySimCpuPerOp(benchmark::State &state)
{
    replayRows(state, [] { return SimCpu(xeonE5645()); }, true);
}
BENCHMARK(BM_ReplaySimCpuPerOp);

void
BM_ReplaySimCpuBatch(benchmark::State &state)
{
    replayRows(state, [] { return SimCpu(xeonE5645()); }, false);
}
BENCHMARK(BM_ReplaySimCpuBatch);

/**
 * The paper's Section 5.4 capacity sweep as a replay sink: ten cache
 * rungs x three streams per op make it the heaviest sink in any
 * replay, which is exactly what the batch path's line-id precompute,
 * set-MRU repeat memos and rung-parallel fan-out attack.
 */
void
BM_ReplaySweepPerOp(benchmark::State &state)
{
    replayRows(state, [] { return FootprintSweep(paperSweepSizesKb()); },
               true);
}
BENCHMARK(BM_ReplaySweepPerOp);

void
BM_ReplaySweepBatch(benchmark::State &state)
{
    replayRows(state, [] { return FootprintSweep(paperSweepSizesKb()); },
               false);
}
BENCHMARK(BM_ReplaySweepBatch);

// The threaded rows measure wall time: CPU-time-based items/s would
// count only the calling thread while the pool does the work,
// overstating throughput on every multi-core host.
void
BM_ReplaySweepParallel(benchmark::State &state)
{
    unsigned workers = replayWorkers(0);
    replayRows(state,
               [workers] {
                   return FootprintSweep(paperSweepSizesKb(), 8, 64,
                                         workers);
               },
               false);
}
BENCHMARK(BM_ReplaySweepParallel)->UseRealTime();

/**
 * The single-pass replacement for the whole ladder: one decode pass
 * into the Mattson stack-distance profile, then every rung of the
 * fig6 ladder is a histogram walk (sim/stack_distance.hh). Runs
 * strictly serial (workers = 1) and is still expected to beat the
 * rung-parallel sharded sweep above on wall clock — that is the
 * tentpole claim, and the perf gate pins both rows.
 */
void
BM_MrcSinglePass(benchmark::State &state)
{
    TraceReader reader(replayBenchTrace());
    auto sizes = paperSweepSizesKb();
    uint64_t ops_read = 0;
    double sink = 0.0;
    for (auto _ : state) {
        StackDistanceProfile profile;
        ops_read += reader.replayInto(profile);
        auto curve = profile.missRatios(SweepKind::Instruction, sizes);
        sink += curve.back();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
}
BENCHMARK(BM_MrcSinglePass)->UseRealTime();

/**
 * The sweep's batch path in isolation — no file decode — with the
 * full worker fan-out, so the set-range rung splitting shows up
 * directly: without it the 4-8 MB rungs serialize the ladder's tail
 * behind a single worker.
 */
void
BM_SweepRungSplit(benchmark::State &state)
{
    auto ops = dispatchStream(64 * 1024);
    unsigned workers = replayWorkers(benchJobs());
    for (auto _ : state) {
        FootprintSweep sweep(paperSweepSizesKb(), 8, 64, workers);
        dispatchBatched(sweep, ops);
        benchmark::DoNotOptimize(sweep.instructions());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * ops.size()));
}
BENCHMARK(BM_SweepRungSplit)->UseRealTime();

/**
 * The multi-config replay runner on the shared pool: one trace, four
 * machine configurations, each an independent decode + simulate pass
 * fanned out with caller participation.
 */
void
BM_ReplayConfigsPooled(benchmark::State &state)
{
    const std::string &path = replayBenchTrace();
    std::vector<MachineConfig> configs{xeonE5645(), atomD510(),
                                       atomInOrderSim(32),
                                       atomInOrderSim(64)};
    uint64_t instructions = 0;
    for (auto _ : state) {
        auto reports = replayOnConfigs(path, configs, benchJobs());
        for (const auto &r : reports)
            instructions += r.instructions;
    }
    benchmark::DoNotOptimize(instructions);
    state.SetItemsProcessed(static_cast<int64_t>(instructions));
}
BENCHMARK(BM_ReplayConfigsPooled)->UseRealTime();

/**
 * Multi-sink tee replay: one decode pass fanned out to a fast counter,
 * the mix tally, the full machine model and the capacity sweep — the
 * record-once/measure-everything pipeline the figure benches run.
 * `workers` 0 is the sequential fan-out; > 0 is the double-buffered
 * pipelined fan-out.
 */
void
teeReplayRow(benchmark::State &state, unsigned workers)
{
    TraceReader reader(replayBenchTrace());
    uint64_t ops_read = 0;
    for (auto _ : state) {
        MixCounter mix;
        CountingSink counter;
        SimCpu cpu(xeonE5645());
        FootprintSweep sweep(paperSweepSizesKb());
        TeeSink tee(workers);
        tee.addSink(&mix);
        tee.addSink(&counter);
        tee.addSink(&cpu);
        tee.addSink(&sweep);
        ops_read += reader.replayInto(tee);
        benchmark::DoNotOptimize(cpu.instructions());
        benchmark::DoNotOptimize(mix.total());
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops_read));
}

void
BM_ReplayTeeSeq(benchmark::State &state)
{
    teeReplayRow(state, 0);
}
BENCHMARK(BM_ReplayTeeSeq);

void
BM_ReplayTeePipelined(benchmark::State &state)
{
    teeReplayRow(state, 2);
}
BENCHMARK(BM_ReplayTeePipelined)->UseRealTime();

void
BM_Pca45Metrics(benchmark::State &state)
{
    Rng rng(4);
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 77; ++r) {
        std::vector<double> row(45);
        for (auto &v : row)
            v = rng.nextGaussian();
        rows.push_back(std::move(row));
    }
    Matrix samples = Matrix::fromRows(rows);
    for (auto _ : state) {
        Normalized n = zscore(samples);
        PcaModel model = fitPca(n.data, 0.9);
        benchmark::DoNotOptimize(model.retained);
    }
}
BENCHMARK(BM_Pca45Metrics);

void
BM_KMeans77x10(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 77; ++r) {
        std::vector<double> row(10);
        for (auto &v : row)
            v = rng.nextGaussian();
        rows.push_back(std::move(row));
    }
    Matrix samples = Matrix::fromRows(rows);
    for (auto _ : state) {
        KMeansResult res = kMeans(samples, 17);
        benchmark::DoNotOptimize(res.wcss);
    }
}
BENCHMARK(BM_KMeans77x10);

} // namespace

/**
 * Standard benchmark main plus two convenience flags: `--json PATH`
 * expands to `--benchmark_out=PATH --benchmark_out_format=json` (the
 * CI perf-regression gate and the README throughput table both
 * consume that file), and `--jobs N` caps the worker count of the
 * threaded rows (0 = hardware), mirroring the figure benches.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        std::string json_path;
        if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            g_jobs = static_cast<unsigned>(std::atoi(arg.c_str() + 7));
            continue;
        } else if (arg == "--jobs" && i + 1 < argc) {
            g_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
            continue;
        } else {
            args.push_back(std::move(arg));
            continue;
        }
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> argp;
    argp.reserve(args.size());
    for (auto &a : args)
        argp.push_back(a.data());
    int new_argc = static_cast<int>(argp.size());
    benchmark::Initialize(&new_argc, argp.data());
    if (benchmark::ReportUnrecognizedArguments(new_argc, argp.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
