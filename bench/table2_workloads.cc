/**
 * @file
 * Table 2 — the seventeen representative workloads with their
 * application category, measured data-processing behaviour and
 * measured system behaviour, next to the paper's labels.
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

namespace {

/** The paper's Table-2 labels for comparison. */
struct PaperRow
{
    const char *behavior;
    const char *data;
};

PaperRow
paperRow(int table2_id)
{
    switch (table2_id) {
      case 1:
        return {"IO-Intensive", "Output=Input, no Intermediate"};
      case 2:
        return {"IO-Intensive", "Output<Input, Intermediate<Input"};
      case 3:
        return {"IO-Intensive", "Output<Input, no Intermediate"};
      case 4:
        return {"Hybrid", "Output=Input, no Intermediate"};
      case 5:
        return {"IO-Intensive", "Output<<Input, Intermediate<Input"};
      case 6:
        return {"Hybrid", "Output=Input, Intermediate=Input"};
      case 7:
        return {"CPU-Intensive", "Output<<Input, Intermediate<<Input"};
      case 8:
        return {"Hybrid", "Output<<Input, no Intermediate"};
      case 9:
        return {"IO-Intensive", "Output<Input, no Intermediate"};
      case 10:
        return {"IO-Intensive", "Output=Input, Intermediate=Input"};
      case 11:
        return {"CPU-Intensive", "Output=Input, Intermediate=Input"};
      case 12:
        return {"Hybrid", "Output<<Input, no Intermediate"};
      case 13:
        return {"CPU-Intensive", "Output>Input, Intermediate>Input"};
      case 14:
        return {"IO-Intensive", "Output<<Input, Intermediate<<Input"};
      case 15:
        return {"CPU-Intensive", "Output<<Input, Intermediate<<Input"};
      case 16:
        return {"CPU-Intensive", "Output<<Input, Intermediate<<Input"};
      case 17:
        return {"Hybrid", "Output=Input, Intermediate=Input"};
      default:
        return {"?", "?"};
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesNone);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Table 2: the 17 representative workloads (scale "
              << scale << ") ===\n\n";

    Table t({"id", "workload", "represents", "category",
             "sys-behaviour (measured)", "sys (paper)",
             "data behaviour (measured)", "data (paper)"});

    const auto &entries = representativeWorkloads();
    int matches = 0;
    for (const auto &entry : entries) {
        WorkloadPtr w = entry.make(scale);
        WorkloadRun run = profileWorkload(*w, machine);
        PaperRow paper = paperRow(entry.table2Id);
        std::string measured_sys = toString(run.sysBehavior);
        if (measured_sys == paper.behavior)
            ++matches;
        t.cell(static_cast<uint64_t>(entry.table2Id))
            .cell(run.name)
            .cell(static_cast<uint64_t>(entry.represents))
            .cell(toString(run.category))
            .cell(measured_sys)
            .cell(paper.behavior)
            .cell(run.data.describe())
            .cell(paper.data);
        t.endRow();
    }
    t.print(std::cout);

    std::cout << "\nSystem-behaviour labels matching the paper: "
              << matches << "/" << entries.size() << "\n";
    std::cout << "(Deviations at small dataset scale are expected for "
                 "the data-volume labels: the fixed vocabulary/output "
                 "sizes loom larger against MB-scale inputs than "
                 "against the paper's 128 GB.)\n";
    return 0;
}
