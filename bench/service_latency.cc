/**
 * @file
 * Latency-vs-offered-throughput curves over the service stack, driven
 * by the traffic engine (src/loadgen).
 *
 * For each traffic target the bench measures closed-loop capacity
 * first (actors re-issue as fast as the service completes), then
 * sweeps an open-loop Poisson schedule across fractions of that
 * capacity — below, near and past saturation — recording per-request
 * latency into HDR-style histograms. Open-loop latency is measured
 * from the *scheduled* arrival instant, so queueing delay past
 * saturation accumulates into the tail: p99 is expected to rise
 * monotonically along the offered-load axis. A token-bucket phase
 * shows the rate-limited shape, and a co-run row replays the recorded
 * kv-get op stream against the analytics stream through a shared L3
 * (sim/corun) to quantify interference between a latency-critical
 * service and a batch job.
 *
 * Flags (own parser — this binary does not take the shared bench
 * flags, and says so rather than silently ignoring them):
 *
 *     --json FILE   also emit google-benchmark-shaped JSON. Rows with
 *                   items_per_second (deterministic jobs=1 closed-loop
 *                   throughput) feed the CI perf gate; latency rows
 *                   carry p99 as counters only, so the gate skips
 *                   their noisy values.
 *     --target T    one target (kv-get, sql-filter, workload:<name>);
 *                   default runs kv-get and sql-filter.
 *     --actors N    concurrent sessions (default 4).
 *     --jobs N      executor cap on the shared pool (0 = hardware).
 *     --ops N       steady-phase requests per actor (0 = per-target
 *                   default).
 *
 * Dataset scale comes from WCRT_SCALE (default 0.5), like every other
 * bench binary.
 */

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "loadgen/orchestrator.hh"
#include "loadgen/targets.hh"
#include "sim/corun.hh"
#include "sim/machine.hh"

using namespace wcrt;

namespace {

struct Options
{
    std::string jsonPath;
    std::string target;   //!< empty = default pair
    unsigned actors = 4;
    unsigned jobs = 0;
    uint64_t ops = 0;     //!< 0 = per-target default
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto value = [&](const char *arg, const char *name,
                     int &i) -> const char * {
        size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) != 0)
            return nullptr;
        if (arg[n] == '=')
            return arg + n + 1;
        if (arg[n] == '\0' && i + 1 < argc)
            return argv[++i];
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [--json FILE] [--target T] [--actors N]"
                         " [--jobs N] [--ops N]\n"
                         "targets: kv-get, sql-filter,"
                         " workload:<roster name>\n";
            std::exit(0);
        } else if (const char *v = value(arg, "--json", i)) {
            opt.jsonPath = v;
        } else if (const char *v2 = value(arg, "--target", i)) {
            opt.target = v2;
        } else if (const char *v3 = value(arg, "--actors", i)) {
            opt.actors = static_cast<unsigned>(std::atoi(v3));
        } else if (const char *v4 = value(arg, "--jobs", i)) {
            opt.jobs = static_cast<unsigned>(std::atoi(v4));
        } else if (const char *v5 = value(arg, "--ops", i)) {
            opt.ops = static_cast<uint64_t>(std::atoll(v5));
        } else {
            wcrt_fatal("unknown service_latency argument: ", arg,
                       " (try --help)");
        }
    }
    if (opt.actors == 0)
        wcrt_fatal("--actors must be at least 1");
    return opt;
}

double
benchScale()
{
    if (const char *s = std::getenv("WCRT_SCALE"))
        return std::atof(s);
    return 0.5;
}

/** Steady-phase requests per actor when --ops is not given. */
uint64_t
defaultOps(const std::string &target)
{
    if (target == "kv-get")
        return 2000;  // one GET per request: cheap, count high
    if (target == "sql-filter")
        return 120;   // one full filter+project scan per request
    return 16;        // workload:<name> macro-requests are heavy
}

/** One JSON row, gbench-shaped so check_perf/perf_trend can read it. */
struct JsonRow
{
    std::string name;
    double realTimeNs = 0;
    double itemsPerSecond = -1;  //!< < 0: omit (info-only row)
    std::vector<std::pair<std::string, double>> counters;
};

std::vector<JsonRow> g_json;

void
emitJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        wcrt_fatal("cannot write ", path);
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"service_latency\",\n"
        << "    \"num_cpus\": "
        << std::thread::hardware_concurrency() << "\n  },\n"
        << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < g_json.size(); ++i) {
        const JsonRow &r = g_json[i];
        out << "    {\n      \"name\": \"" << r.name << "\",\n"
            << "      \"run_name\": \"" << r.name << "\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"iterations\": 1,\n"
            << "      \"real_time\": " << r.realTimeNs << ",\n"
            << "      \"cpu_time\": " << r.realTimeNs << ",\n"
            << "      \"time_unit\": \"ns\"";
        if (r.itemsPerSecond >= 0)
            out << ",\n      \"items_per_second\": "
                << r.itemsPerSecond;
        for (const auto &[key, val] : r.counters)
            out << ",\n      \"" << key << "\": " << val;
        out << "\n    }" << (i + 1 < g_json.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
}

/** Latency columns of one recorded phase, appended to `t`. */
void
phaseRow(Table &t, const std::string &target, const PhaseStats &ps,
         double capacity_hz)
{
    t.cell(target)
        .cell(ps.name)
        .cell(toString(ps.arrival))
        .cell(ps.offeredRateHz, 0)
        .cell(ps.achievedRateHz(), 0)
        .cell(capacity_hz > 0 ? ps.offeredRateHz / capacity_hz : 0.0,
              2)
        .cell(static_cast<uint64_t>(ps.latency.quantile(0.50)))
        .cell(static_cast<uint64_t>(ps.latency.quantile(0.90)))
        .cell(static_cast<uint64_t>(ps.latency.quantile(0.99)))
        .cell(static_cast<uint64_t>(ps.latency.quantile(0.999)))
        .cell(ps.requests);
    t.endRow();
}

/** Sanitized fragment of a target name for JSON row names. */
std::string
rowKey(const std::string &target)
{
    std::string out;
    for (char c : target)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

/** The full curve for one target; rows appended to the shared table. */
void
runTarget(const std::string &name, const Options &opt, Table &t)
{
    double scale = benchScale();
    uint64_t steady_ops = opt.ops ? opt.ops : defaultOps(name);

    // Per-actor service capacity mu1, from a strictly serial closed
    // loop (one actor, jobs=1). This anchors the open-loop sweep:
    // each actor's Poisson rate is a fraction of the rate one actor
    // can actually serve, so a fraction above 1 saturates every actor
    // individually — true whether the host runs the actors on
    // separate cores or serializes them on one. This run is also the
    // perf-gate row: a fixed request sequence whose throughput is
    // comparable across runs the way the micro_sim rows are.
    auto serial_target = makeTrafficTarget(name, scale);
    OrchestratorConfig serial_cfg;
    serial_cfg.actors = 1;
    serial_cfg.jobs = 1;
    serial_cfg.seed = 1;
    std::vector<PhaseSpec> serial_phases{
        warmupPhase(steady_ops / 4 + 1),
        closedPhase("serial", steady_ops),
    };
    Orchestrator serial_run(*serial_target, serial_phases, serial_cfg);
    TrafficResult serial = serial_run.run();
    const PhaseStats &sp = serial.phases.front();
    double mu1 = sp.achievedRateHz();
    phaseRow(t, name, sp, mu1 * opt.actors);
    JsonRow gate;
    gate.name = "SL_" + rowKey(name) + "Closed";
    gate.realTimeNs = static_cast<double>(sp.elapsedNs);
    gate.itemsPerSecond = mu1;
    gate.counters = {
        {"p50_ns", static_cast<double>(sp.latency.quantile(0.50))},
        {"p99_ns", static_cast<double>(sp.latency.quantile(0.99))},
    };
    g_json.push_back(std::move(gate));

    // Open-loop sweep across the saturation knee. Each fraction is a
    // phase of the same run: the orchestrator barriers between them,
    // so one phase's queue backlog cannot leak into the next phase's
    // scheduled arrivals. Latencies count from the scheduled start,
    // so the overload points accumulate queueing delay into the tail
    // and p99 rises toward (and past) saturation.
    OrchestratorConfig cfg;
    cfg.actors = opt.actors;
    cfg.jobs = opt.jobs;
    cfg.seed = 1;
    const double fractions[] = {0.4, 0.9, 1.3, 1.8};
    auto curve_target = makeTrafficTarget(name, scale);
    std::vector<PhaseSpec> phases{warmupPhase(steady_ops / 4 + 1)};
    for (double f : fractions) {
        std::ostringstream pn;
        pn << "poisson-" << f << "x";
        phases.push_back(
            poissonPhase(pn.str(), steady_ops, f * mu1));
    }
    phases.push_back(tokenBucketPhase("token-bucket-0.9x", steady_ops,
                                      0.9 * mu1, 32));
    Orchestrator curve_run(*curve_target, phases, cfg);
    TrafficResult curve = curve_run.run();
    for (const PhaseStats &ps : curve.phases) {
        phaseRow(t, name, ps, mu1 * opt.actors);
        JsonRow row;
        row.name = "SL_" + rowKey(name) + "_" + ps.name;
        row.realTimeNs = static_cast<double>(ps.elapsedNs);
        row.counters = {
            {"offered_hz", ps.offeredRateHz},
            {"achieved_hz", ps.achievedRateHz()},
            {"p50_ns",
             static_cast<double>(ps.latency.quantile(0.50))},
            {"p99_ns",
             static_cast<double>(ps.latency.quantile(0.99))},
        };
        g_json.push_back(std::move(row));
    }
}

/**
 * Interference co-run: the kv-get service's op stream (actor 0,
 * recorded during a closed-loop run) against the analytics stream,
 * sharing the modelled L3.
 */
void
runCoRun()
{
    double scale = benchScale();
    auto record_stream = [&](const char *name, uint64_t ops) {
        auto target = makeTrafficTarget(name, scale);
        OrchestratorConfig cfg;
        cfg.actors = 1;
        cfg.jobs = 1;
        cfg.seed = 1;
        cfg.recordActor0 = true;
        std::vector<PhaseSpec> phases{closedPhase("record", ops)};
        Orchestrator run(*target, phases, cfg);
        run.run();
        return run.recordedOps();
    };
    // A few hundred requests give the shared-L3 model plenty of
    // resident lines; recording the full steady counts would hold
    // gigabytes of MicroOps in memory for no extra signal.
    std::vector<MicroOp> service = record_stream("kv-get", 256);
    std::vector<MicroOp> batch = record_stream("sql-filter", 32);

    CoRunResult r = coRun(xeonE5645(), service, batch);
    Table t({"lane", "instructions", "solo-L3-MPKI", "shared-L3-MPKI",
             "degradation"});
    t.cell("kv-get (service)")
        .cell(r.a.instructions)
        .cell(r.a.soloL3Mpki(), 3)
        .cell(r.a.sharedL3Mpki(), 3)
        .cell(r.a.degradation(), 2);
    t.endRow();
    t.cell("sql-filter (batch)")
        .cell(r.b.instructions)
        .cell(r.b.soloL3Mpki(), 3)
        .cell(r.b.sharedL3Mpki(), 3)
        .cell(r.b.degradation(), 2);
    t.endRow();
    std::cout << "co-run interference (shared L3, snoop hits "
              << r.snoopHits << "):\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    std::cout << "=== Service latency under load (scale "
              << benchScale() << ", actors " << opt.actors
              << ", jobs "
              << (opt.jobs ? std::to_string(opt.jobs) : "hardware")
              << ") ===\n\n";

    Table t({"target", "phase", "arrival", "offered/s", "achieved/s",
             "load", "p50ns", "p90ns", "p99ns", "p999ns", "requests"});
    std::vector<std::string> targets;
    if (!opt.target.empty())
        targets.push_back(opt.target);
    else
        targets = trafficTargetNames();
    for (const std::string &name : targets)
        runTarget(name, opt, t);
    t.print(std::cout);
    std::cout << "\n";

    if (opt.target.empty())
        runCoRun();

    if (!opt.jsonPath.empty()) {
        emitJson(opt.jsonPath);
        std::cout << "wrote " << g_json.size() << " JSON rows to "
                  << opt.jsonPath << "\n";
    }
    return 0;
}
