/**
 * @file
 * Shared scaffolding for the per-figure/per-table bench binaries.
 *
 * Every bench runs some set of workloads through the Xeon E5645 model
 * and prints paper-style rows. The dataset scale is read from the
 * WCRT_SCALE environment variable (default 0.5) so a full bench sweep
 * stays laptop-fast while larger runs remain one variable away.
 */

#ifndef WCRT_BENCH_BENCH_COMMON_HH
#define WCRT_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/summary.hh"
#include "base/table.hh"
#include "baselines/baselines.hh"
#include "core/profiler.hh"
#include "workloads/registry.hh"

namespace wcrt::bench {

/** Dataset scale for bench runs (WCRT_SCALE, default 0.5). */
inline double
benchScale()
{
    if (const char *s = std::getenv("WCRT_SCALE"))
        return std::atof(s);
    return 0.5;
}

/** Profile every representative workload on a machine. */
inline std::vector<WorkloadRun>
runRepresentatives(const MachineConfig &machine, double scale)
{
    std::vector<WorkloadRun> runs;
    for (const auto &entry : representativeWorkloads()) {
        WorkloadPtr w = entry.make(scale);
        runs.push_back(profileWorkload(*w, machine));
    }
    return runs;
}

/** Profile the six MPI implementations. */
inline std::vector<WorkloadRun>
runMpiSuite(const MachineConfig &machine, double scale)
{
    std::vector<WorkloadRun> runs;
    for (const auto &entry : mpiWorkloads()) {
        WorkloadPtr w = entry.make(scale);
        runs.push_back(profileWorkload(*w, machine));
    }
    return runs;
}

/** Profile the comparison suites; returns (suite label, run). */
inline std::vector<std::pair<std::string, WorkloadRun>>
runBaselines(const MachineConfig &machine, double scale)
{
    std::vector<std::pair<std::string, WorkloadRun>> runs;
    for (const auto &entry : baselineWorkloads()) {
        WorkloadPtr w = entry.make(scale);
        runs.emplace_back(toString(entry.suite),
                          profileWorkload(*w, machine));
    }
    return runs;
}

/** Average a field over a set of runs. */
template <typename Getter>
double
average(const std::vector<WorkloadRun> &runs, Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        s.add(get(r));
    return s.mean();
}

/** Average over the runs matching a category. */
template <typename Getter>
double
averageByCategory(const std::vector<WorkloadRun> &runs, AppCategory cat,
                  Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        if (r.category == cat)
            s.add(get(r));
    return s.mean();
}

/** Average over the runs matching a system behaviour class. */
template <typename Getter>
double
averageByBehavior(const std::vector<WorkloadRun> &runs,
                  SystemBehavior behavior, Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        if (r.sysBehavior == behavior)
            s.add(get(r));
    return s.mean();
}

} // namespace wcrt::bench

#endif // WCRT_BENCH_BENCH_COMMON_HH
