/**
 * @file
 * Shared scaffolding for the per-figure/per-table bench binaries.
 *
 * Every bench runs some set of workloads through the Xeon E5645 model
 * and prints paper-style rows. The dataset scale is read from the
 * WCRT_SCALE environment variable (default 0.5) so a full bench sweep
 * stays laptop-fast while larger runs remain one variable away.
 *
 * Workload executions are recorded once into a trace cache (see
 * core/trace_cache.hh) and replayed from disk afterwards, in parallel
 * across workloads — so repeated bench runs and multi-figure sweeps
 * pay one capture per (workload, scale) instead of one execution per
 * figure. Every binary accepts:
 *
 *     --filter=SUBSTR   run only workloads whose name contains SUBSTR
 *     --list            print the roster and exit
 *     --trace-dir=DIR   trace cache directory (default: WCRT_TRACE_DIR
 *                       or <tmp>/wcrt-traces)
 *     --jobs=N          cap replay worker threads (default: hardware)
 *
 * The capacity-sweep figures (6-9) additionally accept:
 *
 *     --mrc-mode=MODE   miss-ratio-curve path: stack (single-pass
 *                       stack-distance profile, the default), oracle
 *                       (per-rung set-associative sweep), or verify
 *                       (both, reporting the curve divergence)
 */

#ifndef WCRT_BENCH_BENCH_COMMON_HH
#define WCRT_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/summary.hh"
#include "base/table.hh"
#include "baselines/baselines.hh"
#include "core/profiler.hh"
#include "core/trace_cache.hh"
#include "tracefile/replay.hh"
#include "workloads/registry.hh"

namespace wcrt::bench {

/** Dataset scale for bench runs (WCRT_SCALE, default 0.5). */
inline double
benchScale()
{
    if (const char *s = std::getenv("WCRT_SCALE"))
        return std::atof(s);
    return 0.5;
}

/**
 * Which shared flags a bench binary actually consults. Passed to
 * initBench() so a flag the binary parses but never reads draws a
 * warning instead of silently doing nothing (a `--trace-dir` on a
 * bench that generates live would otherwise look honoured).
 */
enum BenchFlagUse : unsigned {
    kBenchUsesNone = 0,
    kBenchUsesFilter = 1u << 0,
    kBenchUsesTraceDir = 1u << 1,
    kBenchUsesJobs = 1u << 2,
    //! Deliberately outside kBenchUsesAll: only the capacity-sweep
    //! figures compute miss-ratio curves, so every other bench keeps
    //! warning on --mrc-mode instead of silently accepting it.
    kBenchUsesMrcMode = 1u << 3,
    kBenchUsesAll =
        kBenchUsesFilter | kBenchUsesTraceDir | kBenchUsesJobs,
};

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    std::string filter;    //!< substring filter on workload names
    bool list = false;     //!< print the roster and exit
    std::string traceDir;  //!< trace cache override ("" = default)
    unsigned jobs = 0;     //!< replay worker cap (0 = hardware)
    //! Miss-ratio-curve path for the sweep figures (--mrc-mode).
    MrcMode mrcMode = MrcMode::StackDistance;
    bool mrcModeSet = false;  //!< --mrc-mode given on the command line
};

/** The options initBench() parsed. */
inline BenchOptions &
benchOptions()
{
    static BenchOptions options;
    return options;
}

/** Print every workload name the shared rosters offer. */
inline void
printRoster(std::ostream &os)
{
    os << "representative workloads:\n";
    for (const auto &e : representativeWorkloads())
        os << "  " << e.name << "\n";
    os << "MPI implementations:\n";
    for (const auto &e : mpiWorkloads())
        os << "  " << e.name << "\n";
    os << "baseline suites:\n";
    for (const auto &e : baselineWorkloads())
        os << "  " << e.name << " (" << toString(e.suite) << ")\n";
    os << "full roster: " << fullRoster().size() << " workloads\n";
}

/**
 * Parse the shared bench flags. Call first in every main();
 * `--list` and `--help` print and exit here.
 *
 * @param uses BenchFlagUse mask of the flags this binary reads; a
 *        flag given on the command line but absent from the mask
 *        warns on stderr rather than being silently ignored.
 */
inline void
initBench(int argc, char **argv, unsigned uses = kBenchUsesAll)
{
    BenchOptions &opt = benchOptions();
    auto value = [&](const char *arg, const char *name,
                     int &i) -> const char * {
        size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) != 0)
            return nullptr;
        if (arg[n] == '=')
            return arg + n + 1;
        if (arg[n] == '\0' && i + 1 < argc)
            return argv[++i];
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            opt.list = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [--filter=SUBSTR] [--list]"
                         " [--trace-dir=DIR] [--jobs=N]";
            if (uses & kBenchUsesMrcMode)
                std::cout << " [--mrc-mode=stack|oracle|verify]";
            std::cout << "\n";
            std::exit(0);
        } else if (const char *v = value(arg, "--filter", i)) {
            opt.filter = v;
        } else if (const char *v2 = value(arg, "--trace-dir", i)) {
            opt.traceDir = v2;
        } else if (const char *v3 = value(arg, "--jobs", i)) {
            opt.jobs = static_cast<unsigned>(std::atoi(v3));
        } else if (const char *v4 = value(arg, "--mrc-mode", i)) {
            if (!parseMrcMode(v4, opt.mrcMode))
                wcrt_fatal("unknown --mrc-mode: ", v4,
                           " (stack, oracle or verify)");
            opt.mrcModeSet = true;
        } else {
            wcrt_fatal("unknown bench argument: ", arg,
                       " (try --help)");
        }
    }
    auto warn_unused = [&](const char *flag) {
        std::cerr << "warning: " << argv[0] << " ignores " << flag
                  << " (flag parsed but not used by this bench)\n";
    };
    if (!opt.filter.empty() && !(uses & kBenchUsesFilter))
        warn_unused("--filter");
    if (!opt.traceDir.empty() && !(uses & kBenchUsesTraceDir))
        warn_unused("--trace-dir");
    if (opt.jobs != 0 && !(uses & kBenchUsesJobs))
        warn_unused("--jobs");
    if (opt.mrcModeSet && !(uses & kBenchUsesMrcMode))
        warn_unused("--mrc-mode");
    if (opt.list) {
        printRoster(std::cout);
        std::exit(0);
    }
}

/** True when `name` passes the --filter option. */
inline bool
filterAllows(const std::string &name)
{
    const std::string &f = benchOptions().filter;
    return f.empty() || name.find(f) != std::string::npos;
}

/** The subset of `entries` passing --filter. */
inline std::vector<WorkloadEntry>
filtered(const std::vector<WorkloadEntry> &entries)
{
    std::vector<WorkloadEntry> out;
    for (const auto &e : entries)
        if (filterAllows(e.name))
            out.push_back(e);
    return out;
}

/** The bench process's trace cache (honours --trace-dir). */
inline TraceCache &
benchTraceCache()
{
    static TraceCache cache(benchOptions().traceDir);
    return cache;
}

/**
 * Record-once/replay-many profiling: ensure a cached trace per entry
 * (capturing serially on miss), then replay them against `machine` in
 * parallel. Results are indexed like `entries` and identical to live
 * profileWorkload() runs.
 */
inline std::vector<WorkloadRun>
profileEntriesCached(const std::vector<WorkloadEntry> &entries,
                     const MachineConfig &machine, double scale)
{
    TraceCache &cache = benchTraceCache();
    std::vector<std::string> paths;
    paths.reserve(entries.size());
    for (const auto &e : entries)
        paths.push_back(cache.ensure(
            e.name, scale, [&] { return e.make(scale); }));
    return profileTraces(paths, machine, {}, benchOptions().jobs);
}

/** Profile every representative workload on a machine. */
inline std::vector<WorkloadRun>
runRepresentatives(const MachineConfig &machine, double scale)
{
    return profileEntriesCached(filtered(representativeWorkloads()),
                                machine, scale);
}

/** Profile the six MPI implementations. */
inline std::vector<WorkloadRun>
runMpiSuite(const MachineConfig &machine, double scale)
{
    return profileEntriesCached(filtered(mpiWorkloads()), machine,
                                scale);
}

/** Profile the comparison suites; returns (suite label, run). */
inline std::vector<std::pair<std::string, WorkloadRun>>
runBaselines(const MachineConfig &machine, double scale)
{
    std::vector<BaselineEntry> entries;
    for (const auto &e : baselineWorkloads())
        if (filterAllows(e.name))
            entries.push_back(e);

    TraceCache &cache = benchTraceCache();
    std::vector<std::string> paths;
    paths.reserve(entries.size());
    for (const auto &e : entries)
        paths.push_back(cache.ensure(
            e.name, scale, [&] { return e.make(scale); }));
    auto profiled = profileTraces(paths, machine, {},
                                  benchOptions().jobs);

    std::vector<std::pair<std::string, WorkloadRun>> runs;
    runs.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        runs.emplace_back(toString(entries[i].suite),
                          std::move(profiled[i]));
    return runs;
}

/** Average a field over a set of runs. */
template <typename Getter>
double
average(const std::vector<WorkloadRun> &runs, Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        s.add(get(r));
    return s.mean();
}

/** Average over the runs matching a category. */
template <typename Getter>
double
averageByCategory(const std::vector<WorkloadRun> &runs, AppCategory cat,
                  Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        if (r.category == cat)
            s.add(get(r));
    return s.mean();
}

/** Average over the runs matching a system behaviour class. */
template <typename Getter>
double
averageByBehavior(const std::vector<WorkloadRun> &runs,
                  SystemBehavior behavior, Getter &&get)
{
    Summary s;
    for (const auto &r : runs)
        if (r.sysBehavior == behavior)
            s.add(get(r));
    return s.mean();
}

} // namespace wcrt::bench

#endif // WCRT_BENCH_BENCH_COMMON_HH
