/**
 * @file
 * Section 5.5 — the software-stack impact study: the same six
 * algorithms implemented on MPI vs Hadoop vs Spark, with the paper's
 * headline contrasts:
 *  - L1I MPKI: M-WordCount ~2 vs H-WordCount ~7 vs S-WordCount ~17
 *    (an order of magnitude between thin and deep stacks);
 *  - suite averages: MPI ~3.4 vs Hadoop/Spark ~12.6;
 *  - IPC: M-WordCount ~1.8 vs 1.1 / 0.9; suite gap ~21%;
 *  - L2/L3: M-WordCount 0.8/0.1 vs Hadoop 8.4/1.9 vs Spark 16/2.7.
 *
 * An ablation sweep then scales the framework code size to show the
 * front-end stalls track the stack's instruction footprint.
 */

#include "bench_common.hh"
#include "workloads/ml_workloads.hh"
#include "workloads/text_workloads.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesNone);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Section 5.5: software stack impact (scale "
              << scale << ") ===\n\n";

    struct Algo
    {
        const char *name;
        bool isText;
        TextAlgorithm text;
        MlAlgorithm ml;
    };
    const Algo algos[] = {
        {"WordCount", true, TextAlgorithm::WordCount,
         MlAlgorithm::KMeans},
        {"Grep", true, TextAlgorithm::Grep, MlAlgorithm::KMeans},
        {"Sort", true, TextAlgorithm::Sort, MlAlgorithm::KMeans},
        {"Kmeans", false, TextAlgorithm::WordCount, MlAlgorithm::KMeans},
        {"PageRank", false, TextAlgorithm::WordCount,
         MlAlgorithm::PageRank},
        {"Bayes", false, TextAlgorithm::WordCount,
         MlAlgorithm::NaiveBayes},
    };
    const StackKind stacks[] = {StackKind::Mpi, StackKind::Hadoop,
                                StackKind::Spark};

    Table t({"algorithm", "stack", "IPC", "L1I", "L2", "L3",
             "frontend-stall"});
    std::map<StackKind, Summary> ipc_by_stack, l1i_by_stack;
    for (const auto &algo : algos) {
        for (StackKind stack : stacks) {
            WorkloadPtr w;
            if (algo.isText)
                w = std::make_unique<TextWorkload>(algo.text, stack,
                                                   scale);
            else
                w = std::make_unique<MlWorkload>(algo.ml, stack, scale);
            WorkloadRun run = profileWorkload(*w, machine);
            t.cell(algo.name)
                .cell(toString(stack))
                .cell(run.report.ipc, 2)
                .cell(run.report.l1iMpki, 1)
                .cell(run.report.l2Mpki, 1)
                .cell(run.report.l3Mpki, 2)
                .cell(run.report.frontendStallRatio, 2);
            t.endRow();
            ipc_by_stack[stack].add(run.report.ipc);
            l1i_by_stack[stack].add(run.report.l1iMpki);
        }
    }
    t.print(std::cout);

    std::cout << "\n--- Suite averages ---\n";
    for (StackKind stack : stacks) {
        std::cout << toString(stack) << ": IPC "
                  << formatFixed(ipc_by_stack[stack].mean(), 2)
                  << ", L1I MPKI "
                  << formatFixed(l1i_by_stack[stack].mean(), 1) << "\n";
    }
    double gap = (ipc_by_stack[StackKind::Mpi].mean() -
                  (ipc_by_stack[StackKind::Hadoop].mean() +
                   ipc_by_stack[StackKind::Spark].mean()) /
                      2.0) /
                 ipc_by_stack[StackKind::Mpi].mean();
    std::cout << "MPI vs JVM-stack IPC gap: " << formatFixed(gap * 100, 0)
              << "%   (paper: 21%)\n";
    std::cout << "L1I ratio (JVM avg / MPI): "
              << formatFixed((l1i_by_stack[StackKind::Hadoop].mean() +
                              l1i_by_stack[StackKind::Spark].mean()) /
                                 2.0 /
                                 std::max(l1i_by_stack[StackKind::Mpi]
                                              .mean(),
                                          0.01),
                             1)
              << "x   (paper: 12.6 / 3.4 = 3.7x; per-workload up to "
                 "an order of magnitude)\n";

    // Ablation: scale the Hadoop framework's code size.
    std::cout << "\n=== Ablation: Hadoop framework code-size scale ===\n"
              << "(WordCount; codeScale multiplies every framework "
                 "function's bytes)\n\n";
    Table ab({"codeScale", "IPC", "L1I MPKI", "frontend-stall"});
    for (double cs : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        TextWorkload w(TextAlgorithm::WordCount, StackKind::Hadoop,
                       scale);
        MapReduceConfig cfg;
        cfg.useCombiner = true;
        cfg.codeScale = cs;
        w.setHadoopConfig(cfg);
        WorkloadRun run = profileWorkload(w, machine);
        ab.cell(formatFixed(cs, 2))
            .cell(run.report.ipc, 2)
            .cell(run.report.l1iMpki, 1)
            .cell(run.report.frontendStallRatio, 2);
        ab.endRow();
    }
    ab.print(std::cout);
    return 0;
}
