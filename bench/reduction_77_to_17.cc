/**
 * @file
 * Section 3 — the WCRT reduction study: profile all 77 roster
 * workloads, collect the 45 metrics each, normalize, PCA, K-means,
 * and report the 17 clusters with their representatives, plus a
 * cluster-quality sweep over k and the PCA variance-retention
 * ablation the DESIGN calls out.
 *
 * This bench is the paper's primary contribution end-to-end.
 */

#include <map>

#include <fstream>

#include "bench_common.hh"
#include "core/analyzer.hh"
#include "core/report.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    // The roster pass runs 77 workloads; a smaller per-workload scale
    // keeps the full study tractable.
    double scale = benchScale() * 0.5;
    MachineConfig machine = xeonE5645();
    std::cout << "=== Section 3: reducing 77 workloads to 17 (scale "
              << scale << ") ===\n\nProfiling the roster";
    std::cout.flush();

    // Record-once/replay-many: each roster workload executes at most
    // once into the trace cache ("." = captured, "+" = cache hit);
    // the 77 profiles then replay from disk in parallel.
    auto entries = filtered(fullRoster());
    TraceCache &cache = benchTraceCache();
    std::vector<std::string> names;
    std::vector<std::string> paths;
    for (const auto &entry : entries) {
        bool captured = false;
        paths.push_back(cache.ensure(
            entry.name, scale, [&] { return entry.make(scale); },
            &captured));
        names.push_back(entry.name);
        std::cout << (captured ? "." : "+") << std::flush;
    }
    std::vector<MetricVector> metrics;
    for (const auto &run :
         profileTraces(paths, machine, {}, benchOptions().jobs))
        metrics.push_back(run.metrics);
    std::cout << " done (" << names.size() << " workloads, "
              << numMetrics << " metrics each)\n\n";

    AnalyzerOptions opts;
    opts.clusters = 17;
    SubsetReport report = reduceWorkloads(names, metrics, opts);

    std::cout << "PCA retained " << report.retainedComponents
              << " components explaining "
              << formatFixed(report.explainedVariance * 100, 1)
              << "% of variance\n";
    std::cout << "K-means (k=17): WCSS " << formatFixed(report.wcss, 1)
              << ", silhouette "
              << formatFixed(report.silhouetteScore, 3) << "\n\n";

    Table t({"cluster", "size", "representative", "members (sample)"});
    for (const auto &c : report.clusters) {
        std::string sample;
        for (size_t i = 0; i < c.members.size() && i < 4; ++i) {
            if (i)
                sample += ", ";
            sample += c.members[i];
        }
        if (c.members.size() > 4)
            sample += ", ...";
        t.cell(static_cast<uint64_t>(c.id + 1))
            .cell(static_cast<uint64_t>(c.members.size()))
            .cell(c.representative)
            .cell(sample);
        t.endRow();
    }
    t.print(std::cout);

    std::cout << "\n";
    printPcaScatter(std::cout, report, names);
    std::cout << "\n=== Per-cluster defining traits (z-scores vs "
                 "roster mean) ===\n\n";
    printClusterProfiles(std::cout, report, names, metrics);

    if (const char *csv = std::getenv("WCRT_CSV")) {
        std::ofstream out(csv);
        writeMetricsCsv(out, names, metrics);
        std::cout << "\n(wrote the 77x45 metric matrix to " << csv
                  << ")\n";
    }

    // Do the representatives span the stacks and categories the way
    // Table 2 does?
    std::map<std::string, int> stack_count;
    for (const auto &rep : report.representatives()) {
        stack_count[rep.substr(0, 2)]++;
    }
    std::cout << "\nRepresentative prefixes: ";
    for (const auto &[prefix, count] : stack_count)
        std::cout << prefix << "x" << count << " ";
    std::cout << "\n";

    // Ablation 1: cluster quality vs k.
    std::cout << "\n=== Ablation: cluster count ===\n\n";
    Table kk({"k", "WCSS", "silhouette"});
    for (size_t k : {8, 12, 17, 22}) {
        AnalyzerOptions o;
        o.clusters = k;
        SubsetReport r = reduceWorkloads(names, metrics, o);
        kk.cell(static_cast<uint64_t>(k))
            .cell(r.wcss, 1)
            .cell(r.silhouetteScore, 3);
        kk.endRow();
    }
    kk.print(std::cout);

    // Ablation 2: PCA variance retention.
    std::cout << "\n=== Ablation: PCA variance target ===\n\n";
    Table pv({"target", "PCs", "explained", "silhouette(k=17)"});
    for (double target : {0.7, 0.8, 0.9, 0.99}) {
        AnalyzerOptions o;
        o.clusters = 17;
        o.pcaVarianceTarget = target;
        SubsetReport r = reduceWorkloads(names, metrics, o);
        pv.cell(formatFixed(target, 2))
            .cell(static_cast<uint64_t>(r.retainedComponents))
            .cell(r.explainedVariance, 3)
            .cell(r.silhouetteScore, 3);
        pv.endRow();
    }
    pv.print(std::cout);
    return 0;
}
