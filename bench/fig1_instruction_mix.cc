/**
 * @file
 * Figure 1 — the retired-instruction breakdown of every workload and
 * comparison suite, plus the paper's Section 5.1 headline numbers:
 * big data branch ratio ~18.7%, integer ratio ~38%, the FP-capacity
 * waste (achieved vs peak GFLOPS) and the category/behaviour
 * sub-averages.
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Figure 1: instruction mix on " << machine.name
              << " (scale " << scale << ") ===\n\n";

    auto reps = runRepresentatives(machine, scale);
    auto baselines = runBaselines(machine, scale);

    Table t({"workload", "branch%", "load%", "store%", "integer%",
             "fp%", "other%"});
    auto row = [&](const std::string &name, const CpuReport &r) {
        t.cell(name)
            .cell(r.branchRatio * 100, 1)
            .cell(r.loadRatio * 100, 1)
            .cell(r.storeRatio * 100, 1)
            .cell(r.integerRatio * 100, 1)
            .cell(r.fpRatio * 100, 1)
            .cell(r.otherRatio * 100, 1);
        t.endRow();
    };
    for (const auto &run : reps)
        row(run.name, run.report);
    for (const auto &[suite, run] : baselines)
        row(suite, run.report);
    t.print(std::cout);

    auto branch = [](const WorkloadRun &r) {
        return r.report.branchRatio * 100;
    };
    auto integer = [](const WorkloadRun &r) {
        return r.report.integerRatio * 100;
    };

    std::cout << "\n--- Section 5.1 headline numbers ---\n";
    std::cout << "big data avg branch ratio:  "
              << formatFixed(average(reps, branch), 1)
              << "%   (paper: 18.7%)\n";
    std::cout << "big data avg integer ratio: "
              << formatFixed(average(reps, integer), 1)
              << "%   (paper: 38%)\n";

    auto dm = [](const WorkloadRun &r) {
        return r.report.dataMovementRatio * 100;
    };
    auto dmb = [](const WorkloadRun &r) {
        return r.report.dataMovementWithBranchRatio * 100;
    };
    std::cout << "data movement (ld/st+addr): "
              << formatFixed(average(reps, dm), 1)
              << "%   (paper: ~73%)\n";
    std::cout << "  ... including branches:   "
              << formatFixed(average(reps, dmb), 1)
              << "%   (paper: ~92%)\n";

    std::cout << "\nBy application category (branch% / integer%):\n";
    for (auto cat :
         {AppCategory::Service, AppCategory::DataAnalysis,
          AppCategory::InteractiveAnalysis}) {
        std::cout << "  " << toString(cat) << ": "
                  << formatFixed(averageByCategory(reps, cat, branch), 1)
                  << "% / "
                  << formatFixed(averageByCategory(reps, cat, integer),
                                 1)
                  << "%\n";
    }
    std::cout << "By system behaviour (branch% / integer%):\n";
    for (auto b :
         {SystemBehavior::CpuIntensive, SystemBehavior::IoIntensive,
          SystemBehavior::Hybrid}) {
        std::cout << "  " << toString(b) << ": "
                  << formatFixed(averageByBehavior(reps, b, branch), 1)
                  << "% / "
                  << formatFixed(averageByBehavior(reps, b, integer), 1)
                  << "%\n";
    }

    // FP capacity implication: achieved GFLOPS vs machine peak.
    double peak = machine.core.frequencyGhz * machine.core.cores * 4.0;
    auto gflops = [](const WorkloadRun &r) { return r.report.gflops; };
    std::cout << "\nFP capacity: big data avg "
              << formatFixed(average(reps, gflops), 3)
              << " GFLOPS achieved vs " << formatFixed(peak, 1)
              << " GFLOPS peak (paper: ~0.1 vs 57.6)\n";
    return 0;
}
