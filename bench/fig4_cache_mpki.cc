/**
 * @file
 * Figure 4 — L1I / L2 / L3 cache MPKI for every workload and suite
 * (plus the Table 3 machine configuration header), with the paper's
 * Section 5.3 comparison points: big data L1I avg ~15 (service ~51,
 * CloudSuite ~32), L2 avg ~11 (service ~32), L3 avg ~1.2 (lowest of
 * all suites).
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();
    MachineConfig m = xeonE5645();

    std::cout << "=== Table 3: node configuration ===\n";
    Table cfg({"component", "value"});
    cfg.cell("CPU type").cell(m.name).endRow();
    cfg.cell("cores").cell(std::to_string(m.core.cores) + " @ " +
                           formatFixed(m.core.frequencyGhz, 2) + " GHz");
    cfg.endRow();
    cfg.cell("L1 DCache").cell(std::to_string(m.l1d.sizeBytes / 1024) +
                               " KB, " + std::to_string(m.l1d.assoc) +
                               "-way");
    cfg.endRow();
    cfg.cell("L1 ICache").cell(std::to_string(m.l1i.sizeBytes / 1024) +
                               " KB, " + std::to_string(m.l1i.assoc) +
                               "-way");
    cfg.endRow();
    cfg.cell("L2 Cache").cell(std::to_string(m.l2.sizeBytes / 1024) +
                              " KB, " + std::to_string(m.l2.assoc) +
                              "-way");
    cfg.endRow();
    cfg.cell("L3 Cache").cell(
        std::to_string(m.l3.sizeBytes / 1024 / 1024) + " MB, " +
        std::to_string(m.l3.assoc) + "-way");
    cfg.endRow();
    cfg.print(std::cout);

    std::cout << "\n=== Figure 4: cache MPKI (scale " << scale
              << ") ===\n\n";

    auto reps = runRepresentatives(m, scale);
    auto mpi = runMpiSuite(m, scale);
    auto baselines = runBaselines(m, scale);

    Table t({"workload", "L1I", "L1D", "L2", "L3"});
    auto row = [&](const std::string &name, const CpuReport &r) {
        t.cell(name)
            .cell(r.l1iMpki, 2)
            .cell(r.l1dMpki, 2)
            .cell(r.l2Mpki, 2)
            .cell(r.l3Mpki, 2);
        t.endRow();
    };
    for (const auto &run : reps)
        row(run.name, run.report);
    for (const auto &run : mpi)
        row(run.name, run.report);
    for (const auto &[suite, run] : baselines)
        row(suite, run.report);
    t.print(std::cout);

    auto l1i = [](const WorkloadRun &r) { return r.report.l1iMpki; };
    auto l2 = [](const WorkloadRun &r) { return r.report.l2Mpki; };
    auto l3 = [](const WorkloadRun &r) { return r.report.l3Mpki; };

    std::cout << "\n--- Section 5.3 comparison ---\n";
    std::cout << "big data avg L1I MPKI: "
              << formatFixed(average(reps, l1i), 1)
              << "   (paper: 15, CloudSuite 32)\n";
    std::cout << "big data avg L2 MPKI:  "
              << formatFixed(average(reps, l2), 1) << "   (paper: 11)\n";
    std::cout << "big data avg L3 MPKI:  "
              << formatFixed(average(reps, l3), 2)
              << "   (paper: 1.2, lowest of all suites)\n";

    std::cout << "\nBy application category (L1I / L2 / L3):\n";
    for (auto cat :
         {AppCategory::Service, AppCategory::DataAnalysis,
          AppCategory::InteractiveAnalysis}) {
        std::cout << "  " << toString(cat) << ": "
                  << formatFixed(averageByCategory(reps, cat, l1i), 1)
                  << " / "
                  << formatFixed(averageByCategory(reps, cat, l2), 1)
                  << " / "
                  << formatFixed(averageByCategory(reps, cat, l3), 2)
                  << (cat == AppCategory::Service
                          ? "   (paper: 51 / 32 / 1.2)"
                          : "")
                  << "\n";
    }
    std::cout << "By system behaviour (L1I / L2 / L3):\n";
    for (auto b :
         {SystemBehavior::CpuIntensive, SystemBehavior::IoIntensive,
          SystemBehavior::Hybrid}) {
        std::cout << "  " << toString(b) << ": "
                  << formatFixed(averageByBehavior(reps, b, l1i), 1)
                  << " / "
                  << formatFixed(averageByBehavior(reps, b, l2), 1)
                  << " / "
                  << formatFixed(averageByBehavior(reps, b, l3), 2)
                  << "\n";
    }

    // Section 5.5 contrast.
    std::cout << "\nMPI avg L1I MPKI "
              << formatFixed(average(mpi, l1i), 1)
              << " vs JVM-stack big data "
              << formatFixed(average(reps, l1i), 1)
              << "   (paper: 3.4 vs 12.6)\n";
    return 0;
}
