/**
 * @file
 * Figure 3 — IPC of every workload and suite average on the E5645
 * model, with the paper's Section 5.2 comparison points: big data avg
 * ~1.28, PARSEC ~1.28, SPECFP ~1.1, SPECINT ~0.9, HPCC ~1.5, service
 * workloads lowest (H-Read ~0.8), query workloads up to ~1.7, plus
 * the MPI-vs-JVM IPC gap of Section 5.5 (~21%).
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Figure 3: IPC on " << machine.name << " (scale "
              << scale << ") ===\n\n";

    auto reps = runRepresentatives(machine, scale);
    auto mpi = runMpiSuite(machine, scale);
    auto baselines = runBaselines(machine, scale);

    Table t({"workload", "IPC", "frontend-stall", "backend-stall"});
    auto row = [&](const std::string &name, const CpuReport &r) {
        t.cell(name)
            .cell(r.ipc, 2)
            .cell(r.frontendStallRatio, 2)
            .cell(r.backendStallRatio, 2);
        t.endRow();
    };
    for (const auto &run : reps)
        row(run.name, run.report);
    for (const auto &run : mpi)
        row(run.name, run.report);
    for (const auto &[suite, run] : baselines)
        row(suite, run.report);
    t.print(std::cout);

    auto ipc = [](const WorkloadRun &r) { return r.report.ipc; };
    std::cout << "\n--- Section 5.2 comparison ---\n";
    std::cout << "big data avg IPC: " << formatFixed(average(reps, ipc), 2)
              << "   (paper: 1.28)\n";
    for (const auto &[suite, run] : baselines)
        std::cout << suite << " IPC: " << formatFixed(run.report.ipc, 2)
                  << "\n";

    std::cout << "\nBy application category:\n";
    for (auto cat :
         {AppCategory::Service, AppCategory::DataAnalysis,
          AppCategory::InteractiveAnalysis}) {
        std::cout << "  " << toString(cat) << ": "
                  << formatFixed(averageByCategory(reps, cat, ipc), 2)
                  << "\n";
    }
    std::cout << "By system behaviour:\n";
    for (auto b :
         {SystemBehavior::CpuIntensive, SystemBehavior::IoIntensive,
          SystemBehavior::Hybrid}) {
        std::cout << "  " << toString(b) << ": "
                  << formatFixed(averageByBehavior(reps, b, ipc), 2)
                  << "\n";
    }

    // Section 5.5: the MPI vs JVM-stack IPC gap.
    double mpi_avg = average(mpi, ipc);
    double jvm_avg = average(reps, ipc);
    std::cout << "\nMPI avg IPC " << formatFixed(mpi_avg, 2)
              << " vs big data avg " << formatFixed(jvm_avg, 2)
              << " -> gap "
              << formatFixed((mpi_avg - jvm_avg) / mpi_avg * 100, 0)
              << "%   (paper: 1.4 vs 1.16, 21%)\n";
    return 0;
}
