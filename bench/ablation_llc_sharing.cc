/**
 * @file
 * Ablation — shared-LLC interference between big data workloads.
 *
 * The paper's metric set includes off-core requests and snoop
 * responses, and its related work (Tang et al., ISCA'11) measures how
 * sharing the memory subsystem degrades datacenter applications. This
 * bench quantifies it with the co-run model: each pair of workloads
 * shares the E5645's 12 MB L3, and the table reports each side's L3
 * MPKI solo vs shared, plus cross-lane snoop hits.
 */

#include "bench_common.hh"
#include "sim/corun.hh"

using namespace wcrt;
using namespace wcrt::bench;

namespace {

std::vector<MicroOp>
record(const char *name, double scale)
{
    WorkloadPtr w = findWorkload(name).make(scale);
    TraceRecorder recorder;
    runThroughSink(*w, recorder);
    return recorder.trace();
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesNone);
    double scale = benchScale() * 0.5;
    std::cout << "=== Ablation: shared-L3 co-run interference (scale "
              << scale << ") ===\n\n";

    struct Pair
    {
        const char *a;
        const char *b;
    };
    const Pair pairs[] = {
        {"H-Read", "H-WordCount"},    // service + analytics
        {"S-WordCount", "S-Sort"},    // two JVM analytics
        {"M-WordCount", "M-Sort"},    // two thin-stack analytics
    };

    // At MB-scale inputs the full 12 MB L3 holds both working sets, so
    // the interesting sweep is the shared capacity: the paper-class
    // contention appears once the co-runners overflow the LLC.
    for (uint64_t l3_mb : {12ull, 3ull, 1ull}) {
        MachineConfig machine = xeonE5645();
        machine.l3.sizeBytes = l3_mb * 1024 * 1024;
        std::cout << "--- shared L3 = " << l3_mb << " MB ---\n";
        Table t({"pair", "lane", "solo L3 MPKI", "co-run L3 MPKI",
                 "degradation", "snoop evictions"});
        for (const auto &pair : pairs) {
            auto trace_a = record(pair.a, scale);
            auto trace_b = record(pair.b, scale);
            CoRunResult r = coRun(machine, trace_a, trace_b);

            std::string label =
                std::string(pair.a) + " + " + pair.b;
            t.cell(label)
                .cell(pair.a)
                .cell(r.a.soloL3Mpki(), 2)
                .cell(r.a.sharedL3Mpki(), 2)
                .cell(r.a.degradation(), 2)
                .cell(r.snoopHits);
            t.endRow();
            t.cell("")
                .cell(pair.b)
                .cell(r.b.soloL3Mpki(), 2)
                .cell(r.b.sharedL3Mpki(), 2)
                .cell(r.b.degradation(), 2)
                .cell(std::string(""));
            t.endRow();
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Degradation > 1 means the co-runner evicted this "
                 "workload's L3 lines — the resource-sharing effect the "
                 "off-core metrics capture. At the E5645's full 12 MB "
                 "the MB-scale working sets co-exist; contention "
                 "emerges as the shared capacity shrinks.\n";
    return 0;
}
