/**
 * @file
 * Figure 5 — ITLB / DTLB MPKI for every workload and suite, with the
 * paper's comparison points: big data ITLB avg ~0.05 (service ~0.2),
 * DTLB avg ~0.9 (service ~1.8).
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Figure 5: TLB MPKI (scale " << scale << ") ===\n\n";

    auto reps = runRepresentatives(machine, scale);
    auto baselines = runBaselines(machine, scale);

    Table t({"workload", "ITLB", "DTLB"});
    auto row = [&](const std::string &name, const CpuReport &r) {
        t.cell(name).cell(r.itlbMpki, 3).cell(r.dtlbMpki, 3);
        t.endRow();
    };
    for (const auto &run : reps)
        row(run.name, run.report);
    for (const auto &[suite, run] : baselines)
        row(suite, run.report);
    t.print(std::cout);

    auto itlb = [](const WorkloadRun &r) { return r.report.itlbMpki; };
    auto dtlb = [](const WorkloadRun &r) { return r.report.dtlbMpki; };

    std::cout << "\nbig data avg ITLB MPKI: "
              << formatFixed(average(reps, itlb), 3)
              << "   (paper: 0.05)\n";
    std::cout << "big data avg DTLB MPKI: "
              << formatFixed(average(reps, dtlb), 3)
              << "   (paper: 0.9)\n";

    std::cout << "\nBy application category (ITLB / DTLB):\n";
    for (auto cat :
         {AppCategory::Service, AppCategory::DataAnalysis,
          AppCategory::InteractiveAnalysis}) {
        std::cout << "  " << toString(cat) << ": "
                  << formatFixed(averageByCategory(reps, cat, itlb), 3)
                  << " / "
                  << formatFixed(averageByCategory(reps, cat, dtlb), 3)
                  << "\n";
    }
    std::cout << "By system behaviour (ITLB / DTLB):\n";
    for (auto b :
         {SystemBehavior::CpuIntensive, SystemBehavior::IoIntensive,
          SystemBehavior::Hybrid}) {
        std::cout << "  " << toString(b) << ": "
                  << formatFixed(averageByBehavior(reps, b, itlb), 3)
                  << " / "
                  << formatFixed(averageByBehavior(reps, b, dtlb), 3)
                  << "\n";
    }
    return 0;
}
