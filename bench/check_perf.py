#!/usr/bin/env python3
"""Perf-regression gate over micro_sim_throughput JSON output.

Compares a current benchmark run against the committed baseline
(bench/baseline.json) and fails when any throughput row regresses by
more than the allowed fraction.

CI runners are not the machine the baseline was recorded on and their
absolute speed varies run to run, so raw ops/s comparisons would flake
constantly. Instead every row is normalised by a same-run reference row
(BM_CacheAccess): the *relative* throughput of, say, BM_TraceRead vs
the cache model is a property of the code, not of the runner. The gate
fails only when

    current_rel(name) < (1 - threshold) * baseline_rel(name)

with current_rel(name) = items_per_second(name) / items_per_second(ref)
measured within the same JSON file.

Rows present in the current run but absent from the baseline fail the
gate (pass --allow-new to warn instead): a benchmark that never joins
the baseline is a benchmark the gate silently ignores forever. A row
whose rate is zero is always a regression, not a skip.

Several current files may be given (micro_sim_throughput plus
service_latency): their rows are merged into one run before the
comparison, with the reference row taken from whichever file carries
it. Row names must be disjoint across files.

The gate reports *every* problem it finds — structural issues
(unreadable files, duplicate rows, a missing reference row) and all
regressed rows alike — in a single run, so one CI round trip shows the
full damage instead of the first failure only.

Usage:
    check_perf.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                  [--threshold 0.25] [--allow-new]
"""

import argparse
import json
import sys

REFERENCE = "BM_CacheAccess"


def load_rates(path, problems):
    """Map benchmark name -> items_per_second for rows that report it.

    A row reporting an explicit 0 is kept (it means the benchmark
    collapsed, which the gate must flag); only rows that do not report
    items_per_second at all (e.g. wall-time-only analyses) are skipped.
    An unreadable or malformed file becomes a problem entry and an
    empty map, so the remaining files are still checked.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        problems.append(f"{path}: cannot load: {err}")
        return {}
    rates = {}
    for row in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if present.
        if row.get("run_type") == "aggregate":
            continue
        ips = row.get("items_per_second")
        if ips is not None:
            rates[row["name"]] = float(ips)
    return rates


def relative(rates, label, problems):
    """Normalise by the reference row; None when that row is unusable."""
    ref = rates.get(REFERENCE)
    if not ref:
        problems.append(
            f"{label}: reference row {REFERENCE} missing or zero")
        return None
    return {name: ips / ref for name, ips in rates.items()
            if name != REFERENCE}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--allow-new", action="store_true",
                        help="warn instead of fail on rows missing "
                             "from the baseline")
    args = parser.parse_args()

    problems = []
    base = relative(load_rates(args.baseline, problems),
                    args.baseline, problems)

    cur_rates = {}
    for path in args.current:
        for name, ips in load_rates(path, problems).items():
            if name in cur_rates:
                problems.append(
                    f"{name}: appears in more than one current file")
                continue
            cur_rates[name] = ips
    cur = relative(cur_rates, "current run", problems)

    if base is not None and cur is not None:
        width = max(len(n) for n in base) if base else 0
        print(f"{'benchmark':<{width}}  base-rel  cur-rel   ratio")
        for name in sorted(base):
            if name not in cur:
                problems.append(f"{name}: missing from current run")
                continue
            if base[name] == 0.0:
                problems.append(f"{name}: baseline rate is zero; "
                                f"re-record the baseline")
                continue
            ratio = cur[name] / base[name]
            flag = ""
            if cur[name] == 0.0 or ratio < 1.0 - args.threshold:
                problems.append(
                    f"{name}: relative throughput {ratio:.2f}x of "
                    f"baseline (limit {1.0 - args.threshold:.2f}x)")
                flag = "  << REGRESSION"
            print(f"{name:<{width}}  {base[name]:8.3f}  "
                  f"{cur[name]:8.3f}  {ratio:5.2f}x{flag}")

        for name in sorted(set(cur) - set(base)):
            if args.allow_new:
                print(f"warning: {name} not in baseline "
                      f"(cur-rel {cur[name]:.3f}); add it",
                      file=sys.stderr)
            else:
                problems.append(
                    f"{name}: not in baseline — re-record the baseline "
                    f"or pass --allow-new")

    if problems:
        print(f"\nperf gate FAILED ({len(problems)} problem"
              f"{'s' if len(problems) != 1 else ''}):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(base)} rows, "
          f"threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
