/**
 * @file
 * Command-line front end for `.wtrace` files:
 *
 *     trace_tool record <workload> <out.wtrace> [--scale=S]
 *     trace_tool stats  <file.wtrace>
 *     trace_tool dump   <file.wtrace> [--limit=N]
 *     trace_tool replay <file.wtrace> [--machine=LIST] [--jobs=N]
 *     trace_tool mrc    <file.wtrace> [--kind=K] [--mode=M]
 *                       [--sizes=CSV] [--assoc=N] [--line=N]
 *                       [--jobs=N] [--json]
 *     trace_tool serve  <workload>[,<workload>...] --ring=NAME
 *                       [--scale=S] [--ring-kb=KB] [--policy=P]
 *                       [--timeout-ms=T] [--wait-ms=T]
 *                       [--heartbeat-ms=T]
 *     trace_tool attach --ring=NAME [--producers=N] [--machine=LIST]
 *                       [--mrc] [--kind=K] [--sizes=CSV] [--line=N]
 *                       [--jobs=N] [--timeout-ms=T]
 *
 * Every command also accepts `--io=auto|stream|mmap` and
 * `--verify-crc=always|once|never`, which set the process-wide
 * ReaderOptions before any trace is opened (see
 * tracefile/trace_source.hh for the trust ladder).
 *
 * `record` executes one roster workload and captures its op stream;
 * `stats` prints the header/footer accounting, chunk layout,
 * compression ratio and the MixCounter op-mix table from a replay;
 * `dump` prints the first N decoded ops; `replay` fans the trace
 * across machine configs in parallel and prints one report row each;
 * `mrc` computes the miss-ratio curve over a capacity ladder through
 * the replay layer's MrcMode plumbing — the single-pass
 * stack-distance profile by default, the per-rung set-associative
 * oracle, or both (verify) with the divergence per rung — as a table
 * or machine-readable JSON.
 *
 * `serve` and `attach` are the cross-process pair (the shm ring
 * transport, docs/SHM_TRANSPORT.md): `serve` executes workloads and
 * streams their encoded ops into per-workload shared-memory rings
 * (NAME for one workload, NAME.0..NAME.N-1 for N), and `attach` —
 * run in another shell, in any order relative to serve — drains each
 * ring and analyzes the stream with the same replay machinery the
 * file commands use: the machine-config table by default, the
 * stack-distance MRC under `--mrc`.
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/profiler.hh"
#include "sim/stack_distance.hh"
#include "trace/mix_counter.hh"
#include "tracefile/capture.hh"
#include "tracefile/replay.hh"
#include "tracefile/shm_ring.hh"
#include "tracefile/trace_reader.hh"
#include "tracefile/trace_source.hh"
#include "workloads/registry.hh"

using namespace wcrt;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  trace_tool record <workload> <out.wtrace> [--scale=S]\n"
           "  trace_tool stats  <file.wtrace>\n"
           "  trace_tool dump   <file.wtrace> [--limit=N]\n"
           "  trace_tool replay <file.wtrace> [--machine=LIST]"
           " [--jobs=N]\n"
           "  trace_tool mrc    <file.wtrace> [--kind=K] [--mode=M]\n"
           "                    [--sizes=CSV] [--assoc=N] [--line=N]\n"
           "                    [--jobs=N] [--json]\n"
           "  trace_tool serve  <workload>[,<workload>...] --ring=NAME\n"
           "                    [--scale=S] [--ring-kb=KB] [--policy=P]\n"
           "                    [--timeout-ms=T] [--wait-ms=T]\n"
           "                    [--heartbeat-ms=T]\n"
           "  trace_tool attach --ring=NAME [--producers=N]\n"
           "                    [--machine=LIST] [--mrc] [--kind=K]\n"
           "                    [--sizes=CSV] [--line=N] [--jobs=N]\n"
           "                    [--timeout-ms=T]\n"
           "\n"
           "  --machine=LIST  comma-separated subset of: xeon, atom,\n"
           "                  sim<KB> (e.g. sim32); default xeon,atom\n"
           "  --ring=NAME     shm ring name; N workloads/producers use\n"
           "                  NAME.0 .. NAME.N-1\n"
           "  --ring-kb=KB    ring data capacity per producer\n"
           "                  (default 1024, rounded to a power of 2)\n"
           "  --policy=P      producer backpressure: block (default,\n"
           "                  lossless) or drop (lossy, non-blocking)\n"
           "  --producers=N   rings to drain (default 1)\n"
           "  --timeout-ms=T  serve: drain timeout after streaming;\n"
           "                  attach: ring-appearance timeout\n"
           "                  (default 10000)\n"
           "  --wait-ms=T     serve: max wait for the first analyzer\n"
           "                  when a full ring blocks capture before\n"
           "                  anyone has attached (default 120000)\n"
           "  --heartbeat-ms=T serve: peer-death threshold stored in\n"
           "                  the ring superblock (default 2000)\n"
           "  --kind=K        instr (default), data or unified\n"
           "  --mode=M        stack (default), oracle or verify\n"
           "  --sizes=CSV     capacity ladder in KB (default: the\n"
           "                  paper's 16..8192 doubling ladder)\n"
           "  --assoc=N       oracle associativity (default 8)\n"
           "  --line=N        line bytes (default 64)\n"
           "  --io=M          trace transport for any command: auto\n"
           "                  (default; mmap when available), stream,\n"
           "                  mmap\n"
           "  --verify-crc=M  chunk CRC policy: always (default), once\n"
           "                  (skip re-verifying traces this process\n"
           "                  already validated), never\n"
           "  (run any bench binary with --list for workload names)\n";
    return 2;
}

/** Value of `--name=V` or `--name V`, or null when `arg` is not it. */
const char *
flagValue(const char *arg, const char *name, int argc, char **argv,
          int &i)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return nullptr;
    if (arg[n] == '=')
        return arg + n + 1;
    if (arg[n] == '\0' && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

/**
 * Strictly parse a numeric flag value into [min, max], fatal on
 * anything else — strtoull would silently wrap "--producers=-1" into
 * ~1.8e19 and drive allocations with it.
 */
uint64_t
parseCount(const char *flag, const char *value, uint64_t min,
           uint64_t max)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(value, &end, 10);
    if (*value == '\0' || *end != '\0' || value[0] == '-' ||
        errno == ERANGE || v < min || v > max)
        wcrt_fatal("bad ", flag, " '", value, "' (expected ", min,
                   "..", max, ")");
    return v;
}

const char *
layerName(CodeLayer layer)
{
    switch (layer) {
      case CodeLayer::Kernel: return "kernel";
      case CodeLayer::Runtime: return "runtime";
      case CodeLayer::Framework: return "framework";
      case CodeLayer::Library: return "library";
      case CodeLayer::Application: return "application";
    }
    return "?";
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::string name = argv[2];
    std::string out = argv[3];
    double scale = 1.0;
    for (int i = 4; i < argc; ++i) {
        if (const char *v = flagValue(argv[i], "--scale", argc, argv, i))
            scale = std::atof(v);
        else
            return usage();
    }

    const WorkloadEntry &entry = findWorkload(name);
    WorkloadPtr w = entry.make(scale);
    CaptureResult res = captureTrace(*w, out, scale);
    std::cout << "recorded " << name << " (scale " << scale << "): "
              << res.ops << " ops, " << res.fileBytes << " bytes -> "
              << out << "\n";
    return 0;
}

int
cmdStats(const std::string &path)
{
    TraceReader reader(path);
    const TraceMeta &meta = reader.meta();

    std::cout << "=== " << path << " ===\n\n";
    std::cout << "workload:       " << meta.workload << " ("
              << toString(meta.stackKind) << ", "
              << toString(meta.category) << ", scale " << meta.scale
              << ")\n";
    std::cout << "ops:            " << reader.opCount() << "\n";
    std::cout << "file size:      " << reader.fileBytes() << " bytes ("
              << reader.chunkCount() << " chunks)\n";
    std::cout << "io:             " << reader.ioName()
              << ", verify-crc "
              << toString(reader.options().crc) << "\n";
    std::cout << "payload:        " << reader.payloadBytes()
              << " bytes, " << formatFixed(reader.bytesPerOp(), 3)
              << " bytes/op\n";
    std::cout << "compression:    "
              << formatFixed(static_cast<double>(sizeof(MicroOp)) /
                                 std::max(reader.bytesPerOp(), 1e-9),
                             1)
              << "x vs in-memory MicroOp (" << sizeof(MicroOp)
              << " bytes)\n";

    std::cout << "\n--- region table ---\n";
    std::map<CodeLayer, std::pair<uint64_t, uint64_t>> by_layer;
    for (const auto &fn : reader.regions()) {
        by_layer[fn.layer].first++;
        by_layer[fn.layer].second += fn.bytes;
    }
    Table rt({"layer", "functions", "code bytes"});
    for (const auto &[layer, stat] : by_layer) {
        rt.cell(layerName(layer)).cell(stat.first).cell(stat.second);
        rt.endRow();
    }
    rt.print(std::cout);
    std::cout << "total static code: " << reader.regionBytes()
              << " bytes across " << reader.regions().size()
              << " functions\n";

    MixCounter mix;
    reader.replayInto(mix);
    std::cout << "\n--- op mix (replayed through MixCounter) ---\n";
    Table mt({"class", "share"});
    auto pct = [](double r) { return formatFixed(r * 100, 2) + "%"; };
    mt.cell("load").cell(pct(mix.loadRatio())); mt.endRow();
    mt.cell("store").cell(pct(mix.storeRatio())); mt.endRow();
    mt.cell("branch").cell(pct(mix.branchRatio())); mt.endRow();
    mt.cell("integer").cell(pct(mix.integerRatio())); mt.endRow();
    mt.cell("fp").cell(pct(mix.fpRatio())); mt.endRow();
    mt.cell("other").cell(pct(mix.otherRatio())); mt.endRow();
    mt.print(std::cout);
    std::cout << "data movement: " << pct(mix.dataMovementRatio())
              << " (with branches: "
              << pct(mix.dataMovementWithBranchRatio()) << ")\n";

    const IoCounters &io = reader.io();
    std::cout << "\n--- captured run accounting ---\n"
              << "disk read/write:    " << io.diskReadBytes << " / "
              << io.diskWriteBytes << " bytes\n"
              << "network:            " << io.networkBytes << " bytes\n";
    return 0;
}

/** Prints the first `limit` ops, then counts the rest. */
class DumpSink : public TraceSink
{
  public:
    explicit DumpSink(uint64_t limit) : limit(limit) {}

    void
    consume(const MicroOp &op) override
    {
        if (seen++ >= limit)
            return;
        std::cout << seen - 1 << ": " << toString(op.kind)
                  << " pc=0x" << std::hex << op.pc << std::dec;
        if (op.memSize > 0 || op.memAddr != 0)
            std::cout << " mem=0x" << std::hex << op.memAddr << std::dec
                      << "+" << static_cast<unsigned>(op.memSize);
        if (op.target != 0)
            std::cout << " target=0x" << std::hex << op.target
                      << std::dec << (op.taken ? " taken" : " not-taken");
        std::cout << "\n";
    }

    uint64_t seen = 0;

  private:
    uint64_t limit;
};

int
cmdDump(const std::string &path, uint64_t limit)
{
    TraceReader reader(path);
    DumpSink sink(limit);
    reader.replayInto(sink);
    if (sink.seen > limit)
        std::cout << "... (" << sink.seen - limit << " more ops)\n";
    return 0;
}

/** Split "a,b,c" into tokens (no empties for trailing commas). */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    for (size_t pos = 0; pos < list.size();) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > pos)
            out.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Parse a --machine list ("" means the xeon,atom default). */
std::vector<MachineConfig>
parseMachineList(const std::string &machine_list)
{
    std::vector<MachineConfig> configs;
    std::string list = machine_list.empty() ? "xeon,atom" : machine_list;
    for (const std::string &tok : splitList(list)) {
        if (tok == "xeon")
            configs.push_back(xeonE5645());
        else if (tok == "atom")
            configs.push_back(atomD510());
        else if (tok.rfind("sim", 0) == 0)
            configs.push_back(atomInOrderSim(
                static_cast<uint32_t>(std::atoi(tok.c_str() + 3))));
        else
            wcrt_fatal("unknown machine '", tok,
                       "' (expected xeon, atom or sim<KB>)");
    }
    return configs;
}

/** Print the per-machine CpuReport table replay and attach share. */
void
printReplayTable(const std::vector<CpuReport> &reports)
{
    Table t({"machine", "IPC", "CPI", "L1I MPKI", "L1D MPKI", "L2 MPKI",
             "branch miss%"});
    for (const auto &r : reports) {
        t.cell(r.machine)
            .cell(r.ipc, 2)
            .cell(r.cpi, 2)
            .cell(r.l1iMpki, 1)
            .cell(r.l1dMpki, 1)
            .cell(r.l2Mpki, 1)
            .cell(r.branchMispredictRatio * 100, 1);
        t.endRow();
    }
    t.print(std::cout);
}

int
cmdReplay(const std::string &path, const std::string &machine_list,
          unsigned jobs)
{
    std::vector<MachineConfig> configs = parseMachineList(machine_list);

    TraceReader probe(path);
    std::cout << "replaying " << probe.meta().workload << " ("
              << probe.opCount() << " ops) on " << configs.size()
              << " configs, " << replayWorkers(jobs) << " workers\n\n";

    auto reports = replayOnConfigs(path, configs, jobs);
    printReplayTable(reports);
    return 0;
}

/** JSON string escape for the few meta fields mrc --json emits. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Full-precision double for JSON (tables round, JSON must not). */
std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

int
cmdMrc(int argc, char **argv)
{
    std::string path = argv[2];
    SweepKind kind = SweepKind::Instruction;
    std::string kind_name = "instr";
    MrcMode mode = MrcMode::StackDistance;
    std::vector<uint32_t> sizes = paperSweepSizesKb();
    uint32_t assoc = 8;
    uint32_t line_bytes = 64;
    unsigned jobs = 0;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        if (const char *v = flagValue(argv[i], "--kind", argc, argv, i)) {
            kind_name = v;
            if (kind_name == "instr")
                kind = SweepKind::Instruction;
            else if (kind_name == "data")
                kind = SweepKind::Data;
            else if (kind_name == "unified")
                kind = SweepKind::Unified;
            else
                wcrt_fatal("unknown --kind '", v,
                           "' (instr, data or unified)");
        } else if (const char *v2 =
                       flagValue(argv[i], "--mode", argc, argv, i)) {
            if (!parseMrcMode(v2, mode))
                wcrt_fatal("unknown --mode '", v2,
                           "' (stack, oracle or verify)");
        } else if (const char *v3 =
                       flagValue(argv[i], "--sizes", argc, argv, i)) {
            sizes.clear();
            std::string list = v3;
            for (size_t pos = 0; pos < list.size();) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                int kb = std::atoi(list.substr(pos, comma - pos).c_str());
                if (kb <= 0)
                    wcrt_fatal("bad --sizes entry in '", v3, "'");
                sizes.push_back(static_cast<uint32_t>(kb));
                pos = comma + 1;
            }
            if (sizes.empty())
                wcrt_fatal("--sizes needs at least one capacity");
        } else if (const char *v4 =
                       flagValue(argv[i], "--assoc", argc, argv, i)) {
            assoc = static_cast<uint32_t>(std::atoi(v4));
        } else if (const char *v5 =
                       flagValue(argv[i], "--line", argc, argv, i)) {
            line_bytes = static_cast<uint32_t>(std::atoi(v5));
        } else if (const char *v6 =
                       flagValue(argv[i], "--jobs", argc, argv, i)) {
            jobs = static_cast<unsigned>(std::atoi(v6));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else {
            return usage();
        }
    }

    TraceReader probe(path);
    std::string workload = probe.meta().workload;
    MrcResult r = replaySweepLadder(path, kind, sizes, mode, jobs,
                                    assoc, line_bytes);

    if (json) {
        std::cout << "{\n"
                  << "  \"trace\": \"" << jsonEscape(path) << "\",\n"
                  << "  \"workload\": \"" << jsonEscape(workload)
                  << "\",\n"
                  << "  \"kind\": \"" << kind_name << "\",\n"
                  << "  \"mode\": \"" << toString(mode) << "\",\n"
                  << "  \"assoc\": " << assoc << ",\n"
                  << "  \"line_bytes\": " << line_bytes << ",\n";
        auto emit_list = [](const char *name, auto &&fmt, size_t n,
                            bool last = false) {
            std::cout << "  \"" << name << "\": [";
            for (size_t i = 0; i < n; ++i)
                std::cout << (i ? ", " : "") << fmt(i);
            std::cout << "]" << (last ? "\n" : ",\n");
        };
        emit_list("sizes_kb",
                  [&](size_t i) { return std::to_string(sizes[i]); },
                  sizes.size());
        if (mode == MrcMode::Verify) {
            emit_list("miss_ratio",
                      [&](size_t i) { return jsonDouble(r.ratios[i]); },
                      r.ratios.size());
            emit_list("oracle_miss_ratio",
                      [&](size_t i) {
                          return jsonDouble(r.oracleRatios[i]);
                      },
                      r.oracleRatios.size());
            std::cout << "  \"max_divergence\": "
                      << jsonDouble(r.maxDivergence) << "\n";
        } else {
            emit_list("miss_ratio",
                      [&](size_t i) { return jsonDouble(r.ratios[i]); },
                      r.ratios.size(), /*last=*/true);
        }
        std::cout << "}\n";
        return 0;
    }

    std::cout << "miss-ratio curve of " << workload << " (" << kind_name
              << ", " << toString(mode) << " mode, line " << line_bytes
              << "B"
              << (mode == MrcMode::StackDistance
                      ? std::string(")")
                      : ", oracle " + std::to_string(assoc) + "-way)")
              << "\n\n";
    std::vector<std::string> header{"cache KB", "miss%"};
    if (mode == MrcMode::Verify) {
        header[1] = "stack miss%";
        header.push_back("oracle miss%");
        header.push_back("|gap|%");
    }
    Table t(header);
    for (size_t i = 0; i < sizes.size(); ++i) {
        t.cell(static_cast<uint64_t>(sizes[i]));
        t.cell(r.ratios[i] * 100.0, 3);
        if (mode == MrcMode::Verify) {
            t.cell(r.oracleRatios[i] * 100.0, 3);
            t.cell(std::abs(r.ratios[i] - r.oracleRatios[i]) * 100.0, 3);
        }
        t.endRow();
    }
    t.print(std::cout);
    if (mode == MrcMode::Verify)
        std::cout << "max |stack - oracle| divergence: "
                  << formatFixed(r.maxDivergence * 100, 3) << "%\n";
    return 0;
}

/** Per-producer ring name: NAME for one producer, NAME.i for many. */
std::string
ringNameAt(const std::string &base, size_t i, size_t n)
{
    return n == 1 ? base : base + "." + std::to_string(i);
}

int
cmdServe(int argc, char **argv)
{
    std::vector<std::string> workloads = splitList(argv[2]);
    if (workloads.empty())
        return usage();
    std::string ring_base;
    double scale = 1.0;
    uint64_t ring_kb = 1024;
    ShmPolicy policy = ShmPolicy::Block;
    uint64_t timeout_ms = 10000;
    uint64_t wait_ms = 120000;
    uint64_t heartbeat_ms = ShmRing::defaultHeartbeatTimeoutMs;
    for (int i = 3; i < argc; ++i) {
        if (const char *v = flagValue(argv[i], "--ring", argc, argv, i))
            ring_base = v;
        else if (const char *v2 =
                     flagValue(argv[i], "--scale", argc, argv, i))
            scale = std::atof(v2);
        else if (const char *v3 =
                     flagValue(argv[i], "--ring-kb", argc, argv, i))
            ring_kb = parseCount("--ring-kb", v3, 1, 1 << 20);
        else if (const char *v4 =
                     flagValue(argv[i], "--policy", argc, argv, i)) {
            if (!parseShmPolicy(v4, policy))
                wcrt_fatal("unknown --policy '", v4,
                           "' (block or drop)");
        } else if (const char *v5 = flagValue(argv[i], "--timeout-ms",
                                              argc, argv, i)) {
            timeout_ms = parseCount("--timeout-ms", v5, 1, 86400000);
        } else if (const char *v6 = flagValue(argv[i], "--wait-ms",
                                              argc, argv, i)) {
            wait_ms = parseCount("--wait-ms", v6, 1, 86400000);
        } else if (const char *v7 = flagValue(argv[i], "--heartbeat-ms",
                                              argc, argv, i)) {
            heartbeat_ms =
                parseCount("--heartbeat-ms", v7, 1, 86400000);
        } else {
            return usage();
        }
    }
    if (ring_base.empty())
        wcrt_fatal("serve needs --ring=NAME");
    if (!shmAvailable())
        wcrt_fatal("shm rings are not supported on this platform");

    // Create every ring before running anything, so an analyzer that
    // attaches while the first workload is still executing finds all
    // of them. A leftover ring from a crashed serve is replaced.
    size_t n = workloads.size();
    std::vector<ShmRing> rings;
    rings.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::string name = ringNameAt(ring_base, i, n);
        ShmRing::unlink(name);
        rings.push_back(ShmRing::create(name, ShmRing::Role::Producer,
                                        ring_kb * 1024, heartbeat_ms));
        // Beat from ring creation, not first push: parallelFor can
        // queue a workload behind busy pool workers (and setup alone
        // can outlast the timeout) — an attached analyzer must not
        // read the wait as producer death. And bound how long a full
        // ring may block capture while no analyzer has ever attached.
        rings.back().startHeartbeat();
        rings.back().setNoConsumerTimeout(wait_ms);
        std::cout << "serving " << workloads[i] << " on shm ring "
                  << name << " (" << ring_kb << " KB, "
                  << toString(policy) << ")\n";
    }
    std::cout << "waiting for an analyzer: trace_tool attach --ring="
              << ring_base << (n > 1 ? " --producers=" +
                                           std::to_string(n)
                                     : std::string())
              << "\n\n";

    std::vector<ServeResult> results(n);
    std::vector<std::string> errors(n);
    parallelFor(n, [&](size_t i) {
        // Catch per workload: one ring erroring out (e.g. its
        // analyzer never attached within --wait-ms) must not take
        // down the siblings still streaming.
        try {
            const WorkloadEntry &entry = findWorkload(workloads[i]);
            WorkloadPtr w = entry.make(scale);
            results[i] = serveTrace(*w, rings[i], scale, policy);
            rings[i].awaitDrained(timeout_ms);
        } catch (const TraceFormatError &err) {
            errors[i] = err.what();
        }
    });

    int rc = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!errors[i].empty()) {
            std::cerr << "trace_tool: serve " << workloads[i] << ": "
                      << errors[i] << "\n";
            rc = 1;
        } else {
            std::cout << "streamed " << workloads[i] << ": "
                      << results[i].ops << " ops, "
                      << results[i].streamBytes << " bytes";
            if (results[i].droppedChunks)
                std::cout << " (" << results[i].droppedChunks
                          << " chunks / " << results[i].droppedOps
                          << " ops dropped)";
            std::cout << " -> " << ringNameAt(ring_base, i, n) << "\n";
        }
        ShmRing::unlink(ringNameAt(ring_base, i, n));
    }
    return rc;
}

int
cmdAttach(int argc, char **argv)
{
    std::string ring_base;
    size_t producers = 1;
    std::string machines;
    bool mrc = false;
    SweepKind kind = SweepKind::Instruction;
    std::string kind_name = "instr";
    std::vector<uint32_t> sizes = paperSweepSizesKb();
    uint32_t line_bytes = 64;
    unsigned jobs = 0;
    uint64_t timeout_ms = 10000;
    for (int i = 2; i < argc; ++i) {
        if (const char *v = flagValue(argv[i], "--ring", argc, argv, i))
            ring_base = v;
        else if (const char *v2 =
                     flagValue(argv[i], "--producers", argc, argv, i))
            producers =
                static_cast<size_t>(parseCount("--producers", v2, 1,
                                               4096));
        else if (const char *v3 =
                     flagValue(argv[i], "--machine", argc, argv, i))
            machines = v3;
        else if (std::strcmp(argv[i], "--mrc") == 0)
            mrc = true;
        else if (const char *v4 =
                     flagValue(argv[i], "--kind", argc, argv, i)) {
            kind_name = v4;
            if (kind_name == "instr")
                kind = SweepKind::Instruction;
            else if (kind_name == "data")
                kind = SweepKind::Data;
            else if (kind_name == "unified")
                kind = SweepKind::Unified;
            else
                wcrt_fatal("unknown --kind '", v4,
                           "' (instr, data or unified)");
        } else if (const char *v5 =
                       flagValue(argv[i], "--sizes", argc, argv, i)) {
            sizes.clear();
            for (const std::string &tok : splitList(v5)) {
                int kb = std::atoi(tok.c_str());
                if (kb <= 0)
                    wcrt_fatal("bad --sizes entry in '", v5, "'");
                sizes.push_back(static_cast<uint32_t>(kb));
            }
            if (sizes.empty())
                wcrt_fatal("--sizes needs at least one capacity");
        } else if (const char *v6 =
                       flagValue(argv[i], "--line", argc, argv, i)) {
            line_bytes = static_cast<uint32_t>(std::atoi(v6));
        } else if (const char *v7 =
                       flagValue(argv[i], "--jobs", argc, argv, i)) {
            jobs = static_cast<unsigned>(std::atoi(v7));
        } else if (const char *v8 = flagValue(argv[i], "--timeout-ms",
                                              argc, argv, i)) {
            timeout_ms = parseCount("--timeout-ms", v8, 1, 86400000);
        } else {
            return usage();
        }
    }
    if (ring_base.empty() || producers == 0)
        wcrt_fatal("attach needs --ring=NAME (and --producers >= 1)");
    if (!shmAvailable())
        wcrt_fatal("shm rings are not supported on this platform");

    std::vector<MachineConfig> configs = parseMachineList(machines);

    // Drain every ring first (rings in parallel — each drain is one
    // cheap memcpy loop), then analyze the buffered streams: analysis
    // replays must not stall a producer on a full ring.
    std::vector<std::shared_ptr<const std::vector<uint8_t>>> streams(
        producers);
    std::vector<bool> peer_died(producers);
    parallelFor(producers, [&](size_t i) {
        ShmRing ring =
            ShmRing::open(ringNameAt(ring_base, i, producers),
                          ShmRing::Role::Consumer, timeout_ms);
        ShmSource drained(ring);
        streams[i] = drained.payload();
        peer_died[i] = drained.peerDied();
    }, jobs);

    int rc = 0;
    for (size_t i = 0; i < producers; ++i) {
        std::string name = ringNameAt(ring_base, i, producers);
        std::string display = "shm:" + name;
        std::cout << "=== " << display << " ===\n";
        if (peer_died[i])
            std::cout << "warning: producer died mid-stream; analyzing "
                         "the received prefix\n";
        try {
            // The probe validates the whole drained stream (including
            // the truncation a dead producer leaves behind) exactly
            // like the file reader would.
            TraceReader probe(
                std::make_unique<ShmSource>(streams[i]), display);
            std::cout << probe.meta().workload << ": "
                      << probe.opCount() << " ops, "
                      << streams[i]->size() << " bytes via "
                      << probe.ioName() << "\n";

            if (mrc) {
                // Mirror replaySweepLadder's StackDistance mode so
                // the curve is bit-identical to `trace_tool mrc` on
                // the equivalent file.
                unsigned workers = replayWorkers(jobs);
                StackDistanceProfile profile(
                    line_bytes, workers > 1 ? workers : 0);
                TraceReader reader(
                    std::make_unique<ShmSource>(streams[i]), display);
                reader.replayInto(profile);
                std::vector<double> ratios =
                    profile.missRatios(kind, sizes);
                Table t({"cache KB", "miss%"});
                for (size_t j = 0; j < sizes.size(); ++j) {
                    t.cell(static_cast<uint64_t>(sizes[j]));
                    t.cell(ratios[j] * 100.0, 3);
                    t.endRow();
                }
                t.print(std::cout);
            } else {
                std::vector<CpuReport> reports(configs.size());
                parallelFor(configs.size(), [&](size_t j) {
                    TraceReader reader(
                        std::make_unique<ShmSource>(streams[i]),
                        display);
                    SimCpu cpu(configs[j]);
                    reader.replayInto(cpu);
                    reports[j] = cpu.report();
                }, jobs);
                printReplayTable(reports);
            }
        } catch (const TraceFormatError &err) {
            std::cerr << "trace_tool: " << err.what() << "\n";
            rc = 1;
        }
        ShmRing::unlink(name);
        if (i + 1 < producers)
            std::cout << "\n";
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the reader-policy flags before command dispatch: they
    // apply to every command, so they set the process-wide defaults
    // that TraceReader and the replay runners pick up.
    std::vector<char *> args;
    args.reserve(static_cast<size_t>(argc));
    ReaderOptions opts = defaultReaderOptions();
    for (int i = 0; i < argc; ++i) {
        if (i == 0) {
            args.push_back(argv[i]);
            continue;
        }
        if (const char *v = flagValue(argv[i], "--io", argc, argv, i)) {
            if (!parseTraceIo(v, opts.io))
                wcrt_fatal("unknown --io '", v,
                           "' (auto, stream or mmap)");
        } else if (const char *v2 = flagValue(argv[i], "--verify-crc",
                                              argc, argv, i)) {
            if (!parseCrcMode(v2, opts.crc))
                wcrt_fatal("unknown --verify-crc '", v2,
                           "' (always, once or never)");
        } else {
            args.push_back(argv[i]);
        }
    }
    setDefaultReaderOptions(opts);
    argc = static_cast<int>(args.size());
    argv = args.data();

    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    try {
        if (cmd == "record")
            return cmdRecord(argc, argv);
        if (cmd == "stats")
            return cmdStats(argv[2]);
        if (cmd == "dump") {
            uint64_t limit = 32;
            for (int i = 3; i < argc; ++i) {
                if (const char *v =
                        flagValue(argv[i], "--limit", argc, argv, i))
                    limit = std::strtoull(v, nullptr, 10);
                else
                    return usage();
            }
            return cmdDump(argv[2], limit);
        }
        if (cmd == "replay") {
            std::string machines;
            unsigned jobs = 0;
            for (int i = 3; i < argc; ++i) {
                if (const char *v =
                        flagValue(argv[i], "--machine", argc, argv, i))
                    machines = v;
                else if (const char *v2 =
                             flagValue(argv[i], "--jobs", argc, argv, i))
                    jobs = static_cast<unsigned>(std::atoi(v2));
                else
                    return usage();
            }
            return cmdReplay(argv[2], machines, jobs);
        }
        if (cmd == "mrc")
            return cmdMrc(argc, argv);
        if (cmd == "serve")
            return cmdServe(argc, argv);
        if (cmd == "attach") {
            // attach has no positional argument, so the argc >= 3
            // gate above already held (--ring counts as argv[2]).
            return cmdAttach(argc, argv);
        }
    } catch (const TraceFormatError &err) {
        std::cerr << "trace_tool: " << err.what() << "\n";
        return 1;
    }
    return usage();
}
