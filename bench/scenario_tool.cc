/**
 * @file
 * Command-line front end for `.scn` scenario files:
 *
 *     scenario_tool validate <file.scn>...
 *     scenario_tool expand   <file.scn> [--scale=S]
 *     scenario_tool run      <file.scn> [--json=FILE] [--jobs=N]
 *                            [--trace-dir=D] [--cell=I] [--scale=S]
 *                            [--io=M] [--verify-crc=M]
 *
 * `validate` parses, resolves and expands every named file, printing
 * every problem found (the parser accumulates issues instead of
 * stopping at the first) — CI runs it over every checked-in .scn
 * file; `expand`
 * prints the ordered cell list a scenario's matrix produces; `run`
 * executes cells through the kind's engine (sweep ladders, traffic
 * phases, machine replays), printing a table per cell and optionally
 * a machine-readable JSON report with full-precision curves.
 *
 * Exit status: 0 on success, 1 when validate finds issues or a run
 * fails, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "tracefile/trace_source.hh"

using namespace wcrt;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  scenario_tool validate <file.scn>...\n"
           "  scenario_tool expand   <file.scn> [--scale=S]\n"
           "  scenario_tool run      <file.scn> [--json=FILE]"
           " [--jobs=N]\n"
           "                         [--trace-dir=D] [--cell=I]"
           " [--scale=S]\n"
           "\n"
           "  --scale=S      base dataset scale (default: WCRT_SCALE\n"
           "                 or 0.5); the scenario's scale-factor and\n"
           "                 scale axis still apply on top\n"
           "  --json=FILE    write a JSON report of every cell run\n"
           "  --jobs=N       worker cap (0 = hardware threads)\n"
           "  --trace-dir=D  trace cache directory (default:\n"
           "                 WCRT_TRACE_DIR or the system temp dir)\n"
           "  --cell=I       run only the cell with index I\n"
           "  --io=M         trace transport: auto (default; mmap\n"
           "                 when available), stream, mmap\n"
           "  --verify-crc=M chunk CRC policy on replay: always\n"
           "                 (default), once, never\n";
    return 2;
}

/** Value of `--name=V` or `--name V`, or null when `arg` is not it. */
const char *
flagValue(const char *arg, const char *name, int argc, char **argv,
          int &i)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return nullptr;
    if (arg[n] == '=')
        return arg + n + 1;
    if (arg[n] == '\0' && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

double
envBaseScale()
{
    if (const char *s = std::getenv("WCRT_SCALE"))
        return std::atof(s);
    return 0.5;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ---------------------------------------------------------------- validate

int
cmdValidate(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    int bad = 0;
    for (int i = 2; i < argc; ++i) {
        ScenarioParse parse = loadScenario(argv[i]);
        std::vector<ScenarioCell> cells;
        if (parse.ok())
            cells = expandScenario(parse.spec, envBaseScale(),
                                   parse.issues);
        if (parse.ok() && cells.empty())
            parse.issues.push_back(
                {0, "matrix expands to no cells"});
        if (!parse.ok()) {
            std::cout << parse.formatIssues();
            ++bad;
            continue;
        }
        std::cout << argv[i] << ": OK (" << toString(parse.spec.kind)
                  << " '" << parse.spec.name << "', " << cells.size()
                  << (cells.size() == 1 ? " cell)" : " cells)")
                  << "\n";
    }
    return bad ? 1 : 0;
}

// ------------------------------------------------------------------ expand

int
cmdExpand(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    double base_scale = envBaseScale();
    for (int i = 3; i < argc; ++i) {
        if (const char *v =
                flagValue(argv[i], "--scale", argc, argv, i))
            base_scale = std::atof(v);
        else
            return usage();
    }
    ScenarioParse parse = loadScenario(argv[2]);
    std::vector<ScenarioCell> cells;
    if (parse.ok())
        cells = expandScenario(parse.spec, base_scale, parse.issues);
    if (!parse.ok()) {
        std::cerr << parse.formatIssues();
        return 1;
    }
    std::cout << toString(parse.spec.kind) << " scenario '"
              << parse.spec.name << "': " << cells.size()
              << (cells.size() == 1 ? " cell\n\n" : " cells\n\n");
    Table t({"cell", "label", "scale", "workloads"});
    for (const auto &cell : cells) {
        t.cell(static_cast<uint64_t>(cell.index))
            .cell(cell.label)
            .cell(cell.scale, 4)
            .cell(cell.group.entries.empty()
                      ? std::string("-")
                      : std::to_string(cell.group.entries.size()));
        t.endRow();
    }
    t.print(std::cout);
    return cells.empty() ? 1 : 0;
}

// --------------------------------------------------------------------- run

/** JSON fragments for each executed cell, joined by emitJson(). */
std::vector<std::string> g_cells_json;

void
jsonSweepCell(const CellResult &r, const ScenarioSpec &spec)
{
    std::ostringstream os;
    os << "    {\n      \"index\": " << r.cell.index << ",\n"
       << "      \"label\": \"" << jsonEscape(r.cell.label)
       << "\",\n"
       << "      \"scale\": " << jsonDouble(r.cell.scale) << ",\n"
       << "      \"group\": \"" << jsonEscape(r.cell.group.name)
       << "\",\n"
       << "      \"mode\": \"" << toString(r.cell.mode) << "\",\n"
       << "      \"sizes_kb\": [";
    for (size_t i = 0; i < spec.sizesKb.size(); ++i)
        os << (i ? ", " : "") << spec.sizesKb[i];
    os << "],\n      \"miss_ratio\": [";
    for (size_t i = 0; i < r.sweep.curve.size(); ++i)
        os << (i ? ", " : "") << jsonDouble(r.sweep.curve[i]);
    os << "],\n      \"max_divergence\": "
       << jsonDouble(r.sweep.maxDivergence) << "\n    }";
    g_cells_json.push_back(os.str());
}

void
jsonTrafficCell(const CellResult &r)
{
    std::ostringstream os;
    os << "    {\n      \"index\": " << r.cell.index << ",\n"
       << "      \"label\": \"" << jsonEscape(r.cell.label)
       << "\",\n"
       << "      \"scale\": " << jsonDouble(r.cell.scale) << ",\n"
       << "      \"target\": \""
       << jsonEscape(r.traffic.result.target) << "\",\n"
       << "      \"capacity_hz\": "
       << jsonDouble(r.traffic.capacityHz) << ",\n"
       << "      \"total_requests\": "
       << r.traffic.result.totalRequests << ",\n"
       << "      \"phases\": [";
    const auto &phases = r.traffic.result.phases;
    for (size_t i = 0; i < phases.size(); ++i) {
        const PhaseStats &ps = phases[i];
        os << (i ? "," : "") << "\n        {\"name\": \""
           << jsonEscape(ps.name) << "\", \"arrival\": \""
           << toString(ps.arrival) << "\", \"requests\": "
           << ps.requests << ", \"offered_hz\": "
           << jsonDouble(ps.offeredRateHz) << ", \"achieved_hz\": "
           << jsonDouble(ps.achievedRateHz()) << ", \"p50_ns\": "
           << static_cast<uint64_t>(ps.latency.quantile(0.50))
           << ", \"p99_ns\": "
           << static_cast<uint64_t>(ps.latency.quantile(0.99))
           << "}";
    }
    os << "\n      ]\n    }";
    g_cells_json.push_back(os.str());
}

void
jsonReplayCell(const CellResult &r)
{
    std::ostringstream os;
    os << "    {\n      \"index\": " << r.cell.index << ",\n"
       << "      \"label\": \"" << jsonEscape(r.cell.label)
       << "\",\n"
       << "      \"scale\": " << jsonDouble(r.cell.scale) << ",\n"
       << "      \"machine\": \"" << jsonEscape(r.cell.machineName)
       << "\",\n"
       << "      \"workloads\": [";
    for (size_t i = 0; i < r.replay.reports.size(); ++i) {
        const CpuReport &rep = r.replay.reports[i];
        os << (i ? "," : "") << "\n        {\"name\": \""
           << jsonEscape(r.replay.names[i]) << "\", \"ipc\": "
           << jsonDouble(rep.ipc) << ", \"l1i_mpki\": "
           << jsonDouble(rep.l1iMpki) << ", \"l1d_mpki\": "
           << jsonDouble(rep.l1dMpki) << ", \"l2_mpki\": "
           << jsonDouble(rep.l2Mpki) << ", \"l3_mpki\": "
           << jsonDouble(rep.l3Mpki) << "}";
    }
    os << "\n      ]\n    }";
    g_cells_json.push_back(os.str());
}

void
emitJson(const std::string &path, const ScenarioSpec &spec)
{
    std::ofstream out(path);
    if (!out)
        wcrt_fatal("cannot write ", path);
    out << "{\n  \"scenario\": \"" << jsonEscape(spec.name)
        << "\",\n  \"kind\": \"" << toString(spec.kind)
        << "\",\n  \"source\": \"" << jsonEscape(spec.source)
        << "\",\n  \"seed\": " << spec.seed << ",\n  \"cells\": [\n";
    for (size_t i = 0; i < g_cells_json.size(); ++i)
        out << g_cells_json[i]
            << (i + 1 < g_cells_json.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
}

void
printSweepCell(const CellResult &r, const ScenarioSpec &spec)
{
    Table t({"cache KB", "miss%"});
    for (size_t i = 0; i < r.sweep.curve.size(); ++i) {
        t.cell(static_cast<uint64_t>(spec.sizesKb[i]))
            .cell(r.sweep.curve[i] * 100.0, 3);
        t.endRow();
    }
    t.print(std::cout);
    if (r.cell.mode == MrcMode::Verify)
        std::cout << "max stack/oracle divergence: "
                  << r.sweep.maxDivergence << "\n";
}

void
printTrafficCell(const CellResult &r)
{
    if (r.traffic.capacityHz > 0.0)
        std::cout << "probed capacity: " << r.traffic.capacityHz
                  << " req/s per actor\n";
    Table t({"phase", "arrival", "offered/s", "achieved/s", "p50ns",
             "p99ns", "requests"});
    for (const PhaseStats &ps : r.traffic.result.phases) {
        t.cell(ps.name)
            .cell(toString(ps.arrival))
            .cell(ps.offeredRateHz, 0)
            .cell(ps.achievedRateHz(), 0)
            .cell(static_cast<uint64_t>(ps.latency.quantile(0.50)))
            .cell(static_cast<uint64_t>(ps.latency.quantile(0.99)))
            .cell(ps.requests);
        t.endRow();
    }
    t.print(std::cout);
}

void
printReplayCell(const CellResult &r)
{
    Table t({"workload", "IPC", "L1I MPKI", "L1D MPKI", "L2 MPKI",
             "L3 MPKI"});
    for (size_t i = 0; i < r.replay.reports.size(); ++i) {
        const CpuReport &rep = r.replay.reports[i];
        t.cell(r.replay.names[i])
            .cell(rep.ipc, 3)
            .cell(rep.l1iMpki, 3)
            .cell(rep.l1dMpki, 3)
            .cell(rep.l2Mpki, 3)
            .cell(rep.l3Mpki, 3);
        t.endRow();
    }
    t.print(std::cout);
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    RunnerOptions opt;
    opt.baseScale = envBaseScale();
    std::string json_path;
    long only_cell = -1;
    for (int i = 3; i < argc; ++i) {
        if (const char *v =
                flagValue(argv[i], "--json", argc, argv, i))
            json_path = v;
        else if (const char *v2 =
                     flagValue(argv[i], "--jobs", argc, argv, i))
            opt.jobs = static_cast<unsigned>(std::atoi(v2));
        else if (const char *v3 = flagValue(argv[i], "--trace-dir",
                                            argc, argv, i))
            opt.traceDir = v3;
        else if (const char *v4 =
                     flagValue(argv[i], "--cell", argc, argv, i))
            only_cell = std::atol(v4);
        else if (const char *v5 =
                     flagValue(argv[i], "--scale", argc, argv, i))
            opt.baseScale = std::atof(v5);
        else if (const char *v6 =
                     flagValue(argv[i], "--io", argc, argv, i)) {
            ReaderOptions ropts = defaultReaderOptions();
            if (!parseTraceIo(v6, ropts.io))
                wcrt_fatal("unknown --io '", v6,
                           "' (auto, stream or mmap)");
            setDefaultReaderOptions(ropts);
        } else if (const char *v7 = flagValue(argv[i], "--verify-crc",
                                              argc, argv, i)) {
            ReaderOptions ropts = defaultReaderOptions();
            if (!parseCrcMode(v7, ropts.crc))
                wcrt_fatal("unknown --verify-crc '", v7,
                           "' (always, once or never)");
            setDefaultReaderOptions(ropts);
        } else
            return usage();
    }

    ScenarioParse parse = loadScenario(argv[2]);
    std::vector<ScenarioCell> cells;
    if (parse.ok())
        cells = expandScenario(parse.spec, opt.baseScale,
                               parse.issues);
    if (!parse.ok()) {
        std::cerr << parse.formatIssues();
        return 1;
    }
    if (cells.empty()) {
        std::cerr << argv[2] << ": matrix expands to no cells\n";
        return 1;
    }
    if (only_cell >= 0 &&
        static_cast<size_t>(only_cell) >= cells.size()) {
        std::cerr << "--cell=" << only_cell << " out of range (0.."
                  << cells.size() - 1 << ")\n";
        return 1;
    }

    ScenarioRunner runner(parse.spec, opt);
    std::cout << "=== " << toString(parse.spec.kind) << " scenario '"
              << parse.spec.name << "' (" << cells.size()
              << (cells.size() == 1 ? " cell" : " cells")
              << ", seed " << parse.spec.seed << ") ===\n";
    for (const ScenarioCell &cell : cells) {
        if (only_cell >= 0 &&
            cell.index != static_cast<size_t>(only_cell))
            continue;
        std::cout << "\n-- cell " << cell.index << ": " << cell.label
                  << "\n\n";
        CellResult r = runner.runCell(cell);
        switch (parse.spec.kind) {
          case ScenarioKind::Sweep:
            printSweepCell(r, parse.spec);
            jsonSweepCell(r, parse.spec);
            break;
          case ScenarioKind::Traffic:
            printTrafficCell(r);
            jsonTrafficCell(r);
            break;
          case ScenarioKind::Replay:
            printReplayCell(r);
            jsonReplayCell(r);
            break;
        }
    }

    if (!json_path.empty()) {
        emitJson(json_path, parse.spec);
        std::cout << "\nwrote " << g_cells_json.size()
                  << " cell reports to " << json_path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "validate")
        return cmdValidate(argc, argv);
    if (cmd == "expand")
        return cmdExpand(argc, argv);
    if (cmd == "run")
        return cmdRun(argc, argv);
    return usage();
}
