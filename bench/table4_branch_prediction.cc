/**
 * @file
 * Table 4 + the Section 5.1 branch study — the two platforms' branch
 * prediction mechanisms and the measured misprediction ratios of the
 * big data workloads on each: the paper reports ~2.8% on the Xeon
 * E5645 (hybrid predictor with loop counter, indirect predictor and
 * an 8192-entry BTB) versus ~7.8% on the Atom D510 (two-level
 * adaptive predictor, 128-entry BTB).
 *
 * An ablation sweep then attributes the gap to the individual
 * mechanisms by toggling them one at a time.
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

namespace {

double
averageMispredict(const MachineConfig &machine, double scale)
{
    auto runs = runRepresentatives(machine, scale);
    return average(runs, [](const WorkloadRun &r) {
        return r.report.branchMispredictRatio;
    });
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();

    std::cout << "=== Table 4: branch prediction mechanisms ===\n\n";
    Table mech({"component", "D510", "E5645"});
    mech.addRow({"conditional jumps",
                 "two-level adaptive, global history",
                 "hybrid two-level + loop counter"});
    mech.addRow({"indirect jumps and calls", "not predicted",
                 "two-level target predictor"});
    BranchConfig d510 = atomD510Branch();
    BranchConfig e5645 = xeonE5645Branch();
    mech.addRow({"BTB entries", std::to_string(d510.btbEntries),
                 std::to_string(e5645.btbEntries)});
    mech.addRow({"misprediction penalty",
                 formatFixed(d510.mispredictPenalty, 0) + " cycles",
                 formatFixed(e5645.mispredictPenalty, 0) + " cycles"});
    mech.print(std::cout);

    std::cout << "\n=== Measured misprediction (17 workloads, scale "
              << scale << ") ===\n\n";

    MachineConfig atom = atomD510();
    MachineConfig xeon = xeonE5645();
    double atom_ratio = averageMispredict(atom, scale);
    double xeon_ratio = averageMispredict(xeon, scale);

    Table t({"platform", "avg mispredict %", "paper"});
    t.cell(atom.name).cell(atom_ratio * 100, 2).cell("7.8%").endRow();
    t.cell(xeon.name).cell(xeon_ratio * 100, 2).cell("2.8%").endRow();
    t.print(std::cout);

    // Ablation: which E5645 mechanism buys what.
    std::cout << "\n=== Ablation: disabling E5645 mechanisms ===\n\n";
    Table ab({"configuration", "avg mispredict %"});

    ab.cell("full E5645 predictor").cell(xeon_ratio * 100, 2).endRow();

    {
        MachineConfig m = xeon;
        m.branch.hasLoopPredictor = false;
        ab.cell("- loop predictor")
            .cell(averageMispredict(m, scale) * 100, 2);
        ab.endRow();
    }
    {
        MachineConfig m = xeon;
        m.branch.hasIndirectPredictor = false;
        ab.cell("- indirect predictor")
            .cell(averageMispredict(m, scale) * 100, 2);
        ab.endRow();
    }
    {
        MachineConfig m = xeon;
        m.branch.historyBits = d510.historyBits;
        m.branch.phtEntries = d510.phtEntries;
        ab.cell("- history/PHT shrunk to D510 size")
            .cell(averageMispredict(m, scale) * 100, 2);
        ab.endRow();
    }
    {
        MachineConfig m = xeon;
        m.branch.btbEntries = d510.btbEntries;
        ab.cell("- BTB shrunk to 128 entries")
            .cell(averageMispredict(m, scale) * 100, 2);
        ab.endRow();
    }
    ab.print(std::cout);
    return 0;
}
