/**
 * @file
 * Shared driver for the Figure 6-9 cache-capacity sweeps.
 *
 * Each figure averages miss-ratio-vs-capacity curves over a workload
 * group (the Hadoop representatives, PARSEC, the MPI versions) on the
 * paper's Atom-like in-order simulator configuration.
 *
 * The sweeps are record-once/replay-many: each workload is captured
 * into the trace cache on first use, then the stored trace is
 * replayed through the --mrc-mode path (tracefile/replay.hh): the
 * default single-pass stack-distance profile, the per-rung
 * set-associative oracle sweep, or verify (both over one decode,
 * reporting the maximum curve divergence). Replayed curves are
 * identical to live sweeps through the same model — fig6 asserts
 * that equivalence and reports the measured speedup.
 */

#ifndef WCRT_BENCH_FOOTPRINT_COMMON_HH
#define WCRT_BENCH_FOOTPRINT_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "scenario/scenario.hh"
#include "sim/footprint.hh"
#include "sim/stack_distance.hh"
#include "tracefile/replay.hh"

namespace wcrt::bench {

/** A workload group's averaged curve under the active --mrc-mode. */
struct GroupSweep
{
    std::vector<double> curve;  //!< averaged over the group
    //! Verify mode: largest per-rung |stack - oracle| any workload in
    //! the group showed (0 in the single-model modes).
    double maxDivergence = 0.0;
};

/**
 * Average replayed sweep curves over a set of workload factories,
 * through the active --mrc-mode, collecting the worst verify-mode
 * divergence across the group.
 */
inline GroupSweep
averageSweepMrc(const std::vector<WorkloadEntry> &entries,
                SweepKind kind, double scale)
{
    auto sizes = paperSweepSizesKb();
    GroupSweep out;
    out.curve.assign(sizes.size(), 0.0);
    if (entries.empty())
        return out;
    TraceCache &cache = benchTraceCache();
    for (const auto &entry : entries) {
        std::string path = cache.ensure(
            entry.name, scale, [&] { return entry.make(scale); });
        MrcResult r = replaySweepLadder(path, kind, sizes,
                                        benchOptions().mrcMode,
                                        benchOptions().jobs);
        out.maxDivergence = std::max(out.maxDivergence,
                                     r.maxDivergence);
        for (size_t i = 0; i < out.curve.size(); ++i)
            out.curve[i] += r.ratios[i];
    }
    for (auto &v : out.curve)
        v /= static_cast<double>(entries.size());
    return out;
}

/** averageSweepMrc() returning just the averaged curve. */
inline std::vector<double>
averageSweep(const std::vector<WorkloadEntry> &entries, SweepKind kind,
             double scale)
{
    return averageSweepMrc(entries, kind, scale).curve;
}

/**
 * Live (no-trace) sweep of one workload: one execution, full ladder,
 * through the active mode's curve model — the stack-distance profile
 * in stack and verify modes, the set-associative ladder in oracle
 * mode — so a live curve is comparable to the replayed one.
 */
inline std::vector<double>
liveSweep(const WorkloadEntry &entry, SweepKind kind, double scale)
{
    WorkloadPtr w = entry.make(scale);
    if (benchOptions().mrcMode == MrcMode::ShardedOracle) {
        FootprintSweep sweep(paperSweepSizesKb());
        runThroughSink(*w, sweep);
        return sweep.missRatios(kind);
    }
    StackDistanceProfile profile;
    runThroughSink(*w, profile);
    return profile.missRatios(kind, paperSweepSizesKb());
}

/** Absolute path of a checked-in scenario file. */
inline std::string
scenarioFile(const std::string &name)
{
#ifdef WCRT_SCENARIO_DIR
    return std::string(WCRT_SCENARIO_DIR) + "/" + name;
#else
    return "scenarios/" + name;
#endif
}

/**
 * Load a checked-in scenario, fatally reporting every parse issue:
 * the scenarios/ files are part of the build, so a broken one is a
 * build defect, not a user error.
 */
inline ScenarioSpec
loadBenchScenario(const std::string &name)
{
    ScenarioParse parse = loadScenario(scenarioFile(name));
    if (!parse.ok())
        wcrt_fatal("bad scenario ", scenarioFile(name), ":\n",
                   parse.formatIssues());
    return std::move(parse.spec);
}

/**
 * One named group of a loaded scenario as a bench roster, honouring
 * the shared --filter flag like the hand-registered groups do.
 */
inline std::vector<WorkloadEntry>
benchGroup(const ScenarioSpec &spec, const std::string &group)
{
    const ScenarioGroup *g = spec.findGroup(group);
    if (!g)
        wcrt_fatal("scenario ", spec.source, " has no group '", group,
                   "'");
    std::vector<WorkloadEntry> out;
    for (const auto &e : g->entries)
        if (filterAllows(e.name))
            out.push_back(e);
    return out;
}

/** The Hadoop-stack representatives (the paper's Section 5.4 choice). */
inline std::vector<WorkloadEntry>
hadoopGroup()
{
    std::vector<WorkloadEntry> out;
    for (const auto &e : filtered(representativeWorkloads())) {
        if (e.name.rfind("H-", 0) == 0 && e.name != "H-Read")
            out.push_back(e);
    }
    return out;
}

/** PARSEC-like baseline as its own group. */
inline std::vector<WorkloadEntry>
parsecGroup()
{
    std::vector<WorkloadEntry> out;
    for (const auto &e : baselineWorkloads()) {
        if (e.suite == BaselineSuite::Parsec && filterAllows(e.name))
            out.push_back({e.name, 0, 0, e.make});
    }
    return out;
}

/** The six MPI implementations. */
inline std::vector<WorkloadEntry>
mpiGroup()
{
    return filtered(mpiWorkloads());
}

/** Print one figure: capacity ladder vs per-group curves. */
inline void
printSweepFigure(const std::string &title,
                 const std::vector<std::string> &group_names,
                 const std::vector<std::vector<double>> &curves)
{
    auto sizes = paperSweepSizesKb();
    std::vector<std::string> header{"cache KB"};
    for (const auto &g : group_names)
        header.push_back(g + " miss%");
    Table t(header);
    for (size_t i = 0; i < sizes.size(); ++i) {
        t.cell(static_cast<uint64_t>(sizes[i]));
        for (const auto &c : curves)
            t.cell(c[i] * 100.0, 3);
        t.endRow();
    }
    std::cout << title << "\n\n";
    t.print(std::cout);
}

/**
 * Human-readable footprint estimate for a paper-ladder curve: the
 * knee capacity ("~1024 KB"), or an explicit ">8192 KB (no knee
 * within ladder)" when the curve is still falling at the last rung —
 * the knee finder (sim/footprint.hh) no longer masquerades the
 * ladder's end as a measurement.
 */
inline std::string
kneeLabel(const std::vector<double> &curve)
{
    auto sizes = paperSweepSizesKb();
    char buf[64];
    if (auto knee = kneeCapacityKb(curve, sizes))
        std::snprintf(buf, sizeof(buf), "~%u KB", *knee);
    else
        std::snprintf(buf, sizeof(buf),
                      ">%u KB (no knee within ladder)", sizes.back());
    return buf;
}

} // namespace wcrt::bench

#endif // WCRT_BENCH_FOOTPRINT_COMMON_HH
