/**
 * @file
 * Shared driver for the Figure 6-9 cache-capacity sweeps.
 *
 * Each figure averages miss-ratio-vs-capacity curves over a workload
 * group (the Hadoop representatives, PARSEC, the MPI versions) on the
 * paper's Atom-like in-order simulator configuration.
 *
 * The sweeps are record-once/replay-many: each workload is captured
 * into the trace cache on first use, then every capacity rung replays
 * the stored trace on its own worker thread (tracefile/replay.hh).
 * Replayed curves are identical to live single-pass sweeps — fig6
 * asserts that equivalence and reports the measured speedup.
 */

#ifndef WCRT_BENCH_FOOTPRINT_COMMON_HH
#define WCRT_BENCH_FOOTPRINT_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "bench_common.hh"
#include "sim/footprint.hh"
#include "tracefile/replay.hh"

namespace wcrt::bench {

/** Average replayed sweep curves over a set of workload factories. */
inline std::vector<double>
averageSweep(const std::vector<WorkloadEntry> &entries, SweepKind kind,
             double scale)
{
    auto sizes = paperSweepSizesKb();
    std::vector<double> acc(sizes.size(), 0.0);
    if (entries.empty())
        return acc;
    TraceCache &cache = benchTraceCache();
    for (const auto &entry : entries) {
        std::string path = cache.ensure(
            entry.name, scale, [&] { return entry.make(scale); });
        auto ratios = replaySweepLadder(path, kind, sizes,
                                        benchOptions().jobs);
        for (size_t i = 0; i < acc.size(); ++i)
            acc[i] += ratios[i];
    }
    for (auto &v : acc)
        v /= static_cast<double>(entries.size());
    return acc;
}

/** Live (no-trace) sweep of one workload: one execution, full ladder. */
inline std::vector<double>
liveSweep(const WorkloadEntry &entry, SweepKind kind, double scale)
{
    WorkloadPtr w = entry.make(scale);
    FootprintSweep sweep(paperSweepSizesKb());
    runThroughSink(*w, sweep);
    return sweep.missRatios(kind);
}

/** The Hadoop-stack representatives (the paper's Section 5.4 choice). */
inline std::vector<WorkloadEntry>
hadoopGroup()
{
    std::vector<WorkloadEntry> out;
    for (const auto &e : filtered(representativeWorkloads())) {
        if (e.name.rfind("H-", 0) == 0 && e.name != "H-Read")
            out.push_back(e);
    }
    return out;
}

/** PARSEC-like baseline as its own group. */
inline std::vector<WorkloadEntry>
parsecGroup()
{
    std::vector<WorkloadEntry> out;
    for (const auto &e : baselineWorkloads()) {
        if (e.suite == BaselineSuite::Parsec && filterAllows(e.name))
            out.push_back({e.name, 0, 0, e.make});
    }
    return out;
}

/** The six MPI implementations. */
inline std::vector<WorkloadEntry>
mpiGroup()
{
    return filtered(mpiWorkloads());
}

/** Print one figure: capacity ladder vs per-group curves. */
inline void
printSweepFigure(const std::string &title,
                 const std::vector<std::string> &group_names,
                 const std::vector<std::vector<double>> &curves)
{
    auto sizes = paperSweepSizesKb();
    std::vector<std::string> header{"cache KB"};
    for (const auto &g : group_names)
        header.push_back(g + " miss%");
    Table t(header);
    for (size_t i = 0; i < sizes.size(); ++i) {
        t.cell(static_cast<uint64_t>(sizes[i]));
        for (const auto &c : curves)
            t.cell(c[i] * 100.0, 3);
        t.endRow();
    }
    std::cout << title << "\n\n";
    t.print(std::cout);
}

/** Capacity (KB) where a curve first flattens (footprint estimate). */
inline uint32_t
kneeCapacityKb(const std::vector<double> &curve)
{
    // The working set is the first capacity whose miss ratio is within
    // 15% of the largest capacity's floor (compulsory misses remain at
    // any size, so the floor is not zero).
    auto sizes = paperSweepSizesKb();
    double floor_ratio = curve.back();
    for (size_t i = 0; i < curve.size(); ++i) {
        if (curve[i] <= floor_ratio * 1.15 + 1e-6)
            return sizes[i];
    }
    return sizes.back();
}

} // namespace wcrt::bench

#endif // WCRT_BENCH_FOOTPRINT_COMMON_HH
