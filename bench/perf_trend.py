#!/usr/bin/env python3
"""Perf-gate history: accumulate per-run relative rates, print a trend.

The perf gate compares one run against the committed baseline, which
answers "did this PR regress" but not "has this row been drifting for
a month". This script maintains the longitudinal view: each CI run
appends one record (label -> relative rates, normalised by the same
BM_CacheAccess reference row check_perf.py uses) to a JSONL trend file
that the workflow passes from run to run as an artifact, and prints a
markdown table of the last few runs for the job summary.

The trend file is append-only JSONL so a truncated or missing download
(first run, expired artifact) degrades to a shorter table, never an
error.

Usage:
    perf_trend.py TREND.jsonl CURRENT.json [--label LABEL]
                  [--limit N]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_perf import load_rates, relative  # noqa: E402


def load_trend(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate a torn tail from a cancelled run
            if isinstance(rec, dict) and "rel" in rec:
                records.append(rec)
    return records


def run_date(current_json):
    with open(current_json) as f:
        data = json.load(f)
    # google-benchmark stamps the run start in the context block.
    return data.get("context", {}).get("date", "")[:10]


def markdown_table(records):
    if not records:
        return "(no trend data)"
    names = sorted({n for rec in records for n in rec["rel"]})
    labels = [rec.get("label", "?") for rec in records]
    lines = ["| benchmark | " + " | ".join(labels) + " |",
             "|---" * (len(records) + 1) + "|"]
    for name in names:
        cells = []
        for rec in records:
            rel = rec["rel"].get(name)
            cells.append(f"{rel:.3f}" if rel is not None else "—")
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trend", help="JSONL trend file (appended to)")
    parser.add_argument("current", help="benchmark --json output")
    parser.add_argument("--label", default="this run",
                        help="column label for the current run "
                             "(e.g. short commit sha)")
    parser.add_argument("--limit", type=int, default=8,
                        help="runs shown in the table (default 8)")
    args = parser.parse_args()

    rel = relative(load_rates(args.current))
    record = {"label": args.label, "date": run_date(args.current),
              "rel": rel}

    records = load_trend(args.trend)
    records.append(record)
    with open(args.trend, "w") as f:
        for rec in records:
            f.write(json.dumps(rec, sort_keys=True) + "\n")

    shown = records[-args.limit:]
    print("### Perf trend (relative to BM_CacheAccess)\n")
    print(f"{len(records)} recorded run(s); showing last {len(shown)}.\n")
    print(markdown_table(shown))
    return 0


if __name__ == "__main__":
    sys.exit(main())
