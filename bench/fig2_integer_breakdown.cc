/**
 * @file
 * Figure 2 — the integer-instruction breakdown of the big data
 * workloads: integer-address calculation vs FP-address calculation vs
 * other computation (the paper reports 64% / 18% / 18%).
 */

#include "bench_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    double scale = benchScale();
    MachineConfig machine = xeonE5645();
    std::cout << "=== Figure 2: integer instruction breakdown (scale "
              << scale << ") ===\n\n";

    auto reps = runRepresentatives(machine, scale);

    Table t({"workload", "int-address%", "fp-address%", "other%"});
    for (const auto &run : reps) {
        t.cell(run.name)
            .cell(run.report.intAddressShare * 100, 1)
            .cell(run.report.fpAddressShare * 100, 1)
            .cell(run.report.otherIntShare * 100, 1);
        t.endRow();
    }
    t.print(std::cout);

    auto ia = [](const WorkloadRun &r) {
        return r.report.intAddressShare * 100;
    };
    auto fa = [](const WorkloadRun &r) {
        return r.report.fpAddressShare * 100;
    };
    auto ot = [](const WorkloadRun &r) {
        return r.report.otherIntShare * 100;
    };
    std::cout << "\nbig data average: int-address "
              << formatFixed(average(reps, ia), 1) << "%, fp-address "
              << formatFixed(average(reps, fa), 1) << "%, other "
              << formatFixed(average(reps, ot), 1)
              << "%   (paper: 64% / 18% / 18%)\n";
    return 0;
}
