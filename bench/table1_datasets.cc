/**
 * @file
 * Table 1 — the seven datasets and their BDGS generators, with the
 * actually-materialized scaled statistics (records, bytes, graph
 * degrees) to show the generators reproduce each dataset's character.
 */

#include <iostream>

#include "base/summary.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "datagen/datasets.hh"

using namespace wcrt;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv, bench::kBenchUsesNone);
    double scale = bench::benchScale();
    std::cout << "=== Table 1: datasets and generation tools (scale "
              << scale << ") ===\n\n";

    Table t({"no", "data set", "paper description", "generator",
             "materialized here"});

    VirtualHeap heap;
    DatasetCatalog catalog(heap, scale);
    const auto &infos = datasetInfos();

    auto describe_corpus = [](const TextCorpus &c) {
        return std::to_string(c.docs.size()) + " docs, " +
               std::to_string(c.totalBytes / 1024) + " KB";
    };
    auto describe_graph = [](const Graph &g) {
        Summary deg;
        for (uint32_t v = 0; v < g.numNodes; ++v)
            deg.add(static_cast<double>(g.outDegree(v)));
        return std::to_string(g.numNodes) + " nodes, " +
               std::to_string(g.numEdges()) + " edges, max degree " +
               std::to_string(static_cast<uint64_t>(deg.max()));
    };

    std::vector<std::string> materialized;
    materialized.push_back(describe_corpus(catalog.wikipedia()));
    materialized.push_back(describe_corpus(catalog.amazonReviews()));
    materialized.push_back(describe_graph(catalog.googleWebGraph()));
    materialized.push_back(describe_graph(catalog.facebookGraph()));
    {
        DataTable orders = catalog.ecommerceOrders();
        DataTable items = catalog.ecommerceItems();
        materialized.push_back(
            "T1: " + std::to_string(orders.columns.size()) + " cols, " +
            std::to_string(orders.rows) + " rows; T2: " +
            std::to_string(items.columns.size()) + " cols, " +
            std::to_string(items.rows) + " rows");
    }
    {
        KvDataset kv = catalog.profSearch();
        materialized.push_back(std::to_string(kv.keys.size()) +
                               " resumes, " +
                               std::to_string(kv.valueBytes) +
                               " B records");
    }
    {
        DataTable sales = catalog.tpcdsWebSales();
        materialized.push_back(
            "web_sales " + std::to_string(sales.rows) +
            " rows + date_dim/item dims");
    }

    for (size_t i = 0; i < infos.size(); ++i) {
        t.cell(static_cast<uint64_t>(i + 1))
            .cell(infos[i].name)
            .cell(infos[i].description)
            .cell(infos[i].generator)
            .cell(materialized[i]);
        t.endRow();
    }
    t.print(std::cout);

    std::cout << "\nAll generators are deterministic in the seed and "
                 "scale linearly with the BDGS-style scale factor.\n";
    return 0;
}
