/**
 * @file
 * Figure 8 — unified (instruction + data) cache miss ratio versus
 * capacity for the Hadoop workloads and PARSEC. The paper's finding:
 * the curves converge past 1024 KB, i.e. shared-level capacity
 * requirements are not significantly different.
 */

#include <cmath>

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesAll | kBenchUsesMrcMode);
    ScenarioSpec scn = loadBenchScenario("fig8_unified.scn");
    double scale = benchScale() * scn.scaleFactor;
    auto hadoop = averageSweep(benchGroup(scn, "Hadoop"),
                               scn.sweepKind, scale);
    auto parsec = averageSweep(benchGroup(scn, "PARSEC"),
                               scn.sweepKind, scale);

    printSweepFigure(
        "=== Figure 8: unified cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC"}, {hadoop, parsec});

    auto sizes = paperSweepSizesKb();
    double max_gap = 0.0;
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] >= 1024)
            max_gap = std::max(max_gap,
                               std::abs(hadoop[i] - parsec[i]));
    }
    std::cout << "\nMax |Hadoop - PARSEC| gap past 1024 KB: "
              << formatFixed(max_gap * 100, 3)
              << "% (paper: curves close after 1024 KB)\n";
    return 0;
}
