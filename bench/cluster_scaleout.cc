/**
 * @file
 * Extension — the shared-nothing scale-out behaviour behind the
 * paper's Section 1 framing ("scale-out solutions, which add more
 * nodes, are widely adopted"): the same jobs across 1..8 nodes.
 *
 * Two properties should emerge:
 *  - per-node micro-architecture is shard-invariant (which is the
 *    methodological justification for the paper's per-node counters
 *    and for this reproduction's single-node profiling), and
 *  - wall-clock speedup is near-linear for compute-dominated jobs and
 *    bends for shuffle-heavy ones as the exchange grows.
 */

#include "bench_common.hh"
#include "core/cluster.hh"
#include "workloads/text_workloads.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesNone);
    double scale = benchScale() * 2.0;  // cluster shards divide this
    std::cout << "=== Extension: shared-nothing scale-out (total scale "
              << scale << ") ===\n\n";

    struct Job
    {
        const char *name;
        TextAlgorithm algo;
        StackKind stack;
    };
    const Job jobs[] = {
        {"H-WordCount (compute-leaning)", TextAlgorithm::WordCount,
         StackKind::Hadoop},
        {"H-Sort (shuffle-heavy)", TextAlgorithm::Sort,
         StackKind::Hadoop},
    };

    for (const auto &job : jobs) {
        std::cout << "--- " << job.name << " ---\n";
        Table t({"nodes", "speedup", "network s", "node IPC",
                 "node L1I MPKI"});
        for (uint32_t nodes : {1u, 2u, 5u, 8u}) {
            ClusterConfig cluster;
            cluster.nodes = nodes;
            ClusterRun run = profileOnCluster(
                [&](double shard, uint64_t seed) -> WorkloadPtr {
                    return std::make_unique<TextWorkload>(
                        job.algo, job.stack, shard, seed);
                },
                xeonE5645(), scale, cluster);
            t.cell(static_cast<uint64_t>(nodes))
                .cell(run.speedup, 2)
                .cell(run.networkSeconds, 4)
                .cell(run.averageIpc(), 2)
                .cell(run.averageL1iMpki(), 1);
            t.endRow();
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Per-node IPC and L1I stay ~flat across cluster sizes: "
                 "the paper's per-node counters (and this repo's "
                 "single-node profiling) measure a shard-size-invariant "
                 "quantity.\n";
    return 0;
}
