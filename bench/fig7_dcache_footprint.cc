/**
 * @file
 * Figure 7 — data cache miss ratio versus capacity for the Hadoop
 * workloads and PARSEC. The paper's finding: contrary to intuition,
 * the curves converge past 64 KB — big data workloads do not have a
 * larger *data* working set than traditional workloads.
 */

#include <cmath>

#include "footprint_common.hh"

using namespace wcrt;
using namespace wcrt::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, kBenchUsesAll | kBenchUsesMrcMode);
    ScenarioSpec scn = loadBenchScenario("fig7_dcache.scn");
    double scale = benchScale() * scn.scaleFactor;
    auto hadoop = averageSweep(benchGroup(scn, "Hadoop"),
                               scn.sweepKind, scale);
    auto parsec = averageSweep(benchGroup(scn, "PARSEC"),
                               scn.sweepKind, scale);

    printSweepFigure(
        "=== Figure 7: data cache miss ratio vs capacity ===",
        {"Hadoop", "PARSEC"}, {hadoop, parsec});

    // Convergence check: past the L1D-class capacities the curves
    // should be close (the paper reports convergence after 64 KB).
    auto sizes = paperSweepSizesKb();
    for (uint32_t from : {64u, 128u}) {
        double max_gap = 0.0;
        for (size_t i = 0; i < sizes.size(); ++i) {
            if (sizes[i] >= from)
                max_gap = std::max(max_gap,
                                   std::abs(hadoop[i] - parsec[i]));
        }
        std::cout << (from == 64 ? "\n" : "") << "Max |Hadoop - PARSEC| "
                  << "gap past " << from << " KB: "
                  << formatFixed(max_gap * 100, 3)
                  << "% (paper: curves close after 64 KB)\n";
    }
    return 0;
}
