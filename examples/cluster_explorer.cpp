/**
 * @file
 * Scenario: "my benchmark suite is too big" — use the WCRT analyzer
 * to subset a custom workload list, exactly what the paper did to
 * take BigDataBench from 77 workloads to 17.
 *
 * Pass workload names (from the roster) as arguments, or run without
 * arguments for a ready-made mixed set. The tool profiles each
 * workload, clusters them in PCA space and tells you which ones you
 * actually need to run.
 *
 * Usage: example_cluster_explorer [k] [workload ...]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "core/analyzer.hh"
#include "core/profiler.hh"
#include "workloads/registry.hh"

using namespace wcrt;

int
main(int argc, char **argv)
{
    size_t k = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 5;
    std::vector<std::string> names;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i)
            names.push_back(argv[i]);
    } else {
        names = {"H-WordCount@wiki", "S-WordCount@wiki",
                 "M-WordCount@wiki", "H-Sort@wiki",   "S-Sort@wiki",
                 "M-Sort@wiki",      "H-Grep@wiki",   "S-Grep@wiki",
                 "M-Grep@wiki",      "I-SelectQuery", "I-OrderBy",
                 "H-TPC-DS-query3",  "S-Kmeans",      "S-PageRank",
                 "H-Read"};
    }
    if (k == 0 || k > names.size()) {
        std::cerr << "k must be in 1.." << names.size() << "\n";
        return 1;
    }

    std::cout << "Profiling " << names.size()
              << " workloads (45 metrics each)...\n";
    std::vector<MetricVector> metrics;
    for (const auto &name : names) {
        WorkloadPtr w = findWorkload(name).make(0.3);
        metrics.push_back(profileWorkload(*w, xeonE5645()).metrics);
        std::cout << "  " << name << "\n";
    }

    AnalyzerOptions opts;
    opts.clusters = k;
    SubsetReport report = reduceWorkloads(names, metrics, opts);

    std::cout << "\nPCA kept " << report.retainedComponents
              << " components ("
              << formatFixed(report.explainedVariance * 100, 1)
              << "% variance); silhouette "
              << formatFixed(report.silhouetteScore, 3) << "\n\n";

    Table t({"cluster", "run this one", "and it covers"});
    for (const auto &c : report.clusters) {
        std::string covered;
        for (const auto &m : c.members) {
            if (m == c.representative)
                continue;
            if (!covered.empty())
                covered += ", ";
            covered += m;
        }
        if (covered.empty())
            covered = "(only itself)";
        t.cell(static_cast<uint64_t>(c.id + 1))
            .cell(c.representative)
            .cell(covered);
        t.endRow();
    }
    t.print(std::cout);
    std::cout << "\nBenchmarking cost: " << names.size()
              << " workloads -> " << k << " representatives.\n";
    return 0;
}
