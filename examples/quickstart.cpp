/**
 * @file
 * Quickstart: profile one big data workload on the Xeon E5645 model
 * and print the measurements the paper reports per workload.
 *
 * Usage: example_quickstart [workload-name] [scale]
 *   e.g. example_quickstart H-WordCount 0.25
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "baselines/baselines.hh"
#include "core/profiler.hh"
#include "workloads/registry.hh"

using namespace wcrt;

namespace {

/** Look a name up among big data workloads and comparison baselines. */
WorkloadPtr
makeByName(const std::string &name, double scale)
{
    for (const auto &e : baselineWorkloads())
        if (e.name == name)
            return e.make(scale);
    return findWorkload(name).make(scale);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "H-WordCount";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    WorkloadPtr workload = makeByName(name, scale);

    std::cout << "Profiling " << workload->name() << " ("
              << toString(workload->category()) << ", "
              << toString(workload->stack()) << " stack) at scale "
              << scale << " on the Xeon E5645 model...\n\n";

    WorkloadRun run = profileWorkload(*workload, xeonE5645());

    Table t({"metric", "value"});
    t.cell("instructions").cell(run.report.instructions).endRow();
    t.cell("IPC").cell(run.report.ipc, 2).endRow();
    t.cell("branch ratio").cell(run.report.branchRatio, 3).endRow();
    t.cell("integer ratio").cell(run.report.integerRatio, 3).endRow();
    t.cell("FP ratio").cell(run.report.fpRatio, 3).endRow();
    t.cell("load ratio").cell(run.report.loadRatio, 3).endRow();
    t.cell("store ratio").cell(run.report.storeRatio, 3).endRow();
    t.cell("data movement (+branch)")
        .cell(run.report.dataMovementWithBranchRatio, 3)
        .endRow();
    t.cell("L1I MPKI").cell(run.report.l1iMpki, 2).endRow();
    t.cell("L1D MPKI").cell(run.report.l1dMpki, 2).endRow();
    t.cell("L2 MPKI").cell(run.report.l2Mpki, 2).endRow();
    t.cell("L3 MPKI").cell(run.report.l3Mpki, 2).endRow();
    t.cell("ITLB MPKI").cell(run.report.itlbMpki, 3).endRow();
    t.cell("DTLB MPKI").cell(run.report.dtlbMpki, 3).endRow();
    t.cell("branch mispredict").cell(run.report.branchMispredictRatio, 4)
        .endRow();
    t.cell("frontend stall ratio")
        .cell(run.report.frontendStallRatio, 3)
        .endRow();
    t.cell("code footprint KB").cell(run.report.codeFootprintKb, 1)
        .endRow();
    t.cell("achieved GFLOPS").cell(run.report.gflops, 3).endRow();
    t.print(std::cout);

    const BranchStats &bs = run.report.branchStats;
    std::cout << "\nBranch detail: cond " << bs.conditionalMispredicts
              << "/" << bs.conditional << ", indirect "
              << bs.indirectMispredicts << "/" << bs.indirect
              << ", return " << bs.returnMispredicts << "/" << bs.returns
              << ", BTB misses " << bs.btbMisses << "\n";
    std::cout << "\nSystem behaviour: " << toString(run.sysBehavior)
              << " (CPU util " << formatFixed(
                     run.sysProfile.cpuUtilization * 100, 1)
              << "%, IO wait "
              << formatFixed(run.sysProfile.ioWaitRatio * 100, 1)
              << "%, weighted disk IO time ratio "
              << formatFixed(run.sysProfile.weightedDiskIoTimeRatio, 1)
              << ")\n";
    std::cout << "Data behaviour:   " << run.data.describe() << "\n";
    return 0;
}
