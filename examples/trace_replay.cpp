/**
 * @file
 * Scenario: "simulating my workload twice is too slow" — capture the
 * op stream once into a `.wtrace` file, then replay it against as
 * many machine configurations as you like, in parallel, without ever
 * re-executing the workload.
 *
 * Usage: example_trace_replay [workload] [scale]
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "base/table.hh"
#include "core/profiler.hh"
#include "tracefile/capture.hh"
#include "tracefile/replay.hh"
#include "tracefile/trace_reader.hh"
#include "workloads/registry.hh"

using namespace wcrt;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "H-WordCount@wiki";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
    std::string path =
        (std::filesystem::temp_directory_path() / "example.wtrace")
            .string();

    // 1. Execute once, recording the stream.
    const WorkloadEntry &entry = findWorkload(name);
    WorkloadPtr w = entry.make(scale);
    auto t0 = std::chrono::steady_clock::now();
    CaptureResult cap = captureTrace(*w, path, scale);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "captured " << name << ": " << cap.ops << " ops -> "
              << cap.fileBytes << " bytes ("
              << std::chrono::duration<double>(t1 - t0).count()
              << " s)\n";

    TraceReader probe(path);
    std::cout << "stored at " << probe.bytesPerOp()
              << " bytes/op across " << probe.chunkCount()
              << " chunks\n\n";

    // 2. Replay the one stream across several machines in parallel.
    std::vector<MachineConfig> machines{xeonE5645(), atomD510(),
                                        atomInOrderSim(32),
                                        atomInOrderSim(128)};
    t0 = std::chrono::steady_clock::now();
    auto reports = replayOnConfigs(path, machines);
    t1 = std::chrono::steady_clock::now();

    Table t({"machine", "IPC", "L1I MPKI", "L2 MPKI"});
    for (const auto &r : reports) {
        t.cell(r.machine)
            .cell(r.ipc, 2)
            .cell(r.l1iMpki, 1)
            .cell(r.l2Mpki, 1);
        t.endRow();
    }
    t.print(std::cout);
    std::cout << "\nreplayed on " << machines.size() << " configs in "
              << std::chrono::duration<double>(t1 - t0).count()
              << " s using " << replayWorkers(0) << " workers\n";

    std::filesystem::remove(path);
    return 0;
}
