/**
 * @file
 * Scenario: "how much I-cache does my stack need?" — the paper's
 * Section 5.4 methodology as an API walkthrough: sweep cache
 * capacities for any workload and locate its instruction and data
 * working sets.
 *
 * Usage: example_footprint_study [workload-name] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "core/profiler.hh"
#include "sim/footprint.hh"
#include "workloads/registry.hh"

using namespace wcrt;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "H-WordCount";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.3;

    WorkloadPtr workload = findWorkload(name).make(scale);
    std::cout << "Cache-capacity sweep for " << workload->name()
              << " (Atom-like in-order config, 8-way, 64 B lines)\n\n";

    FootprintSweep sweep(paperSweepSizesKb());
    runThroughSink(*workload, sweep);

    auto icurve = sweep.missRatios(SweepKind::Instruction);
    auto dcurve = sweep.missRatios(SweepKind::Data);
    auto ucurve = sweep.missRatios(SweepKind::Unified);

    Table t({"capacity KB", "I-miss %", "D-miss %", "unified-miss %"});
    auto sizes = sweep.sizesKb();
    for (size_t i = 0; i < sizes.size(); ++i) {
        t.cell(static_cast<uint64_t>(sizes[i]))
            .cell(icurve[i] * 100, 3)
            .cell(dcurve[i] * 100, 3)
            .cell(ucurve[i] * 100, 3);
        t.endRow();
    }
    t.print(std::cout);

    // Working-set estimate: first capacity within 15% of the floor.
    auto knee = [&](const std::vector<double> &curve) {
        for (size_t i = 0; i < curve.size(); ++i)
            if (curve[i] <= curve.back() * 1.15 + 1e-6)
                return sizes[i];
        return sizes.back();
    };
    std::cout << "\nEstimated instruction working set: ~" << knee(icurve)
              << " KB\n";
    std::cout << "Estimated data working set:        ~" << knee(dcurve)
              << " KB\n";
    std::cout << "\n(" << sweep.instructions()
              << " instructions swept through "
              << sizes.size() * 3 << " cache instances.)\n";
    return 0;
}
