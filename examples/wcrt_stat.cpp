/**
 * @file
 * `perf stat` for the simulated testbed: run any workload (big data
 * roster or comparison baseline) on any of the machine models and
 * print counters in the familiar perf layout — the closest analogue
 * of what the paper's profiler nodes collected.
 *
 * Usage: example_wcrt_stat [-m xeon|atom] [-s scale] <workload>
 *        example_wcrt_stat --list
 */

#include <cstring>
#include <iomanip>
#include <iostream>

#include "base/table.hh"
#include "baselines/baselines.hh"
#include "core/profiler.hh"
#include "workloads/registry.hh"

using namespace wcrt;

namespace {

void
listWorkloads()
{
    std::cout << "Representative (Table 2):\n";
    for (const auto &e : representativeWorkloads())
        std::cout << "  " << e.name << "\n";
    std::cout << "MPI versions:\n";
    for (const auto &e : mpiWorkloads())
        std::cout << "  " << e.name << "\n";
    std::cout << "Baselines:\n";
    for (const auto &e : baselineWorkloads())
        std::cout << "  " << e.name << "\n";
    std::cout << "...plus the 77-entry roster (see "
                 "fullRoster()).\n";
}

WorkloadPtr
makeAny(const std::string &name, double scale)
{
    for (const auto &e : baselineWorkloads())
        if (e.name == name)
            return e.make(scale);
    return findWorkload(name).make(scale);
}

void
statLine(const std::string &value, const std::string &event,
         const std::string &derived = "")
{
    std::cout << std::setw(20) << value << "      " << std::left
              << std::setw(28) << event << std::right;
    if (!derived.empty())
        std::cout << "# " << derived;
    std::cout << "\n";
}

std::string
withCommas(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i >= lead && (i - lead) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string machine_name = "xeon";
    double scale = 0.5;
    std::string workload;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--list")) {
            listWorkloads();
            return 0;
        }
        if (!std::strcmp(argv[i], "-m") && i + 1 < argc) {
            machine_name = argv[++i];
        } else if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else {
            workload = argv[i];
        }
    }
    if (workload.empty()) {
        std::cerr << "usage: example_wcrt_stat [-m xeon|atom] "
                     "[-s scale] <workload> | --list\n";
        return 1;
    }

    MachineConfig machine =
        machine_name == "atom" ? atomD510() : xeonE5645();
    WorkloadPtr w = makeAny(workload, scale);
    WorkloadRun run = profileWorkload(*w, machine);
    const CpuReport &r = run.report;

    std::cout << "\n Performance counter stats for '" << run.name
              << "' (" << machine.name << " model, scale " << scale
              << "):\n\n";
    statLine(withCommas(r.instructions), "instructions",
             formatFixed(r.ipc, 2) + " insn per cycle");
    statLine(withCommas(static_cast<uint64_t>(r.cycles)), "cycles",
             "frontend stalls " +
                 formatFixed(r.frontendStallRatio * 100, 1) +
                 "%, backend " +
                 formatFixed(r.backendStallRatio * 100, 1) + "%");
    const BranchStats &bs = r.branchStats;
    statLine(withCommas(bs.total()), "branches",
             formatFixed(r.branchRatio * 100, 1) + "% of instructions");
    statLine(withCommas(bs.mispredicts()), "branch-misses",
             formatFixed(r.branchMispredictRatio * 100, 2) +
                 "% of all branches");
    statLine(withCommas(static_cast<uint64_t>(
                 r.l1iMpki * static_cast<double>(r.instructions) / 1e3)),
             "L1-icache-load-misses",
             formatFixed(r.l1iMpki, 2) + " MPKI");
    statLine(withCommas(static_cast<uint64_t>(
                 r.l1dMpki * static_cast<double>(r.instructions) / 1e3)),
             "L1-dcache-load-misses",
             formatFixed(r.l1dMpki, 2) + " MPKI");
    statLine(withCommas(static_cast<uint64_t>(
                 r.l2Mpki * static_cast<double>(r.instructions) / 1e3)),
             "l2_rqsts.miss", formatFixed(r.l2Mpki, 2) + " MPKI");
    statLine(withCommas(static_cast<uint64_t>(
                 r.l3Mpki * static_cast<double>(r.instructions) / 1e3)),
             "LLC-load-misses", formatFixed(r.l3Mpki, 2) + " MPKI");
    statLine(withCommas(static_cast<uint64_t>(
                 r.itlbMpki * static_cast<double>(r.instructions) /
                 1e3)),
             "iTLB-load-misses", formatFixed(r.itlbMpki, 3) + " MPKI");
    statLine(withCommas(static_cast<uint64_t>(
                 r.dtlbMpki * static_cast<double>(r.instructions) /
                 1e3)),
             "dTLB-load-misses", formatFixed(r.dtlbMpki, 3) + " MPKI");
    std::cout << "\n";
    statLine(formatFixed(r.gflops, 3), "GFLOPS (achieved)");
    statLine(formatFixed(r.codeFootprintKb, 0) + " KB",
             "instruction footprint");
    statLine(formatFixed(r.dataFootprintKb, 0) + " KB",
             "data footprint");
    std::cout << "\n " << toString(run.sysBehavior) << " ("
              << formatFixed(run.sysProfile.cpuUtilization * 100, 1)
              << "% cpu, "
              << formatFixed(run.sysProfile.ioWaitRatio * 100, 1)
              << "% iowait); " << run.data.describe() << "\n\n";
    return 0;
}
