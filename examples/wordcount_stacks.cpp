/**
 * @file
 * Scenario: "should I pay for the framework?" — the paper's Section
 * 5.5 question as an API walkthrough. Runs WordCount over the same
 * corpus on the MPI, Hadoop and Spark stack models and prints the
 * micro-architectural price of each layer of software.
 *
 * Usage: example_wordcount_stacks [scale]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "core/profiler.hh"
#include "workloads/text_workloads.hh"

using namespace wcrt;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    MachineConfig machine = xeonE5645();

    std::cout << "WordCount on three software stacks, " << machine.name
              << " model, scale " << scale << "\n\n";

    Table t({"stack", "instructions", "IPC", "L1I MPKI", "L2 MPKI",
             "frontend-stall", "intermediate/input"});

    for (StackKind stack :
         {StackKind::Mpi, StackKind::Hadoop, StackKind::Spark}) {
        TextWorkload w(TextAlgorithm::WordCount, stack, scale);
        WorkloadRun run = profileWorkload(w, machine);
        double ratio =
            run.data.inputBytes
                ? static_cast<double>(run.data.intermediateBytes) /
                      static_cast<double>(run.data.inputBytes)
                : 0.0;
        t.cell(toString(stack))
            .cell(run.report.instructions)
            .cell(run.report.ipc, 2)
            .cell(run.report.l1iMpki, 1)
            .cell(run.report.l2Mpki, 1)
            .cell(run.report.frontendStallRatio, 2)
            .cell(ratio, 2);
        t.endRow();
    }
    t.print(std::cout);

    std::cout
        << "\nReading the table the way the paper does:\n"
        << " - the thin MPI stack keeps the instruction working set\n"
        << "   L1I-resident (MPKI ~2) and the pipeline fed;\n"
        << " - the JVM stacks execute several times more instructions\n"
        << "   for the same logical job, spread over ~1 MB of\n"
        << "   framework code, so the front-end stalls dominate;\n"
        << " - that difference is software, not algorithm: co-design\n"
        << "   of stack and hardware is where the win is.\n";
    return 0;
}
