# Empty dependencies file for example_cluster_explorer.
# This may be replaced when dependencies are built.
