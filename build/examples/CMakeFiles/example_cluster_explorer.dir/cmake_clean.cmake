file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_explorer.dir/cluster_explorer.cpp.o"
  "CMakeFiles/example_cluster_explorer.dir/cluster_explorer.cpp.o.d"
  "example_cluster_explorer"
  "example_cluster_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
