# Empty compiler generated dependencies file for example_footprint_study.
# This may be replaced when dependencies are built.
