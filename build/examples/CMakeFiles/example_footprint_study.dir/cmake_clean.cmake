file(REMOVE_RECURSE
  "CMakeFiles/example_footprint_study.dir/footprint_study.cpp.o"
  "CMakeFiles/example_footprint_study.dir/footprint_study.cpp.o.d"
  "example_footprint_study"
  "example_footprint_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_footprint_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
