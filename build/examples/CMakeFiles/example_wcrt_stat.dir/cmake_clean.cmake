file(REMOVE_RECURSE
  "CMakeFiles/example_wcrt_stat.dir/wcrt_stat.cpp.o"
  "CMakeFiles/example_wcrt_stat.dir/wcrt_stat.cpp.o.d"
  "example_wcrt_stat"
  "example_wcrt_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wcrt_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
