# Empty dependencies file for example_wcrt_stat.
# This may be replaced when dependencies are built.
