# Empty compiler generated dependencies file for example_wordcount_stacks.
# This may be replaced when dependencies are built.
