file(REMOVE_RECURSE
  "CMakeFiles/example_wordcount_stacks.dir/wordcount_stacks.cpp.o"
  "CMakeFiles/example_wordcount_stacks.dir/wordcount_stacks.cpp.o.d"
  "example_wordcount_stacks"
  "example_wordcount_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wordcount_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
