file(REMOVE_RECURSE
  "libwcrt.a"
)
