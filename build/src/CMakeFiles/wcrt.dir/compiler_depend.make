# Empty compiler generated dependencies file for wcrt.
# This may be replaced when dependencies are built.
