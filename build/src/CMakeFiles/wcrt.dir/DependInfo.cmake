
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/wcrt.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/wcrt.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/base/rng.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/wcrt.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/base/strings.cc.o.d"
  "/root/repo/src/base/summary.cc" "src/CMakeFiles/wcrt.dir/base/summary.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/base/summary.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/wcrt.dir/base/table.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/base/table.cc.o.d"
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/wcrt.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/wcrt.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/CMakeFiles/wcrt.dir/core/cluster.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/core/cluster.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/wcrt.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/CMakeFiles/wcrt.dir/core/profiler.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/core/profiler.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/wcrt.dir/core/report.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/core/report.cc.o.d"
  "/root/repo/src/datagen/datasets.cc" "src/CMakeFiles/wcrt.dir/datagen/datasets.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/datagen/datasets.cc.o.d"
  "/root/repo/src/datagen/graph.cc" "src/CMakeFiles/wcrt.dir/datagen/graph.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/datagen/graph.cc.o.d"
  "/root/repo/src/datagen/table.cc" "src/CMakeFiles/wcrt.dir/datagen/table.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/datagen/table.cc.o.d"
  "/root/repo/src/datagen/text.cc" "src/CMakeFiles/wcrt.dir/datagen/text.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/datagen/text.cc.o.d"
  "/root/repo/src/sim/branch.cc" "src/CMakeFiles/wcrt.dir/sim/branch.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/branch.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/wcrt.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/corun.cc" "src/CMakeFiles/wcrt.dir/sim/corun.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/corun.cc.o.d"
  "/root/repo/src/sim/footprint.cc" "src/CMakeFiles/wcrt.dir/sim/footprint.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/footprint.cc.o.d"
  "/root/repo/src/sim/inorder_core.cc" "src/CMakeFiles/wcrt.dir/sim/inorder_core.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/inorder_core.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/wcrt.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/prefetcher.cc" "src/CMakeFiles/wcrt.dir/sim/prefetcher.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/prefetcher.cc.o.d"
  "/root/repo/src/sim/sim_cpu.cc" "src/CMakeFiles/wcrt.dir/sim/sim_cpu.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/sim_cpu.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/CMakeFiles/wcrt.dir/sim/tlb.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sim/tlb.cc.o.d"
  "/root/repo/src/stack/kvstore/store.cc" "src/CMakeFiles/wcrt.dir/stack/kvstore/store.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/kvstore/store.cc.o.d"
  "/root/repo/src/stack/mapreduce/engine.cc" "src/CMakeFiles/wcrt.dir/stack/mapreduce/engine.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/mapreduce/engine.cc.o.d"
  "/root/repo/src/stack/native/engine.cc" "src/CMakeFiles/wcrt.dir/stack/native/engine.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/native/engine.cc.o.d"
  "/root/repo/src/stack/rdd/engine.cc" "src/CMakeFiles/wcrt.dir/stack/rdd/engine.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/rdd/engine.cc.o.d"
  "/root/repo/src/stack/record.cc" "src/CMakeFiles/wcrt.dir/stack/record.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/record.cc.o.d"
  "/root/repo/src/stack/sql/vectorized.cc" "src/CMakeFiles/wcrt.dir/stack/sql/vectorized.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stack/sql/vectorized.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/CMakeFiles/wcrt.dir/stats/kmeans.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stats/kmeans.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/CMakeFiles/wcrt.dir/stats/matrix.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stats/matrix.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/CMakeFiles/wcrt.dir/stats/pca.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/stats/pca.cc.o.d"
  "/root/repo/src/sysmon/sysmon.cc" "src/CMakeFiles/wcrt.dir/sysmon/sysmon.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/sysmon/sysmon.cc.o.d"
  "/root/repo/src/trace/code_layout.cc" "src/CMakeFiles/wcrt.dir/trace/code_layout.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/code_layout.cc.o.d"
  "/root/repo/src/trace/idioms.cc" "src/CMakeFiles/wcrt.dir/trace/idioms.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/idioms.cc.o.d"
  "/root/repo/src/trace/mix_counter.cc" "src/CMakeFiles/wcrt.dir/trace/mix_counter.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/mix_counter.cc.o.d"
  "/root/repo/src/trace/sampling.cc" "src/CMakeFiles/wcrt.dir/trace/sampling.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/sampling.cc.o.d"
  "/root/repo/src/trace/tracer.cc" "src/CMakeFiles/wcrt.dir/trace/tracer.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/tracer.cc.o.d"
  "/root/repo/src/trace/virtual_heap.cc" "src/CMakeFiles/wcrt.dir/trace/virtual_heap.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/trace/virtual_heap.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/wcrt.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/ml_workloads.cc" "src/CMakeFiles/wcrt.dir/workloads/ml_workloads.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/ml_workloads.cc.o.d"
  "/root/repo/src/workloads/query_workloads.cc" "src/CMakeFiles/wcrt.dir/workloads/query_workloads.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/query_workloads.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/wcrt.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/service_workloads.cc" "src/CMakeFiles/wcrt.dir/workloads/service_workloads.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/service_workloads.cc.o.d"
  "/root/repo/src/workloads/text_workloads.cc" "src/CMakeFiles/wcrt.dir/workloads/text_workloads.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/text_workloads.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/wcrt.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/wcrt.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
