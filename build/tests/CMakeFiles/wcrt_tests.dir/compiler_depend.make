# Empty compiler generated dependencies file for wcrt_tests.
# This may be replaced when dependencies are built.
