
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyzer_test.cc" "tests/CMakeFiles/wcrt_tests.dir/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/analyzer_test.cc.o.d"
  "/root/repo/tests/base_test.cc" "tests/CMakeFiles/wcrt_tests.dir/base_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/base_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/wcrt_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/corun_report_test.cc" "tests/CMakeFiles/wcrt_tests.dir/corun_report_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/corun_report_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/wcrt_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/inorder_sampling_test.cc" "tests/CMakeFiles/wcrt_tests.dir/inorder_sampling_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/inorder_sampling_test.cc.o.d"
  "/root/repo/tests/kernels_test.cc" "tests/CMakeFiles/wcrt_tests.dir/kernels_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/kernels_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/wcrt_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_equivalence_test.cc" "tests/CMakeFiles/wcrt_tests.dir/query_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/query_equivalence_test.cc.o.d"
  "/root/repo/tests/sim_branch_test.cc" "tests/CMakeFiles/wcrt_tests.dir/sim_branch_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/sim_branch_test.cc.o.d"
  "/root/repo/tests/sim_cache_test.cc" "tests/CMakeFiles/wcrt_tests.dir/sim_cache_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/sim_cache_test.cc.o.d"
  "/root/repo/tests/sim_cpu_test.cc" "tests/CMakeFiles/wcrt_tests.dir/sim_cpu_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/sim_cpu_test.cc.o.d"
  "/root/repo/tests/stack_test.cc" "tests/CMakeFiles/wcrt_tests.dir/stack_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/stack_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/wcrt_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/sysmon_test.cc" "tests/CMakeFiles/wcrt_tests.dir/sysmon_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/sysmon_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/wcrt_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/wcrt_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/wcrt_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wcrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
