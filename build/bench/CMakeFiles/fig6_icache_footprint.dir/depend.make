# Empty dependencies file for fig6_icache_footprint.
# This may be replaced when dependencies are built.
