file(REMOVE_RECURSE
  "CMakeFiles/fig6_icache_footprint.dir/fig6_icache_footprint.cc.o"
  "CMakeFiles/fig6_icache_footprint.dir/fig6_icache_footprint.cc.o.d"
  "fig6_icache_footprint"
  "fig6_icache_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_icache_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
