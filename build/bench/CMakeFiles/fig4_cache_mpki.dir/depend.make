# Empty dependencies file for fig4_cache_mpki.
# This may be replaced when dependencies are built.
