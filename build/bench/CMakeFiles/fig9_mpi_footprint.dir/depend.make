# Empty dependencies file for fig9_mpi_footprint.
# This may be replaced when dependencies are built.
