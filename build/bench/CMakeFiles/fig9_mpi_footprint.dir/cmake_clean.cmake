file(REMOVE_RECURSE
  "CMakeFiles/fig9_mpi_footprint.dir/fig9_mpi_footprint.cc.o"
  "CMakeFiles/fig9_mpi_footprint.dir/fig9_mpi_footprint.cc.o.d"
  "fig9_mpi_footprint"
  "fig9_mpi_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mpi_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
