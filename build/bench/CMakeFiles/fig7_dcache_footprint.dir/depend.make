# Empty dependencies file for fig7_dcache_footprint.
# This may be replaced when dependencies are built.
