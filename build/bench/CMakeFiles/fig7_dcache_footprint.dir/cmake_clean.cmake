file(REMOVE_RECURSE
  "CMakeFiles/fig7_dcache_footprint.dir/fig7_dcache_footprint.cc.o"
  "CMakeFiles/fig7_dcache_footprint.dir/fig7_dcache_footprint.cc.o.d"
  "fig7_dcache_footprint"
  "fig7_dcache_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dcache_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
