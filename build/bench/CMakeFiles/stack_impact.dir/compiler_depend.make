# Empty compiler generated dependencies file for stack_impact.
# This may be replaced when dependencies are built.
