file(REMOVE_RECURSE
  "CMakeFiles/stack_impact.dir/stack_impact.cc.o"
  "CMakeFiles/stack_impact.dir/stack_impact.cc.o.d"
  "stack_impact"
  "stack_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
