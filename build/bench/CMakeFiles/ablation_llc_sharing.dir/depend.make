# Empty dependencies file for ablation_llc_sharing.
# This may be replaced when dependencies are built.
