file(REMOVE_RECURSE
  "CMakeFiles/ablation_llc_sharing.dir/ablation_llc_sharing.cc.o"
  "CMakeFiles/ablation_llc_sharing.dir/ablation_llc_sharing.cc.o.d"
  "ablation_llc_sharing"
  "ablation_llc_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_llc_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
