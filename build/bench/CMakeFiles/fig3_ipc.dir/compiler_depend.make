# Empty compiler generated dependencies file for fig3_ipc.
# This may be replaced when dependencies are built.
