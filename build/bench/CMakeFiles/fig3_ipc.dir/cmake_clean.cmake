file(REMOVE_RECURSE
  "CMakeFiles/fig3_ipc.dir/fig3_ipc.cc.o"
  "CMakeFiles/fig3_ipc.dir/fig3_ipc.cc.o.d"
  "fig3_ipc"
  "fig3_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
