# Empty dependencies file for table4_branch_prediction.
# This may be replaced when dependencies are built.
