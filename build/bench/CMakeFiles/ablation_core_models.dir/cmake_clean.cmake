file(REMOVE_RECURSE
  "CMakeFiles/ablation_core_models.dir/ablation_core_models.cc.o"
  "CMakeFiles/ablation_core_models.dir/ablation_core_models.cc.o.d"
  "ablation_core_models"
  "ablation_core_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_core_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
