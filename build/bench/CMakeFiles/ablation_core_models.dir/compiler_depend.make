# Empty compiler generated dependencies file for ablation_core_models.
# This may be replaced when dependencies are built.
