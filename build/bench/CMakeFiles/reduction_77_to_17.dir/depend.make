# Empty dependencies file for reduction_77_to_17.
# This may be replaced when dependencies are built.
