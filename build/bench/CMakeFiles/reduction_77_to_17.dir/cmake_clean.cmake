file(REMOVE_RECURSE
  "CMakeFiles/reduction_77_to_17.dir/reduction_77_to_17.cc.o"
  "CMakeFiles/reduction_77_to_17.dir/reduction_77_to_17.cc.o.d"
  "reduction_77_to_17"
  "reduction_77_to_17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_77_to_17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
