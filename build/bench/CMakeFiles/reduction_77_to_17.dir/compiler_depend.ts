# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reduction_77_to_17.
