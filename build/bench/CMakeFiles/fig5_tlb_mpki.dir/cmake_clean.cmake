file(REMOVE_RECURSE
  "CMakeFiles/fig5_tlb_mpki.dir/fig5_tlb_mpki.cc.o"
  "CMakeFiles/fig5_tlb_mpki.dir/fig5_tlb_mpki.cc.o.d"
  "fig5_tlb_mpki"
  "fig5_tlb_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tlb_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
