# Empty compiler generated dependencies file for fig5_tlb_mpki.
# This may be replaced when dependencies are built.
