file(REMOVE_RECURSE
  "CMakeFiles/fig2_integer_breakdown.dir/fig2_integer_breakdown.cc.o"
  "CMakeFiles/fig2_integer_breakdown.dir/fig2_integer_breakdown.cc.o.d"
  "fig2_integer_breakdown"
  "fig2_integer_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_integer_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
