# Empty dependencies file for cluster_scaleout.
# This may be replaced when dependencies are built.
