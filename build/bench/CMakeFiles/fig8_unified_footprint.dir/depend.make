# Empty dependencies file for fig8_unified_footprint.
# This may be replaced when dependencies are built.
