file(REMOVE_RECURSE
  "CMakeFiles/fig8_unified_footprint.dir/fig8_unified_footprint.cc.o"
  "CMakeFiles/fig8_unified_footprint.dir/fig8_unified_footprint.cc.o.d"
  "fig8_unified_footprint"
  "fig8_unified_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_unified_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
