/**
 * @file
 * Single-pass miss-ratio curves via Mattson LRU stack distances.
 *
 * The capacity sweeps behind Figures 6-9 ask one question per rung:
 * how many accesses miss in an LRU cache of capacity C? For fully
 * associative LRU the answer for *every* C falls out of one pass over
 * the trace: an access hits a cache of C lines exactly when its stack
 * distance — the number of distinct lines touched since the previous
 * access to the same line — is below C (Mattson's inclusion
 * property). This sink maintains an LRU stack per reference stream
 * (instruction / data / unified) as an order-statistic structure — a
 * Fenwick tree over last-access time slots plus an open-addressing
 * line→slot map — and counts a distance histogram in O(log N) per
 * distinct-line reference. A capacity ladder of any length is then a
 * histogram walk: K rungs cost one profile pass instead of K cache
 * simulations.
 *
 * The batch path reuses the sweep's shared block machinery
 * (sim/line_runs.hh): line ids are precomputed with the
 * AVX2-dispatched shift and each stream is run-length compressed
 * once, so only run heads reach the tree — the count-1 tail of a run
 * is a guaranteed distance-zero reuse. The three streams are
 * independent (separate stacks, maps and histograms), so with a
 * worker cap above 1 they profile in parallel on the shared pool,
 * bit-identical to the serial order.
 *
 * What this profile is *not*: a set-associative model. The conflict
 * misses an 8-way rung sees do not exist here — though the gap runs
 * both ways, since a loop slightly wider than the capacity thrashes
 * fully-associative LRU where an uneven set mapping retains lines.
 * The replay layer's Verify mode (tracefile/replay.hh) measures that
 * divergence against the sharded FootprintSweep oracle, and the
 * fully-associative equivalence is enforced bit-exactly by tests.
 */

#ifndef WCRT_SIM_STACK_DISTANCE_HH
#define WCRT_SIM_STACK_DISTANCE_HH

#include <cstdint>
#include <vector>

#include "sim/footprint.hh"
#include "sim/line_runs.hh"
#include "trace/microop.hh"

namespace wcrt {

/**
 * Reuse-distance profile sink: one pass, whole miss-ratio curve.
 */
class StackDistanceProfile : public TraceSink
{
  public:
    /**
     * @param line_bytes Cache-line size the distances are counted in
     *        (paper: 64; must be a power of two).
     * @param workers Executor cap for the per-stream fan-out on the
     *        shared worker pool; 0 or 1 profiles all three streams on
     *        the calling thread (bit-identical either way).
     * @param initial_slots Starting capacity of the time-slot space
     *        (power of two). The profile compacts and regrows the
     *        slot space as the clock fills it; the default is sized
     *        so steady-state traces rarely compact. Tests shrink it
     *        to exercise the compaction path.
     */
    explicit StackDistanceProfile(uint32_t line_bytes = 64,
                                  unsigned workers = 0,
                                  size_t initial_slots = 1 << 16);

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: one line-id precompute + RLE pass per block
     * (shared with FootprintSweep), then each stream's run heads walk
     * that stream's stack tree — in parallel across the three streams
     * when a worker cap was given.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /**
     * Miss ratios of a fully-associative LRU cache at each capacity,
     * straight from the distance histogram: an access with distance d
     * hits every capacity of more than d lines. Identical to running
     * FootprintSweep with assoc = capacity/line_bytes at each rung —
     * but every rung is a histogram walk, so arbitrary ladders cost
     * nothing extra.
     */
    std::vector<double> missRatios(
        SweepKind kind, const std::vector<uint32_t> &sizes_kb) const;

    /** Instructions consumed. */
    uint64_t instructions() const { return ops; }

    /** Accesses counted into one stream's profile. */
    uint64_t accesses(SweepKind kind) const;

    /** Compulsory (first-touch) misses of one stream. */
    uint64_t coldMisses(SweepKind kind) const;

    /** Distinct lines one stream touched (its total footprint). */
    uint64_t distinctLines(SweepKind kind) const;

    /**
     * The raw distance histogram of one stream: histogram(k)[d] =
     * accesses whose stack distance was exactly d distinct lines.
     * Cold misses are not in the histogram (see coldMisses()).
     */
    const std::vector<uint64_t> &histogram(SweepKind kind) const;

  private:
    /**
     * One reference stream's LRU stack profile.
     *
     * The stack is represented positionally: every live line owns one
     * set bit in a Fenwick tree indexed by its last-access time slot,
     * so "distinct lines touched since slot t" is a rank query
     * (live - prefix(t)) in O(log slots). The clock allocates slots
     * monotonically; when it reaches the slot capacity the live slots
     * are renumbered densely (compact()) — order-preserving, so every
     * later distance is unchanged — and the slot space regrows to
     * keep at least half free, which makes compaction amortized
     * O(log) per access.
     */
    struct Stream
    {
        /** Open-addressing key sentinel; line ids are addr >> shift. */
        static constexpr uint64_t kEmptyKey = ~0ull;
        /** lastLine sentinel distinct from any real line id. */
        static constexpr uint64_t kNoLine = ~0ull - 1;

        std::vector<uint64_t> keys;  //!< line ids, kEmptyKey = free
        std::vector<uint64_t> vals;  //!< last-access time slot
        size_t live = 0;             //!< distinct lines seen
        std::vector<uint64_t> fenwick;  //!< 1-based BIT over slots
        uint64_t clock = 0;          //!< next unused time slot
        size_t slotCap = 0;          //!< fenwick capacity (slots)
        std::vector<uint64_t> hist;  //!< hist[d] = reuses at distance d
        uint64_t cold = 0;           //!< first-touch misses
        uint64_t total = 0;          //!< accesses profiled
        uint64_t lastLine = kNoLine; //!< merges runs across blocks

        void init(size_t slots);
        void access(uint64_t line, uint32_t count);

      private:
        void bump(uint64_t d, uint64_t n);
        void fenAdd(size_t slot, int64_t delta);
        uint64_t fenPrefix(size_t slot) const;
        size_t probe(uint64_t line) const;
        void growMapIfNeeded();
        void compact();
    };

    const Stream &streamFor(SweepKind kind) const;

    Stream instrStream;
    Stream dataStream;
    Stream uniStream;
    LineRunStreams runs;  //!< per-block RLE scratch
    uint32_t lineShift = 6;
    uint32_t lineBytes = 64;
    unsigned poolCap = 0;  //!< executor cap on the shared pool
    uint64_t ops = 0;
};

} // namespace wcrt

#endif // WCRT_SIM_STACK_DISTANCE_HH
