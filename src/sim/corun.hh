/**
 * @file
 * Co-run model: two workloads sharing the last-level cache.
 *
 * The paper's 45 metrics include off-core requests and snoop
 * responses, and its related work (Tang et al.) studies datacenter
 * resource sharing. This model makes both measurable: two traces are
 * captured, then replayed interleaved (proportionally to their
 * lengths) through private L1/L2 hierarchies into one shared L3. The
 * interesting outputs are each workload's solo-vs-co-run L3 MPKI (the
 * contention penalty) and the snoop traffic the sharing creates.
 */

#ifndef WCRT_SIM_CORUN_HH
#define WCRT_SIM_CORUN_HH

#include <vector>

#include "sim/machine.hh"
#include "trace/microop.hh"

namespace wcrt {

/** Per-workload co-run measurements. */
struct CoRunLane
{
    uint64_t instructions = 0;
    uint64_t l2Misses = 0;       //!< requests reaching the shared L3
    uint64_t l3MissesSolo = 0;   //!< with the L3 to itself
    uint64_t l3MissesShared = 0; //!< sharing the L3 with the co-runner

    double soloL3Mpki() const;
    double sharedL3Mpki() const;

    /** Shared / solo L3 MPKI (1.0 = no interference). */
    double degradation() const;
};

/** Result of one co-run experiment. */
struct CoRunResult
{
    CoRunLane a;
    CoRunLane b;
    uint64_t snoopHits = 0;  //!< shared-L3 hits on lines the other
                             //!< lane installed (cross-lane reuse)
};

/**
 * Record a trace into memory for replay.
 */
class TraceRecorder : public TraceSink
{
  public:
    void consume(const MicroOp &op) override { ops.push_back(op); }

    void
    consumeBatch(const OpBlockView &batch) override
    {
        ops.reserve(ops.size() + batch.count);
        for (size_t i = 0; i < batch.count; ++i)
            ops.push_back(batch[i]);
    }

    const std::vector<MicroOp> &trace() const { return ops; }

  private:
    std::vector<MicroOp> ops;
};

/**
 * Replay two recorded traces through private L1/L2 and a shared L3.
 *
 * @param machine Geometry for the private levels and the shared L3.
 * @param a First workload's trace.
 * @param b Second workload's trace.
 */
CoRunResult coRun(const MachineConfig &machine,
                  const std::vector<MicroOp> &a,
                  const std::vector<MicroOp> &b);

} // namespace wcrt

#endif // WCRT_SIM_CORUN_HH
