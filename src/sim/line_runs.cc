#include "sim/line_runs.hh"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define WCRT_LINE_RUNS_AVX2 1
#endif

namespace wcrt {

namespace {

void
shiftLinesScalar(const uint64_t *addrs, size_t begin, size_t end,
                 uint32_t shift, uint64_t *out)
{
    for (size_t i = begin; i < end; ++i)
        out[i] = addrs[i] >> shift;
}

#ifdef WCRT_LINE_RUNS_AVX2

/**
 * AVX2 line-id precompute: four 64-bit logical right shifts per
 * vector. Returns the index shifted up to; the caller finishes the
 * tail with shiftLinesScalar.
 */
__attribute__((target("avx2"))) size_t
shiftLinesAvx2(const uint64_t *addrs, size_t count, uint32_t shift,
               uint64_t *out)
{
    const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addrs + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_srl_epi64(v, sh));
    }
    return i;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

#endif // WCRT_LINE_RUNS_AVX2

} // namespace

void
shiftLines(const uint64_t *addrs, size_t count, uint32_t shift,
           uint64_t *out)
{
    size_t i = 0;
#ifdef WCRT_LINE_RUNS_AVX2
    if (count >= 16 && haveAvx2())
        i = shiftLinesAvx2(addrs, count, shift, out);
#endif
    shiftLinesScalar(addrs, i, count, shift, out);
}

void
LineRunStreams::build(const OpBlockView &batch, uint32_t line_shift,
                      bool split_on_write)
{
    const size_t count = batch.count;
    if (pcLines.size() < count) {
        pcLines.resize(count);
        memLines.resize(count);
    }
    shiftLines(batch.pcs, count, line_shift, pcLines.data());
    shiftLines(batch.memAddrs, count, line_shift, memLines.data());

    instrRuns.clear();
    dataRuns.clear();
    uniRuns.clear();
    auto extend = [split_on_write](std::vector<LineRun> &runs,
                                   uint64_t line, bool w) {
        if (!runs.empty()) {
            LineRun &back = runs.back();
            if (back.line == line &&
                (!split_on_write || (back.write != 0) == w)) {
                ++back.count;
                return;
            }
        }
        runs.push_back(
            LineRun{line, 1, static_cast<uint8_t>(w ? 1 : 0)});
    };
    for (size_t i = 0; i < count; ++i) {
        uint64_t pc_line = pcLines[i];
        extend(instrRuns, pc_line, false);
        extend(uniRuns, pc_line, false);
        if (batch.memSizes[i] != 0) {
            bool is_write = batch.kinds[i] == OpKind::Store;
            uint64_t mem_line = memLines[i];
            extend(dataRuns, mem_line, is_write);
            extend(uniRuns, mem_line, is_write);
        }
    }
}

} // namespace wcrt
