#include "sim/branch.hh"

#include <bit>

#include "base/logging.hh"

namespace wcrt {

namespace {

uint64_t
hashPc(uint64_t pc)
{
    // Drop the low alignment bits, then mix thoroughly in both
    // directions so even the lowest result bits depend on all input
    // bits (the history fold uses the low two bits).
    uint64_t x = pc >> 2;
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    return x;
}

} // namespace

BranchUnit::BranchUnit(const BranchConfig &config) : cfg(config)
{
    if (!std::has_single_bit(cfg.phtEntries))
        wcrt_fatal("PHT entries must be a power of two");
    if (!std::has_single_bit(cfg.btbEntries))
        wcrt_fatal("BTB entries must be a power of two");
    pht.assign(cfg.phtEntries, 1);  // weakly not-taken
    chooser.assign(cfg.phtEntries, 1);
    if (cfg.hasLoopPredictor)
        loops.assign(cfg.loopEntries, LoopEntry{});
    if (cfg.hasIndirectPredictor)
        indirectTargets.assign(cfg.indirectEntries, 0);
    btb.assign(cfg.btbEntries, BtbEntry{});
    ras.assign(cfg.rasEntries, 0);
}

uint8_t
BranchUnit::bump(uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

bool
BranchUnit::btbLookupUpdate(uint64_t pc, uint64_t target)
{
    ++btbTick;
    uint32_t sets = cfg.btbEntries / cfg.btbAssoc;
    uint32_t set = static_cast<uint32_t>(hashPc(pc) & (sets - 1));
    BtbEntry *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];
    BtbEntry *victim = base;
    bool hit = false;
    for (uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.pc == pc) {
            hit = e.target == target;
            e.target = target;
            e.lastUse = btbTick;
            return hit;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = btbTick;
    return false;
}

void
BranchUnit::pushRas(uint64_t return_pc)
{
    if (cfg.rasEntries == 0)
        return;
    rasTop = (rasTop + 1) % cfg.rasEntries;
    ras[rasTop] = return_pc;
    if (rasDepth < cfg.rasEntries)
        ++rasDepth;
}

bool
BranchUnit::predictConditional(const MicroOp &op)
{
    ++st.conditional;
    if (op.taken)
        ++st.taken;

    uint64_t idx_hash = hashPc(op.pc);
    uint64_t hist_mask = (1ull << cfg.historyBits) - 1;
    size_t pht_idx = static_cast<size_t>(
        (idx_hash ^ (history & hist_mask)) & (cfg.phtEntries - 1));
    bool gshare_pred = counterTaken(pht[pht_idx]);

    bool prediction = gshare_pred;
    LoopEntry *loop = nullptr;
    bool loop_confident = false;
    if (cfg.hasLoopPredictor) {
        size_t lidx = static_cast<size_t>(idx_hash % loops.size());
        loop = &loops[lidx];
        if (loop->valid && loop->pc == op.pc && loop->confidence >= 2) {
            loop_confident = true;
            bool loop_pred = loop->currentCount + 1 < loop->tripCount;
            size_t cidx =
                static_cast<size_t>(idx_hash & (cfg.phtEntries - 1));
            if (chooser[cidx] >= 2)
                prediction = loop_pred;
        }
    }

    bool direction_correct = prediction == op.taken;
    // A taken branch redirects through the BTB; a missing target costs
    // a short decode-resteer bubble (tracked separately), but direct
    // branches recover at decode, so it is not a full misprediction —
    // matching how BR_MISP_RETIRED counts on real hardware.
    bool btb_ok = true;
    if (op.taken && !btbLookupUpdate(op.pc, op.target)) {
        ++st.btbMisses;
        btb_ok = false;
    }
    if (!direction_correct ||
        (!btb_ok && cfg.btbMissIsMispredict)) {
        ++st.conditionalMispredicts;
    }

    // Train gshare.
    pht[pht_idx] = bump(pht[pht_idx], op.taken);
    history = ((history << 1) | (op.taken ? 1 : 0)) & hist_mask;

    // Train the loop predictor and the chooser.
    if (cfg.hasLoopPredictor && loop) {
        if (loop->valid && loop->pc == op.pc) {
            if (op.taken) {
                ++loop->currentCount;
            } else {
                if (loop->tripCount == loop->currentCount + 1) {
                    if (loop->confidence < 3)
                        ++loop->confidence;
                } else {
                    loop->tripCount = loop->currentCount + 1;
                    loop->confidence = 0;
                }
                loop->currentCount = 0;
            }
            if (loop_confident) {
                bool loop_pred_was =
                    loop->currentCount < loop->tripCount &&
                    loop->currentCount != 0;
                // Update chooser toward whichever component was right.
                size_t cidx =
                    static_cast<size_t>(idx_hash & (cfg.phtEntries - 1));
                bool loop_right = loop_pred_was == op.taken;
                bool gshare_right = gshare_pred == op.taken;
                if (loop_right != gshare_right)
                    chooser[cidx] = bump(chooser[cidx], loop_right);
            }
        } else {
            loop->valid = true;
            loop->pc = op.pc;
            loop->tripCount = 0;
            loop->currentCount = op.taken ? 1 : 0;
            loop->confidence = 0;
        }
    }
    return direction_correct;
}

bool
BranchUnit::predictIndirect(const MicroOp &op)
{
    ++st.indirect;
    ++st.taken;
    bool correct = false;
    if (cfg.hasIndirectPredictor) {
        uint64_t hist_mask = (1ull << cfg.historyBits) - 1;
        size_t idx = static_cast<size_t>(
            (hashPc(op.pc) ^ ((history & hist_mask) * 0x2545f4914f6cdd1dull)) %
            indirectTargets.size());
        correct = indirectTargets[idx] == op.target;
        indirectTargets[idx] = op.target;
        btbLookupUpdate(op.pc, op.target);
    } else {
        // Only the BTB's last-seen target is available.
        correct = btbLookupUpdate(op.pc, op.target);
    }
    if (!correct) {
        ++st.indirectMispredicts;
        ++st.btbMisses;
    }
    history = ((history << 2) | (hashPc(op.target) & 3)) &
              ((1ull << cfg.historyBits) - 1);
    return correct;
}

bool
BranchUnit::predictReturn(const MicroOp &op)
{
    ++st.returns;
    ++st.taken;
    bool correct = false;
    if (cfg.rasEntries > 0 && rasDepth > 0) {
        correct = ras[rasTop] == op.target;
        rasTop = (rasTop + cfg.rasEntries - 1) % cfg.rasEntries;
        --rasDepth;
    }
    if (!correct)
        ++st.returnMispredicts;
    return correct;
}

bool
BranchUnit::predict(const MicroOp &op)
{
    switch (op.kind) {
      case OpKind::BranchCond:
        return predictConditional(op);
      case OpKind::BranchUncond:
        // Unconditional direct jumps only need a BTB target; a miss is
        // a decode resteer on OoO cores, a full refetch on in-order.
        ++st.unconditional;
        ++st.taken;
        if (!btbLookupUpdate(op.pc, op.target)) {
            ++st.btbMisses;
            if (cfg.btbMissIsMispredict)
                ++st.unconditionalMispredicts;
            return false;
        }
        return true;
      case OpKind::BranchIndirect:
        return predictIndirect(op);
      case OpKind::Call:
        pushRas(op.pc + op.size);
        if (!btbLookupUpdate(op.pc, op.target))
            ++st.btbMisses;
        return true;
      case OpKind::CallIndirect:
        pushRas(op.pc + op.size);
        return predictIndirect(op);
      case OpKind::Return:
        return predictReturn(op);
      default:
        return true;
    }
}

BranchConfig
atomD510Branch()
{
    BranchConfig cfg;
    cfg.historyBits = 8;
    cfg.phtEntries = 1024;
    cfg.btbEntries = 128;
    cfg.btbAssoc = 4;
    cfg.hasLoopPredictor = false;
    cfg.hasIndirectPredictor = false;
    cfg.rasEntries = 8;
    cfg.mispredictPenalty = 15.0;
    cfg.btbMissIsMispredict = true;  // in-order refetch
    return cfg;
}

BranchConfig
xeonE5645Branch()
{
    BranchConfig cfg;
    cfg.historyBits = 14;
    cfg.phtEntries = 16384;
    cfg.btbEntries = 8192;
    cfg.btbAssoc = 4;
    cfg.hasLoopPredictor = true;
    cfg.loopEntries = 256;
    cfg.hasIndirectPredictor = true;
    cfg.indirectEntries = 1024;
    cfg.rasEntries = 16;
    cfg.mispredictPenalty = 12.0;
    return cfg;
}

} // namespace wcrt
