/**
 * @file
 * The trace-driven CPU model: the stand-in for `perf` on the E5645.
 *
 * SimCpu consumes a micro-op stream and drives the caches, TLBs and
 * branch unit of a MachineConfig, accumulating the raw event counts
 * the paper reads from hardware counters. An analytic pipeline model
 * then converts events into cycles/IPC, and report() flattens
 * everything into the 45-metric vector the WCRT analyzer clusters.
 */

#ifndef WCRT_SIM_SIM_CPU_HH
#define WCRT_SIM_SIM_CPU_HH

#include <memory>
#include <unordered_set>

#include "sim/machine.hh"
#include "trace/microop.hh"
#include "trace/mix_counter.hh"

namespace wcrt {

/** Everything SimCpu measured, in raw and derived form. */
struct CpuReport
{
    std::string machine;
    uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    double cpi = 0.0;

    /** @name Instruction mix (fractions of all instructions). */
    /** @{ */
    double loadRatio = 0.0;
    double storeRatio = 0.0;
    double branchRatio = 0.0;
    double integerRatio = 0.0;
    double fpRatio = 0.0;
    double otherRatio = 0.0;
    double intAddressShare = 0.0;
    double fpAddressShare = 0.0;
    double otherIntShare = 0.0;
    double dataMovementRatio = 0.0;
    double dataMovementWithBranchRatio = 0.0;
    /** @} */

    /** @name Cache behaviour. */
    /** @{ */
    double l1iMpki = 0.0;
    double l1iMissRatio = 0.0;
    double l1dMpki = 0.0;
    double l1dMissRatio = 0.0;
    double l2Mpki = 0.0;
    double l2MissRatio = 0.0;
    double l3Mpki = 0.0;
    double l3MissRatio = 0.0;
    /** @} */

    /** @name TLB behaviour. */
    /** @{ */
    double itlbMpki = 0.0;
    double dtlbMpki = 0.0;
    /** @} */

    /** @name Branch behaviour. */
    /** @{ */
    double branchMispredictRatio = 0.0;
    double branchTakenRatio = 0.0;
    double btbMissPki = 0.0;
    BranchStats branchStats;  //!< raw component counters
    /** @} */

    /** @name Pipeline behaviour. */
    /** @{ */
    double frontendStallRatio = 0.0;  //!< front-end stall cycles/cycles
    double backendStallRatio = 0.0;   //!< data-side stall cycles/cycles
    double basicBlockSize = 0.0;      //!< instructions per branch
    /** @} */

    /** @name Off-core traffic and locality. */
    /** @{ */
    double offcoreRequestPki = 0.0;   //!< LLC-level requests PKI
    double snoopResponsePki = 0.0;    //!< modelled cross-core snoops PKI
    double memoryBytesPki = 0.0;      //!< DRAM bytes moved PKI
    double codeFootprintKb = 0.0;     //!< unique code lines touched
    double dataFootprintKb = 0.0;     //!< unique data pages touched
    /** @} */

    /** @name Intensity / parallelism. */
    /** @{ */
    double fpPki = 0.0;
    double operationIntensity = 0.0;  //!< FP ops per DRAM byte
    double integerIntensity = 0.0;    //!< integer ops per DRAM byte
    double mlp = 0.0;                 //!< effective data-miss overlap
    double gflops = 0.0;              //!< achieved GFLOPS at config freq
    /** @} */
};

/**
 * Trace-driven model of one core plus its cache hierarchy.
 */
class SimCpu : public TraceSink
{
  public:
    explicit SimCpu(const MachineConfig &config);

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: event counters accumulate in locals, the
     * footprint-set inserts are line/page-memoized across the block,
     * and the L3 presence check is hoisted out of the loop.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** Finish accounting and produce the report. */
    CpuReport report() const;

    /** Raw access to component statistics (tests, benches). */
    const Cache &l1i() const { return l1iCache; }
    const Cache &l1d() const { return l1dCache; }
    const Cache &l2() const { return l2Cache; }
    const Cache &l3() const { return l3Cache; }
    const Tlb &itlb() const { return itlbUnit; }
    const Tlb &dtlb() const { return dtlbUnit; }
    const BranchUnit &branches() const { return branchUnit; }
    const MixCounter &mix() const { return mixCounter; }

    /** Instructions consumed so far. */
    uint64_t instructions() const { return mixCounter.total(); }

  private:
    MachineConfig cfg;
    Cache l1iCache;
    Cache l1dCache;
    Cache l2Cache;
    Cache l3Cache;
    Tlb itlbUnit;
    Tlb dtlbUnit;
    BranchUnit branchUnit;
    StreamPrefetcher prefetcher;
    MixCounter mixCounter;

    uint64_t itlbMisses = 0;
    uint64_t dtlbMisses = 0;
    uint64_t l1iMissCount = 0;
    uint64_t l1dMissCount = 0;
    uint64_t l2MissesFromL1i = 0;
    uint64_t l2MissesFromL1d = 0;
    uint64_t l3MissesTotal = 0;
    uint64_t storesMissingL3 = 0;
    std::unordered_set<uint64_t> codeLines;
    std::unordered_set<uint64_t> dataPages;
};

} // namespace wcrt

#endif // WCRT_SIM_SIM_CPU_HH
