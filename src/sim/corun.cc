#include "sim/corun.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/cache.hh"

namespace wcrt {

double
CoRunLane::soloL3Mpki() const
{
    return instructions ? static_cast<double>(l3MissesSolo) /
                              (static_cast<double>(instructions) / 1e3)
                        : 0.0;
}

double
CoRunLane::sharedL3Mpki() const
{
    return instructions
               ? static_cast<double>(l3MissesShared) /
                     (static_cast<double>(instructions) / 1e3)
               : 0.0;
}

double
CoRunLane::degradation() const
{
    double solo = soloL3Mpki();
    return solo > 0.0 ? sharedL3Mpki() / solo : 1.0;
}

namespace {

/** One lane's private hierarchy; forwards L2 misses to a shared L3. */
struct Lane
{
    Lane(const MachineConfig &m, const std::vector<MicroOp> &trace,
         uint64_t address_offset)
        : l1i(m.l1i), l1d(m.l1d), l2(m.l2), trace(trace),
          offset(address_offset)
    {
    }

    Cache l1i, l1d, l2;
    const std::vector<MicroOp> &trace;
    uint64_t offset;  //!< distinct processes live at distinct addresses
    size_t cursor = 0;
    CoRunLane stats;

    /**
     * Process the next op; addresses missing every private level are
     * forwarded to `l3`, counting into `miss_counter`.
     */
    void
    step(Cache &l3, uint64_t &miss_counter, uint64_t lane_tag,
         std::vector<uint8_t> *owner_map, uint64_t &snoops)
    {
        const MicroOp &op = trace[cursor++];
        uint64_t pc = op.pc + offset;
        uint64_t mem = op.memAddr + offset;
        auto to_l3 = [&](uint64_t addr, bool is_write) {
            bool hit = l3.access(addr, is_write);
            if (owner_map) {
                // Track which lane last touched each L3 frame slot; a
                // fill into a slot the other lane held models the
                // coherence/snoop traffic contention creates.
                size_t slot = (addr >> 6) % owner_map->size();
                if (!hit && (*owner_map)[slot] ==
                                static_cast<uint8_t>(3 - lane_tag))
                    ++snoops;
                (*owner_map)[slot] = static_cast<uint8_t>(lane_tag);
            }
            if (!hit)
                ++miss_counter;
        };
        if (!l1i.access(pc, false) && !l2.access(pc, false))
            to_l3(pc, false);
        if (op.memSize > 0) {
            bool is_write = op.kind == OpKind::Store;
            if (!l1d.access(mem, is_write) && !l2.access(mem, is_write))
                to_l3(mem, is_write);
        }
    }
};

/** Replay one trace alone through private levels + its own L3. */
void
soloPass(const MachineConfig &machine, const std::vector<MicroOp> &trace,
         CoRunLane &lane)
{
    Lane solo(machine, trace, 0);
    Cache l3(machine.l3);
    uint64_t misses = 0;
    uint64_t snoops = 0;
    while (solo.cursor < trace.size())
        solo.step(l3, misses, 1, nullptr, snoops);
    lane.instructions = trace.size();
    lane.l3MissesSolo = misses;
    lane.l2Misses = l3.accesses();
}

} // namespace

CoRunResult
coRun(const MachineConfig &machine, const std::vector<MicroOp> &a,
      const std::vector<MicroOp> &b)
{
    if (a.empty() || b.empty())
        wcrt_fatal("co-run needs two non-empty traces");

    CoRunResult result;
    soloPass(machine, a, result.a);
    soloPass(machine, b, result.b);

    // Shared pass: interleave proportionally so both lanes finish
    // together (they time-share the socket).
    // Two processes: disjoint physical address spaces.
    Lane lane_a(machine, a, 0);
    Lane lane_b(machine, b, 1ull << 44);
    Cache shared_l3(machine.l3);
    std::vector<uint8_t> owner(machine.l3.sizeBytes / 64, 0);
    uint64_t snoops = 0;

    double ratio = static_cast<double>(a.size()) /
                   static_cast<double>(b.size());
    double credit_a = 0.0;
    while (lane_a.cursor < a.size() || lane_b.cursor < b.size()) {
        credit_a += ratio;
        while (credit_a >= 1.0 && lane_a.cursor < a.size()) {
            credit_a -= 1.0;
            lane_a.step(shared_l3, result.a.l3MissesShared, 1, &owner,
                        snoops);
        }
        if (lane_b.cursor < b.size())
            lane_b.step(shared_l3, result.b.l3MissesShared, 2, &owner,
                        snoops);
        if (credit_a < 1.0 && lane_a.cursor < a.size() &&
            lane_b.cursor >= b.size()) {
            // B finished; drain A.
            lane_a.step(shared_l3, result.a.l3MissesShared, 1, &owner,
                        snoops);
        }
    }
    result.snoopHits = snoops;
    return result;
}

} // namespace wcrt
