/**
 * @file
 * Shared per-block cache-line reference machinery for the capacity
 * sinks.
 *
 * Both miss-ratio paths — the rung-laddered FootprintSweep and the
 * single-pass StackDistanceProfile — consume the same three reference
 * streams (instruction, data, unified) and both want them as
 * run-length-compressed line ids rather than raw ops: consecutive
 * accesses to the same line are guaranteed MRU hits in any LRU cache
 * and distance-zero reuses in any stack profile, so only run heads
 * need real work. This module owns the two block-level stages they
 * share: the AVX2-dispatched address→line-id shift and the one-pass
 * run-length compression of the three streams.
 */

#ifndef WCRT_SIM_LINE_RUNS_HH
#define WCRT_SIM_LINE_RUNS_HH

#include <cstdint>
#include <vector>

#include "trace/microop.hh"

namespace wcrt {

/**
 * One run-length-compressed reference: `count` back-to-back accesses
 * to `line`. Accesses 2..count re-touch the line while it is
 * necessarily still the most recently used line of the stream
 * (nothing intervened in this stream's access order), so every
 * consumer handles the head once and credits the tail — a guaranteed
 * hit in every cache rung, a distance-zero reuse in a stack profile.
 */
struct LineRun
{
    uint64_t line;
    uint32_t count;
    uint8_t write;
};

/**
 * Line-id precompute: out[i] = addrs[i] >> shift for every i, with an
 * AVX2 inner loop where the host supports it (runtime-dispatched; the
 * scalar tail/fallback is bit-identical).
 */
void shiftLines(const uint64_t *addrs, size_t count, uint32_t shift,
                uint64_t *out);

/**
 * Per-block builder of the three RLE'd reference streams. Owns the
 * line-id scratch and run vectors so a sink reuses one instance
 * across blocks without reallocating in steady state.
 */
class LineRunStreams
{
  public:
    /**
     * Rebuild the three streams from one block: instruction = every
     * op's pc line, data = the memory line of ops with an access,
     * unified = pc line then memory line per op (the exact order the
     * per-op path touches a unified cache).
     *
     * @param batch The block to compress.
     * @param line_shift log2(line size) for the address→line shift.
     * @param split_on_write When true a run breaks where the
     *        read/write sense changes (the sweep's repeat memos track
     *        dirty state per run); when false consecutive accesses to
     *        one line merge regardless of sense (a stack profile's
     *        LRU ordering is sense-blind).
     */
    void build(const OpBlockView &batch, uint32_t line_shift,
               bool split_on_write);

    const std::vector<LineRun> &instr() const { return instrRuns; }
    const std::vector<LineRun> &data() const { return dataRuns; }
    const std::vector<LineRun> &unified() const { return uniRuns; }

    /** Stream by FootprintSweep's index convention (0/1/2 = i/d/u). */
    const std::vector<LineRun> &
    stream(size_t index) const
    {
        return index == 0 ? instrRuns : index == 1 ? dataRuns : uniRuns;
    }

  private:
    std::vector<uint64_t> pcLines;  //!< per-block line-id scratch
    std::vector<uint64_t> memLines;
    std::vector<LineRun> instrRuns;
    std::vector<LineRun> dataRuns;
    std::vector<LineRun> uniRuns;
};

} // namespace wcrt

#endif // WCRT_SIM_LINE_RUNS_HH
