/**
 * @file
 * Cache-capacity sweep: the MARSSx86 experiment of Section 5.4.
 *
 * One trace pass drives a ladder of cache instances (16 KB ... 8 MB,
 * 8-way, 64-byte lines, like the paper's simulator configuration) for
 * the instruction side, the data side and a unified view. The
 * resulting miss-ratio-vs-capacity curves expose each workload's
 * instruction and data footprint: the capacity where the curve
 * flattens is the working-set size.
 *
 * The sweep is the heaviest sink in any replay (3 x K tag walks per
 * op), so the batch path works in four stages per block: the pc and
 * memAddr arrays are shifted to line ids once up front (AVX2 where the
 * host supports it), the three reference streams are run-length
 * compressed once — consecutive accesses to the same (line, rw) are
 * guaranteed MRU hits in every rung, so only the run heads reach the
 * rung loops — each (rung, stream, shard) walk further filters
 * set-MRU repeats through a two-slot memo and credits them without a
 * tag walk, and the walks spread over the process-wide
 * WorkerPool::shared() under a bounded-claim cap. Each rung's run
 * list is additionally split into disjoint set-range shards
 * (Cache::Shard), so the largest rungs — whose tag arrays dwarf the
 * host's caches and used to serialize the ladder's tail — are walked
 * by several workers at once, with per-worker hit/miss/credit
 * accumulators merged at the rung join. The split width is adaptive:
 * each rung is sharded only as far as its tag-array footprint
 * justifies (small rungs stay unsplit), and a batch with a short run
 * list narrows the width further so the per-shard re-scan of the run
 * list never dominates the walk itself. All stages are equivalence
 * preserving: miss and access counts stay bit-identical to the
 * per-op path.
 */

#ifndef WCRT_SIM_FOOTPRINT_HH
#define WCRT_SIM_FOOTPRINT_HH

#include <optional>
#include <vector>

#include "sim/cache.hh"
#include "sim/line_runs.hh"
#include "trace/microop.hh"

namespace wcrt {

/** Which reference stream a sweep curve describes. */
enum class SweepKind : uint8_t { Instruction, Data, Unified };

/**
 * Multi-capacity cache sweep sink.
 */
class FootprintSweep : public TraceSink
{
  public:
    /**
     * @param sizes_kb Cache capacities to ladder (ascending).
     * @param assoc Associativity of every rung (paper: 8).
     * @param line_bytes Line size (paper: 64).
     * @param workers Executor cap for the batch path on the shared
     *        worker pool (the consuming thread participates); 0 or 1
     *        runs every walk on the calling thread (bit-identical
     *        either way).
     */
    explicit FootprintSweep(std::vector<uint32_t> sizes_kb,
                            uint32_t assoc = 8,
                            uint32_t line_bytes = 64,
                            unsigned workers = 0);

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: precomputes line ids for the block, run-
     * length compresses each reference stream, then walks each
     * (rung, stream, set-range shard) over the compressed events —
     * one tag array at a time so its sets stay hot — skipping set-MRU
     * repeats via the shard's creditRepeatHits(). With a worker cap
     * above 1, the independent walks run in parallel on the shared
     * pool and each rung's shards merge at the rung join.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** The capacities swept, in KB. */
    const std::vector<uint32_t> &sizesKb() const { return sizes; }

    /** Miss ratio at each capacity for one stream kind. */
    std::vector<double> missRatios(SweepKind kind) const;

    /** Instructions consumed. */
    uint64_t instructions() const { return ops; }

  private:
    /**
     * Two-slot set-MRU repeat memo, one per (rung, stream, shard)
     * walk — each shard owns the sets in its range outright, so its
     * memo sees every access that could invalidate a slot. A
     * slot records a line this cache accessed and stays valid while
     * that line is still the MRU line of its set — i.e. until a real
     * access touches the same set. While valid, a re-access of the
     * line is a guaranteed hit that leaves the within-set LRU order
     * unchanged, so it can be credited without a tag walk (a write
     * additionally requires the line already dirty). Two slots cover
     * the common alternation between a load stream and a store stream
     * that a single memo would thrash on.
     */
    struct RepeatSlots
    {
        uint64_t line[2] = {0, 0};
        uint32_t set[2] = {0, 0};
        uint8_t dirty[2] = {0, 0};
        uint8_t valid[2] = {0, 0};
        uint8_t victim = 0;
    };

    /**
     * True when `line` may skip its tag walk: it matches a slot that
     * is still the MRU line of its set, and a write finds it already
     * dirty (a write to a clean MRU line must walk to set the bit).
     */
    static bool repeatHit(const RepeatSlots &f, uint64_t line,
                          bool is_write);

    /**
     * Record a real access in the memo. The accessed line is now the
     * MRU line of `set`, so any slot tracking that set is repointed
     * at it; a new set evicts the older slot.
     */
    static void noteAccess(RepeatSlots &f, uint64_t line, uint32_t set,
                           bool is_write);

    /**
     * Replay the runs whose lines map into [set_lo, set_hi) of the
     * shard's cache: walk each selected run's head through the shard,
     * credit the guaranteed-hit tail (count - 1 MRU re-touches) and
     * any run the memo proves is still MRU of its set. Runs are
     * RLE'd per (line, write sense) — see sim/line_runs.hh — so the
     * memo's dirty tracking sees a uniform sense per run.
     */
    static void sweepStreamShard(Cache::Shard &shard, RepeatSlots &f,
                                 const std::vector<LineRun> &runs,
                                 uint32_t set_lo, uint32_t set_hi);
    void clearFilters();

    std::vector<uint32_t> sizes;
    std::vector<Cache> icaches;
    std::vector<Cache> dcaches;
    std::vector<Cache> ucaches;
    //! Repeat memos, sizes.size() * maxSplit each, indexed
    //! rung * maxSplit + shard.
    std::vector<RepeatSlots> iFilters;
    std::vector<RepeatSlots> dFilters;
    std::vector<RepeatSlots> uFilters;
    unsigned poolCap = 0;  //!< executor cap on the shared pool
    unsigned maxSplit = 1; //!< widest split any rung may use
    //! Static per-rung split width from the rung's tag footprint.
    std::vector<unsigned> rungWays;
    //! Effective ways the previous batch used, per (rung, stream)
    //! indexed rung * 3 + stream; a width change strands the old
    //! shards' set partition, so the memos are cleared then.
    std::vector<unsigned> lastEffWays;
    std::vector<Cache::Shard> shardScratch;  //!< per-batch shard state
    LineRunStreams runs;  //!< per-block compressed streams + scratch
    uint32_t lineShift = 6;
    bool filtersLive = false;  //!< memo state exists from a batch
    uint64_t ops = 0;
};

/** The paper's capacity ladder: 16 KB to 8192 KB, doubling. */
std::vector<uint32_t> paperSweepSizesKb();

/**
 * Capacity where a miss-ratio curve flattens — the working-set
 * (footprint) estimate the Figure 6-9 analyses quote. The knee is the
 * first capacity whose miss ratio is within 15% of the largest
 * capacity's floor (compulsory misses remain at any size, so the
 * floor is not zero).
 *
 * The final rung trivially matches its own floor, so it can never be
 * a knee: a curve that is still falling steeply into the last rung
 * has its knee *beyond* the ladder, and this returns nullopt rather
 * than masquerading the ladder's end as a measurement. Callers print
 * ">LAST KB" for that case.
 *
 * @param curve Miss ratios, one per capacity (indexed like sizes_kb).
 * @param sizes_kb Ascending capacity ladder.
 * @return The knee capacity in KB, or nullopt when the curve has not
 *         flattened within the ladder.
 */
std::optional<uint32_t> kneeCapacityKb(
    const std::vector<double> &curve,
    const std::vector<uint32_t> &sizes_kb);

} // namespace wcrt

#endif // WCRT_SIM_FOOTPRINT_HH
