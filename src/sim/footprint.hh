/**
 * @file
 * Cache-capacity sweep: the MARSSx86 experiment of Section 5.4.
 *
 * One trace pass drives a ladder of cache instances (16 KB ... 8 MB,
 * 8-way, 64-byte lines, like the paper's simulator configuration) for
 * the instruction side, the data side and a unified view. The
 * resulting miss-ratio-vs-capacity curves expose each workload's
 * instruction and data footprint: the capacity where the curve
 * flattens is the working-set size.
 */

#ifndef WCRT_SIM_FOOTPRINT_HH
#define WCRT_SIM_FOOTPRINT_HH

#include <vector>

#include "sim/cache.hh"
#include "trace/microop.hh"

namespace wcrt {

/** Which reference stream a sweep curve describes. */
enum class SweepKind : uint8_t { Instruction, Data, Unified };

/**
 * Multi-capacity cache sweep sink.
 */
class FootprintSweep : public TraceSink
{
  public:
    /**
     * @param sizes_kb Cache capacities to ladder (ascending).
     * @param assoc Associativity of every rung (paper: 8).
     * @param line_bytes Line size (paper: 64).
     */
    explicit FootprintSweep(std::vector<uint32_t> sizes_kb,
                            uint32_t assoc = 8,
                            uint32_t line_bytes = 64);

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: iterates rung-major (one cache's tag array
     * at a time over the whole block) so each rung's sets stay hot
     * instead of being evicted by its neighbours every op.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** The capacities swept, in KB. */
    const std::vector<uint32_t> &sizesKb() const { return sizes; }

    /** Miss ratio at each capacity for one stream kind. */
    std::vector<double> missRatios(SweepKind kind) const;

    /** Instructions consumed. */
    uint64_t instructions() const { return ops; }

  private:
    std::vector<uint32_t> sizes;
    std::vector<Cache> icaches;
    std::vector<Cache> dcaches;
    std::vector<Cache> ucaches;
    uint64_t ops = 0;
};

/** The paper's capacity ladder: 16 KB to 8192 KB, doubling. */
std::vector<uint32_t> paperSweepSizesKb();

} // namespace wcrt

#endif // WCRT_SIM_FOOTPRINT_HH
