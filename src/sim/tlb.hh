/**
 * @file
 * TLB model built on the set-associative tag array.
 *
 * A TLB is a cache of page translations, so the model reuses the Cache
 * machinery with one "line" per page. Figures 5's ITLB/DTLB MPKI come
 * from these counters.
 */

#ifndef WCRT_SIM_TLB_HH
#define WCRT_SIM_TLB_HH

#include <string>

#include "sim/cache.hh"

namespace wcrt {

/** TLB geometry. */
struct TlbConfig
{
    std::string name = "tlb";
    uint32_t entries = 64;
    uint32_t assoc = 4;
    uint32_t pageBytes = 4096;
};

/**
 * Set-associative TLB with LRU replacement.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Translate one address; @return true on TLB hit. */
    bool access(uint64_t addr);

    /** Credit guaranteed same-page repeat hits (see Cache). */
    void creditRepeatHits(uint64_t n) { tags.creditRepeatHits(n); }

    /** Set index @p addr's page maps to (see Cache::setIndex). */
    uint32_t setIndex(uint64_t addr) const { return tags.setIndex(addr); }

    uint64_t accesses() const { return tags.accesses(); }
    uint64_t misses() const { return tags.misses(); }
    double missRatio() const { return tags.missRatio(); }
    void resetStats() { tags.resetStats(); }
    const TlbConfig &config() const { return cfg; }

  private:
    TlbConfig cfg;
    Cache tags;
};

} // namespace wcrt

#endif // WCRT_SIM_TLB_HH
