#include "sim/footprint.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"
#include "base/worker_pool.hh"

namespace wcrt {

namespace {

/**
 * Shard sizing for the set-range rung split. Splitting flattens the
 * big-rung tail of the ladder, but every shard re-scans the full run
 * list to filter its sets, so the width must earn its keep: a rung is
 * split just enough that each shard's slice of the tag array fits a
 * host-L2-sized budget (small rungs, whose tags are already
 * cache-resident, stay unsplit), and a batch whose run list is short
 * caps the width further so the per-shard re-scan never dominates.
 */
constexpr uint64_t kShardTagBudgetBytes = 256 * 1024;

/** Approximate per-line tag/metadata bytes in the Cache model. */
constexpr uint64_t kTagEntryBytes = 16;

/** Minimum compressed runs per shard before another way pays off. */
constexpr size_t kMinRunsPerShard = 512;

/** Set-range shards a rung's tag-array footprint alone justifies. */
unsigned
waysForTagFootprint(uint64_t sets, uint32_t assoc, unsigned max_ways)
{
    uint64_t tag_bytes = sets * assoc * kTagEntryBytes;
    uint64_t ways = (tag_bytes + kShardTagBudgetBytes - 1) /
                    kShardTagBudgetBytes;
    if (ways < 1)
        ways = 1;
    if (ways > max_ways)
        ways = max_ways;
    return static_cast<unsigned>(ways);
}

} // namespace

std::vector<uint32_t>
paperSweepSizesKb()
{
    return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::optional<uint32_t>
kneeCapacityKb(const std::vector<double> &curve,
               const std::vector<uint32_t> &sizes_kb)
{
    if (curve.empty() || curve.size() != sizes_kb.size())
        return std::nullopt;
    double floor_ratio = curve.back();
    // The last rung always satisfies the predicate against its own
    // floor, so only earlier rungs count as knees; a curve that first
    // enters the floor band at the final rung is still falling and
    // its knee lies beyond the ladder.
    for (size_t i = 0; i + 1 < curve.size(); ++i) {
        if (curve[i] <= floor_ratio * 1.15 + 1e-6)
            return sizes_kb[i];
    }
    return std::nullopt;
}

FootprintSweep::FootprintSweep(std::vector<uint32_t> sizes_kb,
                               uint32_t assoc, uint32_t line_bytes,
                               unsigned workers)
    : sizes(std::move(sizes_kb))
{
    if (sizes.empty())
        wcrt_fatal("footprint sweep needs at least one capacity");
    for (uint32_t kb : sizes) {
        CacheConfig cfg{"sweep", static_cast<uint64_t>(kb) * 1024,
                        assoc, line_bytes};
        icaches.emplace_back(cfg);
        dcaches.emplace_back(cfg);
        ucaches.emplace_back(cfg);
    }
    poolCap = workers;
    // Per-rung static split width: a rung is sharded only as far as
    // its tag-array footprint justifies, and never wider than the
    // worker cap (an idle shard is pure re-scan overhead).
    maxSplit = workers > 1 ? workers : 1;
    rungWays.reserve(sizes.size());
    unsigned widest = 1;
    for (size_t k = 0; k < sizes.size(); ++k) {
        unsigned w = workers > 1 ? waysForTagFootprint(
                                       icaches[k].sets(), assoc,
                                       maxSplit)
                                 : 1;
        rungWays.push_back(w);
        widest = std::max(widest, w);
    }
    maxSplit = widest;
    iFilters.resize(sizes.size() * maxSplit);
    dFilters.resize(sizes.size() * maxSplit);
    uFilters.resize(sizes.size() * maxSplit);
    lastEffWays.assign(sizes.size() * 3, 0);
    // Every rung shares the line size, so one shift serves all of
    // them (the Cache constructor has already validated power-of-two).
    lineShift = icaches.front().lineShiftBits();
}

void
FootprintSweep::consume(const MicroOp &op)
{
    // Per-op accesses bypass the repeat memos, so any memo built by a
    // preceding batch would go stale; forget it before touching the
    // caches directly.
    if (filtersLive)
        clearFilters();
    ++ops;
    for (size_t k = 0; k < sizes.size(); ++k) {
        icaches[k].access(op.pc, false);
        ucaches[k].access(op.pc, false);
        if (op.memSize > 0) {
            bool is_write = op.kind == OpKind::Store;
            dcaches[k].access(op.memAddr, is_write);
            ucaches[k].access(op.memAddr, is_write);
        }
    }
}

void
FootprintSweep::clearFilters()
{
    for (auto *filters : {&iFilters, &dFilters, &uFilters}) {
        for (auto &f : *filters) {
            f.valid[0] = 0;
            f.valid[1] = 0;
        }
    }
    filtersLive = false;
}

bool
FootprintSweep::repeatHit(const RepeatSlots &f, uint64_t line,
                          bool is_write)
{
    for (int s = 0; s < 2; ++s) {
        if (f.valid[s] && f.line[s] == line)
            return !is_write || f.dirty[s] != 0;
    }
    return false;
}

void
FootprintSweep::noteAccess(RepeatSlots &f, uint64_t line, uint32_t set,
                           bool is_write)
{
    int tgt = -1;
    for (int s = 0; s < 2; ++s) {
        if (f.valid[s] && f.set[s] == set) {
            tgt = s;
            break;
        }
    }
    if (tgt < 0) {
        tgt = !f.valid[0] ? 0 : (!f.valid[1] ? 1 : f.victim);
    }
    if (f.valid[tgt] && f.line[tgt] == line) {
        // Same line walked anyway (write on a clean line): the line's
        // dirty bit is set now.
        f.dirty[tgt] |= is_write ? 1 : 0;
    } else {
        f.line[tgt] = line;
        // Conservative: the line may have been dirty from an earlier
        // residency, but claiming clean only costs a skip, never
        // correctness.
        f.dirty[tgt] = is_write ? 1 : 0;
    }
    f.set[tgt] = set;
    f.valid[tgt] = 1;
    f.victim = static_cast<uint8_t>(tgt ^ 1);
}

void
FootprintSweep::sweepStreamShard(Cache::Shard &shard, RepeatSlots &f,
                                 const std::vector<LineRun> &runs,
                                 uint32_t set_lo, uint32_t set_hi)
{
    const Cache &c = shard.cache();
    uint64_t credits = 0;
    for (const LineRun &r : runs) {
        uint32_t set = c.setOfLine(r.line);
        if (set < set_lo || set >= set_hi)
            continue;
        bool is_write = r.write != 0;
        if (repeatHit(f, r.line, is_write)) {
            credits += r.count;
            continue;
        }
        shard.accessLine(r.line, is_write);
        noteAccess(f, r.line, set, is_write);
        credits += r.count - 1;
    }
    shard.creditRepeatHits(credits);
}

void
FootprintSweep::consumeBatch(const OpBlockView &batch)
{
    const size_t count = batch.count;
    ops += count;
    if (count == 0)
        return;
    filtersLive = true;
    // Line-id precompute + run-length compression of the three
    // reference streams, shared with the stack-distance profile
    // (sim/line_runs.hh), so every rung iterates runs instead of ops.
    // The pc stream is the big winner: sequential code re-touches
    // each line for many ops, and each re-touch is a guaranteed MRU
    // hit in every rung. Runs split on write sense so the repeat
    // memos can track dirty state per run.
    runs.build(batch, lineShift, /*split_on_write=*/true);

    // Every (rung, stream) cache is independent, and within one cache
    // the set-range shards touch disjoint sets — so all
    // rung x stream x shard walks can run concurrently. The width of
    // each walk is chosen per batch: the rung's static tag-footprint
    // width, narrowed when this batch's run list is too short to feed
    // that many shards. A width change re-partitions the set ranges,
    // stranding the previous batch's per-shard memos, so those memos
    // are cleared first (conservative: clearing only costs tag walks,
    // never correctness). Tasks are built as explicit descriptors;
    // shards are seeded serially before dispatch (each snapshots its
    // cache's recency clock) and merged serially in task order
    // afterwards, so the counts come out bit-identical to a
    // sequential walk no matter how the pool schedules the middle.
    struct ShardTask
    {
        size_t k;        //!< rung
        size_t stream;   //!< 0 = instr, 1 = data, 2 = unified
        unsigned s;      //!< shard index within the walk
        unsigned ways;   //!< effective split width of this walk
    };
    std::vector<ShardTask> taskDefs;
    taskDefs.reserve(sizes.size() * 3 * maxSplit);
    for (size_t k = 0; k < sizes.size(); ++k) {
        for (size_t stream = 0; stream < 3; ++stream) {
            unsigned ways = rungWays[k];
            unsigned fed = static_cast<unsigned>(std::max<size_t>(
                1, runs.stream(stream).size() / kMinRunsPerShard));
            ways = std::min(ways, fed);
            if (lastEffWays[k * 3 + stream] != ways) {
                std::vector<RepeatSlots> &filters =
                    stream == 0 ? iFilters
                    : stream == 1 ? dFilters
                                  : uFilters;
                for (unsigned s = 0; s < maxSplit; ++s) {
                    RepeatSlots &f = filters[k * maxSplit + s];
                    f.valid[0] = 0;
                    f.valid[1] = 0;
                }
                lastEffWays[k * 3 + stream] = ways;
            }
            for (unsigned s = 0; s < ways; ++s)
                taskDefs.push_back(ShardTask{k, stream, s, ways});
        }
    }
    const size_t tasks = taskDefs.size();
    auto cache_at = [&](size_t j) -> Cache & {
        const ShardTask &t = taskDefs[j];
        switch (t.stream) {
          case 0:
            return icaches[t.k];
          case 1:
            return dcaches[t.k];
          default:
            return ucaches[t.k];
        }
    };
    shardScratch.resize(tasks);
    for (size_t j = 0; j < tasks; ++j)
        shardScratch[j] = cache_at(j).beginShard();

    auto rung_task = [&](size_t j) {
        const ShardTask &t = taskDefs[j];
        Cache::Shard &shard = shardScratch[j];
        uint64_t sets = shard.cache().sets();
        uint32_t lo = static_cast<uint32_t>(sets * t.s / t.ways);
        uint32_t hi =
            static_cast<uint32_t>(sets * (t.s + 1) / t.ways);
        std::vector<RepeatSlots> &filters =
            t.stream == 0 ? iFilters
            : t.stream == 1 ? dFilters
                            : uFilters;
        sweepStreamShard(shard, filters[t.k * maxSplit + t.s],
                         runs.stream(t.stream), lo, hi);
    };
    if (poolCap > 1) {
        WorkerPool::shared().runBounded(tasks, poolCap, rung_task);
    } else {
        for (size_t j = 0; j < tasks; ++j)
            rung_task(j);
    }

    for (size_t j = 0; j < tasks; ++j)
        cache_at(j).merge(shardScratch[j]);
}

std::vector<double>
FootprintSweep::missRatios(SweepKind kind) const
{
    const std::vector<Cache> *set = nullptr;
    switch (kind) {
      case SweepKind::Instruction:
        set = &icaches;
        break;
      case SweepKind::Data:
        set = &dcaches;
        break;
      case SweepKind::Unified:
        set = &ucaches;
        break;
    }
    std::vector<double> out;
    out.reserve(set->size());
    for (const auto &c : *set)
        out.push_back(c.missRatio());
    return out;
}

} // namespace wcrt
