#include "sim/footprint.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"
#include "base/worker_pool.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define WCRT_SWEEP_AVX2 1
#endif

namespace wcrt {

namespace {

/**
 * Upper bound on set-range shards per rung walk. Splitting flattens
 * the big-rung tail of the ladder, but every shard re-scans the full
 * run list to filter its sets, so past a few ways the filtering
 * overhead outgrows the tag-walk win.
 */
constexpr unsigned kMaxRungSplit = 4;

} // namespace

std::vector<uint32_t>
paperSweepSizesKb()
{
    return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

FootprintSweep::FootprintSweep(std::vector<uint32_t> sizes_kb,
                               uint32_t assoc, uint32_t line_bytes,
                               unsigned workers)
    : sizes(std::move(sizes_kb))
{
    if (sizes.empty())
        wcrt_fatal("footprint sweep needs at least one capacity");
    for (uint32_t kb : sizes) {
        CacheConfig cfg{"sweep", static_cast<uint64_t>(kb) * 1024,
                        assoc, line_bytes};
        icaches.emplace_back(cfg);
        dcaches.emplace_back(cfg);
        ucaches.emplace_back(cfg);
    }
    poolCap = workers;
    splitWays = workers > 1 ? std::min(workers, kMaxRungSplit) : 1;
    iFilters.resize(sizes.size() * splitWays);
    dFilters.resize(sizes.size() * splitWays);
    uFilters.resize(sizes.size() * splitWays);
    // Every rung shares the line size, so one shift serves all of
    // them (the Cache constructor has already validated power-of-two).
    lineShift = icaches.front().lineShiftBits();
}

void
FootprintSweep::consume(const MicroOp &op)
{
    // Per-op accesses bypass the repeat memos, so any memo built by a
    // preceding batch would go stale; forget it before touching the
    // caches directly.
    if (filtersLive)
        clearFilters();
    ++ops;
    for (size_t k = 0; k < sizes.size(); ++k) {
        icaches[k].access(op.pc, false);
        ucaches[k].access(op.pc, false);
        if (op.memSize > 0) {
            bool is_write = op.kind == OpKind::Store;
            dcaches[k].access(op.memAddr, is_write);
            ucaches[k].access(op.memAddr, is_write);
        }
    }
}

void
FootprintSweep::clearFilters()
{
    for (auto *filters : {&iFilters, &dFilters, &uFilters}) {
        for (auto &f : *filters) {
            f.valid[0] = 0;
            f.valid[1] = 0;
        }
    }
    filtersLive = false;
}

bool
FootprintSweep::repeatHit(const RepeatSlots &f, uint64_t line,
                          bool is_write)
{
    for (int s = 0; s < 2; ++s) {
        if (f.valid[s] && f.line[s] == line)
            return !is_write || f.dirty[s] != 0;
    }
    return false;
}

void
FootprintSweep::noteAccess(RepeatSlots &f, uint64_t line, uint32_t set,
                           bool is_write)
{
    int tgt = -1;
    for (int s = 0; s < 2; ++s) {
        if (f.valid[s] && f.set[s] == set) {
            tgt = s;
            break;
        }
    }
    if (tgt < 0) {
        tgt = !f.valid[0] ? 0 : (!f.valid[1] ? 1 : f.victim);
    }
    if (f.valid[tgt] && f.line[tgt] == line) {
        // Same line walked anyway (write on a clean line): the line's
        // dirty bit is set now.
        f.dirty[tgt] |= is_write ? 1 : 0;
    } else {
        f.line[tgt] = line;
        // Conservative: the line may have been dirty from an earlier
        // residency, but claiming clean only costs a skip, never
        // correctness.
        f.dirty[tgt] = is_write ? 1 : 0;
    }
    f.set[tgt] = set;
    f.valid[tgt] = 1;
    f.victim = static_cast<uint8_t>(tgt ^ 1);
}

void
FootprintSweep::sweepStreamShard(Cache::Shard &shard, RepeatSlots &f,
                                 const std::vector<Run> &runs,
                                 uint32_t set_lo, uint32_t set_hi)
{
    const Cache &c = shard.cache();
    uint64_t credits = 0;
    for (const Run &r : runs) {
        uint32_t set = c.setOfLine(r.line);
        if (set < set_lo || set >= set_hi)
            continue;
        bool is_write = r.write != 0;
        if (repeatHit(f, r.line, is_write)) {
            credits += r.count;
            continue;
        }
        shard.accessLine(r.line, is_write);
        noteAccess(f, r.line, set, is_write);
        credits += r.count - 1;
    }
    shard.creditRepeatHits(credits);
}

namespace {

void
shiftLinesScalar(const uint64_t *addrs, size_t begin, size_t end,
                 uint32_t shift, uint64_t *out)
{
    for (size_t i = begin; i < end; ++i)
        out[i] = addrs[i] >> shift;
}

#ifdef WCRT_SWEEP_AVX2

/**
 * AVX2 line-id precompute: four 64-bit logical right shifts per
 * vector. Returns the index shifted up to; the caller finishes the
 * tail with shiftLinesScalar.
 */
__attribute__((target("avx2"))) size_t
shiftLinesAvx2(const uint64_t *addrs, size_t count, uint32_t shift,
               uint64_t *out)
{
    const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addrs + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_srl_epi64(v, sh));
    }
    return i;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

#endif // WCRT_SWEEP_AVX2

void
shiftLines(const uint64_t *addrs, size_t count, uint32_t shift,
           uint64_t *out)
{
    size_t i = 0;
#ifdef WCRT_SWEEP_AVX2
    if (count >= 16 && haveAvx2())
        i = shiftLinesAvx2(addrs, count, shift, out);
#endif
    shiftLinesScalar(addrs, i, count, shift, out);
}

} // namespace

void
FootprintSweep::consumeBatch(const OpBlockView &batch)
{
    const size_t count = batch.count;
    ops += count;
    if (count == 0)
        return;
    filtersLive = true;
    if (pcLines.size() < count) {
        pcLines.resize(count);
        memLines.resize(count);
    }
    shiftLines(batch.pcs, count, lineShift, pcLines.data());
    shiftLines(batch.memAddrs, count, lineShift, memLines.data());

    // Run-length compress the three reference streams once so every
    // rung iterates runs instead of ops. The pc stream is the big
    // winner: sequential code re-touches each line for many ops, and
    // each re-touch is a guaranteed MRU hit in every rung.
    instrRuns.clear();
    dataRuns.clear();
    uniRuns.clear();
    auto extend = [](std::vector<Run> &runs, uint64_t line, bool w) {
        if (!runs.empty()) {
            Run &back = runs.back();
            if (back.line == line && (back.write != 0) == w) {
                ++back.count;
                return;
            }
        }
        runs.push_back(Run{line, 1, static_cast<uint8_t>(w ? 1 : 0)});
    };
    for (size_t i = 0; i < count; ++i) {
        uint64_t pc_line = pcLines[i];
        extend(instrRuns, pc_line, false);
        extend(uniRuns, pc_line, false);
        if (batch.memSizes[i] != 0) {
            bool is_write = batch.kinds[i] == OpKind::Store;
            uint64_t mem_line = memLines[i];
            extend(dataRuns, mem_line, is_write);
            extend(uniRuns, mem_line, is_write);
        }
    }

    // Every (rung, stream) cache is independent, and within one cache
    // the set-range shards touch disjoint sets — so all
    // rung x stream x shard walks can run concurrently. Task j maps
    // to rung k = j / (3 * ways), stream (j / ways) % 3 and shard
    // j % ways; shards are seeded serially before dispatch (each
    // snapshots its cache's recency clock) and merged serially in task
    // order afterwards, so the counts come out bit-identical to a
    // sequential walk no matter how the pool schedules the middle.
    const unsigned ways = splitWays;
    const size_t tasks = sizes.size() * 3 * ways;
    auto cache_at = [&](size_t j) -> Cache & {
        size_t k = j / (3 * ways);
        switch ((j / ways) % 3) {
          case 0:
            return icaches[k];
          case 1:
            return dcaches[k];
          default:
            return ucaches[k];
        }
    };
    shardScratch.resize(tasks);
    for (size_t j = 0; j < tasks; ++j)
        shardScratch[j] = cache_at(j).beginShard();

    auto rung_task = [&, ways](size_t j) {
        size_t k = j / (3 * ways);
        size_t stream = (j / ways) % 3;
        unsigned s = static_cast<unsigned>(j % ways);
        Cache::Shard &shard = shardScratch[j];
        uint64_t sets = shard.cache().sets();
        uint32_t lo = static_cast<uint32_t>(sets * s / ways);
        uint32_t hi = static_cast<uint32_t>(sets * (s + 1) / ways);
        const std::vector<Run> &runs =
            stream == 0 ? instrRuns : stream == 1 ? dataRuns : uniRuns;
        std::vector<RepeatSlots> &filters =
            stream == 0 ? iFilters : stream == 1 ? dFilters : uFilters;
        sweepStreamShard(shard, filters[k * ways + s], runs, lo, hi);
    };
    if (poolCap > 1) {
        WorkerPool::shared().runBounded(tasks, poolCap, rung_task);
    } else {
        for (size_t j = 0; j < tasks; ++j)
            rung_task(j);
    }

    for (size_t j = 0; j < tasks; ++j)
        cache_at(j).merge(shardScratch[j]);
}

std::vector<double>
FootprintSweep::missRatios(SweepKind kind) const
{
    const std::vector<Cache> *set = nullptr;
    switch (kind) {
      case SweepKind::Instruction:
        set = &icaches;
        break;
      case SweepKind::Data:
        set = &dcaches;
        break;
      case SweepKind::Unified:
        set = &ucaches;
        break;
    }
    std::vector<double> out;
    out.reserve(set->size());
    for (const auto &c : *set)
        out.push_back(c.missRatio());
    return out;
}

} // namespace wcrt
