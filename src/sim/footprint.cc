#include "sim/footprint.hh"

#include "base/logging.hh"

namespace wcrt {

std::vector<uint32_t>
paperSweepSizesKb()
{
    return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

FootprintSweep::FootprintSweep(std::vector<uint32_t> sizes_kb,
                               uint32_t assoc, uint32_t line_bytes)
    : sizes(std::move(sizes_kb))
{
    if (sizes.empty())
        wcrt_fatal("footprint sweep needs at least one capacity");
    for (uint32_t kb : sizes) {
        CacheConfig cfg{"sweep", static_cast<uint64_t>(kb) * 1024,
                        assoc, line_bytes};
        icaches.emplace_back(cfg);
        dcaches.emplace_back(cfg);
        ucaches.emplace_back(cfg);
    }
}

void
FootprintSweep::consume(const MicroOp &op)
{
    ++ops;
    for (size_t k = 0; k < sizes.size(); ++k) {
        icaches[k].access(op.pc, false);
        ucaches[k].access(op.pc, false);
        if (op.memSize > 0) {
            bool is_write = op.kind == OpKind::Store;
            dcaches[k].access(op.memAddr, is_write);
            ucaches[k].access(op.memAddr, is_write);
        }
    }
}

void
FootprintSweep::consumeBatch(const OpBlockView &batch)
{
    const size_t count = batch.count;
    ops += count;
    // Rung-major: every cache instance is independent, so reordering
    // the (rung, op) loop nest leaves each rung's access sequence —
    // and therefore its miss counts — exactly as in the per-op path,
    // while one rung's tag array stays resident for the whole block.
    // The loop reads only the pc/memAddr/memSize/kind arrays.
    for (size_t k = 0; k < sizes.size(); ++k) {
        Cache &ic = icaches[k];
        Cache &dc = dcaches[k];
        Cache &uc = ucaches[k];
        for (size_t i = 0; i < count; ++i) {
            uint64_t pc = batch.pcs[i];
            ic.access(pc, false);
            uc.access(pc, false);
            if (batch.memSizes[i] > 0) {
                bool is_write = batch.kinds[i] == OpKind::Store;
                uint64_t mem_addr = batch.memAddrs[i];
                dc.access(mem_addr, is_write);
                uc.access(mem_addr, is_write);
            }
        }
    }
}

std::vector<double>
FootprintSweep::missRatios(SweepKind kind) const
{
    const std::vector<Cache> *set = nullptr;
    switch (kind) {
      case SweepKind::Instruction:
        set = &icaches;
        break;
      case SweepKind::Data:
        set = &dcaches;
        break;
      case SweepKind::Unified:
        set = &ucaches;
        break;
    }
    std::vector<double> out;
    out.reserve(set->size());
    for (const auto &c : *set)
        out.push_back(c.missRatio());
    return out;
}

} // namespace wcrt
