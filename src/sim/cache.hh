/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * This is the workhorse behind Figures 4 and 6-9: a classic
 * tag-array-only model (no data storage) counting accesses and misses.
 * Writes allocate (write-allocate, write-back abstraction) so store
 * misses appear in MPKI the way the paper's counters see them.
 */

#ifndef WCRT_SIM_CACHE_HH
#define WCRT_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wcrt {

/** Geometry and identity of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
};

/**
 * Tag-only set-associative cache with true-LRU replacement.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * A set-partitioned view for parallel tag walks over one cache.
     *
     * LRU state is relative within one set, so walks that touch
     * disjoint set ranges of the same cache are independent: several
     * shards may run concurrently as long as no two of them access
     * lines mapping to the same set. Each shard carries its own
     * recency clock — seeded from the cache's clock at beginShard(),
     * advanced privately — and its own access/miss/credit deltas, so
     * concurrent shards never write shared counters. merge() folds a
     * shard back in; after every shard of a walk is merged (in any
     * order), the cache's statistics and all future hit/miss
     * behaviour are bit-identical to a single sequential walk of the
     * same per-set access sequences.
     */
    class Shard
    {
      public:
        Shard() = default;

        /** accessLine() against the owner, accumulating locally. */
        bool accessLine(uint64_t line, bool is_write = false);

        /** creditRepeatHits() accumulated locally. */
        void creditRepeatHits(uint64_t n) { accessDelta += n; }

        /** The cache this shard walks (geometry queries). */
        const Cache &cache() const { return *owner; }

      private:
        friend class Cache;

        Cache *owner = nullptr;
        uint64_t localTick = 0;
        uint64_t accessDelta = 0;
        uint64_t missDelta = 0;
    };

    /** A fresh shard whose recency clock starts at the cache's. */
    Shard
    beginShard()
    {
        Shard s;
        s.owner = this;
        s.localTick = tick;
        return s;
    }

    /**
     * Fold a shard's statistics back in and advance the recency clock
     * past every value the shard handed out. Call sequentially, after
     * all concurrent shard walks of the batch have finished.
     */
    void
    merge(const Shard &s)
    {
        if (s.localTick > tick)
            tick = s.localTick;
        nAccesses += s.accessDelta;
        nMisses += s.missDelta;
    }

    /**
     * Access one line-aligned address.
     *
     * @param addr Byte address; the containing line is accessed.
     * @param is_write Marks the line dirty (accounting only).
     * @return true on hit.
     */
    bool access(uint64_t addr, bool is_write = false);

    /**
     * Access by precomputed line id (`addr >> lineShiftBits()`).
     * Equivalent to access(line << lineShiftBits(), is_write); lets
     * batch sinks hoist the shift out of the per-rung loops.
     *
     * @return true on hit.
     */
    bool accessLine(uint64_t line, bool is_write = false);

    /**
     * Access a byte range, touching every line it spans.
     *
     * @return Number of missing lines (0 = full hit).
     */
    uint32_t accessRange(uint64_t addr, uint32_t bytes, bool is_write);

    /**
     * Install a line without touching the demand-access statistics
     * (hardware-prefetch fills).
     *
     * @return true when the line was already present.
     */
    bool prefetch(uint64_t addr);

    /**
     * Credit `n` accesses that are architecturally guaranteed hits
     * without walking the tag array: re-accesses of a line that is
     * still the MRU line *of its set* (no access or prefetch has
     * touched that set since). Skipping the recency update then
     * leaves the within-set LRU ordering — and thus all future
     * behaviour — identical; only the hit/access statistics need the
     * credit. See setIndex() for the boundary condition.
     */
    void creditRepeatHits(uint64_t n) { nAccesses += n; }

    /** Drop all contents, keep statistics. */
    void invalidate();

    /** Reset statistics, keep contents. */
    void resetStats();

    const CacheConfig &config() const { return cfg; }
    uint64_t accesses() const { return nAccesses; }
    uint64_t misses() const { return nMisses; }

    /** Miss ratio in [0, 1]; 0 when never accessed. */
    double missRatio() const;

    /** Number of sets. */
    uint32_t sets() const { return nSets; }

    /**
     * Set index @p addr maps to. LRU order is relative within one
     * set, so an external repeat filter may skip (and credit) a
     * guaranteed hit on a line that is still MRU of its set — which
     * holds exactly until another access or prefetch touches the same
     * set. This accessor lets callers detect that boundary.
     */
    uint32_t
    setIndex(uint64_t addr) const
    {
        return setOfLine(addr >> lineShift);
    }

    /** Set index for a precomputed line id. */
    uint32_t
    setOfLine(uint64_t line) const
    {
        return setsPow2 ? static_cast<uint32_t>(line & (nSets - 1))
                        : static_cast<uint32_t>(line % nSets);
    }

    /** log2(line size): addr >> lineShiftBits() is the line id. */
    uint32_t lineShiftBits() const { return lineShift; }

  private:
    /** Lookup/fill without statistics; @return true on hit. */
    bool touchLine(uint64_t line, bool is_write);

    /**
     * touchLine against an external recency clock (shard walks). Only
     * the within-set ordering of `tick_ref` values matters, so a
     * shard clock seeded from the cache's and advanced privately
     * reproduces sequential LRU behaviour exactly on its sets.
     */
    bool touchLineTicked(uint64_t line, bool is_write,
                         uint64_t &tick_ref);

    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig cfg;
    uint32_t nSets;
    uint32_t lineShift;
    bool setsPow2 = true;
    std::vector<Way> ways;  //!< nSets * assoc, set-major
    uint64_t tick = 0;
    uint64_t nAccesses = 0;
    uint64_t nMisses = 0;
};

} // namespace wcrt

#endif // WCRT_SIM_CACHE_HH
