#include "sim/sim_cpu.hh"

#include <algorithm>

namespace wcrt {

SimCpu::SimCpu(const MachineConfig &config)
    : cfg(config),
      l1iCache(config.l1i),
      l1dCache(config.l1d),
      l2Cache(config.l2),
      l3Cache(config.l3),
      itlbUnit(config.itlb),
      dtlbUnit(config.dtlb),
      branchUnit(config.branch),
      prefetcher(config.prefetch)
{
}

void
SimCpu::consume(const MicroOp &op)
{
    mixCounter.consume(op);

    // Instruction side: every op fetches through ITLB and L1I.
    if (!itlbUnit.access(op.pc))
        ++itlbMisses;
    codeLines.insert(op.pc >> 6);
    if (!l1iCache.access(op.pc, false)) {
        ++l1iMissCount;
        if (!l2Cache.access(op.pc, false)) {
            ++l2MissesFromL1i;
            if (!cfg.hasL3 || !l3Cache.access(op.pc, false))
                ++l3MissesTotal;
        }
    }

    // Data side.
    if (op.memSize > 0) {
        bool is_write = op.kind == OpKind::Store;
        if (!dtlbUnit.access(op.memAddr))
            ++dtlbMisses;
        dataPages.insert(op.memAddr >> 12);
        // Hardware stream prefetch fills lines ahead of confirmed
        // sequential streams so streamed data hits on demand.
        auto advice = prefetcher.observe(op.memAddr);
        for (uint32_t p = 0; p < advice.prefetchLines; ++p) {
            uint64_t line_addr = advice.prefetchFrom +
                                 static_cast<uint64_t>(p) * 64;
            l1dCache.prefetch(line_addr);
            l2Cache.prefetch(line_addr);
            if (cfg.hasL3)
                l3Cache.prefetch(line_addr);
        }
        if (!l1dCache.access(op.memAddr, is_write)) {
            ++l1dMissCount;
            if (!l2Cache.access(op.memAddr, is_write)) {
                ++l2MissesFromL1d;
                if (!cfg.hasL3 || !l3Cache.access(op.memAddr, is_write)) {
                    ++l3MissesTotal;
                    if (is_write)
                        ++storesMissingL3;
                }
            }
        }
    }

    // Control side.
    if (isControl(op.kind))
        branchUnit.predict(op);
}

CpuReport
SimCpu::report() const
{
    CpuReport r;
    r.machine = cfg.name;
    uint64_t insts = mixCounter.total();
    r.instructions = insts;
    if (insts == 0)
        return r;

    double kilo = static_cast<double>(insts) / 1000.0;

    // Instruction mix.
    r.loadRatio = mixCounter.loadRatio();
    r.storeRatio = mixCounter.storeRatio();
    r.branchRatio = mixCounter.branchRatio();
    r.integerRatio = mixCounter.integerRatio();
    r.fpRatio = mixCounter.fpRatio();
    r.otherRatio = mixCounter.otherRatio();
    r.intAddressShare = mixCounter.intAddressShare();
    r.fpAddressShare = mixCounter.fpAddressShare();
    r.otherIntShare = mixCounter.otherIntShare();
    r.dataMovementRatio = mixCounter.dataMovementRatio();
    r.dataMovementWithBranchRatio =
        mixCounter.dataMovementWithBranchRatio();

    // Caches.
    r.l1iMpki = static_cast<double>(l1iMissCount) / kilo;
    r.l1iMissRatio = l1iCache.missRatio();
    r.l1dMpki = static_cast<double>(l1dMissCount) / kilo;
    r.l1dMissRatio = l1dCache.missRatio();
    uint64_t l2_misses = l2MissesFromL1i + l2MissesFromL1d;
    r.l2Mpki = static_cast<double>(l2_misses) / kilo;
    r.l2MissRatio = l2Cache.missRatio();
    r.l3Mpki = static_cast<double>(l3MissesTotal) / kilo;
    r.l3MissRatio = cfg.hasL3 ? l3Cache.missRatio() : 1.0;

    // TLBs.
    r.itlbMpki = static_cast<double>(itlbMisses) / kilo;
    r.dtlbMpki = static_cast<double>(dtlbMisses) / kilo;

    // Branches.
    const BranchStats &bs = branchUnit.stats();
    r.branchMispredictRatio = bs.mispredictRatio();
    uint64_t branches = mixCounter.count(OpKind::BranchCond) +
                        mixCounter.count(OpKind::BranchUncond) +
                        mixCounter.count(OpKind::BranchIndirect);
    r.branchTakenRatio =
        branches ? static_cast<double>(bs.taken) /
                       static_cast<double>(bs.total() +
                                           mixCounter.count(
                                               OpKind::BranchUncond))
                 : 0.0;
    r.btbMissPki = static_cast<double>(bs.btbMisses) / kilo;
    r.branchStats = bs;

    // Pipeline: additive cycle accounting.
    const CoreParams &core = cfg.core;
    uint64_t fp_dyn = mixCounter.count(OpKind::FpAlu) +
                      mixCounter.count(OpKind::FpMul) +
                      mixCounter.count(OpKind::FpDiv);
    uint64_t div_dyn = mixCounter.count(OpKind::FpDiv) +
                       mixCounter.count(OpKind::IntDiv);
    double base_cycles = static_cast<double>(insts) * core.baseCpi +
                         static_cast<double>(fp_dyn) * core.fpExtraCpi +
                         static_cast<double>(div_dyn) * core.divExtraCpi;
    double mispredict_cycles = static_cast<double>(bs.mispredicts()) *
                               cfg.branch.mispredictPenalty;
    double l1i_cycles =
        static_cast<double>(l1iMissCount) * core.l1iMissPenalty;
    double itlb_cycles =
        static_cast<double>(itlbMisses) * core.tlbMissPenalty;
    double btb_cycles =
        static_cast<double>(bs.btbMisses) * core.btbResteerPenalty;
    double frontend_cycles =
        mispredict_cycles + l1i_cycles + itlb_cycles + btb_cycles;

    double l2_hit_data =
        static_cast<double>(l1dMissCount -
                            std::min(l1dMissCount, l2MissesFromL1d)) *
        core.l2HitLatency;
    double l3_hit_data = 0.0;
    double mem_data = 0.0;
    if (cfg.hasL3) {
        uint64_t l3_data_misses =
            std::min(l3MissesTotal, l2MissesFromL1d);
        l3_hit_data = static_cast<double>(l2MissesFromL1d -
                                          l3_data_misses) *
                      core.l3HitLatency;
        mem_data = static_cast<double>(l3_data_misses) * core.memLatency;
    } else {
        mem_data = static_cast<double>(l2MissesFromL1d) * core.memLatency;
    }
    double dtlb_cycles =
        static_cast<double>(dtlbMisses) * core.tlbMissPenalty;
    double backend_cycles =
        (l2_hit_data + l3_hit_data + mem_data) / std::max(core.mlp, 1.0) +
        dtlb_cycles;

    r.cycles = base_cycles + frontend_cycles + backend_cycles;
    r.ipc = static_cast<double>(insts) / r.cycles;
    r.cpi = 1.0 / r.ipc;
    r.frontendStallRatio = frontend_cycles / r.cycles;
    r.backendStallRatio = backend_cycles / r.cycles;
    uint64_t all_ctrl = branches + mixCounter.count(OpKind::Call) +
                        mixCounter.count(OpKind::CallIndirect) +
                        mixCounter.count(OpKind::Return);
    r.basicBlockSize =
        all_ctrl ? static_cast<double>(insts) /
                       static_cast<double>(all_ctrl)
                 : static_cast<double>(insts);

    // Off-core and locality.
    uint64_t llc_requests =
        cfg.hasL3 ? l3Cache.accesses() : l2Cache.accesses();
    r.offcoreRequestPki = static_cast<double>(llc_requests) / kilo;
    // Snoops: shared-LLC fills that another core may service; modelled
    // as a fixed fraction of LLC hits in lieu of a multi-core model.
    uint64_t llc_hits = llc_requests >= l3MissesTotal
                            ? llc_requests - l3MissesTotal
                            : 0;
    r.snoopResponsePki =
        0.1 * static_cast<double>(llc_hits) / kilo;
    r.memoryBytesPki = static_cast<double>(l3MissesTotal) * 64.0 / kilo;
    r.codeFootprintKb =
        static_cast<double>(codeLines.size()) * 64.0 / 1024.0;
    r.dataFootprintKb =
        static_cast<double>(dataPages.size()) * 4096.0 / 1024.0;

    // Intensity.
    uint64_t fp_ops = mixCounter.count(OpKind::FpAlu) +
                      mixCounter.count(OpKind::FpMul) +
                      mixCounter.count(OpKind::FpDiv);
    uint64_t int_ops = mixCounter.count(OpKind::IntAlu) +
                       mixCounter.count(OpKind::IntMul) +
                       mixCounter.count(OpKind::IntDiv);
    double dram_bytes = std::max(
        static_cast<double>(l3MissesTotal) * 64.0, 1.0);
    r.fpPki = static_cast<double>(fp_ops) / kilo;
    r.operationIntensity = static_cast<double>(fp_ops) / dram_bytes;
    r.integerIntensity = static_cast<double>(int_ops) / dram_bytes;
    r.mlp = core.mlp;
    // Achieved GFLOPS = fp ops per cycle * frequency.
    r.gflops = static_cast<double>(fp_ops) / r.cycles *
               core.frequencyGhz;
    return r;
}

} // namespace wcrt
