#include "sim/sim_cpu.hh"

#include <algorithm>

namespace wcrt {

SimCpu::SimCpu(const MachineConfig &config)
    : cfg(config),
      l1iCache(config.l1i),
      l1dCache(config.l1d),
      l2Cache(config.l2),
      l3Cache(config.l3),
      itlbUnit(config.itlb),
      dtlbUnit(config.dtlb),
      branchUnit(config.branch),
      prefetcher(config.prefetch)
{
}

void
SimCpu::consume(const MicroOp &op)
{
    mixCounter.consume(op);

    // Instruction side: every op fetches through ITLB and L1I.
    if (!itlbUnit.access(op.pc))
        ++itlbMisses;
    codeLines.insert(op.pc >> 6);
    if (!l1iCache.access(op.pc, false)) {
        ++l1iMissCount;
        if (!l2Cache.access(op.pc, false)) {
            ++l2MissesFromL1i;
            if (!cfg.hasL3 || !l3Cache.access(op.pc, false))
                ++l3MissesTotal;
        }
    }

    // Data side.
    if (op.memSize > 0) {
        bool is_write = op.kind == OpKind::Store;
        if (!dtlbUnit.access(op.memAddr))
            ++dtlbMisses;
        dataPages.insert(op.memAddr >> 12);
        // Hardware stream prefetch fills lines ahead of confirmed
        // sequential streams so streamed data hits on demand.
        auto advice = prefetcher.observe(op.memAddr);
        for (uint32_t p = 0; p < advice.prefetchLines; ++p) {
            uint64_t line_addr = advice.prefetchFrom +
                                 static_cast<uint64_t>(p) * 64;
            l1dCache.prefetch(line_addr);
            l2Cache.prefetch(line_addr);
            if (cfg.hasL3)
                l3Cache.prefetch(line_addr);
        }
        if (!l1dCache.access(op.memAddr, is_write)) {
            ++l1dMissCount;
            if (!l2Cache.access(op.memAddr, is_write)) {
                ++l2MissesFromL1d;
                if (!cfg.hasL3 || !l3Cache.access(op.memAddr, is_write)) {
                    ++l3MissesTotal;
                    if (is_write)
                        ++storesMissingL3;
                }
            }
        }
    }

    // Control side.
    if (isControl(op.kind))
        branchUnit.predict(op);
}

void
SimCpu::consumeBatch(const OpBlockView &ops)
{
    // Same event sequence as consume(), restructured for block
    // throughput: the loop reads the block's field arrays directly
    // (kinds/pcs/memAddrs/memSizes), materializing a whole MicroOp
    // only for the control ops the branch unit needs, mix tallies
    // ride the event loop's existing kind branches and commit once
    // per block (no second pass over the ops), event counts ride in
    // registers until the block drains, the
    // unordered-set footprint inserts are skipped while the stream
    // stays on the same code line / data page (set semantics make the
    // skip invisible in the report), and guaranteed-hit re-accesses
    // bypass the L1I/TLB/L1D tag walks as statistics-credited hits.
    //
    // The d-side skip is a two-slot filter: a slot holds a page/line
    // that is provably still the MRU entry *of its cache set*, which
    // stays true until another access or prefetch touches the same
    // set. Two slots whose sets differ therefore cannot invalidate
    // each other, so alternating load/store streams both keep their
    // skip (the classic A,B,A,B pattern a single-slot guard misses).
    // Re-accessing a slotted entry is then a guaranteed hit on a line
    // whose within-set LRU position cannot change, so skipping the
    // walk leaves the model state bit-identical (see
    // Cache::creditRepeatHits). L1D writes never skip: a write also
    // sets the dirty bit, which only the real walk can do.
    const bool has_l3 = cfg.hasL3;
    std::array<uint64_t, numOpKinds> kind_tally{};
    uint64_t int_addr = 0, fp_addr = 0, compute_int = 0;
    uint64_t itlb_miss = 0, dtlb_miss = 0;
    uint64_t l1i_miss = 0, l1d_miss = 0;
    uint64_t l2_from_l1i = 0, l2_from_l1d = 0;
    uint64_t l3_miss = 0, store_l3_miss = 0;
    uint64_t itlb_repeats = 0, dtlb_repeats = 0;
    uint64_t l1i_repeats = 0, l1d_repeats = 0;
    uint64_t last_code_line = ~0ull;
    uint64_t last_code_page = ~0ull;
    // DTLB repeat-filter slots (page id + the set it maps to).
    uint64_t dtlb_page0 = ~0ull, dtlb_page1 = ~0ull;
    uint32_t dtlb_set0 = 0, dtlb_set1 = 0;
    // L1D repeat-filter slots (line id + set). Invalidated per-set by
    // prefetch fills, which touch the tag array behind the filter.
    uint64_t l1d_line0 = ~0ull, l1d_line1 = ~0ull;
    uint32_t l1d_set0 = 0, l1d_set1 = 0;
    // Prefetch-burst memos: the line ranges the last two fill bursts
    // covered (one per concurrent stream, same two-slot idea as
    // above). Consecutive bursts from a confirmed stream overlap by
    // degree-1 lines, and prefetch() keeps no statistics, so
    // re-filling a line that is still MRU of its set at every level
    // is a provable no-op and is skipped. A memo dies as soon as a
    // demand walk or another burst's fill touches any memoised set
    // (checked below); a range is empty when lo > hi.
    uint64_t pf_lo0 = 1, pf_hi0 = 0;
    uint64_t pf_lo1 = 1, pf_hi1 = 0;
    // Last line handed to prefetcher.observe(): an immediate same-line
    // re-observation takes the warm-retouch path, which only re-marks
    // a stream entry that the immediately preceding observe() already
    // made most-recent — relative recency among entries is unchanged
    // and no advice is returned, so the call can be skipped outright.
    uint64_t last_obs_line = ~0ull;
    // Two-slot memo for the dataPages set: loads and stores typically
    // stream over two distinct regions, so remembering the last two
    // inserted pages skips the hash insert for both streams (set
    // semantics make any skip heuristic invisible in the report).
    uint64_t page_memo0 = ~0ull;
    uint64_t page_memo1 = ~0ull;

    const size_t count = ops.count;
    for (size_t i = 0; i < count; ++i) {
        const OpKind kind = ops.kinds[i];
        const uint64_t pc = ops.pcs[i];
        ++kind_tally[static_cast<size_t>(kind)];

        uint64_t code_page = pc >> 12;
        if (code_page == last_code_page) {
            ++itlb_repeats;
        } else {
            if (!itlbUnit.access(pc))
                ++itlb_miss;
            last_code_page = code_page;
        }
        uint64_t code_line = pc >> 6;
        if (code_line == last_code_line) {
            ++l1i_repeats;
        } else {
            codeLines.insert(code_line);
            last_code_line = code_line;
            if (!l1iCache.access(pc, false)) {
                ++l1i_miss;
                // The L2/L3 walk below may touch memoised sets;
                // i-side misses are rare, so drop the memos outright.
                pf_lo0 = 1;
                pf_hi0 = 0;
                pf_lo1 = 1;
                pf_hi1 = 0;
                if (!l2Cache.access(pc, false)) {
                    ++l2_from_l1i;
                    if (!has_l3 || !l3Cache.access(pc, false))
                        ++l3_miss;
                }
            }
        }

        if (ops.memSizes[i] > 0) {
            const uint64_t mem_addr = ops.memAddrs[i];
            bool is_write = kind == OpKind::Store;
            uint64_t data_page = mem_addr >> 12;
            if (data_page == dtlb_page0) {
                ++dtlb_repeats;
            } else if (data_page == dtlb_page1) {
                // Slot 1's set differs from slot 0's, so slot 0's
                // accesses cannot have disturbed it: still MRU.
                ++dtlb_repeats;
                std::swap(dtlb_page0, dtlb_page1);
                std::swap(dtlb_set0, dtlb_set1);
            } else {
                uint32_t set = dtlbUnit.setIndex(mem_addr);
                if (!dtlbUnit.access(mem_addr))
                    ++dtlb_miss;
                if (set == dtlb_set0) {
                    // Displaces slot 0's page from MRU of this set.
                    dtlb_page0 = data_page;
                } else {
                    dtlb_page1 = dtlb_page0;
                    dtlb_set1 = dtlb_set0;
                    dtlb_page0 = data_page;
                    dtlb_set0 = set;
                }
            }
            if (data_page != page_memo0 && data_page != page_memo1) {
                dataPages.insert(data_page);
                page_memo1 = page_memo0;
                page_memo0 = data_page;
            }
            uint64_t data_line = mem_addr >> 6;
            if (data_line != last_obs_line) {
                last_obs_line = data_line;
                auto advice = prefetcher.observe(mem_addr);
                if (advice.prefetchLines > 0) {
                    uint64_t first = advice.prefetchFrom >> 6;
                    uint64_t last = first + advice.prefetchLines - 1;
                    // The range the new burst does NOT replace (the
                    // other stream's burst, usually) keeps its claim
                    // only while no fill touches one of its sets.
                    bool replaces0 = first <= pf_hi0 && last >= pf_lo0;
                    uint64_t keep_lo = replaces0 ? pf_lo1 : pf_lo0;
                    uint64_t keep_hi = replaces0 ? pf_hi1 : pf_hi0;
                    for (uint64_t line = first; line <= last; ++line) {
                        if ((line >= pf_lo0 && line <= pf_hi0) ||
                            (line >= pf_lo1 && line <= pf_hi1))
                            continue;  // still MRU at every level
                        uint64_t line_addr = line << 6;
                        l1dCache.prefetch(line_addr);
                        l2Cache.prefetch(line_addr);
                        if (has_l3)
                            l3Cache.prefetch(line_addr);
                        // A fill into a slotted set dethrones that
                        // slot's line from MRU; forget it.
                        uint32_t pset = l1dCache.setIndex(line_addr);
                        if (pset == l1d_set0)
                            l1d_line0 = ~0ull;
                        if (pset == l1d_set1)
                            l1d_line1 = ~0ull;
                        for (uint64_t m = keep_lo; m <= keep_hi; ++m) {
                            if (l1dCache.setIndex(m << 6) == pset ||
                                l2Cache.setIndex(m << 6) ==
                                    l2Cache.setIndex(line_addr) ||
                                (has_l3 &&
                                 l3Cache.setIndex(m << 6) ==
                                     l3Cache.setIndex(line_addr))) {
                                keep_lo = 1;
                                keep_hi = 0;
                                break;
                            }
                        }
                    }
                    pf_lo0 = first;
                    pf_hi0 = last;
                    pf_lo1 = keep_lo;
                    pf_hi1 = keep_hi;
                }
            }
            if (!is_write && data_line == l1d_line0) {
                ++l1d_repeats;
            } else if (!is_write && data_line == l1d_line1) {
                ++l1d_repeats;
                std::swap(l1d_line0, l1d_line1);
                std::swap(l1d_set0, l1d_set1);
            } else {
                uint32_t set = l1dCache.setIndex(mem_addr);
                bool l1d_hit = l1dCache.access(mem_addr, is_write);
                if (!l1d_hit) {
                    ++l1d_miss;
                    if (!l2Cache.access(mem_addr, is_write)) {
                        ++l2_from_l1d;
                        if (!has_l3 ||
                            !l3Cache.access(mem_addr, is_write)) {
                            ++l3_miss;
                            if (is_write)
                                ++store_l3_miss;
                        }
                    }
                }
                // This walk touched real sets; drop a burst memo if
                // any of its lines' MRU position could have been
                // disturbed. A hit only touches this line's own L1D
                // set — re-touching a memoised line itself leaves it
                // MRU, so only *other* memoised lines aliasing the
                // same set matter. A miss also walks L2/L3 (a
                // memoised line is L1D-resident by construction, so
                // a miss line is never memoised).
                auto demand_clash = [&](uint64_t lo, uint64_t hi) {
                    for (uint64_t m = lo; m <= hi; ++m) {
                        if (m == data_line)
                            continue;
                        if (l1dCache.setIndex(m << 6) == set ||
                            (!l1d_hit &&
                             (l2Cache.setIndex(m << 6) ==
                                  l2Cache.setIndex(mem_addr) ||
                              (has_l3 &&
                               l3Cache.setIndex(m << 6) ==
                                   l3Cache.setIndex(mem_addr)))))
                            return true;
                    }
                    return false;
                };
                if (demand_clash(pf_lo0, pf_hi0)) {
                    pf_lo0 = 1;
                    pf_hi0 = 0;
                }
                if (demand_clash(pf_lo1, pf_hi1)) {
                    pf_lo1 = 1;
                    pf_hi1 = 0;
                }
                // The accessed line is now MRU of its set; record it.
                // A write to an already-slotted line keeps its slot
                // (same line, same set, dirty now set by the walk).
                if (data_line == l1d_line1) {
                    std::swap(l1d_line0, l1d_line1);
                    std::swap(l1d_set0, l1d_set1);
                } else if (data_line != l1d_line0) {
                    if (set == l1d_set0) {
                        l1d_line0 = data_line;
                    } else {
                        l1d_line1 = l1d_line0;
                        l1d_set1 = l1d_set0;
                        l1d_line0 = data_line;
                        l1d_set0 = set;
                    }
                }
            }
        }

        // Branchless purpose tally, keyed on kind exactly like
        // consume(): zero contribution for anything but int ops.
        uint64_t is_alu = kind == OpKind::IntAlu ? 1u : 0u;
        uint64_t ia = is_alu &
                      (ops.purposes[i] == IntPurpose::IntAddress ? 1u : 0u);
        uint64_t fa = is_alu &
                      (ops.purposes[i] == IntPurpose::FpAddress ? 1u : 0u);
        int_addr += ia;
        fp_addr += fa;
        compute_int += (isInt(kind) ? 1u : 0u) - ia - fa;

        if (isControl(kind))
            branchUnit.predict(ops[i]);
    }

    mixCounter.addTallies(kind_tally, int_addr, fp_addr, compute_int,
                          count);
    itlbUnit.creditRepeatHits(itlb_repeats);
    dtlbUnit.creditRepeatHits(dtlb_repeats);
    l1iCache.creditRepeatHits(l1i_repeats);
    l1dCache.creditRepeatHits(l1d_repeats);
    itlbMisses += itlb_miss;
    dtlbMisses += dtlb_miss;
    l1iMissCount += l1i_miss;
    l1dMissCount += l1d_miss;
    l2MissesFromL1i += l2_from_l1i;
    l2MissesFromL1d += l2_from_l1d;
    l3MissesTotal += l3_miss;
    storesMissingL3 += store_l3_miss;
}

CpuReport
SimCpu::report() const
{
    CpuReport r;
    r.machine = cfg.name;
    uint64_t insts = mixCounter.total();
    r.instructions = insts;
    if (insts == 0)
        return r;

    double kilo = static_cast<double>(insts) / 1000.0;

    // Instruction mix.
    r.loadRatio = mixCounter.loadRatio();
    r.storeRatio = mixCounter.storeRatio();
    r.branchRatio = mixCounter.branchRatio();
    r.integerRatio = mixCounter.integerRatio();
    r.fpRatio = mixCounter.fpRatio();
    r.otherRatio = mixCounter.otherRatio();
    r.intAddressShare = mixCounter.intAddressShare();
    r.fpAddressShare = mixCounter.fpAddressShare();
    r.otherIntShare = mixCounter.otherIntShare();
    r.dataMovementRatio = mixCounter.dataMovementRatio();
    r.dataMovementWithBranchRatio =
        mixCounter.dataMovementWithBranchRatio();

    // Caches.
    r.l1iMpki = static_cast<double>(l1iMissCount) / kilo;
    r.l1iMissRatio = l1iCache.missRatio();
    r.l1dMpki = static_cast<double>(l1dMissCount) / kilo;
    r.l1dMissRatio = l1dCache.missRatio();
    uint64_t l2_misses = l2MissesFromL1i + l2MissesFromL1d;
    r.l2Mpki = static_cast<double>(l2_misses) / kilo;
    r.l2MissRatio = l2Cache.missRatio();
    r.l3Mpki = static_cast<double>(l3MissesTotal) / kilo;
    r.l3MissRatio = cfg.hasL3 ? l3Cache.missRatio() : 1.0;

    // TLBs.
    r.itlbMpki = static_cast<double>(itlbMisses) / kilo;
    r.dtlbMpki = static_cast<double>(dtlbMisses) / kilo;

    // Branches.
    const BranchStats &bs = branchUnit.stats();
    r.branchMispredictRatio = bs.mispredictRatio();
    uint64_t branches = mixCounter.count(OpKind::BranchCond) +
                        mixCounter.count(OpKind::BranchUncond) +
                        mixCounter.count(OpKind::BranchIndirect);
    r.branchTakenRatio =
        branches ? static_cast<double>(bs.taken) /
                       static_cast<double>(bs.total() +
                                           mixCounter.count(
                                               OpKind::BranchUncond))
                 : 0.0;
    r.btbMissPki = static_cast<double>(bs.btbMisses) / kilo;
    r.branchStats = bs;

    // Pipeline: additive cycle accounting.
    const CoreParams &core = cfg.core;
    uint64_t fp_dyn = mixCounter.count(OpKind::FpAlu) +
                      mixCounter.count(OpKind::FpMul) +
                      mixCounter.count(OpKind::FpDiv);
    uint64_t div_dyn = mixCounter.count(OpKind::FpDiv) +
                       mixCounter.count(OpKind::IntDiv);
    double base_cycles = static_cast<double>(insts) * core.baseCpi +
                         static_cast<double>(fp_dyn) * core.fpExtraCpi +
                         static_cast<double>(div_dyn) * core.divExtraCpi;
    double mispredict_cycles = static_cast<double>(bs.mispredicts()) *
                               cfg.branch.mispredictPenalty;
    double l1i_cycles =
        static_cast<double>(l1iMissCount) * core.l1iMissPenalty;
    double itlb_cycles =
        static_cast<double>(itlbMisses) * core.tlbMissPenalty;
    double btb_cycles =
        static_cast<double>(bs.btbMisses) * core.btbResteerPenalty;
    double frontend_cycles =
        mispredict_cycles + l1i_cycles + itlb_cycles + btb_cycles;

    double l2_hit_data =
        static_cast<double>(l1dMissCount -
                            std::min(l1dMissCount, l2MissesFromL1d)) *
        core.l2HitLatency;
    double l3_hit_data = 0.0;
    double mem_data = 0.0;
    if (cfg.hasL3) {
        uint64_t l3_data_misses =
            std::min(l3MissesTotal, l2MissesFromL1d);
        l3_hit_data = static_cast<double>(l2MissesFromL1d -
                                          l3_data_misses) *
                      core.l3HitLatency;
        mem_data = static_cast<double>(l3_data_misses) * core.memLatency;
    } else {
        mem_data = static_cast<double>(l2MissesFromL1d) * core.memLatency;
    }
    double dtlb_cycles =
        static_cast<double>(dtlbMisses) * core.tlbMissPenalty;
    double backend_cycles =
        (l2_hit_data + l3_hit_data + mem_data) / std::max(core.mlp, 1.0) +
        dtlb_cycles;

    r.cycles = base_cycles + frontend_cycles + backend_cycles;
    r.ipc = static_cast<double>(insts) / r.cycles;
    r.cpi = 1.0 / r.ipc;
    r.frontendStallRatio = frontend_cycles / r.cycles;
    r.backendStallRatio = backend_cycles / r.cycles;
    uint64_t all_ctrl = branches + mixCounter.count(OpKind::Call) +
                        mixCounter.count(OpKind::CallIndirect) +
                        mixCounter.count(OpKind::Return);
    r.basicBlockSize =
        all_ctrl ? static_cast<double>(insts) /
                       static_cast<double>(all_ctrl)
                 : static_cast<double>(insts);

    // Off-core and locality.
    uint64_t llc_requests =
        cfg.hasL3 ? l3Cache.accesses() : l2Cache.accesses();
    r.offcoreRequestPki = static_cast<double>(llc_requests) / kilo;
    // Snoops: shared-LLC fills that another core may service; modelled
    // as a fixed fraction of LLC hits in lieu of a multi-core model.
    uint64_t llc_hits = llc_requests >= l3MissesTotal
                            ? llc_requests - l3MissesTotal
                            : 0;
    r.snoopResponsePki =
        0.1 * static_cast<double>(llc_hits) / kilo;
    r.memoryBytesPki = static_cast<double>(l3MissesTotal) * 64.0 / kilo;
    r.codeFootprintKb =
        static_cast<double>(codeLines.size()) * 64.0 / 1024.0;
    r.dataFootprintKb =
        static_cast<double>(dataPages.size()) * 4096.0 / 1024.0;

    // Intensity.
    uint64_t fp_ops = mixCounter.count(OpKind::FpAlu) +
                      mixCounter.count(OpKind::FpMul) +
                      mixCounter.count(OpKind::FpDiv);
    uint64_t int_ops = mixCounter.count(OpKind::IntAlu) +
                       mixCounter.count(OpKind::IntMul) +
                       mixCounter.count(OpKind::IntDiv);
    double dram_bytes = std::max(
        static_cast<double>(l3MissesTotal) * 64.0, 1.0);
    r.fpPki = static_cast<double>(fp_ops) / kilo;
    r.operationIntensity = static_cast<double>(fp_ops) / dram_bytes;
    r.integerIntensity = static_cast<double>(int_ops) / dram_bytes;
    r.mlp = core.mlp;
    // Achieved GFLOPS = fp ops per cycle * frequency.
    r.gflops = static_cast<double>(fp_ops) / r.cycles *
               core.frequencyGhz;
    return r;
}

} // namespace wcrt
