#include "sim/tlb.hh"

namespace wcrt {

namespace {

CacheConfig
toCacheConfig(const TlbConfig &cfg)
{
    CacheConfig c;
    c.name = cfg.name;
    c.sizeBytes = static_cast<uint64_t>(cfg.entries) * cfg.pageBytes;
    c.assoc = cfg.assoc;
    c.lineBytes = cfg.pageBytes;
    return c;
}

} // namespace

Tlb::Tlb(const TlbConfig &config) : cfg(config), tags(toCacheConfig(config))
{
}

bool
Tlb::access(uint64_t addr)
{
    return tags.access(addr, false);
}

} // namespace wcrt
