#include "sim/cache.hh"

#include <bit>

#include "base/logging.hh"

namespace wcrt {

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    if (cfg.lineBytes == 0 || !std::has_single_bit(cfg.lineBytes))
        wcrt_fatal("cache '", cfg.name, "': line size must be a power "
                   "of two, got ", cfg.lineBytes);
    if (cfg.assoc == 0)
        wcrt_fatal("cache '", cfg.name, "': associativity must be >= 1");
    uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (lines == 0 || lines % cfg.assoc != 0)
        wcrt_fatal("cache '", cfg.name, "': size ", cfg.sizeBytes,
                   " not divisible into ", cfg.assoc, "-way sets of ",
                   cfg.lineBytes, "-byte lines");
    nSets = static_cast<uint32_t>(lines / cfg.assoc);
    setsPow2 = std::has_single_bit(nSets);
    lineShift = static_cast<uint32_t>(std::countr_zero(cfg.lineBytes));
    ways.assign(static_cast<size_t>(nSets) * cfg.assoc, Way{});
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    return accessLine(addr >> lineShift, is_write);
}

bool
Cache::accessLine(uint64_t line, bool is_write)
{
    ++nAccesses;
    bool hit = touchLine(line, is_write);
    if (!hit)
        ++nMisses;
    return hit;
}

bool
Cache::prefetch(uint64_t addr)
{
    return touchLine(addr >> lineShift, false);
}

bool
Cache::Shard::accessLine(uint64_t line, bool is_write)
{
    ++accessDelta;
    bool hit = owner->touchLineTicked(line, is_write, localTick);
    if (!hit)
        ++missDelta;
    return hit;
}

bool
Cache::touchLine(uint64_t line, bool is_write)
{
    return touchLineTicked(line, is_write, tick);
}

bool
Cache::touchLineTicked(uint64_t line, bool is_write, uint64_t &tick_ref)
{
    ++tick_ref;
    // Non-power-of-two set counts (e.g. the E5645's 12288-set L3) use
    // modulo indexing (see setOfLine); the full line id is the tag.
    uint32_t set = setOfLine(line);
    uint64_t tag = line;
    Way *base = &ways[static_cast<size_t>(set) * cfg.assoc];

    Way *victim = base;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_ref;
            way.dirty = way.dirty || is_write;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_ref;
    victim->dirty = is_write;
    return false;
}

uint32_t
Cache::accessRange(uint64_t addr, uint32_t bytes, bool is_write)
{
    if (bytes == 0)
        bytes = 1;
    uint64_t first = addr >> lineShift;
    uint64_t last = (addr + bytes - 1) >> lineShift;
    uint32_t missing = 0;
    for (uint64_t line = first; line <= last; ++line) {
        if (!access(line << lineShift, is_write))
            ++missing;
    }
    return missing;
}

void
Cache::invalidate()
{
    for (auto &w : ways)
        w = Way{};
}

void
Cache::resetStats()
{
    nAccesses = 0;
    nMisses = 0;
}

double
Cache::missRatio() const
{
    return nAccesses
               ? static_cast<double>(nMisses) /
                     static_cast<double>(nAccesses)
               : 0.0;
}

} // namespace wcrt
