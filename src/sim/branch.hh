/**
 * @file
 * Branch prediction models for the paper's Table 4 comparison.
 *
 * Two machine flavours are modelled:
 *  - Atom D510: two-level adaptive predictor with a global history
 *    table, 128-entry BTB, no indirect-target predictor, 15-cycle
 *    misprediction penalty.
 *  - Xeon E5645: hybrid predictor combining the two-level scheme with a
 *    loop counter, an indirect jump/call target predictor, an
 *    8192-entry BTB, and an 11-13 cycle penalty.
 *
 * The predictor consumes control-transfer MicroOps and reports whether
 * the fetch redirect would have been correct.
 */

#ifndef WCRT_SIM_BRANCH_HH
#define WCRT_SIM_BRANCH_HH

#include <cstdint>
#include <vector>

#include "trace/microop.hh"

namespace wcrt {

/** Branch-unit configuration. */
struct BranchConfig
{
    uint32_t historyBits = 12;       //!< global history length
    uint32_t phtEntries = 4096;      //!< pattern history table (2-bit)
    uint32_t btbEntries = 8192;
    uint32_t btbAssoc = 4;
    bool hasLoopPredictor = true;
    uint32_t loopEntries = 128;
    bool hasIndirectPredictor = true;
    uint32_t indirectEntries = 512;
    uint32_t rasEntries = 16;
    double mispredictPenalty = 12.0; //!< cycles per mispredict

    /**
     * In-order front-ends (Atom) cannot resteer a taken branch at
     * decode: a BTB miss costs the full refetch, so it counts as a
     * misprediction. Out-of-order decode-resteer cores keep it a
     * cheap bubble.
     */
    bool btbMissIsMispredict = false;
};

/** Counters the predictor accumulates. */
struct BranchStats
{
    uint64_t conditional = 0;
    uint64_t conditionalMispredicts = 0;
    uint64_t unconditional = 0;      //!< direct jumps
    uint64_t unconditionalMispredicts = 0; //!< in-order BTB refetches
    uint64_t taken = 0;
    uint64_t indirect = 0;          //!< indirect jumps + indirect calls
    uint64_t indirectMispredicts = 0;
    uint64_t returns = 0;
    uint64_t returnMispredicts = 0;
    uint64_t btbMisses = 0;         //!< taken transfers missing a target

    /** All predicted control transfers. */
    uint64_t
    total() const
    {
        return conditional + unconditional + indirect + returns;
    }

    /** All mispredicted control transfers. */
    uint64_t
    mispredicts() const
    {
        return conditionalMispredicts + unconditionalMispredicts +
               indirectMispredicts + returnMispredicts;
    }

    /** Misprediction ratio over all predicted transfers. */
    double
    mispredictRatio() const
    {
        return total() ? static_cast<double>(mispredicts()) /
                             static_cast<double>(total())
                       : 0.0;
    }
};

/**
 * Configurable branch unit: gshare-style two-level direction predictor,
 * optional loop predictor with a chooser, BTB, optional indirect-target
 * predictor and a return address stack.
 */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchConfig &config);

    /**
     * Predict and train on one control-transfer op. Non-control ops
     * are ignored.
     *
     * @return true when the prediction (direction and target) was
     *         correct; also true for ignored ops.
     */
    bool predict(const MicroOp &op);

    const BranchStats &stats() const { return st; }
    const BranchConfig &config() const { return cfg; }
    void resetStats() { st = BranchStats{}; }

  private:
    bool predictConditional(const MicroOp &op);
    bool predictIndirect(const MicroOp &op);
    bool predictReturn(const MicroOp &op);
    void pushRas(uint64_t return_pc);

    /** Two-bit saturating counter helpers. */
    static bool counterTaken(uint8_t c) { return c >= 2; }
    static uint8_t bump(uint8_t c, bool taken);

    /** BTB lookup/update; @return true when the target was present. */
    bool btbLookupUpdate(uint64_t pc, uint64_t target);

    struct LoopEntry
    {
        uint64_t pc = 0;
        uint32_t tripCount = 0;   //!< learned iterations before exit
        uint32_t currentCount = 0;
        uint8_t confidence = 0;   //!< saturating confirmation counter
        bool valid = false;
    };

    struct BtbEntry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    BranchConfig cfg;
    BranchStats st;

    uint64_t history = 0;
    std::vector<uint8_t> pht;        //!< 2-bit counters
    std::vector<uint8_t> chooser;    //!< 2-bit loop-vs-gshare chooser
    std::vector<LoopEntry> loops;
    std::vector<uint64_t> indirectTargets;
    std::vector<BtbEntry> btb;
    std::vector<uint64_t> ras;
    size_t rasTop = 0;
    size_t rasDepth = 0;
    uint64_t btbTick = 0;
};

/** D510-flavoured branch unit configuration (Table 4, left column). */
BranchConfig atomD510Branch();

/** E5645-flavoured branch unit configuration (Table 4, right column). */
BranchConfig xeonE5645Branch();

} // namespace wcrt

#endif // WCRT_SIM_BRANCH_HH
