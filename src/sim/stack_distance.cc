#include "sim/stack_distance.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"
#include "base/worker_pool.hh"

namespace wcrt {

namespace {

/** splitmix64 finalizer: line ids are near-sequential, spread them. */
uint64_t
mixLine(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Initial open-addressing capacity (power of two). */
constexpr size_t kInitialMapSlots = 1 << 10;

} // namespace

StackDistanceProfile::StackDistanceProfile(uint32_t line_bytes,
                                           unsigned workers,
                                           size_t initial_slots)
    : lineBytes(line_bytes)
{
    if (line_bytes == 0 || !std::has_single_bit(line_bytes))
        wcrt_fatal("stack-distance profile: line size must be a power "
                   "of two, got ", line_bytes);
    lineShift = static_cast<uint32_t>(std::countr_zero(line_bytes));
    poolCap = workers;
    size_t slots = std::bit_ceil(std::max<size_t>(initial_slots, 16));
    instrStream.init(slots);
    dataStream.init(slots);
    uniStream.init(slots);
}

void
StackDistanceProfile::Stream::init(size_t slots)
{
    slotCap = slots;
    fenwick.assign(slotCap + 1, 0);
    keys.assign(kInitialMapSlots, kEmptyKey);
    vals.assign(kInitialMapSlots, 0);
}

void
StackDistanceProfile::Stream::bump(uint64_t d, uint64_t n)
{
    if (d >= hist.size())
        hist.resize(std::max<size_t>(d + 1, hist.size() * 2), 0);
    hist[d] += n;
}

void
StackDistanceProfile::Stream::fenAdd(size_t slot, int64_t delta)
{
    for (size_t i = slot + 1; i <= slotCap; i += i & (~i + 1))
        fenwick[i] = static_cast<uint64_t>(
            static_cast<int64_t>(fenwick[i]) + delta);
}

uint64_t
StackDistanceProfile::Stream::fenPrefix(size_t slot) const
{
    uint64_t sum = 0;
    for (size_t i = slot + 1; i > 0; i -= i & (~i + 1))
        sum += fenwick[i];
    return sum;
}

size_t
StackDistanceProfile::Stream::probe(uint64_t line) const
{
    size_t mask = keys.size() - 1;
    size_t i = mixLine(line) & mask;
    while (keys[i] != kEmptyKey && keys[i] != line)
        i = (i + 1) & mask;
    return i;
}

void
StackDistanceProfile::Stream::growMapIfNeeded()
{
    // Rehash at 70% load; linear probing degrades sharply past that.
    if (live * 10 < keys.size() * 7)
        return;
    std::vector<uint64_t> old_keys = std::move(keys);
    std::vector<uint64_t> old_vals = std::move(vals);
    keys.assign(old_keys.size() * 2, kEmptyKey);
    vals.assign(old_vals.size() * 2, 0);
    size_t mask = keys.size() - 1;
    for (size_t j = 0; j < old_keys.size(); ++j) {
        if (old_keys[j] == kEmptyKey)
            continue;
        size_t i = mixLine(old_keys[j]) & mask;
        while (keys[i] != kEmptyKey)
            i = (i + 1) & mask;
        keys[i] = old_keys[j];
        vals[i] = old_vals[j];
    }
}

void
StackDistanceProfile::Stream::compact()
{
    // Renumber the live slots densely, preserving their order — only
    // the relative order of last-access slots enters any rank query,
    // so every future distance is unchanged. Regrow the slot space to
    // keep at least half free: with >= slotCap/2 accesses between
    // compactions, the O(live log live) renumber amortizes to O(log)
    // per access.
    std::vector<uint64_t> order;
    order.reserve(live);
    for (size_t j = 0; j < keys.size(); ++j)
        if (keys[j] != kEmptyKey)
            order.push_back(vals[j]);
    std::sort(order.begin(), order.end());
    while (slotCap < 2 * (live + 1))
        slotCap *= 2;
    fenwick.assign(slotCap + 1, 0);
    for (size_t j = 0; j < keys.size(); ++j) {
        if (keys[j] == kEmptyKey)
            continue;
        size_t idx = static_cast<size_t>(
            std::lower_bound(order.begin(), order.end(), vals[j]) -
            order.begin());
        vals[j] = idx;
    }
    // O(n) Fenwick build over the dense prefix of set bits.
    for (size_t i = 1; i <= live; ++i)
        fenwick[i] = 1;
    for (size_t i = 1; i <= slotCap; ++i) {
        size_t parent = i + (i & (~i + 1));
        if (parent <= slotCap)
            fenwick[parent] += fenwick[i];
    }
    clock = live;
}

void
StackDistanceProfile::Stream::access(uint64_t line, uint32_t count)
{
    total += count;
    if (line == lastLine) {
        // The stream's previous run touched this line — every access
        // of this run reuses the stack's top entry at distance zero.
        bump(0, count);
        return;
    }
    lastLine = line;
    if (clock == slotCap)
        compact();
    size_t i = probe(line);
    if (keys[i] == kEmptyKey) {
        // First touch: compulsory miss at every capacity; the run's
        // tail re-touches the line at distance zero.
        keys[i] = line;
        vals[i] = clock;
        ++live;
        ++cold;
        if (count > 1)
            bump(0, count - 1);
        fenAdd(clock, +1);
        ++clock;
        growMapIfNeeded();
    } else {
        // Reuse: the distance is the number of live lines whose
        // last-access slot is more recent than this line's — a rank
        // query against the Fenwick tree.
        uint64_t prev = vals[i];
        uint64_t d = live - fenPrefix(static_cast<size_t>(prev));
        bump(d, 1);
        if (count > 1)
            bump(0, count - 1);
        fenAdd(static_cast<size_t>(prev), -1);
        fenAdd(clock, +1);
        vals[i] = clock;
        ++clock;
    }
}

void
StackDistanceProfile::consume(const MicroOp &op)
{
    ++ops;
    uint64_t pc_line = op.pc >> lineShift;
    instrStream.access(pc_line, 1);
    uniStream.access(pc_line, 1);
    if (op.memSize > 0) {
        uint64_t mem_line = op.memAddr >> lineShift;
        dataStream.access(mem_line, 1);
        uniStream.access(mem_line, 1);
    }
}

void
StackDistanceProfile::consumeBatch(const OpBlockView &batch)
{
    ops += batch.count;
    if (batch.count == 0)
        return;
    // Distances are write-sense-blind, so runs merge across
    // read/write alternation (split_on_write = false) — maximal
    // compression, and the per-op order within each stream is
    // preserved exactly.
    runs.build(batch, lineShift, /*split_on_write=*/false);
    auto stream_task = [&](size_t s) {
        Stream &st = s == 0 ? instrStream
                     : s == 1 ? dataStream
                              : uniStream;
        for (const LineRun &r : runs.stream(s))
            st.access(r.line, r.count);
    };
    if (poolCap > 1) {
        WorkerPool::shared().runBounded(3, std::min(poolCap, 3u),
                                        stream_task);
    } else {
        for (size_t s = 0; s < 3; ++s)
            stream_task(s);
    }
}

const StackDistanceProfile::Stream &
StackDistanceProfile::streamFor(SweepKind kind) const
{
    switch (kind) {
      case SweepKind::Instruction:
        return instrStream;
      case SweepKind::Data:
        return dataStream;
      default:
        return uniStream;
    }
}

std::vector<double>
StackDistanceProfile::missRatios(
    SweepKind kind, const std::vector<uint32_t> &sizes_kb) const
{
    const Stream &s = streamFor(kind);
    // One histogram walk serves every rung: sort the capacities (in
    // lines) and accumulate hits as the walk crosses each one.
    std::vector<std::pair<uint64_t, size_t>> caps;
    caps.reserve(sizes_kb.size());
    for (size_t i = 0; i < sizes_kb.size(); ++i) {
        uint64_t cap_lines =
            (static_cast<uint64_t>(sizes_kb[i]) * 1024) / lineBytes;
        caps.emplace_back(cap_lines, i);
    }
    std::sort(caps.begin(), caps.end());
    std::vector<double> out(sizes_kb.size(), 0.0);
    uint64_t hits = 0;
    size_t d = 0;
    for (const auto &[cap_lines, idx] : caps) {
        size_t limit = static_cast<size_t>(
            std::min<uint64_t>(cap_lines, s.hist.size()));
        for (; d < limit; ++d)
            hits += s.hist[d];
        uint64_t misses = s.total - hits;
        out[idx] = s.total ? static_cast<double>(misses) /
                                 static_cast<double>(s.total)
                           : 0.0;
    }
    return out;
}

uint64_t
StackDistanceProfile::accesses(SweepKind kind) const
{
    return streamFor(kind).total;
}

uint64_t
StackDistanceProfile::coldMisses(SweepKind kind) const
{
    return streamFor(kind).cold;
}

uint64_t
StackDistanceProfile::distinctLines(SweepKind kind) const
{
    return streamFor(kind).live;
}

const std::vector<uint64_t> &
StackDistanceProfile::histogram(SweepKind kind) const
{
    return streamFor(kind).hist;
}

} // namespace wcrt
