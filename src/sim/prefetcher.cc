#include "sim/prefetcher.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace wcrt {

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &config)
    : cfg(config)
{
    if (cfg.streams == 0 || cfg.streams > table.size())
        wcrt_fatal("stream prefetcher supports 1..", table.size(),
                   " streams");
    if (cfg.lineBytes == 0 || !std::has_single_bit(cfg.lineBytes))
        wcrt_fatal("stream prefetcher line size must be a power of "
                   "two, got ", cfg.lineBytes);
    // observe() sits on the simulation hot path; a shift beats the
    // integer division a runtime line size would otherwise cost.
    lineShift = static_cast<uint32_t>(std::countr_zero(cfg.lineBytes));
}

StreamPrefetcher::Advice
StreamPrefetcher::observe(uint64_t addr)
{
    Advice advice;
    if (!cfg.enabled)
        return advice;

    ++tick;
    uint64_t line = addr >> lineShift;

    Entry *lru = &table[0];
    for (uint32_t i = 0; i < cfg.streams; ++i) {
        Entry &e = table[i];
        if (!e.valid) {
            lru = &e;
            continue;
        }
        if (lru->valid && e.lastUse < lru->lastUse)
            lru = &e;

        // Within the stream window (the expected next line or a small
        // forward jitter)?
        if (line >= e.nextLine && line < e.nextLine + 4) {
            e.lastUse = tick;
            e.lastLine = line;
            e.nextLine = line + 1;
            if (e.confidence < 4)
                ++e.confidence;
            if (e.confidence >= 2) {
                if (e.confidence == 2)
                    ++confirmed;
                ++coveredCount;
                advice.covered = true;
                advice.prefetchLines = cfg.degree;
                advice.prefetchFrom = (line + 1) << lineShift;
            }
            return advice;
        }
        if (line == e.lastLine) {
            // Re-touching the same line keeps the stream warm.
            e.lastUse = tick;
            return advice;
        }
    }

    // New potential stream.
    lru->valid = true;
    lru->lastLine = line;
    lru->nextLine = line + 1;
    lru->lastUse = tick;
    lru->confidence = 0;
    return advice;
}

} // namespace wcrt
