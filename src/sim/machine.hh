/**
 * @file
 * Whole-machine configurations (the paper's Table 3 and Table 4).
 *
 * A MachineConfig bundles cache/TLB geometry, the branch unit and the
 * analytic core parameters. Three presets match the paper's platforms:
 * the Xeon E5645 testbed, the Atom D510 used for the branch study, and
 * the Atom-like in-order single-core configuration used for the
 * MARSSx86 footprint sweeps.
 */

#ifndef WCRT_SIM_MACHINE_HH
#define WCRT_SIM_MACHINE_HH

#include <string>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/prefetcher.hh"
#include "sim/tlb.hh"

namespace wcrt {

/**
 * Analytic pipeline parameters for the core model.
 *
 * Cycle accounting is additive: a base CPI for the issue machinery
 * plus per-event stall charges, with data-miss charges divided by the
 * memory-level-parallelism factor an out-of-order window provides.
 */
struct CoreParams
{
    double baseCpi = 0.30;          //!< ideal pipeline CPI
    double fpExtraCpi = 0.8;        //!< FP dependency-latency charge/op
    double divExtraCpi = 8.0;       //!< additional charge per divide
    double l1iMissPenalty = 8.0;    //!< front-end bubble per L1I miss
    double btbResteerPenalty = 3.0; //!< decode resteer per BTB miss
    double l1dHitLatencyExtra = 0.0;//!< usually hidden; kept for study
    double l2HitLatency = 10.0;     //!< L1 miss, L2 hit charge
    double l3HitLatency = 38.0;     //!< L2 miss, L3 hit charge
    double memLatency = 180.0;      //!< L3 miss charge
    double tlbMissPenalty = 30.0;   //!< page-walk charge
    double mlp = 3.0;               //!< overlap factor for data misses
    double frequencyGhz = 2.4;      //!< for GFLOPS accounting
    uint32_t cores = 6;             //!< per-socket cores (reporting)
};

/** Complete machine description. */
struct MachineConfig
{
    std::string name;
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig l3;
    bool hasL3 = true;
    TlbConfig itlb;
    TlbConfig dtlb;
    BranchConfig branch;
    PrefetcherConfig prefetch;
    CoreParams core;
};

/** The paper's testbed: Intel Xeon E5645 (Westmere-EP). */
MachineConfig xeonE5645();

/** Intel Atom D510: in-order, simple branch prediction. */
MachineConfig atomD510();

/**
 * The MARSSx86 stand-in for Section 5.4: Atom-like in-order pipeline,
 * 8-way L1 caches of `l1_kb` kilobytes with 64-byte lines and a shared
 * 8-way L2.
 */
MachineConfig atomInOrderSim(uint32_t l1_kb);

} // namespace wcrt

#endif // WCRT_SIM_MACHINE_HH
