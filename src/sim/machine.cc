#include "sim/machine.hh"

namespace wcrt {

MachineConfig
xeonE5645()
{
    MachineConfig m;
    m.name = "Xeon E5645";

    m.l1i = {"L1I", 32 * 1024, 4, 64};
    m.l1d = {"L1D", 32 * 1024, 8, 64};
    m.l2 = {"L2", 256 * 1024, 8, 64};
    m.l3 = {"L3", 12 * 1024 * 1024, 16, 64};
    m.hasL3 = true;

    m.itlb = {"ITLB", 128, 4, 4096};
    m.dtlb = {"DTLB", 64, 4, 4096};

    m.branch = xeonE5645Branch();

    m.prefetch.enabled = true;
    m.prefetch.streams = 16;
    m.prefetch.degree = 4;

    m.core.baseCpi = 0.42;        // 4-wide OoO Westmere, issue-bound
    m.core.fpExtraCpi = 0.55;
    m.core.l1iMissPenalty = 13.0;
    m.core.l2HitLatency = 10.0;
    m.core.l3HitLatency = 38.0;
    m.core.memLatency = 180.0;
    m.core.tlbMissPenalty = 30.0;
    m.core.mlp = 3.0;
    m.core.frequencyGhz = 2.4;
    m.core.cores = 6;
    return m;
}

MachineConfig
atomD510()
{
    MachineConfig m;
    m.name = "Atom D510";

    m.l1i = {"L1I", 32 * 1024, 8, 64};
    m.l1d = {"L1D", 24 * 1024, 6, 64};
    m.l2 = {"L2", 512 * 1024, 8, 64};
    m.hasL3 = false;
    m.l3 = {"L3-none", 64, 1, 64};  // placeholder geometry; unused

    m.itlb = {"ITLB", 32, 4, 4096};
    m.dtlb = {"DTLB", 32, 4, 4096};

    m.branch = atomD510Branch();

    m.prefetch.enabled = true;
    m.prefetch.streams = 8;
    m.prefetch.degree = 2;

    m.core.baseCpi = 0.70;        // 2-wide in-order
    m.core.fpExtraCpi = 2.0;
    m.core.l1iMissPenalty = 10.0;
    m.core.l2HitLatency = 15.0;
    m.core.l3HitLatency = 0.0;    // no L3
    m.core.memLatency = 150.0;
    m.core.tlbMissPenalty = 30.0;
    m.core.mlp = 1.0;             // in-order: no miss overlap
    m.core.frequencyGhz = 1.66;
    m.core.cores = 2;
    return m;
}

MachineConfig
atomInOrderSim(uint32_t l1_kb)
{
    MachineConfig m = atomD510();
    m.name = "Atom-like in-order (MARSSx86 stand-in)";
    m.l1i = {"L1I", static_cast<uint64_t>(l1_kb) * 1024, 8, 64};
    m.l1d = {"L1D", static_cast<uint64_t>(l1_kb) * 1024, 8, 64};
    m.l2 = {"L2", 2 * 1024 * 1024, 8, 64};
    return m;
}

} // namespace wcrt
