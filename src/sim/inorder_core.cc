#include "sim/inorder_core.hh"

#include <algorithm>

namespace wcrt {

InOrderCore::InOrderCore(const MachineConfig &machine,
                         const InOrderParams &params)
    : cfg(machine),
      prm(params),
      l1i(machine.l1i),
      l1d(machine.l1d),
      l2(machine.l2),
      l3(machine.l3),
      itlb(machine.itlb),
      dtlb(machine.dtlb),
      branches(machine.branch)
{
}

uint32_t
InOrderCore::dataLatency(uint64_t addr, bool is_write)
{
    uint32_t latency = prm.l1dHitLatency;
    if (!dtlb.access(addr))
        latency += prm.tlbWalk;
    if (!l1d.access(addr, is_write)) {
        if (l2.access(addr, is_write)) {
            latency = prm.l2HitLatency;
        } else if (cfg.hasL3 && l3.access(addr, is_write)) {
            latency = prm.l3HitLatency;
        } else {
            latency = prm.memLatency;
        }
    }
    return latency;
}

double
InOrderCore::fetchCharge(uint64_t pc)
{
    double charge = 0.0;
    if (!itlb.access(pc))
        charge += prm.tlbWalk;
    if (!l1i.access(pc, false)) {
        charge += prm.l1iMissBubble;
        if (!l2.access(pc, false)) {
            charge += prm.l2HitLatency;
            if (cfg.hasL3 && !l3.access(pc, false))
                charge += prm.l3HitLatency;
        }
    }
    return charge;
}

void
InOrderCore::consume(const MicroOp &op)
{
    mixCounter.consume(op);
    step(op);
}

void
InOrderCore::consumeBatch(const OpBlockView &ops)
{
    mixCounter.consumeBatch(ops);
    for (size_t i = 0; i < ops.count; ++i)
        step(ops[i]);
}

void
InOrderCore::step(const MicroOp &op)
{
    // Front end.
    double bubble = fetchCharge(op.pc);
    if (bubble > 0.0) {
        cycle += bubble;
        frontendStalls += bubble;
        slotInCycle = 0;
    }

    // Issue slot: `issueWidth` ops share a cycle.
    if (++slotInCycle >= prm.issueWidth) {
        slotInCycle = 0;
        cycle += 1.0;
    }

    // Load-use interlock: an op in the shadow of an outstanding load
    // stalls until the data arrives.
    if (sinceLoad <= prm.loadUseWindow && cycle < loadReadyCycle) {
        loadUseStalls += loadReadyCycle - cycle;
        cycle = loadReadyCycle;
    }
    if (sinceLoad != UINT32_MAX)
        ++sinceLoad;

    // Execute / memory.
    switch (op.kind) {
      case OpKind::Load: {
        uint32_t latency = dataLatency(op.memAddr, false);
        loadReadyCycle = cycle + latency;
        sinceLoad = 0;
        if (latency > prm.l2HitLatency) {
            // Long-latency fills stall an in-order machine outright.
            double stall =
                static_cast<double>(latency - prm.l2HitLatency);
            memoryStalls += stall;
            cycle += stall;
        }
        executeTotal += 1.0;
        break;
      }
      case OpKind::Store:
        // Buffered; charge the hierarchy for bandwidth, not time.
        (void)dataLatency(op.memAddr, true);
        executeTotal += 1.0;
        break;
      case OpKind::IntMul:
        executeTotal += prm.mulLatency - 1;
        cycle += (prm.mulLatency - 1) * 0.25;  // partially pipelined
        break;
      case OpKind::IntDiv:
        executeTotal += prm.divLatency - 1;
        cycle += prm.divLatency - 1;  // unpipelined
        break;
      case OpKind::FpAlu:
        cycle += (prm.fpAluLatency - 1) * 0.5;
        executeTotal += prm.fpAluLatency - 1;
        break;
      case OpKind::FpMul:
        cycle += (prm.fpMulLatency - 1) * 0.5;
        executeTotal += prm.fpMulLatency - 1;
        break;
      case OpKind::FpDiv:
        cycle += prm.fpDivLatency - 1;
        executeTotal += prm.fpDivLatency - 1;
        break;
      default:
        break;
    }

    // Control.
    if (isControl(op.kind)) {
        uint64_t mis_before = branches.stats().mispredicts();
        bool correct = branches.predict(op);
        if (!correct) {
            bool mispredicted =
                branches.stats().mispredicts() > mis_before;
            double flush =
                mispredicted
                    ? static_cast<double>(prm.mispredictFlush)
                    : static_cast<double>(prm.btbRefetch);
            cycle += flush;
            frontendStalls += flush;
            slotInCycle = 0;
        }
    }
}

InOrderReport
InOrderCore::report() const
{
    InOrderReport r;
    r.instructions = mixCounter.total();
    r.cycles = std::max(cycle, 1.0);
    r.ipc = static_cast<double>(r.instructions) / r.cycles;
    r.loadUseStallCycles = loadUseStalls;
    r.frontendStallCycles = frontendStalls;
    r.memoryStallCycles = memoryStalls;
    r.executeCycles = executeTotal;
    return r;
}

} // namespace wcrt
