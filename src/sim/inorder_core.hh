/**
 * @file
 * Cycle-level in-order core model — the detailed counterpart to the
 * analytic pipeline in SimCpu, in the spirit of the paper's MARSSx86
 * Atom-like configuration.
 *
 * The model walks the trace op by op, charging issue slots, per-class
 * execution latencies, load-use stalls (a dependent op issuing within
 * the shadow of an outstanding load waits for the fill), front-end
 * bubbles for L1I misses and BTB refetches, and full flushes for
 * branch mispredictions. It shares the cache/TLB/branch-unit
 * components with SimCpu, so the two models disagree only in cycle
 * accounting — which is exactly what the core-model ablation bench
 * measures.
 */

#ifndef WCRT_SIM_INORDER_CORE_HH
#define WCRT_SIM_INORDER_CORE_HH

#include "sim/machine.hh"
#include "trace/microop.hh"
#include "trace/mix_counter.hh"

namespace wcrt {

/** Latency table for the in-order model. */
struct InOrderParams
{
    uint32_t issueWidth = 2;      //!< ops per cycle
    uint32_t intLatency = 1;
    uint32_t mulLatency = 3;
    uint32_t divLatency = 20;
    uint32_t fpAluLatency = 3;
    uint32_t fpMulLatency = 4;
    uint32_t fpDivLatency = 24;
    uint32_t l1dHitLatency = 3;
    uint32_t l2HitLatency = 13;
    uint32_t l3HitLatency = 40;
    uint32_t memLatency = 180;
    uint32_t l1iMissBubble = 10;  //!< plus outer-level charges
    uint32_t btbRefetch = 10;
    uint32_t mispredictFlush = 15;
    uint32_t tlbWalk = 30;

    /**
     * Ops after a load that are assumed dependent on it (no register
     * names in the trace, so adjacency approximates dependence).
     */
    uint32_t loadUseWindow = 2;
};

/** Measured totals of one in-order run. */
struct InOrderReport
{
    uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    double loadUseStallCycles = 0.0;
    double frontendStallCycles = 0.0;
    double memoryStallCycles = 0.0;
    double executeCycles = 0.0;
};

/**
 * The detailed in-order pipeline.
 */
class InOrderCore : public TraceSink
{
  public:
    /**
     * @param machine Cache/TLB/branch configuration (the core params
     *        of `machine` are ignored; `params` governs timing).
     * @param params In-order latency table.
     */
    InOrderCore(const MachineConfig &machine,
                const InOrderParams &params = {});

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: one virtual call per block, pipeline state
     * carried through an inlined step loop.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** Finish accounting and report. */
    InOrderReport report() const;

    const MixCounter &mix() const { return mixCounter; }

  private:
    /** Advance the pipeline by one op (shared by both consume paths). */
    void step(const MicroOp &op);

    /** Data-side access latency through the hierarchy. */
    uint32_t dataLatency(uint64_t addr, bool is_write);

    /** Instruction-side charge for fetching at pc. */
    double fetchCharge(uint64_t pc);

    MachineConfig cfg;
    InOrderParams prm;
    Cache l1i, l1d, l2, l3;
    Tlb itlb, dtlb;
    BranchUnit branches;
    MixCounter mixCounter;

    double cycle = 0.0;            //!< current issue cycle
    double loadReadyCycle = 0.0;   //!< when the last load's data lands
    uint32_t sinceLoad = UINT32_MAX;
    double loadUseStalls = 0.0;
    double frontendStalls = 0.0;
    double memoryStalls = 0.0;
    double executeTotal = 0.0;
    uint32_t slotInCycle = 0;
};

} // namespace wcrt

#endif // WCRT_SIM_INORDER_CORE_HH
