/**
 * @file
 * Stream prefetcher model (the E5645's DCU/stream prefetchers).
 *
 * Big data workloads stream large inputs sequentially; without a
 * prefetch model every streamed line would charge a full memory
 * latency, which no 2010s core pays. The detector tracks per-page
 * forward streams; once a stream is confirmed it reports subsequent
 * line-sequential accesses as covered and tells the owner how far
 * ahead to fill the outer levels.
 */

#ifndef WCRT_SIM_PREFETCHER_HH
#define WCRT_SIM_PREFETCHER_HH

#include <array>
#include <cstdint>

namespace wcrt {

/** Prefetcher tunables. */
struct PrefetcherConfig
{
    bool enabled = true;
    uint32_t streams = 16;   //!< tracked concurrent streams (<= 32)
    uint32_t degree = 4;     //!< lines fetched ahead once confirmed
    uint32_t lineBytes = 64;
};

/**
 * Reference-pattern detector for forward streams.
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &config = {});

    /** Result of observing one demand access. */
    struct Advice
    {
        bool covered = false;       //!< line was inside a live stream
        uint32_t prefetchLines = 0; //!< lines to fill ahead
        uint64_t prefetchFrom = 0;  //!< first byte address to fill
    };

    /** Observe a demand data access and advise. */
    Advice observe(uint64_t addr);

    /** Streams confirmed so far (diagnostics). */
    uint64_t streamsConfirmed() const { return confirmed; }

    /** Accesses reported covered (diagnostics). */
    uint64_t coveredAccesses() const { return coveredCount; }

  private:
    struct Entry
    {
        uint64_t lastLine = 0;
        uint64_t nextLine = 0;   //!< next line expected
        uint64_t lastUse = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    PrefetcherConfig cfg;
    uint32_t lineShift;  //!< log2(cfg.lineBytes); observe() is hot
    std::array<Entry, 32> table;
    uint64_t tick = 0;
    uint64_t confirmed = 0;
    uint64_t coveredCount = 0;
};

} // namespace wcrt

#endif // WCRT_SIM_PREFETCHER_HH
