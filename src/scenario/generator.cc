#include "scenario/generator.hh"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "base/strings.hh"

namespace wcrt {

uint64_t
mixSeed(uint64_t a, uint64_t b)
{
    uint64_t x = a + 0x9e3779b97f4a7c15ull * (b + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

const char *
toString(GenKind k)
{
    switch (k) {
      case GenKind::Zipf: return "zipf";
      case GenKind::Uniform: return "uniform";
      case GenKind::Gauss: return "gauss";
      case GenKind::Bytes: return "bytes";
      case GenKind::Words: return "words";
    }
    return "?";
}

namespace {

/** Compact double rendering for canonical specs ("0.99", "1000"). */
std::string
renderNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

bool
ValueGen::parse(const std::string &spec, ValueGen &out,
                std::string &err)
{
    size_t open = spec.find('(');
    if (open == std::string::npos || spec.back() != ')') {
        err = "malformed generator spec '" + spec +
              "' (expected kind(args))";
        return false;
    }
    std::string name = spec.substr(0, open);
    std::string args_text =
        spec.substr(open + 1, spec.size() - open - 2);

    std::vector<double> args;
    for (const std::string &tok : split(args_text, ',')) {
        std::istringstream is(tok);
        double v = 0.0;
        if (!(is >> v)) {
            err = "bad numeric argument '" + tok + "' in '" + spec +
                  "'";
            return false;
        }
        args.push_back(v);
    }

    auto want = [&](size_t count) {
        if (args.size() == count)
            return true;
        err = toString(out.k) + std::string("() takes ") +
              std::to_string(count) + " arguments, got " +
              std::to_string(args.size());
        return false;
    };

    if (name == "zipf") {
        out.k = GenKind::Zipf;
        if (!want(2))
            return false;
        if (args[0] < 1.0) {
            err = "zipf needs at least 1 rank";
            return false;
        }
        out.n = static_cast<uint64_t>(args[0]);
        out.b = args[1];
        out.zipf = std::make_shared<ZipfSampler>(
            static_cast<size_t>(out.n), out.b);
    } else if (name == "uniform") {
        out.k = GenKind::Uniform;
        if (!want(2))
            return false;
        if (args[1] < args[0]) {
            err = "uniform needs hi >= lo";
            return false;
        }
        out.a = args[0];
        out.b = args[1];
    } else if (name == "gauss") {
        out.k = GenKind::Gauss;
        if (!want(2))
            return false;
        out.a = args[0];
        out.b = args[1];
    } else if (name == "bytes") {
        out.k = GenKind::Bytes;
        if (!want(1))
            return false;
        if (args[0] < 1.0) {
            err = "bytes needs a positive length";
            return false;
        }
        out.n = static_cast<uint64_t>(args[0]);
    } else if (name == "words") {
        out.k = GenKind::Words;
        if (!want(2))
            return false;
        if (args[0] < 1.0 || args[1] < 1.0) {
            err = "words needs a positive count and vocabulary";
            return false;
        }
        out.n = static_cast<uint64_t>(args[0]);
        out.m = static_cast<uint64_t>(args[1]);
        out.zipf = std::make_shared<ZipfSampler>(
            static_cast<size_t>(out.m), 0.9);
    } else {
        err = "unknown generator kind '" + name +
              "' (zipf, uniform, gauss, bytes or words)";
        return false;
    }
    return true;
}

std::string
ValueGen::spec() const
{
    std::string out = toString(k);
    out += "(";
    switch (k) {
      case GenKind::Zipf:
        out += std::to_string(n) + ", " + renderNumber(b);
        break;
      case GenKind::Uniform:
      case GenKind::Gauss:
        out += renderNumber(a) + ", " + renderNumber(b);
        break;
      case GenKind::Bytes:
        out += std::to_string(n);
        break;
      case GenKind::Words:
        out += std::to_string(n) + ", " + std::to_string(m);
        break;
    }
    out += ")";
    return out;
}

Rng
ValueGen::rngAt(const GenCtx &ctx) const
{
    // Fold the generator's identity in as well, so two generators
    // evaluated at the same (seed, actor, op) do not mirror each
    // other's draws.
    uint64_t id = mixSeed(static_cast<uint64_t>(k), n);
    return Rng(mixSeed(mixSeed(ctx.seed, ctx.actor),
                       mixSeed(ctx.op, id)));
}

uint64_t
ValueGen::drawIndex(const GenCtx &ctx) const
{
    Rng rng = rngAt(ctx);
    switch (k) {
      case GenKind::Zipf:
        return zipf->sample(rng);
      case GenKind::Uniform:
        return static_cast<uint64_t>(
            rng.nextRange(static_cast<int64_t>(a),
                          static_cast<int64_t>(b)));
      default:
        return static_cast<uint64_t>(drawScalar(ctx));
    }
}

double
ValueGen::drawScalar(const GenCtx &ctx) const
{
    Rng rng = rngAt(ctx);
    switch (k) {
      case GenKind::Zipf:
        return static_cast<double>(zipf->sample(rng));
      case GenKind::Uniform:
        return a + rng.nextDouble() * (b - a);
      case GenKind::Gauss:
        return rng.nextGaussian(a, b);
      case GenKind::Bytes:
        return static_cast<double>(n);
      case GenKind::Words:
        return static_cast<double>(n);
    }
    return 0.0;
}

std::string
ValueGen::drawText(const GenCtx &ctx) const
{
    Rng rng = rngAt(ctx);
    switch (k) {
      case GenKind::Bytes: {
        std::string out;
        out.reserve(n);
        for (uint64_t i = 0; i < n; ++i)
            out.push_back(static_cast<char>(
                ' ' + rng.nextBelow('~' - ' ' + 1)));
        return out;
      }
      case GenKind::Words: {
        std::string out;
        for (uint64_t i = 0; i < n; ++i) {
            if (i > 0)
                out += ' ';
            out += 'w';
            out += std::to_string(zipf->sample(rng));
        }
        return out;
      }
      default:
        return std::to_string(drawIndex(ctx));
    }
}

} // namespace wcrt
