/**
 * @file
 * The structural layer of the scenario DSL: a line-oriented
 * section/key-value document, no external dependencies.
 *
 * Grammar (docs/SCENARIO_FORMAT.md is normative):
 *
 *     document := line*
 *     line     := blank | comment | section | entry
 *     comment  := '#' ...            (whole line; leading spaces ok)
 *     section  := '[' name ']'
 *     entry    := key '=' value      (key may contain spaces, e.g.
 *                                     "group Hadoop"; value runs to
 *                                     end of line, trimmed)
 *
 * This layer knows nothing about scenario semantics — it only yields
 * an ordered list of sections, each an ordered list of (key, value)
 * entries with source line numbers. scenario.hh interprets the
 * result. Parsing never throws: structural problems are accumulated
 * as ScenarioIssue records so a validator can report *every* mistake
 * in a file at once instead of stopping at the first.
 */

#ifndef WCRT_SCENARIO_PARSER_HH
#define WCRT_SCENARIO_PARSER_HH

#include <string>
#include <vector>

namespace wcrt {

/** One problem found while parsing or validating a scenario. */
struct ScenarioIssue
{
    int line = 0;  //!< 1-based source line (0 = file-level)
    std::string message;

    /** "file:line: message" (or "file: message" for file-level). */
    std::string format(const std::string &source) const;
};

/** One `key = value` entry of a section. */
struct ScenarioEntry
{
    std::string key;    //!< trimmed text left of '='
    std::string value;  //!< trimmed text right of '='
    int line = 0;       //!< 1-based source line
};

/** One `[name]` section and its entries, in declaration order. */
struct ScenarioSection
{
    std::string name;
    int line = 0;
    std::vector<ScenarioEntry> entries;

    /** First entry with the key, or nullptr. */
    const ScenarioEntry *find(const std::string &key) const;
};

/** A parsed scenario document: ordered sections plus any issues. */
struct ScenarioDoc
{
    std::string source;  //!< file name (or "<string>") for messages
    std::vector<ScenarioSection> sections;
    std::vector<ScenarioIssue> issues;

    /** First section with the name, or nullptr. */
    const ScenarioSection *find(const std::string &name) const;

    /** True when parsing produced no issues. */
    bool ok() const { return issues.empty(); }

    /**
     * Canonical text form: re-emitting and re-parsing an issue-free
     * document yields an equal document (comments and blank lines are
     * not preserved; line numbers differ).
     */
    std::string toText() const;
};

/**
 * Parse scenario text. Duplicate section names, duplicate keys within
 * a section, entries before the first section header and malformed
 * lines are all reported (and the offending line skipped); the
 * returned document contains everything that did parse.
 */
ScenarioDoc parseScenarioText(const std::string &text,
                              const std::string &source = "<string>");

/**
 * Read and parse a scenario file. An unreadable file yields a
 * document with a single file-level issue.
 */
ScenarioDoc parseScenarioFile(const std::string &path);

} // namespace wcrt

#endif // WCRT_SCENARIO_PARSER_HH
