#include "scenario/runner.hh"

#include <algorithm>

#include "base/logging.hh"
#include "datagen/datasets.hh"
#include "stack/kvstore/store.hh"
#include "stack/run_env.hh"
#include "stack/sql/vectorized.hh"
#include "trace/tracer.hh"

namespace wcrt {

namespace {

/** Op-count sink for sessions nobody wants a trace from. */
class CountingSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override { ++ops; }
    void consumeBatch(const OpBlockView &batch) override
    {
        ops += batch.count;
    }
    uint64_t ops = 0;
};

/**
 * Session scaffolding for the generator-backed targets, mirroring the
 * loadgen targets: a private RunEnv, a sink, a Tracer, plus the
 * (actor, op) counter that positions every generator draw.
 */
class GenSessionBase : public ActorSession
{
  public:
    GenSessionBase(uint64_t scenario_seed, uint64_t actor,
                   TraceSink *record)
        : scenarioSeed(scenario_seed), actor(actor), record(record)
    {
    }

    uint64_t traceOps() const override { return tracer->opCount(); }

  protected:
    void
    buildTracer()
    {
        tracer = std::make_unique<Tracer>(
            env.layout, record ? *record : counting);
    }

    /** The next draw position; advances once per request. */
    GenCtx
    nextCtx()
    {
        return {scenarioSeed, actor, op++};
    }

    RunEnv env;
    std::unique_ptr<Tracer> tracer;

  private:
    uint64_t scenarioSeed;
    uint64_t actor;
    uint64_t op = 0;
    CountingSink counting;
    TraceSink *record;
};

/**
 * kv-get with the key rank drawn by a scenario generator instead of
 * the target's built-in Zipf, plus optional per-response document
 * accounting (doc-gen) into the session's network counter.
 */
class GenKvTarget : public TrafficTarget
{
  public:
    GenKvTarget(double scale, uint64_t dataset_seed,
                uint64_t scenario_seed, ValueGen key_gen,
                const ValueGen *doc_gen)
        : catalog(heap, scale, dataset_seed),
          data(catalog.profSearch()), keyGen(std::move(key_gen)),
          scenarioSeed(scenario_seed)
    {
        if (doc_gen)
            docGen = std::make_unique<ValueGen>(*doc_gen);
    }

    std::string name() const override { return "kv-get"; }

    std::unique_ptr<ActorSession> startSession(
        uint64_t actor_id, uint64_t, TraceSink *record) override
    {
        return std::make_unique<Session>(*this, actor_id, record);
    }

  private:
    class Session : public GenSessionBase
    {
      public:
        Session(const GenKvTarget &t, uint64_t actor,
                TraceSink *record)
            : GenSessionBase(t.scenarioSeed, actor, record),
              target(t), store(env.layout, t.data)
        {
            buildTracer();
        }

        void
        request(Rng &) override
        {
            GenCtx ctx = nextCtx();
            uint64_t index =
                target.keyGen.drawIndex(ctx) % target.data.keys.size();
            store.get(*tracer, env, index);
            if (target.docGen) {
                // The response document travels the wire: account its
                // bytes like the stack engines account their I/O.
                env.io.networkBytes +=
                    target.docGen->drawText(ctx).size();
            }
        }

      private:
        const GenKvTarget &target;
        KvStore store;
    };

    VirtualHeap heap;  //!< owns the shared dataset's addresses
    DatasetCatalog catalog;
    KvDataset data;    //!< immutable once built
    ValueGen keyGen;
    std::unique_ptr<ValueGen> docGen;  //!< optional
    uint64_t scenarioSeed;
};

/**
 * sql-filter with the per-request predicate threshold drawn by a
 * scenario generator instead of the target's built-in uniform.
 */
class GenSqlTarget : public TrafficTarget
{
  public:
    GenSqlTarget(double scale, uint64_t dataset_seed,
                 uint64_t scenario_seed, ValueGen query_gen)
        : catalog(heap, scale, dataset_seed),
          orders(catalog.ecommerceOrders()),
          queryGen(std::move(query_gen)), scenarioSeed(scenario_seed)
    {
        allRows.reserve(orders.rows);
        for (uint64_t r = 0; r < orders.rows; ++r)
            allRows.push_back(r);
    }

    std::string name() const override { return "sql-filter"; }

    std::unique_ptr<ActorSession> startSession(
        uint64_t actor_id, uint64_t, TraceSink *record) override
    {
        return std::make_unique<Session>(*this, actor_id, record);
    }

  private:
    class Session : public GenSessionBase
    {
      public:
        Session(const GenSqlTarget &t, uint64_t actor,
                TraceSink *record)
            : GenSessionBase(t.scenarioSeed, actor, record),
              target(t), engine(env.layout)
        {
            buildTracer();
        }

        void
        request(Rng &) override
        {
            double threshold =
                target.queryGen.drawScalar(nextCtx());
            Selection sel = engine.filterFloat64(
                env, *tracer, target.orders, "amount", target.allRows,
                [threshold](double v) { return v > threshold; });
            engine.project(env, *tracer, target.orders,
                           {"order_id", "amount"}, sel);
        }

      private:
        const GenSqlTarget &target;
        VectorizedEngine engine;
    };

    VirtualHeap heap;
    DatasetCatalog catalog;
    DataTable orders;   //!< immutable once built
    Selection allRows;  //!< the scan-everything selection
    ValueGen queryGen;
    uint64_t scenarioSeed;
};

/** Dataset-generation seed shared with makeTrafficTarget()'s default. */
constexpr uint64_t kDatasetSeed = 7;

} // namespace

std::unique_ptr<TrafficTarget>
makeScenarioTarget(const ScenarioSpec &spec, double scale)
{
    if (spec.target == "kv-get" && !spec.keyGen.empty()) {
        const ValueGen *doc = nullptr;
        if (!spec.docGen.empty())
            doc = &spec.generators.at(spec.docGen);
        return std::make_unique<GenKvTarget>(
            scale, kDatasetSeed, spec.seed,
            spec.generators.at(spec.keyGen), doc);
    }
    if (spec.target == "sql-filter" && !spec.queryGen.empty()) {
        return std::make_unique<GenSqlTarget>(
            scale, kDatasetSeed, spec.seed,
            spec.generators.at(spec.queryGen));
    }
    return makeTrafficTarget(spec.target, scale);
}

ScenarioRunner::ScenarioRunner(const ScenarioSpec &spec,
                               RunnerOptions opt)
    : spec(spec), opt(opt), cache(opt.traceDir)
{
}

std::vector<ScenarioCell>
ScenarioRunner::cells(std::vector<ScenarioIssue> &issues) const
{
    return expandScenario(spec, opt.baseScale, issues);
}

CellResult
ScenarioRunner::runCell(const ScenarioCell &cell)
{
    CellResult out;
    out.cell = cell;
    switch (spec.kind) {
      case ScenarioKind::Sweep:
        out.sweep = runSweepCell(cell);
        break;
      case ScenarioKind::Traffic:
        out.traffic = runTrafficCell(cell);
        break;
      case ScenarioKind::Replay:
        out.replay = runReplayCell(cell);
        break;
    }
    return out;
}

SweepCellResult
ScenarioRunner::runSweepCell(const ScenarioCell &cell)
{
    // Mirrors bench/footprint_common.hh averageSweepMrc() exactly:
    // same cache keys, same ladder call, same sum order — the source
    // of the scenario-vs-bench bit-identity guarantee.
    SweepCellResult out;
    out.curve.assign(spec.sizesKb.size(), 0.0);
    if (cell.group.entries.empty())
        return out;
    for (const auto &entry : cell.group.entries) {
        std::string path = cache.ensure(
            entry.name, cell.scale,
            [&] { return entry.make(cell.scale); });
        MrcResult r = replaySweepLadder(path, spec.sweepKind,
                                        spec.sizesKb, cell.mode,
                                        opt.jobs, spec.assoc,
                                        spec.lineBytes);
        out.maxDivergence =
            std::max(out.maxDivergence, r.maxDivergence);
        for (size_t i = 0; i < out.curve.size(); ++i)
            out.curve[i] += r.ratios[i];
    }
    for (auto &v : out.curve)
        v /= static_cast<double>(cell.group.entries.size());
    return out;
}

TrafficCellResult
ScenarioRunner::runTrafficCell(const ScenarioCell &cell)
{
    TrafficCellResult out;

    bool needs_probe = false;
    for (const auto &p : spec.phases)
        needs_probe = needs_probe || p.rateX > 0.0;

    // Per-actor capacity mu1 from a strictly serial closed loop (the
    // service_latency idiom): rate-x phases offer fractions of what
    // one actor can actually serve, independent of host parallelism.
    if (needs_probe) {
        auto probe_target = makeScenarioTarget(spec, cell.scale);
        OrchestratorConfig pc;
        pc.actors = 1;
        pc.jobs = 1;
        pc.seed = spec.seed;
        std::vector<PhaseSpec> probe_phases{
            warmupPhase(spec.probeOps / 4 + 1),
            closedPhase("capacity-probe", spec.probeOps),
        };
        Orchestrator probe(*probe_target, probe_phases, pc);
        TrafficResult pr = probe.run();
        out.capacityHz = pr.phases.front().achievedRateHz();
        if (out.capacityHz <= 0.0)
            wcrt_fatal("capacity probe measured no throughput for"
                       " target ", spec.target);
    }

    auto target = makeScenarioTarget(spec, cell.scale);
    OrchestratorConfig cfg;
    cfg.actors = spec.actors;
    cfg.jobs = opt.jobs;
    cfg.seed = spec.seed;
    std::vector<PhaseSpec> phases;
    for (const auto &p : spec.phases) {
        double rate = p.rateHz > 0.0 ? p.rateHz
                                     : p.rateX * out.capacityHz;
        PhaseSpec ps;
        switch (p.arrival) {
          case ArrivalKind::ClosedLoop:
            ps = closedPhase(p.name, p.ops, p.thinkNs);
            break;
          case ArrivalKind::PoissonOpen:
            ps = poissonPhase(p.name, p.ops, rate);
            break;
          case ArrivalKind::TokenBucket:
            ps = tokenBucketPhase(p.name, p.ops, rate, p.burst);
            break;
        }
        ps.record = p.record;
        phases.push_back(std::move(ps));
    }
    Orchestrator run(*target, phases, cfg);
    out.result = run.run();
    return out;
}

ReplayCellResult
ScenarioRunner::runReplayCell(const ScenarioCell &cell)
{
    ReplayCellResult out;
    std::vector<std::string> paths;
    for (const auto &entry : cell.group.entries) {
        out.names.push_back(entry.name);
        paths.push_back(cache.ensure(
            entry.name, cell.scale,
            [&] { return entry.make(cell.scale); }));
    }
    out.reports = replayTracesOn(paths, cell.machine, opt.jobs);
    return out;
}

} // namespace wcrt
