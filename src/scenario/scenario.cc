#include "scenario/scenario.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "base/strings.hh"
#include "baselines/baselines.hh"

namespace wcrt {

const char *
toString(ScenarioKind k)
{
    switch (k) {
      case ScenarioKind::Sweep: return "sweep";
      case ScenarioKind::Traffic: return "traffic";
      case ScenarioKind::Replay: return "replay";
    }
    return "?";
}

const ScenarioGroup *
ScenarioSpec::findGroup(const std::string &name) const
{
    for (const auto &g : groups)
        if (g.name == name)
            return &g;
    return nullptr;
}

std::string
ScenarioParse::formatIssues() const
{
    std::ostringstream os;
    for (const auto &i : issues)
        os << i.format(spec.source) << "\n";
    return os.str();
}

const WorkloadEntry *
lookupWorkload(const std::string &name)
{
    static const std::map<std::string, WorkloadEntry> index = [] {
        std::map<std::string, WorkloadEntry> m;
        for (const auto *list :
             {&representativeWorkloads(), &mpiWorkloads(),
              &fullRoster()}) {
            for (const auto &e : *list)
                m.emplace(e.name, e);
        }
        for (const auto &e : baselineWorkloads())
            m.emplace(e.name, WorkloadEntry{e.name, 0, 0, e.make});
        return m;
    }();
    auto it = index.find(name);
    return it == index.end() ? nullptr : &it->second;
}

bool
parseMachine(const std::string &name, MachineConfig &out)
{
    if (name == "xeon") {
        out = xeonE5645();
        return true;
    }
    if (name == "atom") {
        out = atomD510();
        return true;
    }
    if (name.rfind("sim", 0) == 0) {
        int kb = std::atoi(name.c_str() + 3);
        if (kb <= 0)
            return false;
        out = atomInOrderSim(static_cast<uint32_t>(kb));
        return true;
    }
    return false;
}

namespace {

/** Accumulating issue reporter bound to one parse. */
struct Check
{
    std::vector<ScenarioIssue> &issues;

    void
    fail(int line, std::string msg)
    {
        issues.push_back({line, std::move(msg)});
    }
};

/** Comma-split with per-token trim; empty tokens dropped. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    for (const std::string &tok : split(text, ',')) {
        std::string t;
        size_t b = tok.find_first_not_of(" \t");
        size_t e = tok.find_last_not_of(" \t");
        if (b != std::string::npos)
            t = tok.substr(b, e - b + 1);
        if (!t.empty())
            out.push_back(std::move(t));
    }
    return out;
}

bool
parseDouble(const std::string &text, double &out)
{
    std::istringstream is(text);
    return static_cast<bool>(is >> out) && is.eof();
}

bool
parseUint(const std::string &text, uint64_t &out)
{
    std::istringstream is(text);
    return static_cast<bool>(is >> out) && is.eof();
}

bool
parseBool(const std::string &text, bool &out)
{
    if (text == "on" || text == "true" || text == "1") {
        out = true;
        return true;
    }
    if (text == "off" || text == "false" || text == "0") {
        out = false;
        return true;
    }
    return false;
}

/** Keys [scenario] accepts, per kind ("" = any kind). */
const std::map<std::string, std::string> &
scenarioKeyKinds()
{
    static const std::map<std::string, std::string> keys = {
        {"name", ""},          {"kind", ""},
        {"seed", ""},          {"scale-factor", ""},
        {"sweep-kind", "sweep"}, {"mrc-mode", "sweep"},
        {"sizes-kb", "sweep"}, {"assoc", "sweep"},
        {"line-bytes", "sweep"},
        {"target", "traffic"}, {"actors", "traffic"},
        {"probe-ops", "traffic"}, {"key-gen", "traffic"},
        {"query-gen", "traffic"}, {"doc-gen", "traffic"},
        {"machines", "replay"},
    };
    return keys;
}

void
parseScenarioSection(const ScenarioSection &sec, ScenarioSpec &spec,
                     Check &check)
{
    // Kind first: it decides which other keys are legal.
    const ScenarioEntry *kind = sec.find("kind");
    if (!kind) {
        check.fail(sec.line, "[scenario] needs a 'kind' key"
                             " (sweep, traffic or replay)");
    } else if (kind->value == "sweep") {
        spec.kind = ScenarioKind::Sweep;
    } else if (kind->value == "traffic") {
        spec.kind = ScenarioKind::Traffic;
    } else if (kind->value == "replay") {
        spec.kind = ScenarioKind::Replay;
    } else {
        check.fail(kind->line, "unknown kind '" + kind->value +
                                   "' (sweep, traffic or replay)");
    }
    const std::string kind_name = toString(spec.kind);

    for (const auto &e : sec.entries) {
        auto it = scenarioKeyKinds().find(e.key);
        if (it == scenarioKeyKinds().end()) {
            check.fail(e.line, "unknown key '" + e.key +
                                   "' in [scenario]");
            continue;
        }
        if (!it->second.empty() && it->second != kind_name) {
            check.fail(e.line, "key '" + e.key + "' is only valid"
                                   " for " + it->second +
                                   " scenarios");
            continue;
        }
        if (e.key == "name") {
            spec.name = e.value;
        } else if (e.key == "kind") {
            // handled above
        } else if (e.key == "seed") {
            if (!parseUint(e.value, spec.seed))
                check.fail(e.line, "bad seed '" + e.value + "'");
        } else if (e.key == "scale-factor") {
            if (!parseDouble(e.value, spec.scaleFactor) ||
                spec.scaleFactor <= 0.0)
                check.fail(e.line,
                           "bad scale-factor '" + e.value + "'");
        } else if (e.key == "sweep-kind") {
            if (e.value == "instr")
                spec.sweepKind = SweepKind::Instruction;
            else if (e.value == "data")
                spec.sweepKind = SweepKind::Data;
            else if (e.value == "unified")
                spec.sweepKind = SweepKind::Unified;
            else
                check.fail(e.line,
                           "unknown sweep-kind '" + e.value +
                               "' (instr, data or unified)");
        } else if (e.key == "mrc-mode") {
            if (!parseMrcMode(e.value, spec.mrcMode))
                check.fail(e.line,
                           "unknown mrc-mode '" + e.value +
                               "' (stack, oracle or verify)");
        } else if (e.key == "sizes-kb") {
            spec.sizesKb.clear();
            for (const std::string &tok : splitList(e.value)) {
                uint64_t kb = 0;
                if (!parseUint(tok, kb) || kb == 0) {
                    check.fail(e.line,
                               "bad sizes-kb entry '" + tok + "'");
                    continue;
                }
                spec.sizesKb.push_back(static_cast<uint32_t>(kb));
            }
            if (spec.sizesKb.empty())
                check.fail(e.line,
                           "sizes-kb needs at least one capacity");
        } else if (e.key == "assoc") {
            uint64_t v = 0;
            if (!parseUint(e.value, v) || v == 0)
                check.fail(e.line, "bad assoc '" + e.value + "'");
            else
                spec.assoc = static_cast<uint32_t>(v);
        } else if (e.key == "line-bytes") {
            uint64_t v = 0;
            if (!parseUint(e.value, v) || v == 0)
                check.fail(e.line,
                           "bad line-bytes '" + e.value + "'");
            else
                spec.lineBytes = static_cast<uint32_t>(v);
        } else if (e.key == "target") {
            spec.target = e.value;
        } else if (e.key == "actors") {
            uint64_t v = 0;
            if (!parseUint(e.value, v) || v == 0)
                check.fail(e.line, "bad actors '" + e.value + "'");
            else
                spec.actors = static_cast<unsigned>(v);
        } else if (e.key == "probe-ops") {
            if (!parseUint(e.value, spec.probeOps) ||
                spec.probeOps == 0)
                check.fail(e.line,
                           "bad probe-ops '" + e.value + "'");
        } else if (e.key == "key-gen") {
            spec.keyGen = e.value;
        } else if (e.key == "query-gen") {
            spec.queryGen = e.value;
        } else if (e.key == "doc-gen") {
            spec.docGen = e.value;
        } else if (e.key == "machines") {
            spec.machines = splitList(e.value);
            if (spec.machines.empty())
                check.fail(e.line,
                           "machines needs at least one name");
        }
    }

    if (spec.name.empty())
        check.fail(sec.line, "[scenario] needs a non-empty 'name'");
}

void
parseWorkloadsSection(const ScenarioSection &sec, ScenarioSpec &spec,
                      Check &check)
{
    for (const auto &e : sec.entries) {
        if (!startsWith(e.key, "group ")) {
            check.fail(e.line,
                       "expected 'group <Name> = a, b, ...' in"
                       " [workloads], got key '" + e.key + "'");
            continue;
        }
        ScenarioGroup group;
        group.name = e.key.substr(6);
        if (group.name.empty()) {
            check.fail(e.line, "empty group name");
            continue;
        }
        if (spec.findGroup(group.name)) {
            check.fail(e.line,
                       "duplicate group '" + group.name + "'");
            continue;
        }
        std::vector<std::string> members = splitList(e.value);
        if (members.empty())
            check.fail(e.line,
                       "group '" + group.name + "' has no members");
        for (const std::string &m : members) {
            const WorkloadEntry *entry = lookupWorkload(m);
            if (!entry) {
                check.fail(e.line, "unknown workload '" + m +
                                       "' in group '" + group.name +
                                       "'");
                continue;
            }
            group.entries.push_back(*entry);
        }
        spec.groups.push_back(std::move(group));
    }
}

void
parseGeneratorsSection(const ScenarioSection &sec, ScenarioSpec &spec,
                       Check &check)
{
    for (const auto &e : sec.entries) {
        ValueGen gen;
        std::string err;
        if (!ValueGen::parse(e.value, gen, err)) {
            check.fail(e.line, "generator '" + e.key + "': " + err);
            continue;
        }
        spec.generators.emplace(e.key, std::move(gen));
    }
}

void
parsePhasesSection(const ScenarioSection &sec, ScenarioSpec &spec,
                   Check &check)
{
    for (const auto &e : sec.entries) {
        if (!startsWith(e.key, "phase ")) {
            check.fail(e.line,
                       "expected 'phase <name> = <arrival>, ...' in"
                       " [phases], got key '" + e.key + "'");
            continue;
        }
        ScenarioPhase phase;
        phase.name = e.key.substr(6);
        std::vector<std::string> parts = splitList(e.value);
        if (parts.empty()) {
            check.fail(e.line, "phase '" + phase.name +
                                   "' needs an arrival kind");
            continue;
        }
        const std::string &arrival = parts[0];
        if (arrival == "closed")
            phase.arrival = ArrivalKind::ClosedLoop;
        else if (arrival == "poisson")
            phase.arrival = ArrivalKind::PoissonOpen;
        else if (arrival == "token-bucket")
            phase.arrival = ArrivalKind::TokenBucket;
        else {
            check.fail(e.line, "unknown arrival '" + arrival +
                                   "' (closed, poisson or"
                                   " token-bucket)");
            continue;
        }

        bool bad = false;
        for (size_t i = 1; i < parts.size(); ++i) {
            size_t eq = parts[i].find('=');
            std::string k = parts[i].substr(0, eq);
            std::string v = eq == std::string::npos
                                ? ""
                                : parts[i].substr(eq + 1);
            bool ok = eq != std::string::npos;
            if (!ok) {
                // fall through to the unknown-option report below
            } else if (k == "ops") {
                ok = parseUint(v, phase.ops) && phase.ops > 0;
            } else if (k == "think-ns") {
                ok = parseDouble(v, phase.thinkNs) &&
                     phase.thinkNs >= 0;
            } else if (k == "rate-hz") {
                ok = parseDouble(v, phase.rateHz) && phase.rateHz > 0;
            } else if (k == "rate-x") {
                ok = parseDouble(v, phase.rateX) && phase.rateX > 0;
            } else if (k == "burst") {
                uint64_t b = 0;
                ok = parseUint(v, b) && b > 0;
                phase.burst = static_cast<uint32_t>(b);
            } else if (k == "record") {
                ok = parseBool(v, phase.record);
            } else {
                ok = false;
            }
            if (!ok) {
                check.fail(e.line,
                           "bad phase option '" + parts[i] +
                               "' in phase '" + phase.name + "'");
                bad = true;
            }
        }
        if (phase.ops == 0) {
            check.fail(e.line, "phase '" + phase.name +
                                   "' needs ops=<N>");
            bad = true;
        }
        bool open = phase.arrival != ArrivalKind::ClosedLoop;
        if (open && phase.rateHz == 0.0 && phase.rateX == 0.0) {
            check.fail(e.line, "open-loop phase '" + phase.name +
                                   "' needs rate-hz or rate-x");
            bad = true;
        }
        if (phase.rateHz > 0.0 && phase.rateX > 0.0) {
            check.fail(e.line, "phase '" + phase.name +
                                   "' has both rate-hz and rate-x");
            bad = true;
        }
        if (!open && (phase.rateHz > 0.0 || phase.rateX > 0.0)) {
            check.fail(e.line, "closed phase '" + phase.name +
                                   "' does not take a rate");
            bad = true;
        }
        if (!bad)
            spec.phases.push_back(std::move(phase));
    }
}

void
parseMatrixSection(const ScenarioSection &sec, ScenarioSpec &spec,
                   Check &check)
{
    for (const auto &e : sec.entries) {
        if (e.key != "scale" && e.key != "group" && e.key != "mode" &&
            e.key != "machine") {
            check.fail(e.line, "unknown matrix axis '" + e.key +
                                   "' (scale, group, mode or"
                                   " machine)");
            continue;
        }
        ScenarioAxis axis;
        axis.name = e.key;
        axis.values = splitList(e.value);
        axis.line = e.line;
        if (axis.values.empty())
            check.fail(e.line,
                       "matrix axis '" + e.key + "' has no values");
        spec.axes.push_back(std::move(axis));
    }
}

/** Post-section semantic checks that need the whole spec. */
void
crossValidate(ScenarioSpec &spec, Check &check)
{
    switch (spec.kind) {
      case ScenarioKind::Sweep:
      case ScenarioKind::Replay:
        if (spec.groups.empty())
            check.fail(0, std::string(toString(spec.kind)) +
                              " scenarios need a [workloads] section"
                              " with at least one group");
        if (!spec.phases.empty())
            check.fail(0, "[phases] is only valid for traffic"
                          " scenarios");
        break;
      case ScenarioKind::Traffic:
        if (spec.target.empty())
            check.fail(0, "traffic scenarios need a 'target' key");
        if (spec.phases.empty())
            check.fail(0, "traffic scenarios need a [phases] section"
                          " with at least one phase");
        break;
    }

    auto check_gen = [&](const std::string &ref, const char *key) {
        if (ref.empty())
            return;
        if (!spec.generators.count(ref))
            check.fail(0, std::string(key) + " = " + ref +
                              " names no [generators] entry");
    };
    check_gen(spec.keyGen, "key-gen");
    check_gen(spec.queryGen, "query-gen");
    check_gen(spec.docGen, "doc-gen");
    if (!spec.docGen.empty() && spec.generators.count(spec.docGen)) {
        GenKind k = spec.generators.at(spec.docGen).kind();
        if (k != GenKind::Bytes && k != GenKind::Words)
            check.fail(0, "doc-gen = " + spec.docGen +
                              " must be a bytes() or words()"
                              " generator");
    }
    if (!spec.keyGen.empty() && spec.target != "kv-get")
        check.fail(0, "key-gen is only honoured by the kv-get"
                      " target");
    if (!spec.queryGen.empty() && spec.target != "sql-filter")
        check.fail(0, "query-gen is only honoured by the sql-filter"
                      " target");
}

} // namespace

ScenarioParse
parseScenario(const ScenarioDoc &doc)
{
    ScenarioParse out;
    out.spec.source = doc.source;
    out.issues = doc.issues;  // structural problems come along
    Check check{out.issues};

    const ScenarioSection *scenario = doc.find("scenario");
    if (!scenario) {
        check.fail(0, "missing required [scenario] section");
        return out;
    }
    parseScenarioSection(*scenario, out.spec, check);

    for (const auto &sec : doc.sections) {
        if (sec.name == "scenario")
            continue;
        if (sec.name == "workloads")
            parseWorkloadsSection(sec, out.spec, check);
        else if (sec.name == "generators")
            parseGeneratorsSection(sec, out.spec, check);
        else if (sec.name == "phases")
            parsePhasesSection(sec, out.spec, check);
        else if (sec.name == "matrix")
            parseMatrixSection(sec, out.spec, check);
        else
            check.fail(sec.line,
                       "unknown section [" + sec.name + "]");
    }

    if (out.spec.sizesKb.empty())
        out.spec.sizesKb = paperSweepSizesKb();
    if (out.spec.machines.empty())
        out.spec.machines = {"xeon", "atom"};

    crossValidate(out.spec, check);
    return out;
}

ScenarioParse
loadScenario(const std::string &path)
{
    return parseScenario(parseScenarioFile(path));
}

namespace {

std::string
renderScale(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::vector<ScenarioCell>
expandScenario(const ScenarioSpec &spec, double base_scale,
               std::vector<ScenarioIssue> &issues)
{
    Check check{issues};

    // Which axes this kind understands.
    auto axis_legal = [&](const std::string &name) {
        if (name == "scale")
            return true;
        if (name == "group")
            return spec.kind != ScenarioKind::Traffic;
        if (name == "mode")
            return spec.kind == ScenarioKind::Sweep;
        if (name == "machine")
            return spec.kind == ScenarioKind::Replay;
        return false;
    };

    // Start from the declared axes, then append defaults (canonical
    // order) for the relevant axes the file leaves out.
    std::vector<ScenarioAxis> axes;
    for (const auto &axis : spec.axes) {
        if (!axis_legal(axis.name)) {
            check.fail(axis.line,
                       "matrix axis '" + axis.name +
                           "' is not valid for " +
                           toString(spec.kind) + " scenarios");
            continue;
        }
        for (const auto &existing : axes) {
            if (existing.name == axis.name) {
                check.fail(axis.line, "duplicate matrix axis '" +
                                          axis.name + "'");
            }
        }
        if (axis.values.empty())
            continue;  // already reported at parse time
        axes.push_back(axis);
    }
    auto has_axis = [&](const char *name) {
        for (const auto &a : axes)
            if (a.name == name)
                return true;
        return false;
    };
    if (!has_axis("scale"))
        axes.push_back({"scale", {renderScale(base_scale)}, 0});
    if (!has_axis("group") && spec.kind != ScenarioKind::Traffic) {
        ScenarioAxis g{"group", {}, 0};
        for (const auto &group : spec.groups)
            g.values.push_back(group.name);
        axes.push_back(std::move(g));
    }
    if (!has_axis("mode") && spec.kind == ScenarioKind::Sweep)
        axes.push_back({"mode", {toString(spec.mrcMode)}, 0});
    if (!has_axis("machine") && spec.kind == ScenarioKind::Replay)
        axes.push_back({"machine", spec.machines, 0});

    // Validate every axis value before expanding, so one bad token
    // reports once instead of once per sibling combination.
    bool bad = false;
    for (const auto &axis : axes) {
        if (axis.values.empty()) {
            check.fail(axis.line, "matrix axis '" + axis.name +
                                      "' expands to no values");
            bad = true;
        }
        for (const auto &v : axis.values) {
            if (axis.name == "scale") {
                double s = 0.0;
                if (!parseDouble(v, s) || s <= 0.0) {
                    check.fail(axis.line,
                               "bad scale value '" + v + "'");
                    bad = true;
                }
            } else if (axis.name == "group") {
                if (!spec.findGroup(v)) {
                    check.fail(axis.line, "matrix group '" + v +
                                              "' is not declared in"
                                              " [workloads]");
                    bad = true;
                }
            } else if (axis.name == "mode") {
                MrcMode m;
                if (!parseMrcMode(v, m)) {
                    check.fail(axis.line,
                               "bad mode value '" + v + "'");
                    bad = true;
                }
            } else if (axis.name == "machine") {
                MachineConfig m;
                if (!parseMachine(v, m)) {
                    check.fail(axis.line,
                               "bad machine value '" + v +
                                   "' (xeon, atom or sim<KB>)");
                    bad = true;
                }
            }
        }
    }
    if (bad)
        return {};

    // Odometer cross-product: first axis varies slowest.
    size_t total = 1;
    for (const auto &axis : axes)
        total *= axis.values.size();
    if (total == 0)
        return {};

    std::vector<ScenarioCell> cells;
    cells.reserve(total);
    for (size_t i = 0; i < total; ++i) {
        ScenarioCell cell;
        cell.index = i;
        cell.mode = spec.mrcMode;

        size_t rem = i;
        size_t stride = total;
        std::vector<std::pair<std::string, std::string>> labels;
        for (const auto &axis : axes) {
            stride /= axis.values.size();
            const std::string &v = axis.values[rem / stride];
            rem %= stride;
            labels.emplace_back(axis.name, v);
            if (axis.name == "scale") {
                double s = 0.0;
                parseDouble(v, s);
                cell.scale = s * spec.scaleFactor;
            } else if (axis.name == "group") {
                cell.group = *spec.findGroup(v);
            } else if (axis.name == "mode") {
                parseMrcMode(v, cell.mode);
            } else if (axis.name == "machine") {
                cell.machineName = v;
                parseMachine(v, cell.machine);
            }
        }
        // Stable label order regardless of axis declaration order.
        for (const char *name : {"group", "scale", "mode", "machine"}) {
            for (const auto &[k, v] : labels) {
                if (k == name) {
                    if (!cell.label.empty())
                        cell.label += " ";
                    cell.label += k + std::string("=") + v;
                }
            }
        }
        cells.push_back(std::move(cell));
    }
    return cells;
}

} // namespace wcrt
