/**
 * @file
 * The scenario runner: executes expanded cells against the three
 * engines a scenario kind names.
 *
 *  - sweep cells replicate the figure benches' averageSweepMrc()
 *    arithmetic exactly — same trace-cache keys, same
 *    replaySweepLadder() call, same sum-then-divide entry order — so a
 *    scenario-driven curve is bit-identical to the hand-coded bench's
 *    for the same roster, scale and MrcMode.
 *  - traffic cells drive loadgen::Orchestrator. Phases declared with
 *    `rate-x` are fractions of a measured per-actor capacity: the
 *    runner probes mu1 first with a strictly serial closed loop (one
 *    actor, jobs=1), the service_latency idiom. When the scenario
 *    names [generators], the runner builds generator-backed targets
 *    whose per-request draws are pure functions of (scenario seed,
 *    actor, op index) — bit-identical at jobs=1 and jobs=N.
 *  - replay cells replay each group member's cached trace through
 *    SimCpu on the cell's machine config via replayTracesOn().
 */

#ifndef WCRT_SCENARIO_RUNNER_HH
#define WCRT_SCENARIO_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/trace_cache.hh"
#include "loadgen/orchestrator.hh"
#include "loadgen/targets.hh"
#include "scenario/scenario.hh"
#include "sim/sim_cpu.hh"

namespace wcrt {

/** Engine-level knobs a scenario file does not decide. */
struct RunnerOptions
{
    unsigned jobs = 0;      //!< worker cap (0 = hardware threads)
    std::string traceDir;   //!< trace cache ("" = TraceCache default)
    double baseScale = 0.5; //!< WCRT_SCALE-style base dataset scale
};

/** One sweep cell's averaged miss-ratio curve. */
struct SweepCellResult
{
    std::vector<double> curve;   //!< averaged over the cell's group
    double maxDivergence = 0.0;  //!< verify mode: worst |stack-oracle|
};

/** One traffic cell's measured phases. */
struct TrafficCellResult
{
    double capacityHz = 0.0;  //!< probed mu1 (0 when no rate-x phase)
    TrafficResult result;
};

/** One replay cell: a report per group member, in group order. */
struct ReplayCellResult
{
    std::vector<std::string> names;
    std::vector<CpuReport> reports;
};

/** The union of the three engines' outcomes for one cell. */
struct CellResult
{
    ScenarioCell cell;
    SweepCellResult sweep;
    TrafficCellResult traffic;
    ReplayCellResult replay;
};

/**
 * Build the traffic target a scenario describes: the named loadgen
 * target, swapped for a generator-backed implementation when the
 * scenario references [generators] entries (key-gen / query-gen /
 * doc-gen).
 */
std::unique_ptr<TrafficTarget> makeScenarioTarget(
    const ScenarioSpec &spec, double scale);

/**
 * Executes one scenario's cells. Owns the trace cache, so a multi-cell
 * run pays one capture per (workload, scale) like the benches do.
 */
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(const ScenarioSpec &spec,
                            RunnerOptions opt = {});

    /** Expand the run list (see expandScenario()). */
    std::vector<ScenarioCell> cells(
        std::vector<ScenarioIssue> &issues) const;

    /** Execute one cell through its kind's engine. */
    CellResult runCell(const ScenarioCell &cell);

    const ScenarioSpec &scenario() const { return spec; }
    const RunnerOptions &options() const { return opt; }

  private:
    SweepCellResult runSweepCell(const ScenarioCell &cell);
    TrafficCellResult runTrafficCell(const ScenarioCell &cell);
    ReplayCellResult runReplayCell(const ScenarioCell &cell);

    const ScenarioSpec &spec;
    RunnerOptions opt;
    TraceCache cache;
};

} // namespace wcrt

#endif // WCRT_SCENARIO_RUNNER_HH
