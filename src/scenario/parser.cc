#include "scenario/parser.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace wcrt {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

void
issue(ScenarioDoc &doc, int line, std::string msg)
{
    doc.issues.push_back({line, std::move(msg)});
}

} // namespace

std::string
ScenarioIssue::format(const std::string &source) const
{
    std::ostringstream os;
    os << source;
    if (line > 0)
        os << ":" << line;
    os << ": " << message;
    return os.str();
}

const ScenarioEntry *
ScenarioSection::find(const std::string &key) const
{
    for (const auto &e : entries)
        if (e.key == key)
            return &e;
    return nullptr;
}

const ScenarioSection *
ScenarioDoc::find(const std::string &name) const
{
    for (const auto &s : sections)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::string
ScenarioDoc::toText() const
{
    std::ostringstream os;
    for (size_t i = 0; i < sections.size(); ++i) {
        if (i > 0)
            os << "\n";
        os << "[" << sections[i].name << "]\n";
        for (const auto &e : sections[i].entries)
            os << e.key << " = " << e.value << "\n";
    }
    return os.str();
}

ScenarioDoc
parseScenarioText(const std::string &text, const std::string &source)
{
    ScenarioDoc doc;
    doc.source = source;

    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    ScenarioSection *current = nullptr;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        if (line[0] == '[') {
            if (line.back() != ']') {
                issue(doc, lineno,
                      "malformed section header '" + line +
                          "' (expected [name])");
                continue;
            }
            std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty()) {
                issue(doc, lineno, "empty section name");
                continue;
            }
            if (doc.find(name)) {
                issue(doc, lineno,
                      "duplicate section [" + name + "]");
                current = nullptr;  // swallow the duplicate's entries
                continue;
            }
            doc.sections.push_back({name, lineno, {}});
            current = &doc.sections.back();
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos) {
            issue(doc, lineno,
                  "malformed line '" + line +
                      "' (expected key = value or [section])");
            continue;
        }
        ScenarioEntry entry;
        entry.key = trim(line.substr(0, eq));
        entry.value = trim(line.substr(eq + 1));
        entry.line = lineno;
        if (entry.key.empty()) {
            issue(doc, lineno, "missing key before '='");
            continue;
        }
        if (!current) {
            issue(doc, lineno,
                  "entry '" + entry.key +
                      "' before the first section header");
            continue;
        }
        if (current->find(entry.key)) {
            issue(doc, lineno,
                  "duplicate key '" + entry.key + "' in [" +
                      current->name + "]");
            continue;
        }
        current->entries.push_back(std::move(entry));
    }
    return doc;
}

ScenarioDoc
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ScenarioDoc doc;
        doc.source = path;
        doc.issues.push_back({0, "cannot read file"});
        return doc;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseScenarioText(buf.str(), path);
}

} // namespace wcrt
