/**
 * @file
 * The semantic layer of the scenario DSL: a typed ScenarioSpec built
 * from a parsed document, resolved against the workload registry, and
 * a matrix expander that turns axis declarations into an ordered run
 * list.
 *
 * A scenario composes workload roster × dataset scale × software
 * stack (via named workload groups) × machine config × traffic
 * phases into data: one `.scn` file describes what today lives in
 * hand-written bench `main()`s. Three kinds dispatch to the three
 * existing engines:
 *
 *  - `sweep`   -> replaySweepLadder() miss-ratio curves (MrcMode)
 *  - `traffic` -> loadgen::Orchestrator phases
 *  - `replay`  -> replayOnConfigs() machine-model reports
 *
 * The `[matrix]` section declares axes (scale, group, mode, machine);
 * expansion is the odometer cross-product — the first declared axis
 * varies slowest — so "all stacks × all scales" is two lines, and CI
 * can iterate the resulting cells in a stable documented order.
 *
 * Like the structural parser, semantic validation accumulates every
 * issue it finds (unknown keys, unknown workload names, bad axis
 * values, empty expansions) instead of stopping at the first, so
 * `scenario_tool validate` shows a file's full damage in one run.
 */

#ifndef WCRT_SCENARIO_SCENARIO_HH
#define WCRT_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "loadgen/arrival.hh"
#include "scenario/generator.hh"
#include "scenario/parser.hh"
#include "sim/footprint.hh"
#include "sim/machine.hh"
#include "tracefile/replay.hh"
#include "workloads/registry.hh"

namespace wcrt {

/** Which engine a scenario drives. */
enum class ScenarioKind : uint8_t { Sweep, Traffic, Replay };

/** Kind name as the DSL spells it: sweep / traffic / replay. */
const char *toString(ScenarioKind k);

/** A named workload group, resolved against the rosters. */
struct ScenarioGroup
{
    std::string name;
    std::vector<WorkloadEntry> entries;  //!< resolved, in file order
};

/** One declared traffic phase (ordered within [phases]). */
struct ScenarioPhase
{
    std::string name;
    ArrivalKind arrival = ArrivalKind::ClosedLoop;
    uint64_t ops = 0;        //!< requests per actor
    double thinkNs = 0.0;    //!< closed-loop think time
    double rateHz = 0.0;     //!< absolute per-actor open-loop rate
    double rateX = 0.0;      //!< rate as a fraction of probed capacity
    uint32_t burst = 1;      //!< token-bucket depth
    bool record = true;
};

/** One matrix axis: name plus raw values in declaration order. */
struct ScenarioAxis
{
    std::string name;                 //!< scale | group | mode | machine
    std::vector<std::string> values;  //!< raw tokens
    int line = 0;
};

/** A fully parsed, resolved scenario. */
struct ScenarioSpec
{
    std::string source;        //!< file name for messages
    std::string name;
    ScenarioKind kind = ScenarioKind::Sweep;
    uint64_t seed = 1;
    double scaleFactor = 1.0;  //!< multiplies every cell's base scale

    // Sweep engine parameters.
    SweepKind sweepKind = SweepKind::Instruction;
    MrcMode mrcMode = MrcMode::StackDistance;
    std::vector<uint32_t> sizesKb;  //!< defaults to the paper ladder
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;

    // Traffic engine parameters.
    std::string target;        //!< kv-get / sql-filter / workload:<n>
    unsigned actors = 4;
    uint64_t probeOps = 256;   //!< serial capacity-probe requests
    std::string keyGen;        //!< [generators] name for kv keys
    std::string queryGen;      //!< [generators] name for sql predicates
    std::string docGen;        //!< [generators] name for documents
    std::vector<ScenarioPhase> phases;

    // Replay engine parameters.
    std::vector<std::string> machines;  //!< default {xeon, atom}

    std::vector<ScenarioGroup> groups;
    std::map<std::string, ValueGen> generators;
    std::vector<ScenarioAxis> axes;  //!< as declared in [matrix]

    const ScenarioGroup *findGroup(const std::string &name) const;
};

/** parseScenario()'s outcome: the spec plus every issue found. */
struct ScenarioParse
{
    ScenarioSpec spec;
    std::vector<ScenarioIssue> issues;  //!< structural + semantic

    bool ok() const { return issues.empty(); }

    /** All issues, one "source:line: message" per line. */
    std::string formatIssues() const;
};

/** Interpret a parsed document (structural issues are carried over). */
ScenarioParse parseScenario(const ScenarioDoc &doc);

/** Parse + interpret a file in one step. */
ScenarioParse loadScenario(const std::string &path);

/**
 * Resolve a workload name against every roster: representative, MPI,
 * full, then the baseline suites. Returns nullptr when unknown
 * (findWorkload() panics, which a validator must not).
 */
const WorkloadEntry *lookupWorkload(const std::string &name);

/**
 * Parse a machine selector: "xeon", "atom" or "sim<KB>".
 * @return false when the name matches nothing (`out` untouched).
 */
bool parseMachine(const std::string &name, MachineConfig &out);

/** One cell of the expanded run list. */
struct ScenarioCell
{
    size_t index = 0;
    std::string label;    //!< "group=Hadoop scale=0.25 mode=stack"
    double scale = 0.0;   //!< effective dataset scale
    ScenarioGroup group;  //!< sweep/replay roster (empty for traffic)
    MrcMode mode = MrcMode::StackDistance;  //!< sweep cells
    std::string machineName;                //!< replay cells
    MachineConfig machine;                  //!< replay cells
};

/**
 * Expand the matrix into the ordered run list: the cross-product of
 * every axis, first declared axis varying slowest. Axes the file does
 * not declare contribute their scenario-level default (base scale,
 * all groups, the mrc-mode key, the machines key). Axis values are
 * validated here; problems are appended to `issues` and yield an
 * empty list.
 *
 * @param spec Parsed scenario.
 * @param base_scale Environment base scale (WCRT_SCALE); a `scale`
 *        axis replaces it, and `spec.scaleFactor` always multiplies.
 * @param issues Accumulates expansion-time problems.
 */
std::vector<ScenarioCell> expandScenario(
    const ScenarioSpec &spec, double base_scale,
    std::vector<ScenarioIssue> &issues);

} // namespace wcrt

#endif // WCRT_SCENARIO_SCENARIO_HH
