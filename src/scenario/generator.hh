/**
 * @file
 * Seeded value generators for the scenario DSL: keys, documents and
 * query parameters as pure functions of (scenario seed, actor,
 * op index).
 *
 * The loadgen engine's determinism contract says a run's op streams
 * are bit-identical at jobs=1 and jobs=N. Generators uphold it by
 * construction: every draw reseeds a private Rng from a SplitMix64
 * fold of the (seed, actor, op) triple, so the value at any position
 * is independent of evaluation order, interleaving and worker count —
 * the counter-based idiom of genny's DocumentGenerator, without the
 * shared-stream hazards of handing one Rng to N actors.
 *
 * Spec grammar (one generator per [generators] entry):
 *
 *     zipf(N, S)        key rank in [0, N), Zipfian with exponent S
 *     uniform(LO, HI)   integer in [LO, HI] / scalar in [LO, HI)
 *     gauss(MEAN, SD)   normal scalar
 *     bytes(LEN)        LEN-byte printable document
 *     words(COUNT, VOCAB) COUNT query terms from a Zipfian VOCAB
 */

#ifndef WCRT_SCENARIO_GENERATOR_HH
#define WCRT_SCENARIO_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.hh"

namespace wcrt {

/** The position a generator draw is evaluated at. */
struct GenCtx
{
    uint64_t seed = 0;   //!< scenario seed
    uint64_t actor = 0;  //!< dense actor index
    uint64_t op = 0;     //!< per-actor op index
};

/** SplitMix64-style fold; the one seed-derivation used everywhere. */
uint64_t mixSeed(uint64_t a, uint64_t b);

/** The supported generator shapes. */
enum class GenKind : uint8_t { Zipf, Uniform, Gauss, Bytes, Words };

/** Spec-string name of a kind ("zipf", "uniform", ...). */
const char *toString(GenKind k);

/**
 * One parsed value generator. Copyable; heavy precomputed state (the
 * Zipf cdf) is shared between copies. All draw methods are const and
 * thread-safe: state lives entirely in the GenCtx.
 */
class ValueGen
{
  public:
    ValueGen() = default;

    /**
     * Parse a spec string ("zipf(1000, 0.99)").
     * @return false with `err` set on a malformed spec.
     */
    static bool parse(const std::string &spec, ValueGen &out,
                      std::string &err);

    GenKind kind() const { return k; }

    /** The spec in canonical form ("zipf(1000, 0.99)"). */
    std::string spec() const;

    /**
     * Index draw (Zipf: rank in [0, N); Uniform: integer in
     * [LO, HI]). Other kinds draw their scalar and truncate.
     */
    uint64_t drawIndex(const GenCtx &ctx) const;

    /**
     * Scalar draw (Uniform: [LO, HI); Gauss: N(MEAN, SD); Zipf: the
     * rank as a double; Bytes/Words: the text length).
     */
    double drawScalar(const GenCtx &ctx) const;

    /**
     * Text draw (Bytes: LEN printable chars; Words: COUNT
     * space-separated Zipf-ranked terms "w<rank>"; other kinds:
     * decimal rendering of drawIndex).
     */
    std::string drawText(const GenCtx &ctx) const;

  private:
    Rng rngAt(const GenCtx &ctx) const;

    GenKind k = GenKind::Uniform;
    double a = 0.0;  //!< lo / mean / (unused)
    double b = 1.0;  //!< hi / sd / zipf exponent
    uint64_t n = 1;  //!< zipf ranks / bytes len / words count
    uint64_t m = 1;  //!< words vocab
    std::shared_ptr<const ZipfSampler> zipf;  //!< Zipf/Words table
};

} // namespace wcrt

#endif // WCRT_SCENARIO_GENERATOR_HH
