#include "stack/kvstore/store.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "trace/idioms.hh"

namespace wcrt {

namespace {

uint32_t
scaledSize(double scale, uint32_t bytes)
{
    auto v = static_cast<uint32_t>(bytes * scale);
    return std::max<uint32_t>(v, 64);
}

} // namespace

KvStore::KvStore(CodeLayout &layout, const KvDataset &data,
                 const KvStoreConfig &config)
    : data(data), cfg(config)
{
    auto fw = [&](const std::string &name, uint32_t bytes,
                  uint32_t overhead, uint32_t rotation) {
        return layout.addFunction("hbase." + name, CodeLayer::Framework,
                                  scaledSize(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };

    // A region server executes a *lot* of distinct code per request;
    // eight alternative RPC handler flavours (auth, versioning, filter
    // combinations) model the stochastic path selection.
    rpcListener = fw("rpcServer.listen", 96 * 1024, 600, 8192);
    for (int h = 0; h < 12; ++h) {
        rpcHandlers.push_back(fw("rpcHandler." + std::to_string(h),
                                 128 * 1024, 700, 16384));
    }
    regionLocate = fw("hregion.locate", 64 * 1024, 180, 2048);
    memstoreCheck = fw("memstore.get", 72 * 1024, 160, 2048);
    bloomCheck = fw("bloomFilter.contains", 24 * 1024, 45, 512);
    blockIndexSearch = fw("hfileBlockIndex.seek", 48 * 1024, 90, 1024);
    blockLoad = fw("hfileBlock.read", 64 * 1024, 200, 2048);
    blockScan = fw("storeScanner.next", 72 * 1024, 120, 1024);
    valueCopy = fw("keyValue.copy", 24 * 1024, 30, 256);
    rpcEncode = fw("rpcServer.respond", 80 * 1024, 260, 2048);
    gcMinor = fw("jvm.gcMinor", 144 * 1024, 2400, 8192);
}

uint64_t
KvStore::get(Tracer &t, RunEnv &env, size_t index)
{
    if (index >= data.keys.size())
        return 0;
    ++served;

    Tracer::Scope listen(t, rpcListener);
    // Handler flavour depends on the request (stochastic path).
    Tracer::Scope handler(
        t, rpcHandlers[served % rpcHandlers.size()], true);
    {
        Tracer::Scope loc(t, regionLocate);
        idioms::hashBytes(t, data.keyAddr(index),
                          std::min<uint64_t>(data.keys[index].size(),
                                             16));
    }
    {
        // Memstore miss (read-mostly region): probe then fall through.
        Tracer::Scope ms(t, memstoreCheck);
        t.branchForward(false, 48);
    }
    {
        Tracer::Scope bf(t, bloomCheck);
        idioms::hashBytes(t, data.keyAddr(index), 8);
        t.branchForward(true, 32);
    }

    // Block index: binary search over ceil(n / blockRecords) blocks.
    size_t blocks =
        (data.keys.size() + cfg.blockRecords - 1) / cfg.blockRecords;
    uint32_t probes = static_cast<uint32_t>(
        std::bit_width(std::max<size_t>(blocks, 1)));
    {
        Tracer::Scope ix(t, blockIndexSearch);
        idioms::binarySearch(t, data.keyRegion.base, blocks, 32, probes,
                             true);
    }

    size_t block = index / cfg.blockRecords;
    size_t block_begin = block * cfg.blockRecords;
    size_t block_end =
        std::min(data.keys.size(), block_begin + cfg.blockRecords);
    {
        // Load the block from the OS page cache / disk.
        Tracer::Scope ld(t, blockLoad);
        uint64_t block_bytes =
            (block_end - block_begin) * data.valueBytes;
        env.io.diskReadBytes += block_bytes;
        idioms::copyBytes(t, data.valueAddr(block_begin),
                          data.valueAddr(block_begin),
                          std::min<uint64_t>(block_bytes, 4096));
    }
    {
        // Scan within the block to the exact key.
        Tracer::Scope sc(t, blockScan);
        t.loop(index - block_begin + 1, [&](uint64_t k) {
            idioms::compareBytes(t, data.keyAddr(block_begin + k),
                                 data.keyAddr(index), 8);
        });
    }
    uint64_t value_size = data.values[index].size();
    {
        Tracer::Scope vc(t, valueCopy);
        idioms::copyBytes(t, data.valueAddr(index),
                          data.valueAddr(index),
                          std::min<uint64_t>(value_size, 1024));
    }
    {
        Tracer::Scope enc(t, rpcEncode);
        env.io.networkBytes += value_size;
    }
    if (served % 512 == 0) {
        Tracer::Scope gc(t, gcMinor);
    }
    env.data.outputBytes += value_size;
    return value_size;
}

void
KvStore::serve(Tracer &t, RunEnv &env, uint64_t count, Rng &rng)
{
    ZipfSampler zipf(data.keys.size(), 0.9);
    env.data.inputBytes +=
        data.keys.size() * (32 + data.valueBytes);
    for (uint64_t i = 0; i < count; ++i)
        get(t, env, zipf.sample(rng));
}

} // namespace wcrt
