/**
 * @file
 * HBase-flavoured key-value store read path.
 *
 * Models the region-server read pipeline: RPC decode, region lookup,
 * memstore check, block-index binary search, HFile block scan, value
 * copy and RPC encode. Service requests arrive from a Zipfian client
 * mix over many distinct handler paths, which is why the paper sees
 * the highest L1I MPKI (~51) on H-Read: the executed code per request
 * is stochastic and spread over a very large static footprint.
 */

#ifndef WCRT_STACK_KVSTORE_STORE_HH
#define WCRT_STACK_KVSTORE_STORE_HH

#include <string>
#include <vector>

#include "base/rng.hh"
#include "datagen/table.hh"
#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

/** Store tunables. */
struct KvStoreConfig
{
    uint32_t blockRecords = 32;   //!< records per HFile block
    double codeScale = 1.0;
};

/**
 * A read-only region server over one sorted KV dataset.
 */
class KvStore
{
  public:
    /**
     * @param layout Code layout to register the server path in.
     * @param data Sorted key-value records (the region contents).
     * @param config Tunables.
     */
    KvStore(CodeLayout &layout, const KvDataset &data,
            const KvStoreConfig &config = {});

    /**
     * Serve one GET.
     *
     * @param t Tracer.
     * @param env I/O accounting (block reads hit "disk").
     * @param index Which record to fetch.
     * @return Value size in bytes (0 if out of range).
     */
    uint64_t get(Tracer &t, RunEnv &env, size_t index);

    /**
     * Serve a Zipfian request stream of `count` GETs (the service
     * loop the paper's H-Read measures).
     */
    void serve(Tracer &t, RunEnv &env, uint64_t count, Rng &rng);

  private:
    const KvDataset &data;
    KvStoreConfig cfg;

    // Server code path; several alternative handler flavours model the
    // stochastic per-request paths of a real region server.
    FunctionId rpcListener;
    std::vector<FunctionId> rpcHandlers;
    FunctionId regionLocate;
    FunctionId memstoreCheck;
    FunctionId bloomCheck;
    FunctionId blockIndexSearch;
    FunctionId blockLoad;
    FunctionId blockScan;
    FunctionId valueCopy;
    FunctionId rpcEncode;
    FunctionId gcMinor;

    uint64_t served = 0;
};

} // namespace wcrt

#endif // WCRT_STACK_KVSTORE_STORE_HH
