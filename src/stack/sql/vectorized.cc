#include "stack/sql/vectorized.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.hh"
#include "trace/idioms.hh"

namespace wcrt {

namespace {

uint32_t
scaledSize(double scale, uint32_t bytes)
{
    auto v = static_cast<uint32_t>(bytes * scale);
    return std::max<uint32_t>(v, 64);
}

} // namespace

VectorizedEngine::VectorizedEngine(CodeLayout &layout,
                                   const VectorizedConfig &config)
    : cfg(config)
{
    auto fw = [&](const char *name, uint32_t bytes, uint32_t overhead,
                  uint32_t rotation) {
        return layout.addFunction(std::string("impala.") + name,
                                  CodeLayer::Framework,
                                  scaledSize(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };

    // Native engine: ~350 KB of executed code, far below the JVM
    // stacks but above a bare kernel.
    planFragment = fw("planFragmentExecutor", 64 * 1024, 700, 2048);
    scannerNext = fw("hdfsScanner.getNext", 56 * 1024, 80, 512);
    exprEval = fw("exprEvaluator.evalBatch", 32 * 1024, 30, 256);
    projectOp = fw("projectNode.getNext", 40 * 1024, 40, 256);
    sortOp = fw("sortNode.sortRun", 48 * 1024, 300, 1024);
    sortCompare = fw("tupleRowComparator", 8 * 1024, 6, 64);
    hashBuild = fw("hashTable.insert", 32 * 1024, 25, 256);
    hashProbe = fw("hashTable.probe", 32 * 1024, 22, 256);
    aggUpdate = fw("aggregationNode.update", 40 * 1024, 28, 256);
    resultSink = fw("resultSink.send", 32 * 1024, 90, 512);
}

template <typename Body>
void
VectorizedEngine::forBatches(Tracer &t, FunctionId op, size_t count,
                             Body &&body)
{
    size_t done = 0;
    while (done < count) {
        size_t n = std::min<size_t>(cfg.batchRows, count - done);
        Tracer::Scope batch(t, op);
        body(done, n);
        done += n;
    }
}

Selection
VectorizedEngine::scan(RunEnv &env, Tracer &t, const DataTable &table)
{
    Tracer::Scope frag(t, planFragment);
    uint64_t row_bytes = 0;
    for (const auto &c : table.columns)
        row_bytes += c.valueBytes();
    env.io.diskReadBytes += table.rows * row_bytes;
    env.data.inputBytes += table.rows * row_bytes;

    Selection sel;
    sel.reserve(table.rows);
    forBatches(t, scannerNext, table.rows, [&](size_t begin, size_t n) {
        t.loop(n, [&](uint64_t k) {
            t.intAlu(IntPurpose::IntAddress, 1);
            sel.push_back(begin + k);
        });
    });
    return sel;
}

Selection
VectorizedEngine::filterInt64(RunEnv &env, Tracer &t,
                              const DataTable &table,
                              const std::string &column,
                              const Selection &in,
                              const std::function<bool(int64_t)> &pred)
{
    (void)env;
    size_t col = table.columnIndex(column);
    const auto &values = table.columns[col].ints;
    Selection out;
    forBatches(t, exprEval, in.size(), [&](size_t begin, size_t n) {
        t.loop(n, [&](uint64_t k) {
            uint64_t row = in[begin + k];
            t.intAlu(IntPurpose::IntAddress, 1);
            t.load(table.cellAddr(col, row), 8);
            t.intAlu(IntPurpose::Compute, 1);
            bool keep = pred(values[row]);
            t.branchForward(!keep, 16);
            if (keep) {
                t.store(table.cellAddr(col, row) ^ 0x40000000, 8);
                out.push_back(row);
            }
        });
    });
    return out;
}

Selection
VectorizedEngine::filterFloat64(RunEnv &env, Tracer &t,
                                const DataTable &table,
                                const std::string &column,
                                const Selection &in,
                                const std::function<bool(double)> &pred)
{
    (void)env;
    size_t col = table.columnIndex(column);
    const auto &values = table.columns[col].doubles;
    Selection out;
    forBatches(t, exprEval, in.size(), [&](size_t begin, size_t n) {
        t.loop(n, [&](uint64_t k) {
            uint64_t row = in[begin + k];
            t.intAlu(IntPurpose::FpAddress, 1);
            t.load(table.cellAddr(col, row), 8);
            t.fpAlu(1);
            bool keep = pred(values[row]);
            t.branchForward(!keep, 16);
            if (keep)
                out.push_back(row);
        });
    });
    return out;
}

void
VectorizedEngine::project(RunEnv &env, Tracer &t, const DataTable &table,
                          const std::vector<std::string> &columns,
                          const Selection &in)
{
    std::vector<size_t> cols;
    uint64_t out_row_bytes = 0;
    for (const auto &name : columns) {
        cols.push_back(table.columnIndex(name));
        out_row_bytes += table.columns[cols.back()].valueBytes();
    }
    forBatches(t, projectOp, in.size(), [&](size_t begin, size_t n) {
        t.loop(n, [&](uint64_t k) {
            uint64_t row = in[begin + k];
            for (size_t c : cols) {
                t.intAlu(IntPurpose::IntAddress, 1);
                t.load(table.cellAddr(c, row), 8);
                t.store(table.cellAddr(c, row) ^ 0x80000000, 8);
            }
        });
    });
    {
        Tracer::Scope sink(t, resultSink);
        env.io.diskWriteBytes += in.size() * out_row_bytes;
        env.data.outputBytes += in.size() * out_row_bytes;
    }
}

Selection
VectorizedEngine::orderByInt64(RunEnv &env, Tracer &t,
                               const DataTable &table,
                               const std::string &column,
                               const Selection &in)
{
    size_t col = table.columnIndex(column);
    const auto &values = table.columns[col].ints;
    Selection out = in;
    {
        Tracer::Scope so(t, sortOp);
        std::sort(out.begin(), out.end(),
                  [&](uint64_t a, uint64_t b) {
                      // Compiled comparators on integer keys are
                      // branchless (setcc/cmov), so no branch here.
                      Tracer::Scope cmp(t, sortCompare);
                      t.load(table.cellAddr(col, a), 8);
                      t.load(table.cellAddr(col, b), 8);
                      t.intAlu(IntPurpose::Compute, 2);
                      return values[a] < values[b];
                  });
    }
    // A full sort writes a materialized run of every selected row.
    uint64_t row_bytes = 0;
    for (const auto &c : table.columns)
        row_bytes += c.valueBytes();
    env.data.intermediateBytes += out.size() * row_bytes;
    env.io.diskWriteBytes += out.size() * row_bytes;
    env.data.outputBytes += out.size() * row_bytes;
    return out;
}

std::vector<std::pair<uint64_t, uint64_t>>
VectorizedEngine::hashJoinInt64(RunEnv &env, Tracer &t,
                                const DataTable &left,
                                const std::string &left_col,
                                const Selection &left_sel,
                                const DataTable &right,
                                const std::string &right_col,
                                const Selection &right_sel)
{
    (void)env;
    size_t lc = left.columnIndex(left_col);
    size_t rc = right.columnIndex(right_col);
    const auto &lv = left.columns[lc].ints;
    const auto &rv = right.columns[rc].ints;

    // Build on the smaller side.
    const bool build_right = right_sel.size() <= left_sel.size();
    const Selection &build_sel = build_right ? right_sel : left_sel;
    const Selection &probe_sel = build_right ? left_sel : right_sel;
    const auto &build_vals = build_right ? rv : lv;
    const auto &probe_vals = build_right ? lv : rv;
    const DataTable &build_tab = build_right ? right : left;
    const DataTable &probe_tab = build_right ? left : right;
    size_t build_col = build_right ? rc : lc;
    size_t probe_col = build_right ? lc : rc;

    std::unordered_multimap<int64_t, uint64_t> ht;
    ht.reserve(build_sel.size());
    forBatches(t, hashBuild, build_sel.size(),
               [&](size_t begin, size_t n) {
                   t.loop(n, [&](uint64_t k) {
                       uint64_t row = build_sel[begin + k];
                       t.intAlu(IntPurpose::IntAddress, 2);
                       t.load(build_tab.cellAddr(build_col, row), 8);
                       t.intMul(1);
                       t.store(build_tab.cellAddr(build_col, row) ^
                                   0x20000000,
                               8);
                       ht.emplace(build_vals[row], row);
                   });
               });

    std::vector<std::pair<uint64_t, uint64_t>> out;
    forBatches(t, hashProbe, probe_sel.size(),
               [&](size_t begin, size_t n) {
                   t.loop(n, [&](uint64_t k) {
                       uint64_t row = probe_sel[begin + k];
                       t.intAlu(IntPurpose::IntAddress, 2);
                       t.load(probe_tab.cellAddr(probe_col, row), 8);
                       t.intMul(1);
                       auto [lo, hi] = ht.equal_range(probe_vals[row]);
                       bool any = lo != hi;
                       t.branchForward(any, 24);
                       for (auto it = lo; it != hi; ++it) {
                           t.load(build_tab.cellAddr(build_col,
                                                     it->second),
                                  8);
                           t.intAlu(IntPurpose::Compute, 1);
                           if (build_right)
                               out.emplace_back(row, it->second);
                           else
                               out.emplace_back(it->second, row);
                       }
                   });
               });
    return out;
}

std::vector<std::pair<int64_t, double>>
VectorizedEngine::aggregateSum(RunEnv &env, Tracer &t,
                               const DataTable &table,
                               const std::string &group_col,
                               const std::string &value_col,
                               const Selection &in)
{
    size_t gc = table.columnIndex(group_col);
    size_t vc = table.columnIndex(value_col);
    const auto &groups = table.columns[gc].ints;
    const auto &values = table.columns[vc].doubles;

    std::unordered_map<int64_t, double> agg;
    forBatches(t, aggUpdate, in.size(), [&](size_t begin, size_t n) {
        t.loop(n, [&](uint64_t k) {
            uint64_t row = in[begin + k];
            t.intAlu(IntPurpose::IntAddress, 2);
            t.load(table.cellAddr(gc, row), 8);
            t.intMul(1);
            t.intAlu(IntPurpose::FpAddress, 1);
            t.load(table.cellAddr(vc, row), 8);
            t.fpAlu(1);
            agg[groups[row]] += values[row];
        });
    });

    std::vector<std::pair<int64_t, double>> out(agg.begin(), agg.end());
    std::sort(out.begin(), out.end());
    {
        Tracer::Scope sink(t, resultSink);
        env.io.diskWriteBytes += out.size() * 16;
        env.data.outputBytes += out.size() * 16;
    }
    return out;
}

Selection
VectorizedEngine::differenceInt64(RunEnv &env, Tracer &t,
                                  const DataTable &left,
                                  const std::string &left_col,
                                  const Selection &left_sel,
                                  const DataTable &right,
                                  const std::string &right_col,
                                  const Selection &right_sel)
{
    (void)env;
    size_t lc = left.columnIndex(left_col);
    size_t rc = right.columnIndex(right_col);
    const auto &lv = left.columns[lc].ints;
    const auto &rv = right.columns[rc].ints;

    std::unordered_set<int64_t> keys;
    keys.reserve(right_sel.size());
    forBatches(t, hashBuild, right_sel.size(),
               [&](size_t begin, size_t n) {
                   t.loop(n, [&](uint64_t k) {
                       uint64_t row = right_sel[begin + k];
                       t.intAlu(IntPurpose::IntAddress, 2);
                       t.load(right.cellAddr(rc, row), 8);
                       t.intMul(1);
                       keys.insert(rv[row]);
                   });
               });

    Selection out;
    forBatches(t, hashProbe, left_sel.size(),
               [&](size_t begin, size_t n) {
                   t.loop(n, [&](uint64_t k) {
                       uint64_t row = left_sel[begin + k];
                       t.intAlu(IntPurpose::IntAddress, 2);
                       t.load(left.cellAddr(lc, row), 8);
                       t.intMul(1);
                       bool keep = !keys.count(lv[row]);
                       t.branchForward(keep, 16);
                       if (keep)
                           out.push_back(row);
                   });
               });
    return out;
}

} // namespace wcrt
