/**
 * @file
 * Impala-flavoured native vectorized query executor.
 *
 * Impala's defining property in the paper is that it is C++ native: a
 * modest code footprint, tight per-batch loops over columnar data, no
 * JVM. The executor provides the relational operators the Table-2
 * interactive-analysis workloads need (filter, project, order-by,
 * hash join, aggregate, set difference); the Hive- and Shark-flavoured
 * versions of the same queries are built on the MapReduce and RDD
 * engines instead.
 *
 * Operators run batch-at-a-time (1024 rows): per batch one framework
 * dispatch, then a tight, highly-predictable inner loop over real
 * column values.
 */

#ifndef WCRT_STACK_SQL_VECTORIZED_HH
#define WCRT_STACK_SQL_VECTORIZED_HH

#include <functional>
#include <vector>

#include "datagen/table.hh"
#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

/** Row selection produced by scans/filters (row indices, ascending). */
using Selection = std::vector<uint64_t>;

/** Engine tunables. */
struct VectorizedConfig
{
    uint32_t batchRows = 1024;
    double codeScale = 1.0;
};

/**
 * The vectorized executor.
 */
class VectorizedEngine
{
  public:
    VectorizedEngine(CodeLayout &layout,
                     const VectorizedConfig &config = {});

    /** Full-table scan: returns all rows, accounts input I/O. */
    Selection scan(RunEnv &env, Tracer &t, const DataTable &table);

    /**
     * Filter an int64 column with a predicate over the real values.
     */
    Selection filterInt64(RunEnv &env, Tracer &t, const DataTable &table,
                          const std::string &column, const Selection &in,
                          const std::function<bool(int64_t)> &pred);

    /** Filter a float64 column. */
    Selection filterFloat64(RunEnv &env, Tracer &t,
                            const DataTable &table,
                            const std::string &column,
                            const Selection &in,
                            const std::function<bool(double)> &pred);

    /**
     * Project columns of the selected rows (accounts output bytes).
     */
    void project(RunEnv &env, Tracer &t, const DataTable &table,
                 const std::vector<std::string> &columns,
                 const Selection &in);

    /**
     * Sort selected rows by an int64 column; returns the permuted
     * selection. The sort runs for real over the column values.
     */
    Selection orderByInt64(RunEnv &env, Tracer &t, const DataTable &table,
                           const std::string &column,
                           const Selection &in);

    /**
     * Hash join (inner): returns (left row, right row) pairs where the
     * int64 key columns match.
     */
    std::vector<std::pair<uint64_t, uint64_t>> hashJoinInt64(
        RunEnv &env, Tracer &t, const DataTable &left,
        const std::string &left_col, const Selection &left_sel,
        const DataTable &right, const std::string &right_col,
        const Selection &right_sel);

    /**
     * Group by an int64 column, summing a float64 column; returns
     * (group, sum) pairs sorted by group.
     */
    std::vector<std::pair<int64_t, double>> aggregateSum(
        RunEnv &env, Tracer &t, const DataTable &table,
        const std::string &group_col, const std::string &value_col,
        const Selection &in);

    /**
     * Set difference on int64 key columns: rows of `left` whose key
     * does not appear in `right`.
     */
    Selection differenceInt64(RunEnv &env, Tracer &t,
                              const DataTable &left,
                              const std::string &left_col,
                              const Selection &left_sel,
                              const DataTable &right,
                              const std::string &right_col,
                              const Selection &right_sel);

  private:
    /** Iterate a selection in batches with a per-batch dispatch. */
    template <typename Body>
    void forBatches(Tracer &t, FunctionId op, size_t count, Body &&body);

    VectorizedConfig cfg;

    FunctionId planFragment;
    FunctionId scannerNext;
    FunctionId exprEval;
    FunctionId projectOp;
    FunctionId sortOp;
    FunctionId sortCompare;
    FunctionId hashBuild;
    FunctionId hashProbe;
    FunctionId aggUpdate;
    FunctionId resultSink;
};

} // namespace wcrt

#endif // WCRT_STACK_SQL_VECTORIZED_HH
