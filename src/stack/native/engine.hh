/**
 * @file
 * MPI-flavoured native execution engine — the paper's thin stack.
 *
 * The contrast case for Section 5.5: the same algorithms run as SPMD
 * ranks with direct function calls, explicit message packing and an
 * alltoall exchange. The entire runtime is a handful of small
 * functions (~100 KB executed code, like PARSEC), so the instruction
 * working set stays L1I-resident and front-end behaviour matches
 * traditional workloads.
 */

#ifndef WCRT_STACK_NATIVE_ENGINE_HH
#define WCRT_STACK_NATIVE_ENGINE_HH

#include "stack/record.hh"
#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

/** SPMD kernel run by every rank. */
class NativeKernel
{
  public:
    virtual ~NativeKernel() = default;

    /** Register the kernel's code regions. */
    virtual void registerCode(CodeLayout &layout) = 0;

    /**
     * Phase 1 (local): process this rank's partition, routing derived
     * records to destination ranks (the shuffle).
     *
     * @param to_ranks One outbound bucket per rank.
     */
    virtual void processPartition(Tracer &t, const RecordVec &in,
                                  std::vector<RecordVec> &to_ranks) = 0;

    /**
     * Phase 2 (after exchange): fold everything this rank received
     * into final output records.
     */
    virtual void finalize(Tracer &t, const RecordVec &received,
                          RecordVec &out) = 0;
};

/** Engine tunables. */
struct NativeConfig
{
    uint32_t ranks = 4;
    double codeScale = 1.0;
};

/**
 * The engine: partitions input, runs the kernel on each rank, performs
 * the alltoall exchange and the finalize pass.
 */
class NativeEngine
{
  public:
    NativeEngine(CodeLayout &layout, const NativeConfig &config = {});

    /** Execute one SPMD job. */
    RecordVec run(RunEnv &env, Tracer &t, const RecordVec &input,
                  NativeKernel &kernel);

    const NativeConfig &config() const { return cfg; }

  private:
    NativeConfig cfg;

    FunctionId mpiInit;
    FunctionId mpiPack;
    FunctionId mpiUnpack;
    FunctionId mpiAlltoall;
    FunctionId mpiBarrier;
    FunctionId libcIo;

    bool buffersReady = false;
    HeapRegion messageBuffer;
    uint64_t msgCursor = 0;
};

} // namespace wcrt

#endif // WCRT_STACK_NATIVE_ENGINE_HH
