#include "stack/native/engine.hh"

#include <algorithm>

#include "trace/idioms.hh"

namespace wcrt {

namespace {

uint32_t
scaledSize(double scale, uint32_t bytes)
{
    auto v = static_cast<uint32_t>(bytes * scale);
    return std::max<uint32_t>(v, 64);
}

} // namespace

NativeEngine::NativeEngine(CodeLayout &layout, const NativeConfig &config)
    : cfg(config)
{
    auto lib = [&](const char *name, uint32_t bytes, uint32_t overhead,
                   uint32_t rotation) {
        return layout.addFunction(std::string("mpi.") + name,
                                  CodeLayer::Library,
                                  scaledSize(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };

    // The whole runtime is ~90 KB of executed code: thin by design.
    mpiInit = lib("init", 24 * 1024, 400, 1024);
    mpiPack = lib("pack", 8 * 1024, 12, 64);
    mpiUnpack = lib("unpack", 8 * 1024, 12, 64);
    mpiAlltoall = lib("alltoallv", 20 * 1024, 150, 512);
    mpiBarrier = lib("barrier", 8 * 1024, 40, 128);
    libcIo = lib("libc.read", 20 * 1024, 60, 256);
}

RecordVec
NativeEngine::run(RunEnv &env, Tracer &t, const RecordVec &input,
                  NativeKernel &kernel)
{
    if (!buffersReady) {
        messageBuffer = env.heap.alloc("mpi.messageBuffer",
                                       4 * 1024 * 1024);
        buffersReady = true;
    }

    uint64_t input_bytes = totalBytes(input);
    env.io.diskReadBytes += input_bytes;
    env.data.inputBytes += input_bytes;

    {
        Tracer::Scope init(t, mpiInit);
    }

    // Partition input contiguously among ranks.
    size_t per_rank =
        std::max<size_t>((input.size() + cfg.ranks - 1) / cfg.ranks, 1);
    std::vector<std::vector<RecordVec>> outboxes(cfg.ranks);

    for (uint32_t rank = 0; rank < cfg.ranks; ++rank) {
        size_t begin = static_cast<size_t>(rank) * per_rank;
        size_t end = std::min(input.size(), begin + per_rank);
        if (begin >= end) {
            outboxes[rank].assign(cfg.ranks, {});
            continue;
        }
        {
            Tracer::Scope rd(t, libcIo);
        }
        RecordVec part(input.begin() + static_cast<long>(begin),
                       input.begin() + static_cast<long>(end));
        outboxes[rank].assign(cfg.ranks, {});
        kernel.processPartition(t, part, outboxes[rank]);
    }

    // Alltoall exchange: pack, transfer, unpack.
    std::vector<RecordVec> inboxes(cfg.ranks);
    {
        Tracer::Scope xchg(t, mpiAlltoall);
        for (uint32_t src = 0; src < cfg.ranks; ++src) {
            for (uint32_t dst = 0; dst < cfg.ranks; ++dst) {
                for (auto &rec : outboxes[src][dst]) {
                    {
                        Tracer::Scope pk(t, mpiPack);
                        idioms::copyBytes(t, rec.keyAddr,
                                          messageBuffer.base + msgCursor,
                                          rec.bytes());
                    }
                    uint64_t need = std::max<uint64_t>(rec.bytes(), 16);
                    if (msgCursor + need > messageBuffer.bytes)
                        msgCursor = 0;
                    rec.keyAddr = messageBuffer.base + msgCursor;
                    rec.valueAddr = rec.keyAddr + rec.key.size();
                    msgCursor += need;
                    if (src != dst)
                        env.io.networkBytes += rec.bytes();
                    env.data.intermediateBytes += rec.bytes();
                    {
                        Tracer::Scope up(t, mpiUnpack);
                    }
                    inboxes[dst].push_back(std::move(rec));
                }
            }
        }
    }
    {
        Tracer::Scope bar(t, mpiBarrier);
    }

    // Finalize per rank.
    RecordVec output;
    for (uint32_t rank = 0; rank < cfg.ranks; ++rank) {
        RecordVec out;
        kernel.finalize(t, inboxes[rank], out);
        for (auto &rec : out) {
            env.io.diskWriteBytes += rec.bytes();
            output.push_back(std::move(rec));
        }
    }
    {
        Tracer::Scope bar(t, mpiBarrier);
    }
    env.data.outputBytes += totalBytes(output);
    return output;
}

} // namespace wcrt
