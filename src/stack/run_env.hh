/**
 * @file
 * Per-run environment shared by engines and workloads.
 *
 * A run owns one code layout (all functions of the stack and the app),
 * one synthetic heap (all data regions), and the I/O / data-behaviour
 * accounting the system monitor classifies from. Workloads populate it
 * during setup; engines update the counters while executing.
 */

#ifndef WCRT_STACK_RUN_ENV_HH
#define WCRT_STACK_RUN_ENV_HH

#include "sysmon/sysmon.hh"
#include "trace/code_layout.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {

/** Mutable state of one workload run. */
struct RunEnv
{
    CodeLayout layout;
    VirtualHeap heap;
    IoCounters io;
    DataBehavior data;
};

} // namespace wcrt

#endif // WCRT_STACK_RUN_ENV_HH
