/**
 * @file
 * The key-value record every stack engine moves around.
 *
 * Records carry both real string payloads (the workload kernels
 * genuinely compare, hash and merge them) and trace addresses into the
 * synthetic data space (so the cache model sees a realistic layout).
 */

#ifndef WCRT_STACK_RECORD_HH
#define WCRT_STACK_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wcrt {

/** One key-value record with trace addresses. */
struct Record
{
    std::string key;
    std::string value;
    uint64_t keyAddr = 0;
    uint64_t valueAddr = 0;

    /** Payload bytes (for I/O accounting). */
    uint64_t bytes() const { return key.size() + value.size(); }
};

using RecordVec = std::vector<Record>;

/** Total payload bytes of a record batch. */
uint64_t totalBytes(const RecordVec &records);

} // namespace wcrt

#endif // WCRT_STACK_RECORD_HH
