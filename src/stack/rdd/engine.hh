/**
 * @file
 * Spark-flavoured RDD engine.
 *
 * Models the Spark 1.x execution path: lazy transformations build a
 * DAG; an action cuts it into stages at wide (shuffle) dependencies;
 * each stage executes per-partition through a fused iterator chain
 * (one virtual `compute` dispatch per transformation per record —
 * exactly the code-bloat mechanism behind Spark's front-end
 * behaviour); wide boundaries hash-partition records through an
 * in-memory shuffle (network traffic, little disk). A Scala/JVM-like
 * runtime adds closure dispatch and heavier GC, giving Spark the
 * larger instruction working set the paper measures (S-WordCount L1I
 * MPKI ~17 vs Hadoop ~7 vs MPI ~2).
 */

#ifndef WCRT_STACK_RDD_ENGINE_HH
#define WCRT_STACK_RDD_ENGINE_HH

#include <functional>
#include <memory>
#include <string>

#include "stack/record.hh"
#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

class RddEngine;

/** Narrow transformation: one record in, zero or more out. */
using RddMapFn =
    std::function<void(Tracer &, const Record &, RecordVec &)>;

/** Predicate for filter(). */
using RddFilterFn = std::function<bool(Tracer &, const Record &)>;

/** Value combiner for reduceByKey(). */
using RddCombineFn =
    std::function<Record(Tracer &, const Record &, const Record &)>;

/**
 * A lazy distributed dataset handle. Cheap to copy; the underlying
 * lineage graph is shared.
 */
class Rdd
{
  public:
    /** flatMap/map: apply fn to every record. */
    Rdd map(RddMapFn fn, const std::string &name = "map") const;

    /** Keep records satisfying the predicate. */
    Rdd filter(RddFilterFn fn, const std::string &name = "filter") const;

    /** Wide: combine all values per key (shuffle boundary). */
    Rdd reduceByKey(RddCombineFn fn) const;

    /** Wide: group all values per key (shuffle boundary). */
    Rdd groupByKey() const;

    /** Wide: globally sort by key (shuffle + per-partition sort). */
    Rdd sortByKey() const;

    /** Mark for in-memory caching at this point of the lineage. */
    Rdd cache() const;

    /** Action: execute the DAG and materialize the records. */
    RecordVec collect(RunEnv &env, Tracer &t) const;

    /** Action: execute and count. */
    uint64_t count(RunEnv &env, Tracer &t) const;

  private:
    friend class RddEngine;
    struct Node;
    Rdd(RddEngine *engine, std::shared_ptr<Node> node);

    RddEngine *engine = nullptr;
    std::shared_ptr<Node> node;
};

/** Engine tunables. */
struct RddConfig
{
    uint32_t numPartitions = 8;
    uint32_t gcEveryRecords = 2000;
    double codeScale = 1.0;
};

/**
 * The engine: registers framework code and executes RDD lineages.
 */
class RddEngine
{
  public:
    RddEngine(CodeLayout &layout, const RddConfig &config = {});

    /**
     * Source RDD over already-addressed input records.
     *
     * The records are referenced, not copied: `input` must outlive
     * every action on the returned RDD (and on RDDs derived from it).
     */
    Rdd parallelize(const RecordVec &input);

    const RddConfig &config() const { return cfg; }

  private:
    friend class Rdd;

    RecordVec execute(RunEnv &env, Tracer &t,
                      const std::shared_ptr<Rdd::Node> &node);
    RecordVec runStage(RunEnv &env, Tracer &t,
                       const std::shared_ptr<Rdd::Node> &node);
    std::vector<RecordVec> shufflePartition(RunEnv &env, Tracer &t,
                                            RecordVec &&records);
    void gcTick(Tracer &t, uint64_t amount);
    void assignAddr(Record &r);

    RddConfig cfg;

    FunctionId sparkContextSubmit;
    FunctionId dagScheduler;
    FunctionId taskScheduler;
    FunctionId executorLaunch;
    FunctionId iteratorNext;
    FunctionId closureDispatch;
    FunctionId serializerWrite;
    FunctionId serializerRead;
    FunctionId shuffleWrite;
    FunctionId shuffleRead;
    FunctionId externalAppendMerge;
    FunctionId sortWithinPartition;
    FunctionId compareKeys;
    FunctionId blockManagerPut;
    FunctionId blockManagerGet;
    FunctionId gcMinor;
    FunctionId scalaRuntime;

    bool buffersReady = false;
    HeapRegion shuffleBuffer;
    HeapRegion cacheBuffer;
    uint64_t shuffleCursor = 0;
    uint64_t gcCounter = 0;
};

} // namespace wcrt

#endif // WCRT_STACK_RDD_ENGINE_HH
