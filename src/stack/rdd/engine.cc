#include "stack/rdd/engine.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "base/strings.hh"
#include "trace/idioms.hh"

namespace wcrt {

/** One lineage node. */
struct Rdd::Node
{
    enum class Kind : uint8_t {
        Source,
        Map,
        Filter,
        ReduceByKey,
        GroupByKey,
        SortByKey,
        Cache,
    };

    Kind kind = Kind::Source;
    std::string name;
    std::shared_ptr<Node> parent;

    // Only the member matching `kind` is set.
    const RecordVec *source = nullptr;
    RddMapFn mapFn;
    RddFilterFn filterFn;
    RddCombineFn combineFn;

    // Cache state (filled on first materialization of a Cache node).
    bool cached = false;
    RecordVec cachedRecords;
};

namespace {

uint32_t
scaledSize(double scale, uint32_t bytes)
{
    auto v = static_cast<uint32_t>(bytes * scale);
    return std::max<uint32_t>(v, 64);
}

} // namespace

Rdd::Rdd(RddEngine *engine, std::shared_ptr<Node> node)
    : engine(engine), node(std::move(node))
{
}

Rdd
Rdd::map(RddMapFn fn, const std::string &name) const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::Map;
    n->name = name;
    n->parent = node;
    n->mapFn = std::move(fn);
    return Rdd(engine, n);
}

Rdd
Rdd::filter(RddFilterFn fn, const std::string &name) const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::Filter;
    n->name = name;
    n->parent = node;
    n->filterFn = std::move(fn);
    return Rdd(engine, n);
}

Rdd
Rdd::reduceByKey(RddCombineFn fn) const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::ReduceByKey;
    n->name = "reduceByKey";
    n->parent = node;
    n->combineFn = std::move(fn);
    return Rdd(engine, n);
}

Rdd
Rdd::groupByKey() const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::GroupByKey;
    n->name = "groupByKey";
    n->parent = node;
    return Rdd(engine, n);
}

Rdd
Rdd::sortByKey() const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::SortByKey;
    n->name = "sortByKey";
    n->parent = node;
    return Rdd(engine, n);
}

Rdd
Rdd::cache() const
{
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::Cache;
    n->name = "cache";
    n->parent = node;
    return Rdd(engine, n);
}

RecordVec
Rdd::collect(RunEnv &env, Tracer &t) const
{
    return engine->execute(env, t, node);
}

uint64_t
Rdd::count(RunEnv &env, Tracer &t) const
{
    return engine->execute(env, t, node).size();
}

RddEngine::RddEngine(CodeLayout &layout, const RddConfig &config)
    : cfg(config)
{
    auto fw = [&](const char *name, uint32_t bytes, uint32_t overhead,
                  uint32_t rotation) {
        return layout.addFunction(std::string("spark.") + name,
                                  CodeLayer::Framework,
                                  scaledSize(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };
    auto rtf = [&](const char *name, uint32_t bytes, uint32_t overhead,
                   uint32_t rotation) {
        return layout.addFunction(std::string("scala.") + name,
                                  CodeLayer::Runtime,
                                  scaledSize(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };

    // Spark's executed code base is larger than Hadoop's (Scala
    // runtime + closures + block manager); calibrated to ~1.4 MB.
    sparkContextSubmit = fw("context.runJob", 112 * 1024, 1600, 4096);
    dagScheduler = fw("dagScheduler.submitStage", 96 * 1024, 1000, 4096);
    taskScheduler = fw("taskScheduler.resourceOffers", 72 * 1024, 600,
                       4096);
    executorLaunch = fw("executor.launchTask", 88 * 1024, 800, 4096);
    iteratorNext = fw("interruptibleIterator.next", 64 * 1024, 35, 96);
    closureDispatch = rtf("closure.apply", 72 * 1024, 30, 48);
    serializerWrite = fw("javaSerializer.write", 64 * 1024, 35, 48);
    serializerRead = fw("javaSerializer.read", 64 * 1024, 30, 48);
    shuffleWrite = fw("hashShuffleWriter.write", 80 * 1024, 45, 64);
    shuffleRead = fw("blockStoreShuffleFetcher.fetch", 88 * 1024, 60,
                     64);
    externalAppendMerge = fw("externalAppendOnlyMap.insert", 72 * 1024,
                             40, 48);
    sortWithinPartition = fw("sorter.insertAll", 64 * 1024, 400, 2048);
    compareKeys = fw("ordering.compare", 12 * 1024, 8, 16);
    blockManagerPut = fw("blockManager.putIterator", 72 * 1024, 60, 128);
    blockManagerGet = fw("blockManager.getLocal", 56 * 1024, 40, 128);
    gcMinor = rtf("gcMinor", 160 * 1024, 2600, 8192);
    scalaRuntime = rtf("boxing.conversions", 48 * 1024, 12, 32);
}

Rdd
RddEngine::parallelize(const RecordVec &input)
{
    auto n = std::make_shared<Rdd::Node>();
    n->kind = Rdd::Node::Kind::Source;
    n->name = "parallelize";
    n->source = &input;
    return Rdd(this, n);
}

void
RddEngine::gcTick(Tracer &t, uint64_t amount)
{
    gcCounter += amount;
    if (gcCounter >= cfg.gcEveryRecords) {
        gcCounter = 0;
        Tracer::Scope gc(t, gcMinor);
        t.loop(96, [&](uint64_t i) {
            t.intAlu(IntPurpose::IntAddress, 2);
            t.load(cacheBuffer.base + (i * 768) % cacheBuffer.bytes);
            t.intAlu(IntPurpose::Compute, 1);
        });
    }
}

void
RddEngine::assignAddr(Record &r)
{
    uint64_t need = std::max<uint64_t>(r.bytes(), 16);
    if (shuffleCursor + need > shuffleBuffer.bytes)
        shuffleCursor = 0;
    r.keyAddr = shuffleBuffer.base + shuffleCursor;
    r.valueAddr = shuffleBuffer.base + shuffleCursor + r.key.size();
    shuffleCursor += need;
}

std::vector<RecordVec>
RddEngine::shufflePartition(RunEnv &env, Tracer &t, RecordVec &&records)
{
    std::vector<RecordVec> parts(cfg.numPartitions);
    for (auto &rec : records) {
        Tracer::Scope sw(t, shuffleWrite);
        {
            Tracer::Scope se(t, serializerWrite);
            idioms::hashBytes(t, rec.keyAddr,
                              std::min<uint64_t>(rec.key.size(), 16));
            // Serialize the record payload into the shuffle buffer.
            idioms::copyBytes(t, rec.valueAddr,
                              shuffleBuffer.base + shuffleCursor,
                              std::min<uint64_t>(rec.bytes(), 4096));
        }
        size_t p = fnv1a(rec.key) % cfg.numPartitions;
        uint64_t bytes = rec.bytes();
        env.io.networkBytes +=
            bytes * (cfg.numPartitions - 1) / cfg.numPartitions;
        env.data.intermediateBytes += bytes;
        assignAddr(rec);
        parts[p].push_back(std::move(rec));
        gcTick(t, 1);
    }
    return parts;
}

RecordVec
RddEngine::runStage(RunEnv &env, Tracer &t,
                    const std::shared_ptr<Rdd::Node> &node)
{
    using Kind = Rdd::Node::Kind;

    // Collect the narrow chain of this stage (in execution order) and
    // find the stage input (source, cache hit, or wide parent).
    std::vector<Rdd::Node *> chain;
    Rdd::Node *cursor = node.get();
    while (cursor &&
           (cursor->kind == Kind::Map || cursor->kind == Kind::Filter)) {
        chain.push_back(cursor);
        cursor = cursor->parent.get();
    }
    std::reverse(chain.begin(), chain.end());

    RecordVec input;
    if (!cursor) {
        wcrt_panic("RDD lineage without a source");
    } else if (cursor->kind == Kind::Source) {
        input = *cursor->source;
        uint64_t bytes = totalBytes(input);
        env.io.diskReadBytes += bytes;
        env.data.inputBytes += bytes;
    } else if (cursor->kind == Kind::Cache) {
        if (cursor->cached) {
            Tracer::Scope get(t, blockManagerGet);
            input = cursor->cachedRecords;
        } else {
            input = execute(env, t, cursor->parent);
            Tracer::Scope put(t, blockManagerPut);
            cursor->cached = true;
            cursor->cachedRecords = input;
        }
    } else {
        // Wide dependency: materialize the parent (its own stages).
        input = execute(env, t,
                        std::shared_ptr<Rdd::Node>(node, cursor));
    }

    // Execute the fused narrow chain per record, stage-style.
    {
        Tracer::Scope submit(t, dagScheduler);
    }
    RecordVec out;
    size_t per_part =
        std::max<size_t>(input.size() / cfg.numPartitions, 1);
    size_t in_partition = 0;
    bool task_open = false;
    for (size_t i = 0; i < input.size(); ++i) {
        if (!task_open) {
            Tracer::Scope sched(t, taskScheduler);
            Tracer::Scope launch(t, executorLaunch);
            task_open = true;
        }
        RecordVec current;
        current.push_back(input[i]);
        {
            // Reading the source through the stage's iterator chain
            // costs one dispatch per record even for pass-through
            // stages (sort/shuffle inputs).
            Tracer::Scope it(t, iteratorNext);
        }
        for (Rdd::Node *op : chain) {
            RecordVec next;
            for (auto &rec : current) {
                Tracer::Scope it(t, iteratorNext);
                Tracer::Scope cd(t, closureDispatch, true);
                {
                    Tracer::Scope box(t, scalaRuntime);
                }
                if (op->kind == Kind::Map) {
                    op->mapFn(t, rec, next);
                } else if (op->filterFn(t, rec)) {
                    next.push_back(std::move(rec));
                }
            }
            current = std::move(next);
            if (current.empty())
                break;
        }
        for (auto &rec : current)
            out.push_back(std::move(rec));
        gcTick(t, 1);
        if (++in_partition >= per_part) {
            in_partition = 0;
            task_open = false;
        }
    }
    return out;
}

RecordVec
RddEngine::execute(RunEnv &env, Tracer &t,
                   const std::shared_ptr<Rdd::Node> &node)
{
    using Kind = Rdd::Node::Kind;

    if (!buffersReady) {
        shuffleBuffer = env.heap.alloc("spark.shuffleBuffer",
                                       6 * 1024 * 1024);
        cacheBuffer = env.heap.alloc("spark.blockManagerCache",
                                     8 * 1024 * 1024);
        buffersReady = true;
    }
    {
        Tracer::Scope submit(t, sparkContextSubmit);
    }

    switch (node->kind) {
      case Kind::Source:
      case Kind::Map:
      case Kind::Filter:
      case Kind::Cache:
        return runStage(env, t, node);

      case Kind::ReduceByKey: {
        RecordVec parent = execute(env, t, node->parent);
        auto parts = shufflePartition(env, t, std::move(parent));
        RecordVec out;
        for (auto &part : parts) {
            Tracer::Scope rd(t, shuffleRead);
            std::map<std::string, Record> agg;
            for (auto &rec : part) {
                Tracer::Scope ins(t, externalAppendMerge);
                {
                    Tracer::Scope de(t, serializerRead);
                }
                auto it = agg.find(rec.key);
                if (it == agg.end()) {
                    agg.emplace(rec.key, std::move(rec));
                } else {
                    Tracer::Scope cd(t, closureDispatch, true);
                    it->second =
                        node->combineFn(t, it->second, rec);
                }
                gcTick(t, 1);
            }
            for (auto &[key, rec] : agg)
                out.push_back(std::move(rec));
        }
        env.data.outputBytes = totalBytes(out);
        return out;
      }

      case Kind::GroupByKey: {
        RecordVec parent = execute(env, t, node->parent);
        auto parts = shufflePartition(env, t, std::move(parent));
        RecordVec out;
        for (auto &part : parts) {
            Tracer::Scope rd(t, shuffleRead);
            std::map<std::string, RecordVec> groups;
            for (auto &rec : part) {
                Tracer::Scope ins(t, externalAppendMerge);
                groups[rec.key].push_back(std::move(rec));
                gcTick(t, 1);
            }
            for (auto &[key, members] : groups) {
                Record merged;
                merged.key = key;
                merged.value = std::to_string(members.size());
                assignAddr(merged);
                out.push_back(std::move(merged));
            }
        }
        env.data.outputBytes = totalBytes(out);
        return out;
      }

      case Kind::SortByKey: {
        RecordVec parent = execute(env, t, node->parent);
        auto parts = shufflePartition(env, t, std::move(parent));
        RecordVec out;
        for (auto &part : parts) {
            Tracer::Scope so(t, sortWithinPartition);
            std::sort(part.begin(), part.end(),
                      [&](const Record &a, const Record &b) {
                          Tracer::Scope cmp(t, compareKeys);
                          idioms::compareBytes(
                              t, a.keyAddr, b.keyAddr,
                              std::min<uint64_t>(
                                  std::min(a.key.size(), b.key.size()),
                                  8) + 1);
                          return a.key < b.key;
                      });
            for (auto &rec : part)
                out.push_back(std::move(rec));
        }
        env.data.outputBytes = totalBytes(out);
        return out;
      }
    }
    wcrt_panic("unreachable RDD kind");
}

} // namespace wcrt
