#include "stack/record.hh"

namespace wcrt {

uint64_t
totalBytes(const RecordVec &records)
{
    uint64_t sum = 0;
    for (const auto &r : records)
        sum += r.bytes();
    return sum;
}

} // namespace wcrt
