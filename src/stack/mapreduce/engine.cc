#include "stack/mapreduce/engine.hh"

#include <algorithm>
#include <map>

#include "base/strings.hh"
#include "trace/idioms.hh"

namespace wcrt {

namespace {

/** Scale a code size by the config's ablation factor. */
uint32_t
scaled(double scale, uint32_t bytes)
{
    auto v = static_cast<uint32_t>(bytes * scale);
    return std::max<uint32_t>(v, 64);
}

} // namespace

MapReduceEngine::MapReduceEngine(CodeLayout &layout,
                                 const MapReduceConfig &config)
    : cfg(config)
{
    auto fw = [&](const char *name, uint32_t bytes, uint32_t overhead,
                  uint32_t rotation) {
        return layout.addFunction(std::string("hadoop.") + name,
                                  CodeLayer::Framework,
                                  scaled(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };
    auto rt = [&](const char *name, uint32_t bytes, uint32_t overhead,
                  uint32_t rotation) {
        return layout.addFunction(std::string("jvm.") + name,
                                  CodeLayer::Runtime,
                                  scaled(cfg.codeScale, bytes),
                                  CallProfile{overhead, rotation});
    };

    // Sizes are calibrated to a ~1.1 MB framework instruction working
    // set (the paper's Section 5.4 Hadoop footprint), spread over the
    // execution path so per-record processing touches many regions.
    jobSubmit = fw("jobSubmit", 96 * 1024, 1500, 4096);
    taskLaunch = fw("taskLaunch", 80 * 1024, 900, 4096);
    heartbeat = fw("taskTracker.heartbeat", 48 * 1024, 300, 2048);
    splitReader = fw("splitReader.open", 40 * 1024, 400, 2048);
    recordReaderNext = fw("lineRecordReader.next", 56 * 1024, 50, 64);
    deserialize = fw("writable.deserialize", 48 * 1024, 30, 64);
    mapRunner = fw("mapRunner.run", 64 * 1024, 35, 64);
    collectorCollect = fw("outputCollector.collect", 72 * 1024, 40, 64);
    partitioner = fw("hashPartitioner.getPartition", 16 * 1024, 12, 32);
    spillSort = fw("spill.sortAndSpill", 64 * 1024, 500, 2048);
    compareKeys = fw("writableComparator.compare", 12 * 1024, 8, 16);
    ifileWrite = fw("ifile.append", 56 * 1024, 35, 64);
    shuffleFetch = fw("shuffle.fetchOutputs", 88 * 1024, 700, 4096);
    mergeIterator = fw("merger.next", 56 * 1024, 35, 64);
    reduceRunner = fw("reduceRunner.run", 64 * 1024, 35, 64);
    valuesIterator = fw("valuesIterator.next", 40 * 1024, 20, 32);
    serialize = fw("writable.serialize", 44 * 1024, 25, 64);
    outputWrite = fw("recordWriter.write", 56 * 1024, 35, 64);
    gcMinor = rt("gcMinor", 128 * 1024, 2200, 8192);
    jitCompile = rt("jitWarmup", 96 * 1024, 1800, 8192);
}

void
MapReduceEngine::gcTick(Tracer &t, uint64_t &counter, uint64_t amount)
{
    counter += amount;
    if (counter >= cfg.gcEveryRecords) {
        counter = 0;
        Tracer::Scope gc(t, gcMinor);
        // The collector walks a chunk of heap metadata.
        t.loop(64, [&](uint64_t i) {
            t.intAlu(IntPurpose::IntAddress, 2);
            t.load(mapOutputBuffer.base + (i * 512) %
                                             mapOutputBuffer.bytes);
            t.intAlu(IntPurpose::Compute, 1);
        });
    }
}

void
MapReduceEngine::assignBufferAddr(Record &r, HeapRegion &region,
                                  uint64_t &cursor) const
{
    uint64_t need = std::max<uint64_t>(r.bytes(), 16);
    if (cursor + need > region.bytes)
        cursor = 0;  // circular reuse, like a real serialization buffer
    r.keyAddr = region.base + cursor;
    r.valueAddr = region.base + cursor + r.key.size();
    cursor += need;
}

RecordVec
MapReduceEngine::run(RunEnv &env, Tracer &t, const RecordVec &input,
                     Mapper &mapper, Reducer &reducer)
{
    if (!buffersReady) {
        mapOutputBuffer = env.heap.alloc("hadoop.mapOutputBuffer",
                                         4 * 1024 * 1024);
        shuffleBuffer = env.heap.alloc("hadoop.shuffleBuffer",
                                       4 * 1024 * 1024);
        outputBuffer = env.heap.alloc("hadoop.outputBuffer",
                                      2 * 1024 * 1024);
        buffersReady = true;
    }

    uint64_t input_bytes = totalBytes(input);
    env.io.diskReadBytes += input_bytes;
    env.data.inputBytes += input_bytes;

    // --- Job submission and task launch. ---
    {
        Tracer::Scope s(t, jobSubmit);
        t.intAlu(IntPurpose::Compute, 40);
    }
    {
        Tracer::Scope s(t, jitCompile);
    }

    size_t num_splits =
        (input.size() + cfg.recordsPerSplit - 1) /
        std::max<uint32_t>(cfg.recordsPerSplit, 1);
    num_splits = std::max<size_t>(num_splits, 1);

    // Per-reducer partitions of intermediate data.
    std::vector<RecordVec> partitions(cfg.numReducers);
    uint64_t gc_counter = 0;
    uint64_t intermediate_bytes = 0;

    // --- Map phase. ---
    for (size_t split = 0; split < num_splits; ++split) {
        Tracer::Scope task(t, taskLaunch);
        {
            Tracer::Scope open(t, splitReader);
        }
        size_t begin = split * cfg.recordsPerSplit;
        size_t end = std::min(input.size(),
                              begin + cfg.recordsPerSplit);

        RecordVec spill_buffer;
        auto flush_spill = [&]() {
            if (spill_buffer.empty())
                return;
            Tracer::Scope sp(t, spillSort);
            // Genuine sort of the buffered keys; the comparator emits
            // the actual byte-compare work.
            std::sort(spill_buffer.begin(), spill_buffer.end(),
                      [&](const Record &a, const Record &b) {
                          Tracer::Scope cmp(t, compareKeys);
                          size_t n = std::min(a.key.size(),
                                              b.key.size());
                          size_t same = 0;
                          while (same < n && a.key[same] == b.key[same])
                              ++same;
                          idioms::compareBytes(t, a.keyAddr, b.keyAddr,
                                               std::min<uint64_t>(
                                                   same + 1, n ? n : 1));
                          return a.key < b.key;
                      });
            if (cfg.useCombiner) {
                // Map-side combine: run the reducer over each sorted
                // key group before anything is spilled, shrinking the
                // intermediate data the way real Hadoop jobs do.
                RecordVec combined;
                size_t i = 0;
                while (i < spill_buffer.size()) {
                    size_t j = i;
                    while (j < spill_buffer.size() &&
                           spill_buffer[j].key == spill_buffer[i].key)
                        ++j;
                    RecordVec group(
                        spill_buffer.begin() + static_cast<long>(i),
                        spill_buffer.begin() + static_cast<long>(j));
                    reducer.reduce(t, spill_buffer[i].key, group,
                                   combined);
                    i = j;
                }
                spill_buffer = std::move(combined);
            }
            for (auto &rec : spill_buffer) {
                Tracer::Scope wr(t, ifileWrite);
                idioms::copyBytes(t, rec.keyAddr, shuffleBuffer.base,
                                  rec.bytes());
                env.io.diskWriteBytes += rec.bytes();
                intermediate_bytes += rec.bytes();
                size_t part = fnv1a(rec.key) % cfg.numReducers;
                partitions[part].push_back(std::move(rec));
            }
            spill_buffer.clear();
        };

        for (size_t i = begin; i < end; ++i) {
            {
                Tracer::Scope hb_maybe(t, recordReaderNext);
            }
            {
                Tracer::Scope de(t, deserialize);
                idioms::copyBytes(t, input[i].keyAddr,
                                  mapOutputBuffer.base,
                                  std::min<uint64_t>(input[i].bytes(),
                                                     256));
            }
            RecordVec out;
            {
                Tracer::Scope mr(t, mapRunner);
                mapper.map(t, input[i], out);
            }
            for (auto &rec : out) {
                Tracer::Scope col(t, collectorCollect);
                assignBufferAddr(rec, mapOutputBuffer, mapBufCursor);
                {
                    Tracer::Scope pt(t, partitioner);
                    idioms::hashBytes(t, rec.keyAddr,
                                      std::min<uint64_t>(rec.key.size(),
                                                         16));
                }
                spill_buffer.push_back(std::move(rec));
                if (spill_buffer.size() >= cfg.sortBufferRecords)
                    flush_spill();
            }
            gcTick(t, gc_counter, 1);
        }
        flush_spill();
        {
            Tracer::Scope hb(t, heartbeat);
        }
    }

    env.data.intermediateBytes += intermediate_bytes;

    // --- Shuffle + reduce phase. ---
    RecordVec output;
    for (uint32_t r = 0; r < cfg.numReducers; ++r) {
        Tracer::Scope task(t, taskLaunch);
        {
            Tracer::Scope sh(t, shuffleFetch);
            // Remote fetch: ~ (numReducers-1)/numReducers of the
            // partition crosses the network.
            uint64_t part_bytes = totalBytes(partitions[r]);
            env.io.networkBytes +=
                part_bytes * (cfg.numReducers - 1) / cfg.numReducers;
        }

        // Merge: records arrive spill-sorted per map task; the merge
        // is modelled as a full instrumented sort of the partition
        // (equivalent comparison volume for k sorted runs).
        auto &part = partitions[r];
        {
            Tracer::Scope mg(t, mergeIterator);
            std::sort(part.begin(), part.end(),
                      [&](const Record &a, const Record &b) {
                          Tracer::Scope cmp(t, compareKeys);
                          idioms::compareBytes(
                              t, a.keyAddr, b.keyAddr,
                              std::min<uint64_t>(
                                  std::min(a.key.size(), b.key.size()),
                                  8) + 1);
                          return a.key < b.key;
                      });
        }

        // Group by key and reduce.
        size_t i = 0;
        while (i < part.size()) {
            size_t j = i;
            while (j < part.size() && part[j].key == part[i].key)
                ++j;
            RecordVec values(part.begin() + static_cast<long>(i),
                             part.begin() + static_cast<long>(j));
            for (size_t k = 0; k < values.size(); ++k) {
                Tracer::Scope vi(t, valuesIterator);
            }
            RecordVec reduced;
            {
                Tracer::Scope rr(t, reduceRunner);
                reducer.reduce(t, part[i].key, values, reduced);
            }
            for (auto &rec : reduced) {
                {
                    Tracer::Scope se(t, serialize);
                    assignBufferAddr(rec, outputBuffer, outBufCursor);
                }
                Tracer::Scope ow(t, outputWrite);
                idioms::copyBytes(t, rec.keyAddr, outputBuffer.base,
                                  rec.bytes());
                env.io.diskWriteBytes += rec.bytes();
                output.push_back(std::move(rec));
            }
            gcTick(t, gc_counter, j - i);
            i = j;
        }
    }

    env.data.outputBytes += totalBytes(output);
    return output;
}

} // namespace wcrt
