/**
 * @file
 * Hadoop-flavoured MapReduce engine.
 *
 * A faithful miniature of the Hadoop 1.x execution path: input splits,
 * a record reader, per-record deserialization, the map output
 * collector with sort-and-spill, hash partitioning, shuffle with merge
 * sort, grouped reduce and an output writer — plus the JVM-like
 * runtime services (GC, JIT warmup) that periodically sweep large code
 * regions. The framework's static code size (~1.1 MB across ~20
 * functions) and per-record overhead walks are what give Hadoop
 * workloads their large instruction footprint in the cache model; the
 * sort/merge/hash work is executed for real on the record keys so the
 * data-dependent part of the trace is genuine.
 */

#ifndef WCRT_STACK_MAPREDUCE_ENGINE_HH
#define WCRT_STACK_MAPREDUCE_ENGINE_HH

#include <string>

#include "stack/record.hh"
#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

/** User-supplied map function. */
class Mapper
{
  public:
    virtual ~Mapper() = default;

    /** Register the kernel's code regions before tracing starts. */
    virtual void registerCode(CodeLayout &layout) = 0;

    /**
     * Process one input record, emitting zero or more intermediate
     * records via `out`.
     */
    virtual void map(Tracer &t, const Record &in, RecordVec &out) = 0;
};

/** User-supplied reduce function. */
class Reducer
{
  public:
    virtual ~Reducer() = default;

    virtual void registerCode(CodeLayout &layout) = 0;

    /**
     * Fold all values of one key into zero or more output records.
     */
    virtual void reduce(Tracer &t, const std::string &key,
                        const RecordVec &values, RecordVec &out) = 0;
};

/** Engine tunables. */
struct MapReduceConfig
{
    uint32_t recordsPerSplit = 2048;   //!< input split granularity
    uint32_t numReducers = 4;
    uint32_t sortBufferRecords = 4096; //!< spill threshold
    uint32_t gcEveryRecords = 3000;    //!< minor-GC cadence
    bool useCombiner = false;          //!< run the reducer map-side

    /** Scales all framework code sizes (ablation hook). */
    double codeScale = 1.0;
};

/**
 * The engine. Construct against the run's code layout (registers all
 * framework functions), then run jobs.
 */
class MapReduceEngine
{
  public:
    MapReduceEngine(CodeLayout &layout,
                    const MapReduceConfig &config = {});

    /**
     * Execute one job.
     *
     * @param env Run environment (I/O and data accounting).
     * @param t Tracer bound to the same layout.
     * @param input Input records (addresses already assigned).
     * @param mapper Map-side kernel.
     * @param reducer Reduce-side kernel.
     * @return The job's output records.
     */
    RecordVec run(RunEnv &env, Tracer &t, const RecordVec &input,
                  Mapper &mapper, Reducer &reducer);

    const MapReduceConfig &config() const { return cfg; }

  private:
    void gcTick(Tracer &t, uint64_t &counter, uint64_t amount);
    void assignBufferAddr(Record &r, HeapRegion &region,
                          uint64_t &cursor) const;

    MapReduceConfig cfg;

    // Framework functions, in rough call order.
    FunctionId jobSubmit;
    FunctionId taskLaunch;
    FunctionId heartbeat;
    FunctionId splitReader;
    FunctionId recordReaderNext;
    FunctionId deserialize;
    FunctionId mapRunner;
    FunctionId collectorCollect;
    FunctionId partitioner;
    FunctionId spillSort;
    FunctionId compareKeys;
    FunctionId ifileWrite;
    FunctionId shuffleFetch;
    FunctionId mergeIterator;
    FunctionId reduceRunner;
    FunctionId valuesIterator;
    FunctionId serialize;
    FunctionId outputWrite;
    FunctionId gcMinor;
    FunctionId jitCompile;

    bool buffersReady = false;
    HeapRegion mapOutputBuffer;
    HeapRegion shuffleBuffer;
    HeapRegion outputBuffer;
    uint64_t mapBufCursor = 0;
    uint64_t shuffleBufCursor = 0;
    uint64_t outBufCursor = 0;
};

} // namespace wcrt

#endif // WCRT_STACK_MAPREDUCE_ENGINE_HH
