#include "baselines/baselines.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "base/rng.hh"
#include "trace/idioms.hh"
#include "workloads/kernels.hh"

namespace wcrt {

const char *
toString(BaselineSuite suite)
{
    switch (suite) {
      case BaselineSuite::SpecInt:
        return "SPECINT";
      case BaselineSuite::SpecFp:
        return "SPECFP";
      case BaselineSuite::Parsec:
        return "PARSEC";
      case BaselineSuite::Hpcc:
        return "HPCC";
      case BaselineSuite::CloudSuite:
        return "CloudSuite";
      case BaselineSuite::TpcC:
        return "TPC-C";
    }
    return "?";
}

namespace {

/** Common scaffolding for the baseline kernels. */
class BaselineWorkload : public Workload
{
  public:
    BaselineWorkload(std::string name, double scale)
        : workloadName(std::move(name)), scale(scale)
    {
    }

    std::string name() const override { return workloadName; }
    AppCategory category() const override
    {
        return AppCategory::DataAnalysis;
    }
    StackKind stack() const override { return StackKind::Mpi; }

  protected:
    /** Scaled iteration count. */
    uint64_t
    scaled(uint64_t base) const
    {
        return std::max<uint64_t>(
            static_cast<uint64_t>(static_cast<double>(base) * scale), 1);
    }

    std::string workloadName;
    double scale;
};

// ---------------------------------------------------------------------
// SPECFP-like: DGEMM block + 5-point stencil.
// ---------------------------------------------------------------------

class SpecFpLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        n = static_cast<uint32_t>(
            std::max<uint64_t>(scaled(128), 112));
        a.assign(static_cast<size_t>(n) * n, 1.0);
        b.assign(static_cast<size_t>(n) * n, 2.0);
        c.assign(static_cast<size_t>(n) * n, 0.0);
        matRegion = env.heap.alloc("specfp.matrices",
                                   3ull * n * n * 8);
        kernelFn = env.layout.addFunction("specfp.dgemm",
                                          CodeLayer::Application, 1024);
        stencilFn = env.layout.addFunction(
            "specfp.stencil", CodeLayer::Application, 768);
        latticeFn = env.layout.addFunction(
            "specfp.lattice", CodeLayer::Application, 1280);
        latticeRegion = env.heap.alloc("specfp.lattice",
                                       4ull * 1024 * 1024);
        env.io.diskReadBytes += 3ull * n * n * 8;
        env.data.inputBytes += 3ull * n * n * 8;
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        uint64_t A = matRegion.base;
        uint64_t B = A + static_cast<uint64_t>(n) * n * 8;
        uint64_t C = B + static_cast<uint64_t>(n) * n * 8;

        {
            // Blocked DGEMM with real arithmetic; the inner loop is a
            // long FP basic block, the SPECFP signature.
            Tracer::Scope fn(t, kernelFn);
            t.loop(n, [&](uint64_t i) {
                t.loop(n, [&](uint64_t j) {
                    double acc = 0.0;
                    t.loop(n, [&](uint64_t k) {
                        t.intAlu(IntPurpose::FpAddress, 2);
                        t.load(A + (i * n + k) * 8, 8);
                        t.load(B + (k * n + j) * 8, 8);
                        t.fpMul(1);
                        t.fpAlu(1);
                        acc += a[i * n + k] * b[k * n + j];
                    });
                    t.intAlu(IntPurpose::FpAddress, 1);
                    t.store(C + (i * n + j) * 8, 8);
                    c[i * n + j] = acc;
                });
            });
        }
        {
            // 5-point stencil sweep over C.
            Tracer::Scope fn(t, stencilFn);
            t.loop(n - 2, [&](uint64_t i) {
                t.loop(n - 2, [&](uint64_t j) {
                    uint64_t center = C + ((i + 1) * n + j + 1) * 8;
                    t.intAlu(IntPurpose::FpAddress, 4);
                    t.load(center, 8);
                    t.load(center - 8, 8);
                    t.load(center + 8, 8);
                    t.load(center - n * 8, 8);
                    t.load(center + n * 8, 8);
                    t.fpAlu(5);
                    t.fpMul(2);
                    t.fpDiv(1);
                    t.store(center, 8);
                });
            });
        }
        {
            // lbm/milc-flavoured lattice update: neighbour accesses at
            // multi-line strides defeat the stream prefetcher, the
            // SPEC FP memory-bound signature.
            Tracer::Scope fn(t, latticeFn);
            uint64_t cells = scaled(25000);
            t.loop(cells, [&](uint64_t cell) {
                uint64_t base =
                    latticeRegion.base + (cell * 320) %
                                             latticeRegion.bytes;
                t.intAlu(IntPurpose::FpAddress, 3);
                t.load(base, 8);
                t.load((base + 131072) % (latticeRegion.base +
                                          latticeRegion.bytes),
                       8);
                t.load((base + 262144) % (latticeRegion.base +
                                          latticeRegion.bytes),
                       8);
                t.fpMul(2);
                t.fpAlu(3);
                t.store(base, 8);
            });
        }
        env.io.diskWriteBytes += static_cast<uint64_t>(n) * n * 8;
        env.data.outputBytes += static_cast<uint64_t>(n) * n * 8;
    }

  private:
    uint32_t n = 64;
    std::vector<double> a, b, c;
    HeapRegion matRegion;
    HeapRegion latticeRegion;
    FunctionId kernelFn, stencilFn, latticeFn;
};

// ---------------------------------------------------------------------
// SPECINT-like: pointer chase + compression-style byte loop.
// ---------------------------------------------------------------------

class SpecIntLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        // A random cyclic permutation: the classic pointer-chase
        // working set, far larger than L2.
        nodes = static_cast<uint32_t>(scaled(24000));
        next.resize(nodes);
        std::iota(next.begin(), next.end(), 0u);
        Rng rng(17);
        rng.shuffle(next);
        chaseRegion = env.heap.alloc("specint.chase",
                                     static_cast<uint64_t>(nodes) * 8);

        text.clear();
        Rng trng(19);
        for (uint64_t i = 0; i < scaled(200000); ++i) {
            // Runs of repeated bytes — compressible, branchy input.
            char ch = static_cast<char>('a' + trng.nextBelow(8));
            uint64_t run = 1 + trng.nextBelow(6);
            text.append(run, ch);
        }
        textRegion = env.heap.alloc("specint.text", text.size());

        chaseFn = env.layout.addFunction("specint.chase",
                                         CodeLayer::Application, 512);
        rleFn = env.layout.addFunction("specint.rle",
                                       CodeLayer::Application, 1024);
        env.io.diskReadBytes += text.size();
        env.data.inputBytes += text.size();
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        {
            // Pointer chase: serially dependent integer loads.
            Tracer::Scope fn(t, chaseFn);
            uint32_t cursor = 0;
            t.loop(scaled(150000), [&](uint64_t) {
                t.intAlu(IntPurpose::IntAddress, 1);
                t.load(chaseRegion.base + cursor * 8ull, 8);
                t.intAlu(IntPurpose::Compute, 1);
                cursor = next[cursor];
            });
        }
        uint64_t out_bytes = 0;
        {
            // Run-length encoding over the real text, one iteration
            // per run (the scan-for-run-end is word-batched the way a
            // compiled encoder works).
            Tracer::Scope fn(t, rleFn);
            uint64_t emitted = 0;
            size_t k = 0;
            while (k < text.size()) {
                size_t run = 1;
                while (k + run < text.size() &&
                       text[k + run] == text[k])
                    ++run;
                t.intAlu(IntPurpose::IntAddress, 1);
                t.load(textRegion.addr(k), 8);
                t.intAlu(IntPurpose::Compute,
                         static_cast<uint32_t>(run / 8 + 1));
                t.branchForward(run > 4, 16);
                t.intAlu(IntPurpose::Compute, 2);
                t.store(textRegion.addr(emitted % text.size()), 2);
                emitted += 2;
                k += run;
            }
            out_bytes = emitted;
        }
        env.io.diskWriteBytes += out_bytes;
        env.data.outputBytes += out_bytes;
    }

  private:
    uint32_t nodes = 0;
    std::vector<uint32_t> next;
    std::string text;
    HeapRegion chaseRegion, textRegion;
    FunctionId chaseFn, rleFn;
};

// ---------------------------------------------------------------------
// PARSEC-like: Black-Scholes formula + streamcluster distance loops.
// ---------------------------------------------------------------------

class ParsecLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        options = scaled(8000);
        points = scaled(1500);
        optRegion = env.heap.alloc("parsec.options", options * 40);
        ptRegion = env.heap.alloc("parsec.points", points * 64);
        bsFn = env.layout.addFunction(
            "parsec.blackscholes", CodeLayer::Application, 24 * 1024,
            CallProfile{60, 128});
        scFn = env.layout.addFunction(
            "parsec.streamcluster", CodeLayer::Application, 16 * 1024,
            CallProfile{50, 128});
        // PARSEC binaries carry a moderate runtime (pthreads, libm):
        // ~96 KB of framework-ish code touched at task boundaries.
        runtimeFn = env.layout.addFunction(
            "parsec.runtime", CodeLayer::Library, 96 * 1024,
            CallProfile{2000, 4096});
        // libm transcendentals: called per option, cycling a ~24 KB
        // code range — the bulk of PARSEC's ~128 KB hot footprint.
        mathFn = env.layout.addFunction(
            "parsec.libm.exp_log", CodeLayer::Library, 24 * 1024,
            CallProfile{25, 96});
        env.io.diskReadBytes += options * 40 + points * 64;
        env.data.inputBytes += options * 40 + points * 64;
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        // Black-Scholes: straight-line FP formula per option, in
        // pthread-task batches through the runtime. Like the real
        // benchmark, the whole option set is evaluated NUM_RUNS
        // times, so the data working set is reused.
        uint64_t batch = 4096;
        for (int run = 0; run < 12; ++run)
        for (uint64_t begin = 0; begin < options; begin += batch) {
            Tracer::Scope rt(t, runtimeFn);
            Tracer::Scope fn(t, bsFn);
            uint64_t count = std::min(batch, options - begin);
            t.loop(count, [&](uint64_t i) {
                t.intAlu(IntPurpose::FpAddress, 2);
                t.load(optRegion.base +
                           ((begin + i) * 40) % optRegion.bytes,
                       8);
                t.load(optRegion.base +
                           ((begin + i) * 40 + 16) % optRegion.bytes,
                       8);
                t.intAlu(IntPurpose::Compute, 2);
                {
                    // exp/log polynomial evaluation: a serial FP
                    // dependency chain.
                    Tracer::Scope libm(t, mathFn);
                    t.fpMul(5);
                    t.fpAlu(7);
                }
                t.fpMul(3);
                t.fpAlu(4);
                t.fpDiv(2);
                t.store(optRegion.base +
                            ((begin + i) * 40 + 32) % optRegion.bytes,
                        8);
            });
        }
        {
            // streamcluster: distance of each point to 8 medians.
            // Three gain-evaluation passes, sequential like the real
            // kernel, with occasional random reassignment probes.
            for (int pass = 0; pass < 6; ++pass) {
                Tracer::Scope rt(t, runtimeFn);
                Tracer::Scope fn(t, scFn);
                t.loop(points, [&](uint64_t p) {
                    t.loop(8, [&](uint64_t m) {
                        t.intAlu(IntPurpose::FpAddress, 2);
                        t.load(ptRegion.base + (p * 64) %
                                   ptRegion.bytes,
                               8);
                        t.load(ptRegion.base + (m * 64) %
                                   ptRegion.bytes,
                               8);
                        t.intAlu(IntPurpose::Compute, 1);
                        t.fpAlu(1);
                        t.fpMul(1);
                    });
                    bool reassign = (p & 7) == 0;
                    t.branchForward(reassign, 24);
                    if (reassign) {
                        uint64_t other = (p * 2654435761ull) % points;
                        t.load(ptRegion.base + (other * 64) %
                                   ptRegion.bytes,
                               8);
                        t.fpAlu(1);
                    }
                });
            }
        }
        env.io.diskWriteBytes += options * 8;
        env.data.outputBytes += options * 8;
    }

  private:
    uint64_t options = 0;
    uint64_t points = 0;
    HeapRegion optRegion, ptRegion;
    FunctionId bsFn, scFn, runtimeFn, mathFn;
};

// ---------------------------------------------------------------------
// HPCC: DGEMM / STREAM / RandomAccess / FFT flavours in one run.
// ---------------------------------------------------------------------

class HpccLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        n = static_cast<uint32_t>(std::max<uint64_t>(scaled(88), 72));
        streamElems = scaled(500000);
        gups = scaled(10000);
        fftElems = 1u << 13;
        matRegion = env.heap.alloc("hpcc.matrices", 3ull * n * n * 8);
        streamRegion = env.heap.alloc("hpcc.stream", streamElems * 24);
        gupsRegion = env.heap.alloc("hpcc.table", 32ull * 1024 * 1024);
        fftRegion = env.heap.alloc("hpcc.fft", fftElems * 16);
        dgemmFn = env.layout.addFunction("hpcc.dgemm",
                                         CodeLayer::Application, 1024);
        streamFn = env.layout.addFunction("hpcc.streamTriad",
                                          CodeLayer::Application, 512);
        gupsFn = env.layout.addFunction("hpcc.randomAccess",
                                        CodeLayer::Application, 512);
        fftFn = env.layout.addFunction("hpcc.fft",
                                       CodeLayer::Application, 1536);
        env.io.diskReadBytes += streamElems * 16;
        env.data.inputBytes += streamElems * 16;
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        {
            Tracer::Scope fn(t, dgemmFn);
            t.loop(n, [&](uint64_t i) {
                t.loop(n, [&](uint64_t j) {
                    t.loop(n, [&](uint64_t k) {
                        t.intAlu(IntPurpose::FpAddress, 2);
                        t.load(matRegion.base + (i * n + k) * 8, 8);
                        // HPL keeps B transposed so the inner
                        // loop streams both operands.
                        t.load(matRegion.base +
                                   (n * n + j * n + k) * 8,
                               8);
                        t.fpMul(1);
                        t.fpAlu(1);
                    });
                    t.store(matRegion.base + (2 * n * n + i * n + j) * 8,
                            8);
                });
            });
        }
        {
            // STREAM triad: a[i] = b[i] + s * c[i].
            Tracer::Scope fn(t, streamFn);
            t.loop(streamElems, [&](uint64_t i) {
                t.intAlu(IntPurpose::FpAddress, 3);
                t.load(streamRegion.base + i * 8, 8);
                t.load(streamRegion.base + streamElems * 8 + i * 8, 8);
                t.fpMul(1);
                t.fpAlu(1);
                t.store(streamRegion.base + streamElems * 16 + i * 8,
                        8);
            });
        }
        {
            // RandomAccess: XOR updates at random table slots.
            Tracer::Scope fn(t, gupsFn);
            Rng rng(23);
            t.loop(gups, [&](uint64_t) {
                uint64_t slot = rng.nextBelow(gupsRegion.bytes / 8);
                t.intAlu(IntPurpose::IntAddress, 2);
                t.load(gupsRegion.base + slot * 8, 8);
                t.intAlu(IntPurpose::Compute, 1);
                t.store(gupsRegion.base + slot * 8, 8);
            });
        }
        {
            // FFT butterflies: log2(n) passes of strided FP work.
            Tracer::Scope fn(t, fftFn);
            for (uint32_t stride = 1; stride < fftElems; stride <<= 1) {
                t.loop(fftElems / 2, [&](uint64_t i) {
                    uint64_t a = (i * 2) % fftElems;
                    uint64_t b = (a + stride) % fftElems;
                    t.intAlu(IntPurpose::FpAddress, 2);
                    t.load(fftRegion.base + a * 16, 16);
                    t.load(fftRegion.base + b * 16, 16);
                    t.fpMul(4);
                    t.fpAlu(6);
                    t.store(fftRegion.base + a * 16, 16);
                    t.store(fftRegion.base + b * 16, 16);
                });
            }
        }
        env.io.diskWriteBytes += streamElems * 8;
        env.data.outputBytes += streamElems * 8;
    }

  private:
    uint32_t n = 0;
    uint64_t streamElems = 0;
    uint64_t gups = 0;
    uint32_t fftElems = 0;
    HeapRegion matRegion, streamRegion, gupsRegion, fftRegion;
    FunctionId dgemmFn, streamFn, gupsFn, fftFn;
};

// ---------------------------------------------------------------------
// CloudSuite-like: scale-out service with huge stochastic handlers.
// ---------------------------------------------------------------------

class CloudSuiteLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        requests = scaled(9000);
        pages = scaled(20000);
        pageRegion = env.heap.alloc("cloudsuite.pages", pages * 2048);
        listener = env.layout.addFunction(
            "cloudsuite.listener", CodeLayer::Framework, 128 * 1024,
            CallProfile{350, 8192});
        for (int h = 0; h < 8; ++h) {
            handlers.push_back(env.layout.addFunction(
                "cloudsuite.handler." + std::to_string(h),
                CodeLayer::Framework, 144 * 1024,
                CallProfile{450, 4096}));
        }
        render = env.layout.addFunction(
            "cloudsuite.render", CodeLayer::Framework, 96 * 1024,
            CallProfile{250, 8192});
        env.data.inputBytes += pages * 2048;
        env.io.diskReadBytes += pages * 2048;
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        Rng rng(29);
        ZipfSampler zipf(pages, 0.8);
        for (uint64_t r = 0; r < requests; ++r) {
            Tracer::Scope lis(t, listener);
            Tracer::Scope handler(t, handlers[r % handlers.size()],
                                  true);
            uint64_t page = zipf.sample(rng);
            idioms::hashBytes(t, pageRegion.base + page * 2048, 16);
            idioms::copyBytes(t, pageRegion.base + page * 2048,
                              pageRegion.base + page * 2048, 512);
            {
                Tracer::Scope re(t, render);
                t.loop(24, [&](uint64_t i) {
                    t.intAlu(IntPurpose::IntAddress, 2);
                    t.load(pageRegion.base + page * 2048 + i * 64, 8);
                    t.intAlu(IntPurpose::Compute, 1);
                });
            }
            env.io.networkBytes += 2048;
            env.data.outputBytes += 2048;
        }
    }

  private:
    uint64_t requests = 0;
    uint64_t pages = 0;
    HeapRegion pageRegion;
    FunctionId listener, render;
    std::vector<FunctionId> handlers;
};

// ---------------------------------------------------------------------
// TPC-C-like: OLTP transactions over in-memory tables.
// ---------------------------------------------------------------------

class TpccLike : public BaselineWorkload
{
  public:
    using BaselineWorkload::BaselineWorkload;

    void
    setup(RunEnv &env) override
    {
        transactions = scaled(20000);
        items = 100000;
        itemRegion = env.heap.alloc("tpcc.items", items * 64);
        stockRegion = env.heap.alloc("tpcc.stock", items * 96);
        txnFn = env.layout.addFunction(
            "tpcc.newOrder", CodeLayer::Framework, 80 * 1024,
            CallProfile{250, 2048});
        lookupFn = env.layout.addFunction("tpcc.btreeLookup",
                                          CodeLayer::Application, 1024);
        updateFn = env.layout.addFunction("tpcc.rowUpdate",
                                          CodeLayer::Application, 768);
        env.data.inputBytes += items * 160;
        env.io.diskReadBytes += items * 160;
    }

    void
    execute(RunEnv &env, Tracer &t) override
    {
        Rng rng(31);
        for (uint64_t txn = 0; txn < transactions; ++txn) {
            Tracer::Scope tx(t, txnFn);
            uint64_t lines = 5 + rng.nextBelow(10);
            t.loop(lines, [&](uint64_t) {
                uint64_t item = rng.nextBelow(items);
                {
                    Tracer::Scope lk(t, lookupFn);
                    idioms::binarySearch(t, itemRegion.base, items, 64,
                                         17, true);
                }
                {
                    Tracer::Scope up(t, updateFn);
                    t.load(stockRegion.base + item * 96, 8);
                    t.intAlu(IntPurpose::Compute, 2);
                    // Validation checks: the OLTP branch storm.
                    t.branchForward(rng.nextBool(0.95), 16);
                    t.branchForward(rng.nextBool(0.05), 24);
                    t.store(stockRegion.base + item * 96, 8);
                }
            });
            env.io.diskWriteBytes += 256;  // redo log append
            env.data.outputBytes += 256;
        }
    }

  private:
    uint64_t transactions = 0;
    uint64_t items = 0;
    HeapRegion itemRegion, stockRegion;
    FunctionId txnFn, lookupFn, updateFn;
};

template <typename T>
BaselineEntry
entry(const char *name, BaselineSuite suite)
{
    return {name, suite, [name](double scale) -> WorkloadPtr {
                return std::make_unique<T>(name, scale);
            }};
}

} // namespace

const std::vector<BaselineEntry> &
baselineWorkloads()
{
    static const std::vector<BaselineEntry> entries = {
        entry<SpecIntLike>("SPECINT-like", BaselineSuite::SpecInt),
        entry<SpecFpLike>("SPECFP-like", BaselineSuite::SpecFp),
        entry<ParsecLike>("PARSEC-like", BaselineSuite::Parsec),
        entry<HpccLike>("HPCC-like", BaselineSuite::Hpcc),
        entry<CloudSuiteLike>("CloudSuite-like",
                              BaselineSuite::CloudSuite),
        entry<TpccLike>("TPC-C-like", BaselineSuite::TpcC),
    };
    return entries;
}

std::vector<BaselineEntry>
baselineSuite(BaselineSuite suite)
{
    std::vector<BaselineEntry> out;
    for (const auto &e : baselineWorkloads())
        if (e.suite == suite)
            out.push_back(e);
    return out;
}

} // namespace wcrt
