/**
 * @file
 * The comparison suites of Figures 1-5: SPECINT, SPECFP, PARSEC, HPCC,
 * CloudSuite and TPC-C stand-ins.
 *
 * The paper uses these suites as reference points; what matters for
 * the reproduction is each suite's class signature, which the kernels
 * below genuinely produce:
 *  - SPECFP-like: dense FP loops (DGEMM, stencil) — large basic
 *    blocks, high FP ratio, tiny code footprint.
 *  - SPECINT-like: pointer chasing, compression-style byte loops —
 *    integer dominated, branchy, data-cache hostile.
 *  - PARSEC-like: CMP compute kernels (Black-Scholes flavoured
 *    formula evaluation, streamcluster-flavoured distance loops) —
 *    ~128 KB instruction footprint, IPC around 1.3.
 *  - HPCC: DGEMM / STREAM / RandomAccess / FFT-flavoured kernels —
 *    the highest ILP of the comparison set.
 *  - CloudSuite-like: scale-out service loop with very large
 *    stochastic handler paths — the highest L1I MPKI (~32).
 *  - TPC-C-like: OLTP transactions over in-memory tables — ~30%
 *    branch ratio, service-style caches.
 */

#ifndef WCRT_BASELINES_BASELINES_HH
#define WCRT_BASELINES_BASELINES_HH

#include <functional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace wcrt {

/** Which comparison suite a baseline belongs to. */
enum class BaselineSuite : uint8_t {
    SpecInt,
    SpecFp,
    Parsec,
    Hpcc,
    CloudSuite,
    TpcC,
};

/** Human-readable suite name as the paper labels it. */
const char *toString(BaselineSuite suite);

/** A named baseline workload constructor. */
struct BaselineEntry
{
    std::string name;
    BaselineSuite suite;
    std::function<WorkloadPtr(double scale)> make;
};

/** All baseline workloads, grouped by suite. */
const std::vector<BaselineEntry> &baselineWorkloads();

/** The entries of one suite. */
std::vector<BaselineEntry> baselineSuite(BaselineSuite suite);

} // namespace wcrt

#endif // WCRT_BASELINES_BASELINES_HH
