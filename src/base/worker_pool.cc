#include "base/worker_pool.hh"

#include <algorithm>

namespace wcrt {

WorkerPool::WorkerPool(unsigned workers) : threads(workers)
{
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        pool.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    workReady.notify_all();
    for (auto &t : pool)
        t.join();
}

WorkerPool::Ticket
WorkerPool::submit(size_t count, Job job)
{
    auto task = std::make_shared<Task>();
    task->job = std::move(job);
    task->count = count;
    task->remaining.store(count, std::memory_order_relaxed);
    if (count == 0)
        return task;
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(task);
    }
    if (!pool.empty())
        workReady.notify_all();
    return task;
}

bool
WorkerPool::helpOne(const Ticket &t)
{
    size_t i = t->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= t->count)
        return false;
    t->job(i);
    // The release half of this RMW chain is what publishes every job's
    // effects to whoever observes remaining == 0 with an acquire load.
    if (t->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mtx);
        queue.erase(std::remove(queue.begin(), queue.end(), t),
                    queue.end());
        workDone.notify_all();
    }
    return true;
}

void
WorkerPool::wait(const Ticket &t)
{
    while (helpOne(t)) {
    }
    if (done(t))
        return;
    // Indices claimed by pool threads are still running; sleep until
    // the last one counts remaining down to zero.
    std::unique_lock<std::mutex> lock(mtx);
    workDone.wait(lock, [&] { return done(t); });
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (true) {
        Ticket task;
        // Fully-claimed tasks stay queued until their last index
        // retires (completion prunes them), so the predicate hunts for
        // a task that still has claimable indices rather than trusting
        // queue emptiness.
        workReady.wait(lock, [&] {
            if (stopping)
                return true;
            for (const auto &q : queue) {
                if (q->next.load(std::memory_order_relaxed) < q->count) {
                    task = q;
                    return true;
                }
            }
            return false;
        });
        if (stopping)
            return;
        lock.unlock();
        while (helpOne(task)) {
        }
        task.reset();
        lock.lock();
    }
}

} // namespace wcrt
