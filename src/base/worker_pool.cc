#include "base/worker_pool.hh"

#include <algorithm>

namespace wcrt {

WorkerPool::WorkerPool(unsigned workers) : threads(workers)
{
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        pool.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    workReady.notify_all();
    for (auto &t : pool)
        t.join();
}

unsigned
WorkerPool::hardwareWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
}

WorkerPool &
WorkerPool::shared()
{
    // One executor slot belongs to the thread that calls wait(), so
    // hardware minus one pool threads saturates the machine without
    // oversubscribing it. A single-core host gets an empty pool and
    // every task degenerates to serial execution in wait().
    static WorkerPool instance(hardwareWorkers() - 1);
    return instance;
}

WorkerPool::Ticket
WorkerPool::submit(size_t count, Job job)
{
    auto task = std::make_shared<Task>();
    task->job = std::move(job);
    task->count = count;
    task->remaining.store(count, std::memory_order_relaxed);
    if (count == 0)
        return task;
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(task);
    }
    if (!pool.empty())
        workReady.notify_all();
    return task;
}

WorkerPool::Ticket
WorkerPool::submitBounded(size_t count, unsigned pool_claims, Job job)
{
    auto task = std::make_shared<Task>();
    task->job = std::move(job);
    task->count = count;
    task->remaining.store(count, std::memory_order_relaxed);
    task->slots.store(pool_claims, std::memory_order_relaxed);
    if (count == 0)
        return task;
    if (pool_claims == 0) {
        // Nothing for the pool threads to claim: the ticket never
        // enters the queue and wait() runs it serially on the caller.
        return task;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(task);
    }
    if (!pool.empty())
        workReady.notify_all();
    return task;
}

bool
WorkerPool::claimSlot(const Ticket &t)
{
    unsigned s = t->slots.load(std::memory_order_relaxed);
    while (s > 0) {
        if (t->slots.compare_exchange_weak(s, s - 1,
                                           std::memory_order_relaxed))
            return true;
    }
    return false;
}

bool
WorkerPool::helpOne(const Ticket &t)
{
    size_t i = t->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= t->count)
        return false;
    t->job(i);
    // The release half of this RMW chain is what publishes every job's
    // effects to whoever observes remaining == 0 with an acquire load.
    if (t->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mtx);
        queue.erase(std::remove(queue.begin(), queue.end(), t),
                    queue.end());
        workDone.notify_all();
    }
    return true;
}

void
WorkerPool::wait(const Ticket &t)
{
    // The submitter is exempt from the bounded-claim budget: it always
    // participates, which both guarantees forward progress when
    // pool_claims == 0 and makes nested waits from pool threads
    // deadlock-free (the waiter works instead of merely sleeping).
    while (helpOne(t)) {
    }
    if (done(t))
        return;
    // Indices claimed by pool threads are still running; sleep until
    // the last one counts remaining down to zero.
    std::unique_lock<std::mutex> lock(mtx);
    workDone.wait(lock, [&] { return done(t); });
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (true) {
        Ticket task;
        // Fully-claimed tasks stay queued until their last index
        // retires (completion prunes them), so the predicate hunts for
        // a task that still has claimable indices rather than trusting
        // queue emptiness. Bounded tickets additionally require
        // winning a claim slot here, under the lock, so no more pool
        // threads than the ticket's budget ever pass.
        workReady.wait(lock, [&] {
            if (stopping)
                return true;
            for (const auto &q : queue) {
                if (q->next.load(std::memory_order_relaxed) <
                        q->count &&
                    claimSlot(q)) {
                    task = q;
                    return true;
                }
            }
            return false;
        });
        if (stopping)
            return;
        lock.unlock();
        while (helpOne(task)) {
        }
        task.reset();
        lock.lock();
    }
}

} // namespace wcrt
