#include "base/rng.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace wcrt {

namespace {

/** SplitMix64 step used to expand one seed into xoshiro state. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        wcrt_panic("nextBelow(0) is undefined");
    // Lemire's multiply-shift; bias is negligible for 64-bit inputs.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        wcrt_panic("nextRange with lo > hi: ", lo, " > ", hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spareGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian = mag * std::sin(2.0 * M_PI * u2);
    hasSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ull);
}

ZipfSampler::ZipfSampler(size_t n, double s)
{
    if (n == 0)
        wcrt_panic("ZipfSampler needs at least one rank");
    cdf.resize(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf[i] = total;
    }
    for (auto &c : cdf)
        c /= total;
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return cdf.size() - 1;
    return static_cast<size_t>(it - cdf.begin());
}

double
ZipfSampler::pmf(size_t rank) const
{
    if (rank >= cdf.size())
        wcrt_panic("Zipf pmf rank out of range: ", rank);
    return rank == 0 ? cdf[0] : cdf[rank] - cdf[rank - 1];
}

} // namespace wcrt
