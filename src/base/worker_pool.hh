/**
 * @file
 * Persistent worker pool with caller-participating completion waits.
 *
 * Every parallel path in the toolkit needs the same machinery:
 * TeeSink fans one block out to N children, FootprintSweep fans one
 * block out to rung-stream shards, and the replay runners fan N
 * independent trace replays out over the machine. Each submits a task
 * of `count` independent indices; pool threads and the waiting caller
 * claim indices from a shared atomic counter, so the submitter never
 * idles while work remains and a pool of zero threads degenerates to
 * plain sequential execution on the caller.
 *
 * A submitted task is represented by a Ticket. wait() blocks until
 * every index of that ticket has finished executing — not merely been
 * claimed — which is what lets users treat a ticket as a per-batch
 * completion latch (TeeSink keeps two block tickets in flight and
 * waits the older one before reusing its storage).
 *
 * One process-wide pool (shared(), lazily built with
 * hardwareWorkers() - 1 threads) serves every replay entry point, so
 * no measured path pays per-call thread spawn/join churn. Callers
 * that must honour a user-facing worker cap (--jobs=N) submit
 * bounded tickets: the ticket carries a budget of pool-thread claim
 * slots, so at most `cap - 1` pool threads join the always-helping
 * caller regardless of how wide the shared pool is.
 *
 * Nesting is deadlock-free by construction: wait() always helps with
 * the awaited ticket's own indices before sleeping, so a pool thread
 * that submits a sub-task from inside a job (a capacity sweep running
 * inside a pooled replay) makes progress on that sub-task itself and
 * only sleeps once every index is claimed by threads that are
 * actively executing them.
 */

#ifndef WCRT_BASE_WORKER_POOL_HH
#define WCRT_BASE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wcrt {

/**
 * Fixed-size thread pool executing index-parallel tasks.
 */
class WorkerPool
{
  public:
    /** Work item: called once per index in [0, count). */
    using Job = std::function<void(size_t)>;

    /** One submitted task; shared by submitter and workers. */
    struct Task
    {
        Job job;
        size_t count = 0;
        std::atomic<size_t> next{0};       //!< next unclaimed index
        std::atomic<size_t> remaining{0};  //!< indices not yet finished
        /**
         * Pool-thread claim budget (the bounded-claim ticket). Every
         * pool thread must win one slot before it may execute indices
         * of this task; the waiting submitter is exempt and always
         * participates. Defaults to effectively unbounded.
         */
        std::atomic<unsigned> slots{
            std::numeric_limits<unsigned>::max()};
    };

    /** Handle for waiting on a submitted task. */
    using Ticket = std::shared_ptr<Task>;

    /** @param workers Pool threads; 0 = all work runs in wait(). */
    explicit WorkerPool(unsigned workers);

    /** Joins the threads. Outstanding tickets must be waited first. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workerCount() const { return threads; }

    /**
     * Concurrency the hardware advertises, always >= 1.
     * hardware_concurrency() is allowed to return 0 when the hardware
     * cannot be probed; fall back to a small count so callers sizing
     * pools or caps never see zero.
     */
    static unsigned hardwareWorkers();

    /**
     * The process-wide pool: lazily constructed on first use with
     * hardwareWorkers() - 1 threads (the waiting caller is the +1
     * executor). All replay entry points, the capacity sweep and any
     * other index-parallel fan-out share it, so thread creation
     * happens once per process instead of once per call.
     */
    static WorkerPool &shared();

    /**
     * Queue `job` to run once per index in [0, count) and return
     * without waiting. The job must be safe to call concurrently for
     * distinct indices.
     */
    Ticket submit(size_t count, Job job);

    /**
     * submit() with a bounded-claim ticket: at most `pool_claims`
     * pool threads will ever execute indices of this task, however
     * wide the pool is. The submitting caller is expected to wait()
     * (and thereby help), so the observed concurrency is at most
     * `pool_claims + 1`. `pool_claims == 0` queues nothing for the
     * pool threads; wait() runs the whole task on the caller.
     */
    Ticket submitBounded(size_t count, unsigned pool_claims, Job job);

    /** True once every index of `t` has finished executing. */
    bool
    done(const Ticket &t) const
    {
        return t->remaining.load(std::memory_order_acquire) == 0;
    }

    /**
     * Help execute unclaimed indices of `t`, then block until every
     * claimed index has finished. On return all of the job's effects
     * are visible to the caller.
     */
    void wait(const Ticket &t);

    /** submit() + wait(): run the task to completion now. */
    void
    run(size_t count, Job job)
    {
        wait(submit(count, std::move(job)));
    }

    /**
     * submitBounded() + wait() with user-facing cap semantics: the
     * task runs on at most `cap` concurrent executors, one of which
     * is the calling thread. `cap <= 1` therefore runs strictly
     * serially on the caller.
     */
    void
    runBounded(size_t count, unsigned cap, Job job)
    {
        wait(submitBounded(count, cap > 0 ? cap - 1 : 0,
                           std::move(job)));
    }

  private:
    void workerLoop();

    /** Claim and run one index of `t`; false when fully claimed. */
    bool helpOne(const Ticket &t);

    /** Win one pool-thread claim slot of `t`; false when exhausted. */
    static bool claimSlot(const Ticket &t);

    unsigned threads = 0;
    std::vector<std::thread> pool;
    mutable std::mutex mtx;
    std::condition_variable workReady;  //!< claimable work queued
    std::condition_variable workDone;   //!< some task completed
    std::vector<Ticket> queue;          //!< tasks with work outstanding
    bool stopping = false;
};

} // namespace wcrt

#endif // WCRT_BASE_WORKER_POOL_HH
