/**
 * @file
 * Persistent worker pool with caller-participating completion waits.
 *
 * Both parallel sinks in the transport layer need the same machinery:
 * TeeSink fans one block out to N children, FootprintSweep fans one
 * block out to 3xK independent cache rungs. Each submits a task of
 * `count` independent indices; pool threads and the waiting caller
 * claim indices from a shared atomic counter, so the submitter never
 * idles while work remains and a pool of zero threads degenerates to
 * plain sequential execution on the caller.
 *
 * A submitted task is represented by a Ticket. wait() blocks until
 * every index of that ticket has finished executing — not merely been
 * claimed — which is what lets users treat a ticket as a per-batch
 * completion latch (TeeSink keeps two block tickets in flight and
 * waits the older one before reusing its storage).
 */

#ifndef WCRT_BASE_WORKER_POOL_HH
#define WCRT_BASE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wcrt {

/**
 * Fixed-size thread pool executing index-parallel tasks.
 */
class WorkerPool
{
  public:
    /** Work item: called once per index in [0, count). */
    using Job = std::function<void(size_t)>;

    /** One submitted task; shared by submitter and workers. */
    struct Task
    {
        Job job;
        size_t count = 0;
        std::atomic<size_t> next{0};       //!< next unclaimed index
        std::atomic<size_t> remaining{0};  //!< indices not yet finished
    };

    /** Handle for waiting on a submitted task. */
    using Ticket = std::shared_ptr<Task>;

    /** @param workers Pool threads; 0 = all work runs in wait(). */
    explicit WorkerPool(unsigned workers);

    /** Joins the threads. Outstanding tickets must be waited first. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workerCount() const { return threads; }

    /**
     * Queue `job` to run once per index in [0, count) and return
     * without waiting. The job must be safe to call concurrently for
     * distinct indices.
     */
    Ticket submit(size_t count, Job job);

    /** True once every index of `t` has finished executing. */
    bool
    done(const Ticket &t) const
    {
        return t->remaining.load(std::memory_order_acquire) == 0;
    }

    /**
     * Help execute unclaimed indices of `t`, then block until every
     * claimed index has finished. On return all of the job's effects
     * are visible to the caller.
     */
    void wait(const Ticket &t);

    /** submit() + wait(): run the task to completion now. */
    void
    run(size_t count, Job job)
    {
        wait(submit(count, std::move(job)));
    }

  private:
    void workerLoop();

    /** Claim and run one index of `t`; false when fully claimed. */
    bool helpOne(const Ticket &t);

    unsigned threads = 0;
    std::vector<std::thread> pool;
    mutable std::mutex mtx;
    std::condition_variable workReady;  //!< claimable work queued
    std::condition_variable workDone;   //!< some task completed
    std::vector<Ticket> queue;          //!< tasks with work outstanding
    bool stopping = false;
};

} // namespace wcrt

#endif // WCRT_BASE_WORKER_POOL_HH
