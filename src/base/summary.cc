#include "base/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace wcrt {

void
Summary::add(double x)
{
    if (n == 0) {
        lo = x;
        hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

void
Summary::merge(const Summary &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    uint64_t combined = n + other.n;
    double delta = other.m - m;
    double new_m = m + delta * static_cast<double>(other.n) /
                           static_cast<double>(combined);
    m2 += other.m2 + delta * delta * static_cast<double>(n) *
                         static_cast<double>(other.n) /
                         static_cast<double>(combined);
    m = new_m;
    n = combined;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::min() const
{
    return n ? lo : std::numeric_limits<double>::infinity();
}

double
Summary::max() const
{
    return n ? hi : -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo(lo), hi(hi), counts(buckets, 0)
{
    if (!(hi > lo))
        wcrt_panic("Histogram range must be non-empty");
    if (buckets == 0)
        wcrt_panic("Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    double frac = (x - lo) / (hi - lo);
    auto idx = static_cast<size_t>(frac * static_cast<double>(counts.size()));
    idx = std::min(idx, counts.size() - 1);
    ++counts[idx];
}

uint64_t
Histogram::total() const
{
    uint64_t t = under + over;
    for (auto c : counts)
        t += c;
    return t;
}

double
Histogram::quantile(double q) const
{
    uint64_t t = total();
    if (t == 0)
        return lo;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<uint64_t>(q * static_cast<double>(t));
    uint64_t seen = under;
    if (seen > target)
        return lo;
    double width = (hi - lo) / static_cast<double>(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen > target)
            return lo + (static_cast<double>(i) + 0.5) * width;
    }
    return hi;
}

} // namespace wcrt
