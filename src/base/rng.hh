/**
 * @file
 * Deterministic random number generation and the samplers the data
 * generators depend on (uniform, Gaussian, Zipf, Pareto).
 *
 * Every experiment in the toolkit must be reproducible bit-for-bit, so
 * all randomness flows through Rng instances seeded explicitly by the
 * caller; nothing reads global entropy.
 */

#ifndef WCRT_BASE_RNG_HH
#define WCRT_BASE_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wcrt {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Small, fast, and high quality; satisfies the needs of synthetic data
 * generation and randomized placement without dragging in <random>'s
 * implementation-defined distributions (which differ across standard
 * libraries and would break determinism).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Standard normal via Box-Muller (cached spare value). */
    double nextGaussian();

    /** Normal with the given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Fork an independent stream (for parallel generators). */
    Rng split();

  private:
    uint64_t s[4];
    double spareGaussian = 0.0;
    bool hasSpare = false;
};

/**
 * Zipf-distributed sampler over ranks 1..n with exponent s.
 *
 * Uses a precomputed cumulative table with binary search, which is
 * exact and fast enough for the corpus sizes the text generator uses.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks (must be >= 1).
     * @param s Skew exponent; s = 0 degenerates to uniform.
     */
    ZipfSampler(size_t n, double s);

    /** Sample a rank in [0, n). Rank 0 is the most frequent. */
    size_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(size_t rank) const;

    /** Number of ranks. */
    size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace wcrt

#endif // WCRT_BASE_RNG_HH
