#include "base/strings.hh"

#include <cctype>

namespace wcrt {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &ch : out)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

uint64_t
fnv1a(std::string_view text)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char ch : text) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace wcrt
