#include "base/logging.hh"

#include <cstdio>

namespace wcrt {

namespace {

LogLevel global_level = LogLevel::Info;

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (global_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (global_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace wcrt
