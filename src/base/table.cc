#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace wcrt {

std::string
formatFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> header) : header(std::move(header))
{
    if (this->header.empty())
        wcrt_panic("Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        wcrt_panic("row width ", row.size(), " != header width ",
                   header.size());
    body.push_back(std::move(row));
}

Table &
Table::cell(const std::string &value)
{
    pending.push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

void
Table::endRow()
{
    pending.resize(header.size());
    addRow(std::move(pending));
    pending.clear();
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };

    print_row(header);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << '\n';
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
}

} // namespace wcrt
