/**
 * @file
 * Small string utilities shared by the data generators and workloads.
 */

#ifndef WCRT_BASE_STRINGS_HH
#define WCRT_BASE_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace wcrt {

/** Split on a single delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Split on runs of whitespace; empty tokens are dropped. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** ASCII lower-casing (the corpora are ASCII by construction). */
std::string toLower(std::string_view text);

/** True when text starts with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** FNV-1a 64-bit hash; stable across platforms for partitioning. */
uint64_t fnv1a(std::string_view text);

} // namespace wcrt

#endif // WCRT_BASE_STRINGS_HH
