/**
 * @file
 * Streaming summary statistics and fixed-bucket histograms.
 *
 * Every profiler metric and every report column reduces through one of
 * these; keeping them allocation-free makes the trace hot path cheap.
 */

#ifndef WCRT_BASE_SUMMARY_HH
#define WCRT_BASE_SUMMARY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcrt {

/**
 * Welford-style streaming mean/variance with min/max tracking.
 */
class Summary
{
  public:
    /** Fold one observation into the summary. */
    void add(double x);

    /** Merge another summary (parallel reduction). */
    void merge(const Summary &other);

    /** Number of observations. */
    uint64_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Population variance (0 when fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const;

    /** Largest observation (-inf when empty). */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Histogram over [lo, hi) with uniform buckets plus overflow and
 * underflow counters.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the tracked range.
     * @param hi Exclusive upper bound; must exceed lo.
     * @param buckets Number of uniform buckets (>= 1).
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Count in bucket i. */
    uint64_t bucket(size_t i) const { return counts.at(i); }

    /** Number of uniform buckets. */
    size_t buckets() const { return counts.size(); }

    /** Samples below lo. */
    uint64_t underflow() const { return under; }

    /** Samples at or above hi. */
    uint64_t overflow() const { return over; }

    /** Total samples recorded, including under/overflow. */
    uint64_t total() const;

    /** Approximate quantile (0..1) from bucket midpoints. */
    double quantile(double q) const;

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t under = 0;
    uint64_t over = 0;
};

} // namespace wcrt

#endif // WCRT_BASE_SUMMARY_HH
