/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (a toolkit bug); it
 * aborts.  fatal() is for user errors (bad configuration, impossible
 * parameters); it exits cleanly with an error code.  warn() and
 * inform() report conditions without stopping the run.
 */

#ifndef WCRT_BASE_LOGGING_HH
#define WCRT_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace wcrt {

/** Verbosity levels understood by setLogLevel(). */
enum class LogLevel { Quiet, Warn, Info };

/** Set the global log level; messages below it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal toolkit bug and abort. */
#define wcrt_panic(...)                                                   \
    ::wcrt::detail::panicImpl(__FILE__, __LINE__,                         \
                              ::wcrt::detail::format(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define wcrt_fatal(...)                                                   \
    ::wcrt::detail::fatalImpl(__FILE__, __LINE__,                         \
                              ::wcrt::detail::format(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::format(std::forward<Args>(args)...));
}

} // namespace wcrt

#endif // WCRT_BASE_LOGGING_HH
