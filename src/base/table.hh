/**
 * @file
 * Column-aligned text tables and CSV emission.
 *
 * Every bench binary prints its paper table/figure series through this
 * class so the output style is uniform and machine-parseable.
 */

#ifndef WCRT_BASE_TABLE_HH
#define WCRT_BASE_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wcrt {

/**
 * An in-memory table with a header row and uniform-width columns.
 */
class Table
{
  public:
    /** Construct with a header; the column count is fixed from it. */
    explicit Table(std::vector<std::string> header);

    /** Append a fully-formed row; must match the column count. */
    void addRow(std::vector<std::string> row);

    /** Begin building a row cell by cell. */
    Table &cell(const std::string &value);

    /** Numeric cell with fixed decimal places. */
    Table &cell(double value, int precision = 2);

    /** Integer cell. */
    Table &cell(uint64_t value);

    /** Finish the row started with cell(); pads missing cells. */
    void endRow();

    /** Number of data rows. */
    size_t rows() const { return body.size(); }

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
    std::vector<std::string> pending;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double value, int precision);

} // namespace wcrt

#endif // WCRT_BASE_TABLE_HH
