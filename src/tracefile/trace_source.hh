/**
 * @file
 * TraceSource: byte-level access to a `.wtrace` file for TraceReader.
 *
 * Two implementations share one pull interface. StreamSource wraps
 * the original `std::ifstream` path (one buffered copy per payload,
 * works everywhere); MmapSource maps the whole file once and hands
 * out pointers straight into the mapping, so the SWAR fast cursor
 * decodes chunk payloads with zero intermediate copies. Which one a
 * reader uses is a transport choice only: both sources feed the same
 * parsing code, so decoded ops and every TraceFormatError are
 * bit-identical between them (pinned by test).
 *
 * This header also carries the reader policy knobs: the io selection
 * (`TraceIo`), the CRC trust ladder (`CrcMode`) and the process-wide
 * registry of traces whose chunk CRCs this process has already
 * verified (or has itself written), which is what lets repeat replays
 * under CrcMode::Once skip the per-chunk CRC pass.
 */

#ifndef WCRT_TRACEFILE_TRACE_SOURCE_HH
#define WCRT_TRACEFILE_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "tracefile/format.hh"

namespace wcrt {

/** How a TraceReader accesses the file's bytes. */
enum class TraceIo : uint8_t {
    Auto,    //!< mmap when the platform supports it, else stream
    Stream,  //!< buffered std::ifstream reads (the original path)
    Mmap,    //!< zero-copy memory mapping; error where unsupported
};

/**
 * How much CRC work a replay performs on op-chunk payloads. The
 * header and footer CRCs are always verified — they are tiny and
 * guard the metadata every consumer trusts — and structural
 * validation (bounds, op counts, footer totals, malformed varints)
 * is never elided; this ladder covers only the per-chunk CRC-32
 * recomputation on the decode hot path.
 */
enum class CrcMode : uint8_t {
    Always,  //!< verify every chunk CRC on every replay (default)
    Once,    //!< verify until this process has validated the file once
    Never,   //!< trust chunk payloads outright
};

/** Reader policy: io transport + CRC trust level. */
struct ReaderOptions
{
    TraceIo io = TraceIo::Auto;
    CrcMode crc = CrcMode::Always;
};

/** CLI spelling of an io mode: auto / stream / mmap. */
const char *toString(TraceIo io);

/** CLI spelling of a CRC mode: always / once / never. */
const char *toString(CrcMode crc);

/**
 * Parse a CLI io name ("auto", "stream", "mmap").
 * @return false when the name matches no mode (`out` untouched).
 */
bool parseTraceIo(const std::string &name, TraceIo &out);

/**
 * Parse a CLI CRC mode name ("always", "once", "never").
 * @return false when the name matches no mode (`out` untouched).
 */
bool parseCrcMode(const std::string &name, CrcMode &out);

/** True when this build can memory-map trace files. */
bool mmapAvailable();

/**
 * Process-wide default ReaderOptions, used by every TraceReader (and
 * therefore every replay runner) that is not handed explicit options.
 * `trace_tool --io=... --verify-crc=...` and `scenario_tool` set this
 * once at startup; the default is {Auto, Always}.
 */
ReaderOptions defaultReaderOptions();
void setDefaultReaderOptions(const ReaderOptions &opts);

/**
 * @name Verified-trace registry
 *
 * The trust side of CrcMode::Once: a process-wide set of trace files
 * whose chunk CRCs are known good in this process, keyed by canonical
 * path + file size + mtime so a rewritten or truncated file never
 * inherits stale trust. A file enters the registry when a full
 * CRC-checked replay of it succeeds, or when the trace cache has just
 * captured it (the bytes were produced by this process). The registry
 * is in-memory only — a new process starts untrusting.
 */
/** @{ */
bool traceVerifiedInProcess(const std::string &path);
void markTraceVerified(const std::string &path);
/** @} */

/**
 * Sequential byte access to one trace file. The cursor starts at 0;
 * view(n) returns a pointer to the next n bytes and advances. All
 * bounds discipline is the caller's: view/skip preconditions are
 * checked against remaining() by TraceReader before each call, so
 * both implementations fail identically on truncated files.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Total file bytes, fixed at open. */
    uint64_t size() const { return fileBytes; }

    /** Current cursor offset. */
    uint64_t offset() const { return pos; }

    /** Bytes from the cursor to end of file. */
    uint64_t remaining() const { return fileBytes - pos; }

    /** Move the cursor. Precondition: off <= size(). */
    virtual void seek(uint64_t off) = 0;

    /** Advance the cursor without touching the bytes. */
    void skip(uint64_t n) { seek(pos + n); }

    /**
     * Return the next `n` bytes and advance. Precondition:
     * n <= remaining(). The pointer stays valid until the next
     * view()/seek() call (StreamSource reuses its buffer) or for the
     * source's lifetime (MmapSource points into the mapping).
     */
    virtual const uint8_t *view(size_t n) = 0;

    /** Transport name for stats output: "stream" or "mmap". */
    virtual const char *name() const = 0;

  protected:
    uint64_t fileBytes = 0;
    uint64_t pos = 0;
};

/**
 * Open `path` through the requested transport. TraceIo::Auto picks
 * mmap when available. Throws TraceFormatError when the file cannot
 * be opened, or when TraceIo::Mmap is requested on a platform (or
 * file) that cannot be mapped.
 */
std::unique_ptr<TraceSource> openTraceSource(const std::string &path,
                                             TraceIo io);

} // namespace wcrt

#endif // WCRT_TRACEFILE_TRACE_SOURCE_HH
