#include "tracefile/trace_reader.hh"

#include <bit>
#include <cstring>

namespace wcrt {

using namespace tracefile;

namespace {

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

double
getF64(Decoder &dec)
{
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<uint64_t>(dec.u8()) << (8 * i);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** One decoded chunk header. */
struct ChunkHeader
{
    uint32_t opCount;
    uint32_t payloadBytes;
    uint32_t crc;
};

/**
 * Unchecked decode cursor for the chunk interior. The caller
 * guarantees at least maxEncodedOpBytes (34) remain before each op,
 * so the per-byte bounds checks the general Decoder pays are
 * unnecessary; only the malformed-varint guard stays. Must mirror
 * Decoder exactly.
 *
 * varint() is SWAR: one unaligned 8-byte load covers any 1-8-byte
 * varint (within an op, a varint starts at most 24 bytes in, so the
 * load stays inside the 34-byte window). The continuation bits are
 * found in parallel — `~word & 0x80..80` has a bit set at every byte
 * whose continuation bit is clear, countr_zero finds the terminator —
 * and the 7-bit groups are compacted with three shift/mask steps.
 * 9/10-byte varints (top-bit-heavy deltas; rare) take the byte-serial
 * slow path.
 */
struct FastCursor
{
    const uint8_t *p;

    uint8_t u8() { return *p++; }

    uint64_t
    varint()
    {
        uint64_t word;
        std::memcpy(&word, p, 8);
        uint64_t cont = ~word & 0x8080808080808080ull;
        if (cont == 0)
            return varintLong();
        unsigned terminator = std::countr_zero(cont) >> 3;  // byte index
        p += terminator + 1;
        // Keep bytes up to and including the terminator, drop the
        // continuation bits, then pack eight 7-bit groups into 56 bits.
        word &= cont ^ (cont - 1);
        word &= 0x7f7f7f7f7f7f7f7full;
        word = (word & 0x007f007f007f007full) |
               ((word & 0x7f007f007f007f00ull) >> 1);
        word = (word & 0x00003fff00003fffull) |
               ((word & 0x3fff00003fff0000ull) >> 2);
        word = (word & 0x000000000fffffffull) |
               ((word & 0x0fffffff00000000ull) >> 4);
        return word;
    }

    uint64_t
    varintLong()
    {
        uint64_t v = 0;
        int shift = 0;
        for (int i = 0; i < 10; ++i) {
            uint64_t b = p[i];
            v |= (b & 0x7f) << shift;
            shift += 7;
            if (!(b & 0x80)) {
                p += i + 1;
                return v;
            }
        }
        throw TraceFormatError("malformed varint (more than 10 bytes)");
    }

    int64_t
    varintSigned()
    {
        uint64_t u = varint();
        return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    }
};

/** Checked cursor with the same surface, for the chunk tail. */
struct CheckedCursor
{
    Decoder &dec;

    uint8_t u8() { return dec.u8(); }
    uint64_t varint() { return dec.varint(); }
    int64_t varintSigned() { return dec.varintSigned(); }
};

/** Mutable handles on an OpBlock's field arrays for direct decode. */
struct BlockArrays
{
    OpKind *kinds;
    IntPurpose *purposes;
    uint64_t *pcs;
    uint8_t *sizes;
    uint64_t *memAddrs;
    uint8_t *memSizes;
    uint64_t *targets;
    uint8_t *takens;

    explicit BlockArrays(OpBlock &block)
        : kinds(block.rawKinds()), purposes(block.rawPurposes()),
          pcs(block.rawPcs()), sizes(block.rawSizes()),
          memAddrs(block.rawMemAddrs()), memSizes(block.rawMemSizes()),
          targets(block.rawTargets()), takens(block.rawTakens())
    {
    }
};

/**
 * Decode one encoded op through either cursor, scattering its fields
 * into the block's arrays at index `n` — no intermediate MicroOp.
 * Shared by the fast interior and the checked tail so the two paths
 * cannot drift apart.
 */
template <typename Cursor>
inline void
decodeOp(Cursor &cur, uint64_t &prev_pc, uint64_t &prev_mem,
         BlockArrays &a, size_t n, const std::string &path)
{
    uint8_t flags = cur.u8();
    uint8_t kind_bits = flags & kindMask;
    if (kind_bits >= numOpKinds)
        throw TraceFormatError("invalid op kind in trace: " + path);
    OpKind kind = static_cast<OpKind>(kind_bits);
    a.kinds[n] = kind;
    a.purposes[n] =
        static_cast<IntPurpose>((flags & purposeMask) >> purposeShift);
    a.takens[n] = (flags & takenBit) ? 1 : 0;

    bool has_mem;
    bool has_target;
    if (flags & extBit) {
        uint8_t ext = cur.u8();
        if (ext & ~(extHasMem | extHasSize | extHasTarget))
            throw TraceFormatError(
                "invalid op extension bits in trace: " + path);
        a.sizes[n] = (ext & extHasSize) ? cur.u8() : defaultOpSize;
        has_mem = ext & extHasMem;
        has_target = ext & extHasTarget;
    } else {
        a.sizes[n] = defaultOpSize;
        has_mem = impliedHasMem(kind);
        has_target = isControl(kind);
    }

    uint64_t pc = prev_pc + static_cast<uint64_t>(cur.varintSigned());
    a.pcs[n] = pc;
    prev_pc = pc;
    if (has_mem) {
        uint64_t mem =
            prev_mem + static_cast<uint64_t>(cur.varintSigned());
        a.memAddrs[n] = mem;
        prev_mem = mem;
        a.memSizes[n] = cur.u8();
    } else {
        a.memAddrs[n] = 0;
        a.memSizes[n] = 0;
    }
    if (has_target)
        a.targets[n] = pc + static_cast<uint64_t>(cur.varintSigned());
    else
        a.targets[n] = 0;
}

} // namespace

TraceReader::TraceReader(const std::string &path)
    : TraceReader(path, defaultReaderOptions())
{
}

TraceReader::TraceReader(const std::string &path,
                         const ReaderOptions &options)
    : filePath(path), readerOpts(options),
      src(openTraceSource(path, options.io))
{
    fileSize = src->size();
    readHeader();
    scanFooter();
}

TraceReader::TraceReader(std::unique_ptr<TraceSource> source,
                         const std::string &display_name,
                         const ReaderOptions &options)
    : filePath(display_name), readerOpts(options),
      src(std::move(source)), fileBacked(false)
{
    src->seek(0);
    fileSize = src->size();
    readHeader();
    scanFooter();
}

void
TraceReader::readHeader()
{
    if (src->remaining() < 16)
        throw TraceFormatError("trace header truncated: " + filePath);
    const uint8_t *fixed = src->view(16);
    if (getU32(fixed) != magic)
        throw TraceFormatError("not a wtrace file (bad magic): " +
                               filePath);
    uint32_t file_version = getU32(fixed + 4);
    if (file_version != version)
        throw TraceFormatError(
            "unsupported trace version " + std::to_string(file_version) +
            " (expected " + std::to_string(version) + "): " + filePath);
    uint32_t payload_bytes = getU32(fixed + 8);
    uint32_t crc = getU32(fixed + 12);

    // Bound the declared length against the file before asking the
    // source for it: a corrupt header claiming ~4 GB must fail here,
    // not after a matching allocation (chunk payloads get the same
    // treatment in walkChunks).
    if (payload_bytes > src->remaining())
        throw TraceFormatError("trace header truncated: " + filePath);
    const uint8_t *payload = src->view(payload_bytes);
    if (crc32(payload, payload_bytes) != crc)
        throw TraceFormatError("trace header CRC mismatch: " + filePath);

    Decoder dec(payload, payload_bytes);
    fileMeta.workload = dec.string();
    fileMeta.stackKind = static_cast<StackKind>(dec.u8());
    fileMeta.category = static_cast<AppCategory>(dec.u8());
    fileMeta.scale = getF64(dec);
    uint64_t regions = dec.varint();
    regionTable.clear();
    regionTable.reserve(regions);
    for (uint64_t i = 0; i < regions; ++i) {
        CodeLayout::Function fn;
        fn.name = dec.string();
        fn.layer = static_cast<CodeLayer>(dec.u8());
        fn.base = dec.varint();
        fn.bytes = static_cast<uint32_t>(dec.varint());
        fn.profile.overheadOps = static_cast<uint32_t>(dec.varint());
        fn.profile.rotationBytes = static_cast<uint32_t>(dec.varint());
        regionTable.push_back(std::move(fn));
    }
    if (dec.remaining() != 0)
        throw TraceFormatError("trailing bytes in trace header: " +
                               filePath);
    firstChunk = src->offset();
}

uint64_t
TraceReader::walkChunks(TraceSink *sink)
{
    src->seek(firstChunk);
    // The CrcMode trust ladder applies to op-chunk payloads only;
    // header and footer CRCs are always verified. Under Once, a full
    // checked replay promotes the file into the process-wide registry
    // so later replays (this reader or any other) skip the CRC pass.
    bool check_crc =
        readerOpts.crc == CrcMode::Always ||
        (readerOpts.crc == CrcMode::Once &&
         !(fileBacked && traceVerifiedInProcess(filePath)));
    uint64_t ops_seen = 0;
    uint64_t chunks_seen = 0;
    uint64_t payload_seen = 0;
    while (true) {
        if (src->remaining() < 12)
            throw TraceFormatError(
                "trace truncated (missing footer): " + filePath);
        const uint8_t *fixed = src->view(12);
        ChunkHeader hdr{getU32(fixed), getU32(fixed + 4),
                        getU32(fixed + 8)};
        if (hdr.payloadBytes > src->remaining())
            throw TraceFormatError("trace chunk truncated: " + filePath);
        // A valid op encodes to at least 2 bytes, so an opCount above
        // payloadBytes is structurally impossible; reject it before
        // sizing the decode block off an untrusted u32.
        if (hdr.opCount > hdr.payloadBytes)
            throw TraceFormatError(
                "trace chunk op count exceeds payload: " + filePath);

        if (hdr.opCount == 0) {
            // Footer chunk ends the file.
            const uint8_t *payload = src->view(hdr.payloadBytes);
            if (crc32(payload, hdr.payloadBytes) != hdr.crc)
                throw TraceFormatError("trace footer CRC mismatch: " +
                                       filePath);
            Decoder dec(payload, hdr.payloadBytes);
            footerOps = dec.varint();
            footerIo.diskReadBytes = dec.varint();
            footerIo.diskWriteBytes = dec.varint();
            footerIo.networkBytes = dec.varint();
            footerData.inputBytes = dec.varint();
            footerData.intermediateBytes = dec.varint();
            footerData.outputBytes = dec.varint();
            if (dec.remaining() != 0)
                throw TraceFormatError(
                    "trailing bytes in trace footer: " + filePath);
            if (src->remaining() != 0)
                throw TraceFormatError(
                    "trailing data after trace footer: " + filePath);
            if (footerOps != ops_seen)
                throw TraceFormatError(
                    "trace op count mismatch (footer says " +
                    std::to_string(footerOps) + ", chunks hold " +
                    std::to_string(ops_seen) + "): " + filePath);
            chunks = chunks_seen;
            payloadTotal = payload_seen;
            if (sink && check_crc && fileBacked)
                markTraceVerified(filePath);
            return ops_seen;
        }

        ++chunks_seen;
        payload_seen += hdr.payloadBytes;
        if (sink) {
            const uint8_t *pay = src->view(hdr.payloadBytes);
            if (check_crc) {
                if (crc32(pay, hdr.payloadBytes) != hdr.crc)
                    throw TraceFormatError(
                        "trace chunk CRC mismatch: " + filePath);
                ++crcChecks;
            }
            // Decode the whole chunk straight into the reusable SoA
            // block, then hand its view to the sink in one
            // consumeBatch call — no per-op virtual dispatch and no
            // intermediate MicroOp on the replay path. With MmapSource
            // `pay` points into the mapping, so decode is zero-copy.
            // The chunk interior decodes through the unchecked SWAR
            // fast cursor (maxEncodedOpBytes guarantees every read,
            // including the 8-byte varint loads, stays in bounds); the
            // tail falls back to the checked Decoder, so truncation
            // still surfaces as a clean error.
            if (block.capacity() < hdr.opCount)
                block = OpBlock(hdr.opCount);
            block.clear();
            BlockArrays arrays(block);
            uint64_t prev_pc = 0;
            uint64_t prev_mem = 0;
            const uint8_t *pay_end = pay + hdr.payloadBytes;
            FastCursor fast{pay};
            uint32_t i = 0;
            while (i < hdr.opCount &&
                   static_cast<size_t>(pay_end - fast.p) >=
                       maxEncodedOpBytes) {
                decodeOp(fast, prev_pc, prev_mem, arrays, i, filePath);
                ++i;
            }
            Decoder dec(fast.p,
                        static_cast<size_t>(pay_end - fast.p));
            CheckedCursor checked{dec};
            for (; i < hdr.opCount; ++i)
                decodeOp(checked, prev_pc, prev_mem, arrays, i,
                         filePath);
            if (dec.remaining() != 0)
                throw TraceFormatError(
                    "trailing bytes in trace chunk: " + filePath);
            block.setUsed(hdr.opCount);
            sink->consumeBatch(block.view());
        } else {
            // Validation scan: chunk bounds are checked above and the
            // payload CRC is verified on decode, so just skip ahead.
            src->skip(hdr.payloadBytes);
        }
        ops_seen += hdr.opCount;
    }
}

void
TraceReader::scanFooter()
{
    walkChunks(nullptr);
}

uint64_t
TraceReader::replayInto(TraceSink &sink)
{
    uint64_t n = walkChunks(&sink);
    // Pipelined sinks (TeeSink with workers) may still hold blocks in
    // flight; settle them so the caller can read sink state.
    sink.drain();
    return n;
}

uint64_t
TraceReader::regionBytes() const
{
    uint64_t total = 0;
    for (const auto &fn : regionTable)
        total += fn.bytes;
    return total;
}

double
TraceReader::bytesPerOp() const
{
    return footerOps ? static_cast<double>(payloadTotal) /
                           static_cast<double>(footerOps)
                     : 0.0;
}

} // namespace wcrt
