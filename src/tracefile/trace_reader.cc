#include "tracefile/trace_reader.hh"

#include <cstring>

namespace wcrt {

using namespace tracefile;

namespace {

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

double
getF64(Decoder &dec)
{
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<uint64_t>(dec.u8()) << (8 * i);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** One decoded chunk header. */
struct ChunkHeader
{
    uint32_t opCount;
    uint32_t payloadBytes;
    uint32_t crc;
};

/**
 * Unchecked decode cursor for the chunk interior. The caller
 * guarantees at least maxEncodedOpBytes remain before each op, so the
 * per-byte bounds checks the general Decoder pays are unnecessary;
 * only the malformed-varint guard stays. Must mirror Decoder exactly.
 */
struct FastCursor
{
    const uint8_t *p;

    uint8_t u8() { return *p++; }

    uint64_t
    varint()
    {
        uint64_t b = *p++;
        if (!(b & 0x80))
            return b;
        uint64_t v = b & 0x7f;
        for (int shift = 7; shift < 64; shift += 7) {
            b = *p++;
            v |= (b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
        }
        throw TraceFormatError("malformed varint (more than 10 bytes)");
    }

    int64_t
    varintSigned()
    {
        uint64_t u = varint();
        return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    }
};

/** Checked cursor with the same surface, for the chunk tail. */
struct CheckedCursor
{
    Decoder &dec;

    uint8_t u8() { return dec.u8(); }
    uint64_t varint() { return dec.varint(); }
    int64_t varintSigned() { return dec.varintSigned(); }
};

/**
 * Decode one encoded op through either cursor and append it to the
 * block. Shared by the fast interior and the checked tail so the two
 * paths cannot drift apart.
 */
template <typename Cursor>
inline void
decodeOp(Cursor &cur, uint64_t &prev_pc, uint64_t &prev_mem,
         OpBlock &block, const std::string &path)
{
    uint8_t flags = cur.u8();
    MicroOp op;
    uint8_t kind_bits = flags & kindMask;
    if (kind_bits >= numOpKinds)
        throw TraceFormatError("invalid op kind in trace: " + path);
    op.kind = static_cast<OpKind>(kind_bits);
    op.purpose =
        static_cast<IntPurpose>((flags & purposeMask) >> purposeShift);
    op.taken = flags & takenBit;

    bool has_mem;
    bool has_target;
    if (flags & extBit) {
        uint8_t ext = cur.u8();
        if (ext & ~(extHasMem | extHasSize | extHasTarget))
            throw TraceFormatError(
                "invalid op extension bits in trace: " + path);
        op.size = (ext & extHasSize) ? cur.u8() : defaultOpSize;
        has_mem = ext & extHasMem;
        has_target = ext & extHasTarget;
    } else {
        op.size = defaultOpSize;
        has_mem = impliedHasMem(op.kind);
        has_target = isControl(op.kind);
    }

    op.pc = prev_pc + static_cast<uint64_t>(cur.varintSigned());
    prev_pc = op.pc;
    if (has_mem) {
        op.memAddr = prev_mem + static_cast<uint64_t>(cur.varintSigned());
        prev_mem = op.memAddr;
        op.memSize = cur.u8();
    }
    if (has_target)
        op.target = op.pc + static_cast<uint64_t>(cur.varintSigned());
    block.push(op);
}

} // namespace

TraceReader::TraceReader(const std::string &path)
    : filePath(path), in(path, std::ios::binary)
{
    if (!in)
        throw TraceFormatError("cannot open trace file: " + path);
    in.seekg(0, std::ios::end);
    fileSize = static_cast<uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    readHeader();
    scanFooter();
}

void
TraceReader::readHeader()
{
    uint8_t fixed[16];
    if (!in.read(reinterpret_cast<char *>(fixed), sizeof(fixed)))
        throw TraceFormatError("trace header truncated: " + filePath);
    if (getU32(fixed) != magic)
        throw TraceFormatError("not a wtrace file (bad magic): " +
                               filePath);
    uint32_t file_version = getU32(fixed + 4);
    if (file_version != version)
        throw TraceFormatError(
            "unsupported trace version " + std::to_string(file_version) +
            " (expected " + std::to_string(version) + "): " + filePath);
    uint32_t payload_bytes = getU32(fixed + 8);
    uint32_t crc = getU32(fixed + 12);

    std::vector<uint8_t> payload(payload_bytes);
    if (!in.read(reinterpret_cast<char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size())))
        throw TraceFormatError("trace header truncated: " + filePath);
    if (crc32(payload.data(), payload.size()) != crc)
        throw TraceFormatError("trace header CRC mismatch: " + filePath);

    Decoder dec(payload.data(), payload.size());
    fileMeta.workload = dec.string();
    fileMeta.stackKind = static_cast<StackKind>(dec.u8());
    fileMeta.category = static_cast<AppCategory>(dec.u8());
    fileMeta.scale = getF64(dec);
    uint64_t regions = dec.varint();
    regionTable.clear();
    regionTable.reserve(regions);
    for (uint64_t i = 0; i < regions; ++i) {
        CodeLayout::Function fn;
        fn.name = dec.string();
        fn.layer = static_cast<CodeLayer>(dec.u8());
        fn.base = dec.varint();
        fn.bytes = static_cast<uint32_t>(dec.varint());
        fn.profile.overheadOps = static_cast<uint32_t>(dec.varint());
        fn.profile.rotationBytes = static_cast<uint32_t>(dec.varint());
        regionTable.push_back(std::move(fn));
    }
    if (dec.remaining() != 0)
        throw TraceFormatError("trailing bytes in trace header: " +
                               filePath);
    firstChunk = in.tellg();
}

uint64_t
TraceReader::walkChunks(TraceSink *sink)
{
    in.clear();
    in.seekg(firstChunk);
    uint64_t ops_seen = 0;
    uint64_t chunks_seen = 0;
    uint64_t payload_seen = 0;
    std::vector<uint8_t> payload;
    while (true) {
        uint8_t fixed[12];
        if (!in.read(reinterpret_cast<char *>(fixed), sizeof(fixed)))
            throw TraceFormatError(
                "trace truncated (missing footer): " + filePath);
        ChunkHeader hdr{getU32(fixed), getU32(fixed + 4),
                        getU32(fixed + 8)};
        if (static_cast<uint64_t>(in.tellg()) + hdr.payloadBytes >
            fileSize)
            throw TraceFormatError("trace chunk truncated: " + filePath);
        if (sink || hdr.opCount == 0) {
            payload.resize(hdr.payloadBytes);
            if (hdr.payloadBytes > 0 &&
                !in.read(reinterpret_cast<char *>(payload.data()),
                         static_cast<std::streamsize>(payload.size())))
                throw TraceFormatError("trace chunk truncated: " +
                                       filePath);
        } else {
            // Validation scan: chunk bounds are checked above and the
            // payload CRC is verified on decode, so just skip ahead.
            in.seekg(hdr.payloadBytes, std::ios::cur);
        }

        if (hdr.opCount == 0) {
            // Footer chunk ends the file.
            if (crc32(payload.data(), payload.size()) != hdr.crc)
                throw TraceFormatError("trace footer CRC mismatch: " +
                                       filePath);
            Decoder dec(payload.data(), payload.size());
            footerOps = dec.varint();
            footerIo.diskReadBytes = dec.varint();
            footerIo.diskWriteBytes = dec.varint();
            footerIo.networkBytes = dec.varint();
            footerData.inputBytes = dec.varint();
            footerData.intermediateBytes = dec.varint();
            footerData.outputBytes = dec.varint();
            if (dec.remaining() != 0)
                throw TraceFormatError(
                    "trailing bytes in trace footer: " + filePath);
            if (in.peek() != std::ifstream::traits_type::eof())
                throw TraceFormatError(
                    "trailing data after trace footer: " + filePath);
            if (footerOps != ops_seen)
                throw TraceFormatError(
                    "trace op count mismatch (footer says " +
                    std::to_string(footerOps) + ", chunks hold " +
                    std::to_string(ops_seen) + "): " + filePath);
            chunks = chunks_seen;
            payloadTotal = payload_seen;
            return ops_seen;
        }

        ++chunks_seen;
        payload_seen += hdr.payloadBytes;
        if (sink) {
            if (crc32(payload.data(), payload.size()) != hdr.crc)
                throw TraceFormatError("trace chunk CRC mismatch: " +
                                       filePath);
            // Decode the whole chunk into the reusable block, then
            // hand it to the sink in one consumeBatch call — no
            // per-op virtual dispatch on the replay path. The chunk
            // interior decodes through the unchecked fast cursor
            // (maxEncodedOpBytes guarantees every read stays in
            // bounds); the tail falls back to the checked Decoder,
            // so truncation still surfaces as a clean error.
            if (block.capacity() < hdr.opCount)
                block = OpBlock(hdr.opCount);
            block.clear();
            uint64_t prev_pc = 0;
            uint64_t prev_mem = 0;
            const uint8_t *pay = payload.data();
            const uint8_t *pay_end = pay + payload.size();
            FastCursor fast{pay};
            uint32_t i = 0;
            while (i < hdr.opCount &&
                   static_cast<size_t>(pay_end - fast.p) >=
                       maxEncodedOpBytes) {
                decodeOp(fast, prev_pc, prev_mem, block, filePath);
                ++i;
            }
            Decoder dec(fast.p,
                        static_cast<size_t>(pay_end - fast.p));
            CheckedCursor checked{dec};
            for (; i < hdr.opCount; ++i)
                decodeOp(checked, prev_pc, prev_mem, block, filePath);
            if (dec.remaining() != 0)
                throw TraceFormatError(
                    "trailing bytes in trace chunk: " + filePath);
            sink->consumeBatch(block.data(), block.size());
        }
        ops_seen += hdr.opCount;
    }
}

void
TraceReader::scanFooter()
{
    walkChunks(nullptr);
}

uint64_t
TraceReader::replayInto(TraceSink &sink)
{
    return walkChunks(&sink);
}

uint64_t
TraceReader::regionBytes() const
{
    uint64_t total = 0;
    for (const auto &fn : regionTable)
        total += fn.bytes;
    return total;
}

double
TraceReader::bytesPerOp() const
{
    return footerOps ? static_cast<double>(payloadTotal) /
                           static_cast<double>(footerOps)
                     : 0.0;
}

} // namespace wcrt
