/**
 * @file
 * Writer-side `.wtrace` encoding: the shared frame encoders and the
 * file-backed TraceWriter sink.
 *
 * The encoding lives in three transport-agnostic pieces —
 * encodeHeaderFrame(), ChunkEncoder and encodeFooterFrame() — each
 * producing one complete frame (fixed prefix + payload) as a byte
 * vector. TraceWriter appends those frames to a file; ShmChunkSink
 * (tracefile/shm_ring.hh) pushes the very same frames into a
 * shared-memory ring. Because both transports run the one encoder,
 * the byte stream a consumer sees is identical whichever carried it,
 * and TraceReader needs no transport-specific parsing.
 *
 * TraceWriter is a TraceSink: attach it wherever a SimCpu or
 * FootprintSweep would go — directly, or behind a TeeSink to capture
 * and simulate in one pass. The file header snapshots the run's
 * CodeLayout region table; the footer adds the I/O and data-behaviour
 * accounting once execute() finishes, so a replayed profile
 * reproduces the full WorkloadRun, not just the micro-architecture
 * counters.
 */

#ifndef WCRT_TRACEFILE_TRACE_WRITER_HH
#define WCRT_TRACEFILE_TRACE_WRITER_HH

#include <fstream>
#include <string>
#include <vector>

#include "sysmon/sysmon.hh"
#include "trace/code_layout.hh"
#include "tracefile/format.hh"

namespace wcrt {

namespace tracefile {

/**
 * Encode the complete file-header frame: the 16-byte fixed prefix
 * (magic, version, payload length, payload CRC) followed by the
 * header payload (run identity + region table).
 */
std::vector<uint8_t> encodeHeaderFrame(const TraceMeta &meta,
                                       const CodeLayout &layout);

/**
 * Encode the complete footer frame: the 12-byte chunk prefix with
 * opCount 0 followed by the accounting payload. `total_ops` must
 * equal the op count actually framed into the stream ahead of it —
 * readers reject the stream otherwise.
 */
std::vector<uint8_t> encodeFooterFrame(uint64_t total_ops,
                                       const IoCounters &io,
                                       const DataBehavior &data);

/**
 * Stateful op-to-chunk encoder: packs MicroOps into the format's
 * delta/varint encoding and frames them as complete chunks. One
 * instance encodes one stream; the pc/memAddr delta state resets at
 * every chunk boundary (takeFrame), matching the format rule that
 * chunks decode independently.
 */
class ChunkEncoder
{
  public:
    explicit ChunkEncoder(uint32_t chunk_ops = defaultChunkOps)
        : chunkOps(chunk_ops ? chunk_ops : defaultChunkOps)
    {
    }

    /**
     * Encode one op into the pending chunk.
     * @return true when the chunk reached its op budget and should be
     *         framed with takeFrame() before the next add().
     */
    bool add(const MicroOp &op);

    /** Ops encoded into the pending (unframed) chunk. */
    uint32_t pendingOps() const { return bufOps; }

    /**
     * Frame the pending ops as one complete chunk (12-byte prefix +
     * payload) into `frame` (replacing its contents), and reset the
     * chunk state for the next one. Must not be called with zero
     * pending ops — an opCount of 0 is the footer marker.
     */
    void takeFrame(std::vector<uint8_t> &frame);

  private:
    uint32_t chunkOps;
    std::vector<uint8_t> buf;  //!< current chunk's encoded payload
    uint32_t bufOps = 0;
    uint64_t prevPc = 0;
    uint64_t prevMem = 0;
};

} // namespace tracefile

/** Streaming encoder for one trace file. */
class TraceWriter : public TraceSink
{
  public:
    /**
     * Open `path` and write the file header immediately.
     *
     * @param path Output file; an existing file is overwritten.
     * @param meta Run identity stored in the header.
     * @param layout Code layout whose region table the header carries.
     * @param chunk_ops Ops per chunk (tunes seek granularity vs
     *        header overhead).
     */
    TraceWriter(const std::string &path, const TraceMeta &meta,
                const CodeLayout &layout,
                uint32_t chunk_ops = tracefile::defaultChunkOps);

    /** Finishes the file (with empty accounting) if still open. */
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: encodes the whole block behind one virtual
     * call, honouring the same chunk boundaries as per-op emission
     * (the produced file is byte-identical).
     */
    void consumeBatch(const OpBlockView &ops) override;

    /**
     * Flush the last chunk and write the footer. Must be the final
     * call; consume() afterwards is an error.
     *
     * @param io I/O volumes the run accumulated.
     * @param data Data-behaviour volumes the run accumulated.
     */
    void finish(const IoCounters &io = {}, const DataBehavior &data = {});

    /** Ops recorded so far. */
    uint64_t opsWritten() const { return totalOps; }

    /** File bytes emitted so far (headers + payloads). */
    uint64_t bytesWritten() const { return fileBytes; }

    /** Encoded payload bytes (excludes file/chunk headers). */
    uint64_t payloadBytes() const { return payloadTotal; }

  private:
    void flushChunk();
    void writeFrame(const std::vector<uint8_t> &frame);

    std::ofstream out;
    std::string path;
    tracefile::ChunkEncoder encoder;
    std::vector<uint8_t> frame;  //!< reusable framed-chunk buffer
    uint64_t totalOps = 0;
    uint64_t fileBytes = 0;
    uint64_t payloadTotal = 0;
    bool finished = false;
};

} // namespace wcrt

#endif // WCRT_TRACEFILE_TRACE_WRITER_HH
