/**
 * @file
 * TraceWriter: a TraceSink that records the op stream to a `.wtrace`
 * file instead of (or while) simulating it.
 *
 * Attach it wherever a SimCpu or FootprintSweep would go — directly,
 * or behind a TeeSink to capture and simulate in one pass. The file
 * header snapshots the run's CodeLayout region table; the footer adds
 * the I/O and data-behaviour accounting once execute() finishes, so a
 * replayed profile reproduces the full WorkloadRun, not just the
 * micro-architecture counters.
 */

#ifndef WCRT_TRACEFILE_TRACE_WRITER_HH
#define WCRT_TRACEFILE_TRACE_WRITER_HH

#include <fstream>
#include <string>
#include <vector>

#include "sysmon/sysmon.hh"
#include "trace/code_layout.hh"
#include "tracefile/format.hh"

namespace wcrt {

/** Streaming encoder for one trace file. */
class TraceWriter : public TraceSink
{
  public:
    /**
     * Open `path` and write the file header immediately.
     *
     * @param path Output file; an existing file is overwritten.
     * @param meta Run identity stored in the header.
     * @param layout Code layout whose region table the header carries.
     * @param chunk_ops Ops per chunk (tunes seek granularity vs
     *        header overhead).
     */
    TraceWriter(const std::string &path, const TraceMeta &meta,
                const CodeLayout &layout,
                uint32_t chunk_ops = tracefile::defaultChunkOps);

    /** Finishes the file (with empty accounting) if still open. */
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: encodes the whole block behind one virtual
     * call, honouring the same chunk boundaries as per-op emission
     * (the produced file is byte-identical).
     */
    void consumeBatch(const OpBlockView &ops) override;

    /**
     * Flush the last chunk and write the footer. Must be the final
     * call; consume() afterwards is an error.
     *
     * @param io I/O volumes the run accumulated.
     * @param data Data-behaviour volumes the run accumulated.
     */
    void finish(const IoCounters &io = {}, const DataBehavior &data = {});

    /** Ops recorded so far. */
    uint64_t opsWritten() const { return totalOps; }

    /** File bytes emitted so far (headers + payloads). */
    uint64_t bytesWritten() const { return fileBytes; }

    /** Encoded payload bytes (excludes file/chunk headers). */
    uint64_t payloadBytes() const { return payloadTotal; }

  private:
    void writeHeader(const TraceMeta &meta, const CodeLayout &layout);
    void flushChunk();
    void encodeOp(const MicroOp &op);

    std::ofstream out;
    std::string path;
    uint32_t chunkOps;
    std::vector<uint8_t> buf;     //!< current chunk's encoded payload
    uint32_t bufOps = 0;
    uint64_t prevPc = 0;
    uint64_t prevMem = 0;
    uint64_t totalOps = 0;
    uint64_t fileBytes = 0;
    uint64_t payloadTotal = 0;
    bool finished = false;
};

} // namespace wcrt

#endif // WCRT_TRACEFILE_TRACE_WRITER_HH
