/**
 * @file
 * TraceReader: replays a `.wtrace` file into any TraceSink.
 *
 * Opening a reader parses and validates the file header (magic,
 * version, CRC) and the region table; replayInto() then streams every
 * stored op to a sink exactly as the live workload emitted it, so
 * SimCpu, FootprintSweep, MixCounter and SamplingSink all work
 * unchanged. Replay is block-based: each chunk is decoded into a
 * reusable op block and handed to the sink with one consumeBatch()
 * call, so a chunk-sized stretch of the stream crosses the sink
 * boundary per virtual dispatch instead of a single op. A reader can
 * replay its file any number of times; for parallel replay open one
 * reader per thread (see tracefile/replay.hh).
 *
 * File bytes arrive through a TraceSource (tracefile/trace_source.hh):
 * by default the file is memory-mapped and chunk payloads are decoded
 * straight out of the mapping with zero intermediate copies, with the
 * original buffered-ifstream path kept as the portable fallback.
 * ReaderOptions also selects how much per-chunk CRC work replay does
 * (the CrcMode trust ladder); the default verifies everything.
 */

#ifndef WCRT_TRACEFILE_TRACE_READER_HH
#define WCRT_TRACEFILE_TRACE_READER_HH

#include <memory>
#include <string>
#include <vector>

#include "sysmon/sysmon.hh"
#include "trace/code_layout.hh"
#include "tracefile/format.hh"
#include "tracefile/trace_source.hh"

namespace wcrt {

/** Decoder and replayer for one trace file. */
class TraceReader
{
  public:
    /**
     * Open `path` with the process-wide defaultReaderOptions() and
     * validate the header. Throws TraceFormatError on a missing file,
     * bad magic, unsupported version or header corruption.
     */
    explicit TraceReader(const std::string &path);

    /** Open `path` with explicit io/CRC policy. */
    TraceReader(const std::string &path, const ReaderOptions &options);

    /**
     * Read from an already-open source — e.g. a drained ShmSource —
     * labelled `display_name` in every error message and by path().
     * The io policy does not apply (the transport is the source), and
     * the verified-trace registry is never consulted or updated:
     * trust is keyed by file identity, which a non-file source does
     * not have, so CrcMode::Once checks every replay here exactly
     * like Always.
     */
    TraceReader(std::unique_ptr<TraceSource> source,
                const std::string &display_name,
                const ReaderOptions &options = defaultReaderOptions());

    /** Run identity stored in the header. */
    const TraceMeta &meta() const { return fileMeta; }

    /** The capture run's CodeLayout snapshot. */
    const std::vector<CodeLayout::Function> &regions() const
    {
        return regionTable;
    }

    /** Total static code bytes in the region table. */
    uint64_t regionBytes() const;

    /** Ops stored in the file (from the footer, no replay needed). */
    uint64_t opCount() const { return footerOps; }

    /** I/O accounting of the captured run. */
    const IoCounters &io() const { return footerIo; }

    /** Data-behaviour accounting of the captured run. */
    const DataBehavior &data() const { return footerData; }

    /** File size in bytes. */
    uint64_t fileBytes() const { return fileSize; }

    /** Encoded payload bytes across all op chunks. */
    uint64_t payloadBytes() const { return payloadTotal; }

    /** Number of op chunks. */
    uint64_t chunkCount() const { return chunks; }

    /** Encoded bytes per stored op. */
    double bytesPerOp() const;

    /**
     * Stream every op to `sink`, first to last. Throws
     * TraceFormatError on truncation or CRC mismatch. Returns the
     * number of ops replayed.
     */
    uint64_t replayInto(TraceSink &sink);

    /** Path this reader reads from. */
    const std::string &path() const { return filePath; }

    /** The policy this reader was opened with. */
    const ReaderOptions &options() const { return readerOpts; }

    /** Transport actually in use: "stream" or "mmap". */
    const char *ioName() const { return src->name(); }

    /**
     * Cumulative chunk-payload CRC computations this reader has
     * performed across all replays — the observable of the CrcMode
     * trust ladder (tests and `trace_tool stats` read it).
     */
    uint64_t chunkCrcChecks() const { return crcChecks; }

  private:
    void readHeader();
    void scanFooter();

    /**
     * Walk all chunks from the first op chunk. `sink` may be null
     * (validation/stats scan only). Returns ops visited.
     */
    uint64_t walkChunks(TraceSink *sink);

    std::string filePath;
    ReaderOptions readerOpts;
    std::unique_ptr<TraceSource> src;
    bool fileBacked = true;  //!< false bars the CRC trust registry
    OpBlock block;  //!< reusable decode target, one chunk at a time
    uint64_t firstChunk = 0;
    uint64_t crcChecks = 0;
    TraceMeta fileMeta;
    std::vector<CodeLayout::Function> regionTable;
    IoCounters footerIo;
    DataBehavior footerData;
    uint64_t footerOps = 0;
    uint64_t fileSize = 0;
    uint64_t payloadTotal = 0;
    uint64_t chunks = 0;
};

} // namespace wcrt

#endif // WCRT_TRACEFILE_TRACE_READER_HH
