#include "tracefile/trace_writer.hh"

#include <cstring>

#include "base/logging.hh"

namespace wcrt {

using namespace tracefile;

namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
putF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

/** Prefix `payload` with a (first, length, crc) frame header. */
std::vector<uint8_t>
framePayload(uint32_t first, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> frame;
    frame.reserve(12 + payload.size());
    putU32(frame, first);
    putU32(frame, static_cast<uint32_t>(payload.size()));
    putU32(frame, crc32(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

} // namespace

namespace tracefile {

std::vector<uint8_t>
encodeHeaderFrame(const TraceMeta &meta, const CodeLayout &layout)
{
    std::vector<uint8_t> payload;
    putString(payload, meta.workload);
    payload.push_back(static_cast<uint8_t>(meta.stackKind));
    payload.push_back(static_cast<uint8_t>(meta.category));
    putF64(payload, meta.scale);
    putVarint(payload, layout.size());
    for (size_t i = 0; i < layout.size(); ++i) {
        const auto &fn = layout.function(FunctionId{
            static_cast<uint32_t>(i)});
        putString(payload, fn.name);
        payload.push_back(static_cast<uint8_t>(fn.layer));
        putVarint(payload, fn.base);
        putVarint(payload, fn.bytes);
        putVarint(payload, fn.profile.overheadOps);
        putVarint(payload, fn.profile.rotationBytes);
    }

    // The file header's fixed prefix carries (magic, version) where a
    // chunk carries (opCount, payloadBytes) — same 16-vs-12 byte shape
    // TraceReader::readHeader expects.
    std::vector<uint8_t> frame;
    frame.reserve(16 + payload.size());
    putU32(frame, magic);
    putU32(frame, version);
    putU32(frame, static_cast<uint32_t>(payload.size()));
    putU32(frame, crc32(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

std::vector<uint8_t>
encodeFooterFrame(uint64_t total_ops, const IoCounters &io,
                  const DataBehavior &data)
{
    std::vector<uint8_t> payload;
    putVarint(payload, total_ops);
    putVarint(payload, io.diskReadBytes);
    putVarint(payload, io.diskWriteBytes);
    putVarint(payload, io.networkBytes);
    putVarint(payload, data.inputBytes);
    putVarint(payload, data.intermediateBytes);
    putVarint(payload, data.outputBytes);
    return framePayload(0, payload);  // opCount 0 marks the footer
}

bool
ChunkEncoder::add(const MicroOp &op)
{
    uint8_t flags = static_cast<uint8_t>(op.kind) & kindMask;
    flags |= static_cast<uint8_t>(static_cast<uint8_t>(op.purpose)
                                  << purposeShift) & purposeMask;
    if (op.taken)
        flags |= takenBit;

    bool has_mem;
    bool has_target;
    if (needsExtension(op)) {
        flags |= extBit;
        buf.push_back(flags);
        has_mem = op.memSize > 0 || op.memAddr != 0;
        has_target = isControl(op.kind) || op.target != 0;
        uint8_t ext = 0;
        ext |= has_mem ? extHasMem : 0;
        ext |= op.size != defaultOpSize ? extHasSize : 0;
        ext |= has_target ? extHasTarget : 0;
        buf.push_back(ext);
        if (op.size != defaultOpSize)
            buf.push_back(op.size);
    } else {
        buf.push_back(flags);
        has_mem = impliedHasMem(op.kind);
        has_target = isControl(op.kind);
    }

    putVarintSigned(buf, static_cast<int64_t>(op.pc - prevPc));
    prevPc = op.pc;
    if (has_mem) {
        putVarintSigned(buf, static_cast<int64_t>(op.memAddr - prevMem));
        prevMem = op.memAddr;
        buf.push_back(op.memSize);
    }
    if (has_target)
        putVarintSigned(buf, static_cast<int64_t>(op.target - op.pc));

    return ++bufOps >= chunkOps;
}

void
ChunkEncoder::takeFrame(std::vector<uint8_t> &frame)
{
    if (bufOps == 0)
        wcrt_panic("ChunkEncoder::takeFrame with no pending ops");
    frame.clear();
    frame.reserve(12 + buf.size());
    putU32(frame, bufOps);
    putU32(frame, static_cast<uint32_t>(buf.size()));
    putU32(frame, crc32(buf.data(), buf.size()));
    frame.insert(frame.end(), buf.begin(), buf.end());
    buf.clear();
    bufOps = 0;
    prevPc = 0;
    prevMem = 0;
}

} // namespace tracefile

TraceWriter::TraceWriter(const std::string &path_, const TraceMeta &meta,
                         const CodeLayout &layout, uint32_t chunk_ops)
    : out(path_, std::ios::binary | std::ios::trunc), path(path_),
      encoder(chunk_ops)
{
    if (!out)
        throw TraceFormatError("cannot open trace file for writing: " +
                               path);
    writeFrame(encodeHeaderFrame(meta, layout));
}

TraceWriter::~TraceWriter()
{
    if (!finished && out.is_open()) {
        try {
            finish();
        } catch (const TraceFormatError &e) {
            warn("trace writer teardown failed for ", path, ": ",
                 e.what());
        }
    }
}

void
TraceWriter::writeFrame(const std::vector<uint8_t> &f)
{
    out.write(reinterpret_cast<const char *>(f.data()),
              static_cast<std::streamsize>(f.size()));
    fileBytes += f.size();
}

void
TraceWriter::consume(const MicroOp &op)
{
    if (finished)
        wcrt_panic("TraceWriter::consume after finish");
    if (encoder.add(op))
        flushChunk();
    ++totalOps;
}

void
TraceWriter::consumeBatch(const OpBlockView &ops)
{
    if (finished)
        wcrt_panic("TraceWriter::consumeBatch after finish");
    for (size_t i = 0; i < ops.count; ++i) {
        if (encoder.add(ops[i]))
            flushChunk();
    }
    totalOps += ops.count;
}

void
TraceWriter::flushChunk()
{
    if (encoder.pendingOps() == 0)
        return;
    encoder.takeFrame(frame);
    writeFrame(frame);
    payloadTotal += frame.size() - 12;
}

void
TraceWriter::finish(const IoCounters &io, const DataBehavior &data)
{
    if (finished)
        return;
    flushChunk();
    writeFrame(encodeFooterFrame(totalOps, io, data));
    out.flush();
    if (!out)
        throw TraceFormatError("short write on trace file: " + path);
    out.close();
    finished = true;
}

} // namespace wcrt
