#include "tracefile/replay.hh"

#include <cmath>
#include <exception>
#include <mutex>

#include "base/worker_pool.hh"

namespace wcrt {

unsigned
replayWorkers(unsigned requested)
{
    if (requested > 0)
        return requested;
    return WorkerPool::hardwareWorkers();
}

void
parallelFor(size_t count, const std::function<void(size_t)> &job,
            unsigned threads)
{
    if (count == 0)
        return;
    // The one resolution of the worker request on this path: every
    // runner below delegates here, so a --jobs value can never be
    // interpreted differently by the cap and by the pool.
    size_t workers = std::min<size_t>(replayWorkers(threads), count);
    if (workers <= 1) {
        // Strictly serial fast path: no pool, no ticket, exceptions
        // propagate directly.
        for (size_t i = 0; i < count; ++i)
            job(i);
        return;
    }

    // Fan out over the process-wide pool with a bounded-claim ticket:
    // at most `workers` executors (this thread plus workers - 1 pool
    // threads) run jobs concurrently, and this thread participates
    // until every index is claimed. Jobs may throw (replays surface
    // TraceFormatError on corrupt files); the first exception is
    // captured and rethrown after the ticket settles so the pool
    // threads never unwind.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    WorkerPool &pool = WorkerPool::shared();
    pool.runBounded(count, static_cast<unsigned>(workers),
                    [&](size_t i) {
        try {
            job(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
    });
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<CpuReport>
replayOnConfigs(const std::string &trace_path,
                const std::vector<MachineConfig> &configs,
                unsigned threads)
{
    std::vector<CpuReport> reports(configs.size());
    parallelFor(configs.size(), [&](size_t i) {
        TraceReader reader(trace_path);
        SimCpu cpu(configs[i]);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

const char *
toString(MrcMode mode)
{
    switch (mode) {
      case MrcMode::StackDistance:
        return "stack";
      case MrcMode::ShardedOracle:
        return "oracle";
      default:
        return "verify";
    }
}

bool
parseMrcMode(const std::string &name, MrcMode &out)
{
    if (name == "stack") {
        out = MrcMode::StackDistance;
    } else if (name == "oracle") {
        out = MrcMode::ShardedOracle;
    } else if (name == "verify") {
        out = MrcMode::Verify;
    } else {
        return false;
    }
    return true;
}

MrcResult
replaySweepLadder(const std::string &trace_path, SweepKind kind,
                  const std::vector<uint32_t> &sizes_kb, MrcMode mode,
                  unsigned threads, uint32_t assoc, uint32_t line_bytes)
{
    MrcResult result;
    if (sizes_kb.empty())
        return result;

    // One decode pass total in every mode: the sink(s) spread their
    // own internal work over the shared pool per block, so a single
    // TraceReader feeds the whole ladder instead of each worker
    // re-decoding the trace for its share. The worker request is
    // resolved exactly once, here, and handed down as executor caps.
    unsigned workers = replayWorkers(threads);
    unsigned sink_workers = workers > 1 ? workers : 0;
    switch (mode) {
      case MrcMode::StackDistance: {
        StackDistanceProfile profile(line_bytes, sink_workers);
        TraceReader reader(trace_path);
        reader.replayInto(profile);
        result.ratios = profile.missRatios(kind, sizes_kb);
        break;
      }
      case MrcMode::ShardedOracle: {
        FootprintSweep sweep(sizes_kb, assoc, line_bytes, sink_workers);
        TraceReader reader(trace_path);
        reader.replayInto(sweep);
        result.ratios = sweep.missRatios(kind);
        break;
      }
      case MrcMode::Verify: {
        // One decode, two sinks: a synchronous tee delivers every
        // block to both the profile and the sweep, so the comparison
        // can never be skewed by two decodes seeing different chunk
        // boundaries. The sinks keep their internal parallelism.
        StackDistanceProfile profile(line_bytes, sink_workers);
        FootprintSweep sweep(sizes_kb, assoc, line_bytes, sink_workers);
        TeeSink tee(0);
        tee.addSink(&profile);
        tee.addSink(&sweep);
        TraceReader reader(trace_path);
        reader.replayInto(tee);
        result.ratios = profile.missRatios(kind, sizes_kb);
        result.oracleRatios = sweep.missRatios(kind);
        for (size_t i = 0; i < result.ratios.size(); ++i)
            result.maxDivergence = std::max(
                result.maxDivergence,
                std::abs(result.ratios[i] - result.oracleRatios[i]));
        break;
      }
    }
    return result;
}

std::vector<double>
replaySweepLadder(const std::string &trace_path, SweepKind kind,
                  const std::vector<uint32_t> &sizes_kb, unsigned threads,
                  uint32_t assoc, uint32_t line_bytes)
{
    if (sizes_kb.empty())
        return {};

    // One decode pass total: the sweep itself spreads its rung-stream
    // shards over the shared worker pool per block, so a single
    // TraceReader feeds every rung instead of each worker re-decoding
    // the trace for its share of the ladder. The rungs' caches are
    // independent either way, so every ratio stays bit-identical to a
    // sequential sweep. The worker request is resolved exactly once,
    // here, and handed to the sweep as its executor cap.
    unsigned workers = replayWorkers(threads);
    FootprintSweep sweep(sizes_kb, assoc, line_bytes,
                         workers > 1 ? workers : 0);
    TraceReader reader(trace_path);
    reader.replayInto(sweep);
    return sweep.missRatios(kind);
}

std::vector<CpuReport>
replayTracesOn(const std::vector<std::string> &trace_paths,
               const MachineConfig &config, unsigned threads)
{
    std::vector<CpuReport> reports(trace_paths.size());
    parallelFor(trace_paths.size(), [&](size_t i) {
        TraceReader reader(trace_paths[i]);
        SimCpu cpu(config);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

} // namespace wcrt
