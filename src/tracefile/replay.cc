#include "tracefile/replay.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wcrt {

unsigned
replayWorkers(unsigned requested)
{
    if (requested > 0)
        return requested;
    // hardware_concurrency() is allowed to return 0 when the hardware
    // cannot be probed; fall back to a small pool so the result is
    // always >= 1.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 2;
    return hw;
}

void
parallelFor(size_t count, const std::function<void(size_t)> &job,
            unsigned threads)
{
    if (count == 0)
        return;
    size_t workers = std::min<size_t>(replayWorkers(threads), count);
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i)
            job(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<CpuReport>
replayOnConfigs(const std::string &trace_path,
                const std::vector<MachineConfig> &configs,
                unsigned threads)
{
    std::vector<CpuReport> reports(configs.size());
    parallelFor(configs.size(), [&](size_t i) {
        TraceReader reader(trace_path);
        SimCpu cpu(configs[i]);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

std::vector<double>
replaySweepLadder(const std::string &trace_path, SweepKind kind,
                  const std::vector<uint32_t> &sizes_kb, unsigned threads,
                  uint32_t assoc, uint32_t line_bytes)
{
    if (sizes_kb.empty())
        return {};

    // One decode pass total: the sweep itself spreads its 3 x K
    // independent cache rungs over a worker pool per block, so a
    // single TraceReader feeds every rung instead of each worker
    // re-decoding the trace for its share of the ladder. The rungs'
    // caches are independent either way, so every ratio stays
    // bit-identical to a sequential sweep.
    unsigned workers = replayWorkers(threads);
    FootprintSweep sweep(sizes_kb, assoc, line_bytes,
                         workers > 1 ? workers : 0);
    TraceReader reader(trace_path);
    reader.replayInto(sweep);
    return sweep.missRatios(kind);
}

std::vector<CpuReport>
replayTracesOn(const std::vector<std::string> &trace_paths,
               const MachineConfig &config, unsigned threads)
{
    std::vector<CpuReport> reports(trace_paths.size());
    parallelFor(trace_paths.size(), [&](size_t i) {
        TraceReader reader(trace_paths[i]);
        SimCpu cpu(config);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

} // namespace wcrt
