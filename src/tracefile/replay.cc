#include "tracefile/replay.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wcrt {

unsigned
replayWorkers(unsigned requested)
{
    if (requested > 0)
        return requested;
    // hardware_concurrency() is allowed to return 0 when the hardware
    // cannot be probed; fall back to a small pool so the result is
    // always >= 1.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 2;
    return hw;
}

void
parallelFor(size_t count, const std::function<void(size_t)> &job,
            unsigned threads)
{
    if (count == 0)
        return;
    size_t workers = std::min<size_t>(replayWorkers(threads), count);
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i)
            job(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<CpuReport>
replayOnConfigs(const std::string &trace_path,
                const std::vector<MachineConfig> &configs,
                unsigned threads)
{
    std::vector<CpuReport> reports(configs.size());
    parallelFor(configs.size(), [&](size_t i) {
        TraceReader reader(trace_path);
        SimCpu cpu(configs[i]);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

std::vector<double>
replaySweepLadder(const std::string &trace_path, SweepKind kind,
                  const std::vector<uint32_t> &sizes_kb, unsigned threads,
                  uint32_t assoc, uint32_t line_bytes)
{
    if (sizes_kb.empty())
        return {};

    // One decode pass per worker, not per rung: each worker replays
    // the trace once into a multi-capacity sweep over its contiguous
    // share of the ladder. The rungs' caches are independent either
    // way, so the grouping leaves every ratio bit-identical.
    size_t groups =
        std::min<size_t>(replayWorkers(threads), sizes_kb.size());
    size_t per_group = (sizes_kb.size() + groups - 1) / groups;

    std::vector<double> ratios(sizes_kb.size(), 0.0);
    parallelFor(groups, [&](size_t g) {
        size_t begin = g * per_group;
        size_t end = std::min(begin + per_group, sizes_kb.size());
        if (begin >= end)
            return;
        std::vector<uint32_t> share(sizes_kb.begin() + begin,
                                    sizes_kb.begin() + end);
        TraceReader reader(trace_path);
        FootprintSweep sweep(share, assoc, line_bytes);
        reader.replayInto(sweep);
        auto share_ratios = sweep.missRatios(kind);
        for (size_t i = begin; i < end; ++i)
            ratios[i] = share_ratios[i - begin];
    }, threads);
    return ratios;
}

std::vector<CpuReport>
replayTracesOn(const std::vector<std::string> &trace_paths,
               const MachineConfig &config, unsigned threads)
{
    std::vector<CpuReport> reports(trace_paths.size());
    parallelFor(trace_paths.size(), [&](size_t i) {
        TraceReader reader(trace_paths[i]);
        SimCpu cpu(config);
        reader.replayInto(cpu);
        reports[i] = cpu.report();
    }, threads);
    return reports;
}

} // namespace wcrt
