#include "tracefile/trace_source.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define WCRT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WCRT_HAS_MMAP 0
#endif

namespace wcrt {

namespace {

/**
 * The fallback transport: buffered ifstream reads into a reusable
 * scratch buffer, one copy per view. This is byte-for-byte the
 * original TraceReader read path, kept for platforms without mmap and
 * as the reference implementation the mmap path is tested against.
 */
class StreamSource : public TraceSource
{
  public:
    explicit StreamSource(const std::string &path)
        : in(path, std::ios::binary), filePath(path)
    {
        if (!in)
            throw TraceFormatError("cannot open trace file: " + path);
        in.seekg(0, std::ios::end);
        std::streamoff end = in.tellg();
        // A failed tellg() returns -1; casting that straight to
        // uint64_t would disarm every downstream truncation check.
        if (!in || end < 0)
            throw TraceFormatError(
                "cannot determine trace file size: " + path);
        fileBytes = static_cast<uint64_t>(end);
        in.seekg(0, std::ios::beg);
    }

    void
    seek(uint64_t off) override
    {
        in.clear();
        in.seekg(static_cast<std::streamoff>(off));
        pos = off;
    }

    const uint8_t *
    view(size_t n) override
    {
        if (buffer.size() < n)
            buffer.resize(n);
        if (n > 0 &&
            !in.read(reinterpret_cast<char *>(buffer.data()),
                     static_cast<std::streamsize>(n)))
            throw TraceFormatError("trace file read failed: " +
                                   filePath);
        pos += n;
        return buffer.data();
    }

    const char *name() const override { return "stream"; }

  private:
    std::ifstream in;
    std::string filePath;
    std::vector<uint8_t> buffer;
};

#if WCRT_HAS_MMAP

/**
 * The zero-copy transport: the whole file is mapped read-only once
 * and every view is a pointer into the mapping, so chunk payloads
 * reach the SWAR fast cursor without an intermediate buffer. The
 * format's bounds discipline (payloadBytes checked against the file
 * size before any view, `maxEncodedOpBytes` guarding every fast-path
 * load) is what keeps all decode reads inside the mapping.
 */
class MmapSource : public TraceSource
{
  public:
    explicit MmapSource(const std::string &path)
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw TraceFormatError("cannot open trace file: " + path);
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            throw TraceFormatError(
                "cannot determine trace file size: " + path);
        }
        fileBytes = static_cast<uint64_t>(st.st_size);
        if (fileBytes > 0) {
            void *m = ::mmap(nullptr, fileBytes, PROT_READ,
                             MAP_PRIVATE, fd, 0);
            if (m == MAP_FAILED) {
                ::close(fd);
                throw TraceFormatError("cannot mmap trace file: " +
                                       path);
            }
            base = static_cast<const uint8_t *>(m);
            // Replay is a front-to-back pass (often repeated);
            // advisory only, so failure is ignored.
            ::madvise(const_cast<uint8_t *>(base), fileBytes,
                      MADV_SEQUENTIAL);
        }
        ::close(fd);  // the mapping outlives the descriptor
    }

    ~MmapSource() override
    {
        if (base)
            ::munmap(const_cast<uint8_t *>(base), fileBytes);
    }

    MmapSource(const MmapSource &) = delete;
    MmapSource &operator=(const MmapSource &) = delete;

    void seek(uint64_t off) override { pos = off; }

    const uint8_t *
    view(size_t n) override
    {
        const uint8_t *p = base + pos;
        pos += n;
        return p;
    }

    const char *name() const override { return "mmap"; }

  private:
    const uint8_t *base = nullptr;
};

#endif // WCRT_HAS_MMAP

std::mutex g_policy_mutex;
ReaderOptions g_default_options;

std::mutex g_trust_mutex;
std::unordered_set<std::string> g_verified_traces;

/**
 * Registry key: canonical path + size + mtime. Any rewrite changes
 * the mtime (and usually the size), so trust never outlives the
 * bytes it was earned on. Falls back to the raw path when the file
 * cannot be stat'ed (the caller is about to fail opening it anyway).
 */
std::string
trustKey(const std::string &path)
{
    std::error_code ec;
    namespace fs = std::filesystem;
    fs::path canon = fs::canonical(path, ec);
    if (ec)
        return path;
    uint64_t size = fs::file_size(canon, ec);
    if (ec)
        return path;
    auto mtime = fs::last_write_time(canon, ec);
    if (ec)
        return path;
    return canon.string() + "|" + std::to_string(size) + "|" +
           std::to_string(static_cast<long long>(
               mtime.time_since_epoch().count()));
}

} // namespace

const char *
toString(TraceIo io)
{
    switch (io) {
      case TraceIo::Stream:
        return "stream";
      case TraceIo::Mmap:
        return "mmap";
      default:
        return "auto";
    }
}

const char *
toString(CrcMode crc)
{
    switch (crc) {
      case CrcMode::Once:
        return "once";
      case CrcMode::Never:
        return "never";
      default:
        return "always";
    }
}

bool
parseTraceIo(const std::string &name, TraceIo &out)
{
    if (name == "auto") {
        out = TraceIo::Auto;
    } else if (name == "stream") {
        out = TraceIo::Stream;
    } else if (name == "mmap") {
        out = TraceIo::Mmap;
    } else {
        return false;
    }
    return true;
}

bool
parseCrcMode(const std::string &name, CrcMode &out)
{
    if (name == "always") {
        out = CrcMode::Always;
    } else if (name == "once") {
        out = CrcMode::Once;
    } else if (name == "never") {
        out = CrcMode::Never;
    } else {
        return false;
    }
    return true;
}

bool
mmapAvailable()
{
    return WCRT_HAS_MMAP != 0;
}

ReaderOptions
defaultReaderOptions()
{
    std::lock_guard<std::mutex> lock(g_policy_mutex);
    return g_default_options;
}

void
setDefaultReaderOptions(const ReaderOptions &opts)
{
    std::lock_guard<std::mutex> lock(g_policy_mutex);
    g_default_options = opts;
}

bool
traceVerifiedInProcess(const std::string &path)
{
    std::string key = trustKey(path);
    std::lock_guard<std::mutex> lock(g_trust_mutex);
    return g_verified_traces.count(key) != 0;
}

void
markTraceVerified(const std::string &path)
{
    std::string key = trustKey(path);
    std::lock_guard<std::mutex> lock(g_trust_mutex);
    g_verified_traces.insert(key);
}

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, TraceIo io)
{
#if WCRT_HAS_MMAP
    if (io == TraceIo::Mmap || io == TraceIo::Auto)
        return std::make_unique<MmapSource>(path);
#else
    if (io == TraceIo::Mmap)
        throw TraceFormatError(
            "mmap trace io is not supported on this platform: " + path);
#endif
    return std::make_unique<StreamSource>(path);
}

} // namespace wcrt
