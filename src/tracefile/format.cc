#include "tracefile/format.hh"

#include <array>

namespace wcrt {
namespace tracefile {

namespace {

/**
 * Slicing-by-8 CRC tables: table[0] is the classic byte-wise table,
 * table[j][b] extends it so eight input bytes fold in per iteration.
 */
std::array<std::array<uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<uint32_t, 256>, 8> tables{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (int j = 1; j < 8; ++j)
        for (uint32_t i = 0; i < 256; ++i)
            tables[j][i] = tables[0][tables[j - 1][i] & 0xff] ^
                           (tables[j - 1][i] >> 8);
    return tables;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t len)
{
    static const auto tables = makeCrcTables();
    const auto &t = tables;
    uint32_t c = 0xffffffffu;
    while (len >= 8) {
        c ^= static_cast<uint32_t>(data[0]) |
             static_cast<uint32_t>(data[1]) << 8 |
             static_cast<uint32_t>(data[2]) << 16 |
             static_cast<uint32_t>(data[3]) << 24;
        c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^
            t[5][(c >> 16) & 0xff] ^ t[4][c >> 24] ^ t[3][data[4]] ^
            t[2][data[5]] ^ t[1][data[6]] ^ t[0][data[7]];
        data += 8;
        len -= 8;
    }
    while (len--)
        c = t[0][(c ^ *data++) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
Decoder::throwTruncated(const char *what)
{
    throw TraceFormatError(std::string("trace payload truncated (") +
                           what + ")");
}

void
Decoder::throwMalformedVarint()
{
    throw TraceFormatError("malformed varint (more than 10 bytes)");
}

std::string
Decoder::string()
{
    uint64_t len = varint();
    if (len > remaining())
        throw TraceFormatError("trace payload truncated (string)");
    std::string s(reinterpret_cast<const char *>(cur),
                  static_cast<size_t>(len));
    cur += len;
    return s;
}

bool
needsExtension(const MicroOp &op)
{
    if (op.size != defaultOpSize)
        return true;
    if ((op.memSize > 0 || op.memAddr != 0) != impliedHasMem(op.kind))
        return true;
    bool has_target = op.target != 0;
    if (has_target != isControl(op.kind) && has_target)
        return true;
    return false;
}

} // namespace tracefile

const char *
toString(OpKind k)
{
    switch (k) {
      case OpKind::IntAlu: return "IntAlu";
      case OpKind::IntMul: return "IntMul";
      case OpKind::IntDiv: return "IntDiv";
      case OpKind::FpAlu: return "FpAlu";
      case OpKind::FpMul: return "FpMul";
      case OpKind::FpDiv: return "FpDiv";
      case OpKind::Load: return "Load";
      case OpKind::Store: return "Store";
      case OpKind::BranchCond: return "BranchCond";
      case OpKind::BranchUncond: return "BranchUncond";
      case OpKind::BranchIndirect: return "BranchIndirect";
      case OpKind::Call: return "Call";
      case OpKind::CallIndirect: return "CallIndirect";
      case OpKind::Return: return "Return";
      case OpKind::Other: return "Other";
    }
    return "?";
}

} // namespace wcrt
