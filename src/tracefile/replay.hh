/**
 * @file
 * Parallel multi-config replay runner.
 *
 * One captured trace can feed any number of machine configurations,
 * and N traces can feed one configuration — each replay is an
 * independent read-only pass over a file, so they parallelize
 * perfectly. The helpers here fan jobs out over the process-wide
 * WorkerPool::shared() (each job opens its own TraceReader) and
 * always return results in input order, so parallel runs are
 * bit-identical to serial ones. No path spawns ad-hoc threads: a
 * `threads` request is resolved exactly once (0 = hardware,
 * 1 = strictly serial on the caller, N = bounded-claim cap on the
 * shared pool) and the calling thread always participates in its own
 * fan-out.
 */

#ifndef WCRT_TRACEFILE_REPLAY_HH
#define WCRT_TRACEFILE_REPLAY_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/footprint.hh"
#include "sim/machine.hh"
#include "sim/sim_cpu.hh"
#include "sim/stack_distance.hh"
#include "tracefile/trace_reader.hh"

namespace wcrt {

/** Worker count actually used for a request (0 → hardware threads). */
unsigned replayWorkers(unsigned requested = 0);

/**
 * Run `count` independent jobs on the shared worker pool, with the
 * caller participating. job(i) is invoked exactly once for every i in
 * [0, count); the first exception any job throws is rethrown on the
 * caller after the ticket settles. A resolved worker count of 1 (or
 * count == 1) bypasses the pool entirely and runs serially.
 *
 * @param count Number of jobs.
 * @param job Callable receiving the job index; must be thread-safe
 *        with respect to the other indices.
 * @param threads Worker cap (0 → hardware threads); resolved once via
 *        replayWorkers() — the single source of the worker count.
 */
void parallelFor(size_t count, const std::function<void(size_t)> &job,
                 unsigned threads = 0);

/**
 * Replay one trace into a SimCpu per machine configuration, in
 * parallel. Results are indexed like `configs`.
 */
std::vector<CpuReport> replayOnConfigs(
    const std::string &trace_path,
    const std::vector<MachineConfig> &configs, unsigned threads = 0);

/**
 * How a miss-ratio curve (MRC) is computed from a trace.
 *
 * StackDistance is the primary path: one decode pass feeds one
 * Mattson reuse-distance profile and the whole curve — any ladder —
 * falls out of the distance histogram (fully-associative LRU;
 * sim/stack_distance.hh). ShardedOracle is the validation path: the
 * set-associative FootprintSweep, bit-exact for the paper's 8-way
 * rungs, at the cost of one tag walk per rung. Verify runs both over
 * a single decode pass and reports the maximum divergence between
 * the curves.
 */
enum class MrcMode : uint8_t { StackDistance, ShardedOracle, Verify };

/** Mode name as the CLI flags spell it: stack / oracle / verify. */
const char *toString(MrcMode mode);

/**
 * Parse a CLI mode name ("stack", "oracle", "verify").
 * @return false when the name matches no mode (`out` untouched).
 */
bool parseMrcMode(const std::string &name, MrcMode &out);

/**
 * Documented divergence bound between the fully-associative
 * stack-distance curve and the 8-way sharded oracle on the paper's
 * ladder. The gap runs both ways: the stack curve avoids the
 * oracle's conflict misses, but a loop slightly wider than a rung
 * thrashes fully-associative LRU where an uneven set mapping still
 * retains lines — so neither curve dominates. On every workload
 * roster and synthetic stream measured the absolute gap stays under
 * this bound (most rungs are far closer; the gap peaks at the
 * smallest capacities). Verify-mode consumers (fig6's CI check,
 * tests) enforce it.
 */
inline constexpr double kMrcOracleDivergenceBound = 0.06;

/** A miss-ratio curve computed by one replaySweepLadder mode. */
struct MrcResult
{
    /**
     * Miss ratio per capacity: the stack-distance curve in
     * StackDistance and Verify modes, the set-associative sweep's in
     * ShardedOracle mode.
     */
    std::vector<double> ratios;
    /** The oracle's curve — filled in Verify mode only. */
    std::vector<double> oracleRatios;
    /** max |ratios - oracleRatios| over the ladder (Verify only). */
    double maxDivergence = 0.0;
};

/**
 * Replay one trace across a cache-capacity ladder in the selected
 * MrcMode: one decode pass in every mode (Verify tees the decoded
 * blocks into both sinks), with the sinks spreading their internal
 * work over the shared pool under the worker cap.
 *
 * @param trace_path Captured trace.
 * @param kind Which reference stream to measure.
 * @param sizes_kb Capacity ladder in KB.
 * @param mode Curve computation path (see MrcMode).
 * @param threads Worker cap (0 → hardware threads).
 * @param assoc Oracle associativity (paper: 8); the stack-distance
 *        curve is fully associative by construction.
 * @param line_bytes Line size (paper: 64).
 */
MrcResult replaySweepLadder(const std::string &trace_path,
                            SweepKind kind,
                            const std::vector<uint32_t> &sizes_kb,
                            MrcMode mode, unsigned threads = 0,
                            uint32_t assoc = 8,
                            uint32_t line_bytes = 64);

/**
 * Back-compat ladder replay: the ShardedOracle path — one
 * multi-capacity FootprintSweep fed by one decode pass, rung-stream
 * shards spread over the shared pool — returning just the curve.
 * Identical to replaySweepLadder(..., MrcMode::ShardedOracle).ratios.
 *
 * @param trace_path Captured trace.
 * @param kind Which reference stream to measure.
 * @param sizes_kb Capacity ladder in KB.
 * @param threads Worker cap (0 → hardware threads).
 * @param assoc Associativity of every rung (paper: 8).
 * @param line_bytes Line size (paper: 64).
 */
std::vector<double> replaySweepLadder(const std::string &trace_path,
                                      SweepKind kind,
                                      const std::vector<uint32_t> &sizes_kb,
                                      unsigned threads = 0,
                                      uint32_t assoc = 8,
                                      uint32_t line_bytes = 64);

/**
 * Replay many traces on one machine configuration, in parallel.
 * Results are indexed like `trace_paths`.
 */
std::vector<CpuReport> replayTracesOn(
    const std::vector<std::string> &trace_paths,
    const MachineConfig &config, unsigned threads = 0);

} // namespace wcrt

#endif // WCRT_TRACEFILE_REPLAY_HH
