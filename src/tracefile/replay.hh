/**
 * @file
 * Parallel multi-config replay runner.
 *
 * One captured trace can feed any number of machine configurations,
 * and N traces can feed one configuration — each replay is an
 * independent read-only pass over a file, so they parallelize
 * perfectly. The helpers here fan jobs out over the process-wide
 * WorkerPool::shared() (each job opens its own TraceReader) and
 * always return results in input order, so parallel runs are
 * bit-identical to serial ones. No path spawns ad-hoc threads: a
 * `threads` request is resolved exactly once (0 = hardware,
 * 1 = strictly serial on the caller, N = bounded-claim cap on the
 * shared pool) and the calling thread always participates in its own
 * fan-out.
 */

#ifndef WCRT_TRACEFILE_REPLAY_HH
#define WCRT_TRACEFILE_REPLAY_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/footprint.hh"
#include "sim/machine.hh"
#include "sim/sim_cpu.hh"
#include "tracefile/trace_reader.hh"

namespace wcrt {

/** Worker count actually used for a request (0 → hardware threads). */
unsigned replayWorkers(unsigned requested = 0);

/**
 * Run `count` independent jobs on the shared worker pool, with the
 * caller participating. job(i) is invoked exactly once for every i in
 * [0, count); the first exception any job throws is rethrown on the
 * caller after the ticket settles. A resolved worker count of 1 (or
 * count == 1) bypasses the pool entirely and runs serially.
 *
 * @param count Number of jobs.
 * @param job Callable receiving the job index; must be thread-safe
 *        with respect to the other indices.
 * @param threads Worker cap (0 → hardware threads); resolved once via
 *        replayWorkers() — the single source of the worker count.
 */
void parallelFor(size_t count, const std::function<void(size_t)> &job,
                 unsigned threads = 0);

/**
 * Replay one trace into a SimCpu per machine configuration, in
 * parallel. Results are indexed like `configs`.
 */
std::vector<CpuReport> replayOnConfigs(
    const std::string &trace_path,
    const std::vector<MachineConfig> &configs, unsigned threads = 0);

/**
 * Replay one trace across a cache-capacity ladder — one
 * single-capacity FootprintSweep per rung, each on its own worker —
 * and return the miss ratio per capacity (same values the one-pass
 * multi-capacity sweep produces, computed config-parallel).
 *
 * @param trace_path Captured trace.
 * @param kind Which reference stream to measure.
 * @param sizes_kb Capacity ladder in KB.
 * @param threads Worker cap (0 → hardware threads).
 * @param assoc Associativity of every rung (paper: 8).
 * @param line_bytes Line size (paper: 64).
 */
std::vector<double> replaySweepLadder(const std::string &trace_path,
                                      SweepKind kind,
                                      const std::vector<uint32_t> &sizes_kb,
                                      unsigned threads = 0,
                                      uint32_t assoc = 8,
                                      uint32_t line_bytes = 64);

/**
 * Replay many traces on one machine configuration, in parallel.
 * Results are indexed like `trace_paths`.
 */
std::vector<CpuReport> replayTracesOn(
    const std::vector<std::string> &trace_paths,
    const MachineConfig &config, unsigned threads = 0);

} // namespace wcrt

#endif // WCRT_TRACEFILE_REPLAY_HH
