/**
 * @file
 * On-disk trace format primitives shared by TraceWriter and
 * TraceReader.
 *
 * A `.wtrace` file stores one workload execution's MicroOp stream so
 * experiments can re-simulate it under many machine configurations
 * without re-running the workload (record once, replay many — the
 * MARSSx86 methodology). Layout:
 *
 *     file   := fileHeader chunk* footer
 *     header := magic u32 | version u32 | payloadBytes u32 | crc u32
 *               | name | stack u8 | category u8 | scale f64le
 *               | region table (the CodeLayout snapshot)
 *     chunk  := opCount u32 (> 0) | payloadBytes u32 | crc u32
 *               | encoded ops
 *     footer := 0 u32 | payloadBytes u32 | crc u32
 *               | total ops | IoCounters | DataBehavior
 *
 * Ops are packed as a flags byte plus LEB128 varints; pc and memory
 * addresses are delta-encoded against the previous op in the chunk
 * (deltas reset at chunk boundaries so chunks decode independently).
 * Every payload carries a CRC-32 so truncation and bit rot surface as
 * clean errors instead of silently wrong simulations.
 */

#ifndef WCRT_TRACEFILE_FORMAT_HH
#define WCRT_TRACEFILE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/microop.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** Identity of the run a trace file stores (the file-header fields). */
struct TraceMeta
{
    std::string workload;  //!< Table-2 style name, e.g. "H-WordCount"
    AppCategory category = AppCategory::DataAnalysis;
    StackKind stackKind = StackKind::Hadoop;
    double scale = 1.0;    //!< dataset scale the capture ran at
};

/** Error thrown for malformed, truncated or corrupt trace files. */
class TraceFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace tracefile {

/** File magic: "WTRC" little-endian. */
inline constexpr uint32_t magic = 0x43525457;

/** Current format version; bump on any layout change. */
inline constexpr uint32_t version = 1;

/** Default ops per chunk (64 Ki ops ≈ a few hundred KB encoded). */
inline constexpr uint32_t defaultChunkOps = 64 * 1024;

/** @name Per-op flags byte layout. */
/** @{ */
inline constexpr uint8_t kindMask = 0x0f;
inline constexpr uint8_t purposeShift = 4;
inline constexpr uint8_t purposeMask = 0x30;
inline constexpr uint8_t takenBit = 0x40;
inline constexpr uint8_t extBit = 0x80;
/** @} */

/** @name Extension byte bits (present when extBit is set). */
/** @{ */
inline constexpr uint8_t extHasMem = 0x01;
inline constexpr uint8_t extHasSize = 0x02;
inline constexpr uint8_t extHasTarget = 0x04;
/** @} */

/** Instruction size assumed when no explicit size byte is stored. */
inline constexpr uint8_t defaultOpSize = 4;

/**
 * Upper bound on one op's encoded size: flags + extension + size
 * bytes, three 10-byte worst-case varints (pc, memAddr, target) and
 * the memSize byte. While at least this many payload bytes remain, a
 * decoder can run without per-byte bounds checks.
 */
inline constexpr size_t maxEncodedOpBytes = 3 + 3 * 10 + 1;

/**
 * CRC-32 (IEEE 802.3 polynomial) over a byte range. Slicing-by-8
 * implementation: decoding checksums every chunk, so this sits on the
 * replay hot path.
 */
uint32_t crc32(const uint8_t *data, size_t len);

/** Append an LEB128-encoded unsigned value. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Append a zigzag LEB128-encoded signed delta. */
inline void
putVarintSigned(std::vector<uint8_t> &out, int64_t v)
{
    uint64_t u = static_cast<uint64_t>(v);
    putVarint(out, (u << 1) ^ static_cast<uint64_t>(v >> 63));
}

/** Append a length-prefixed string. */
void putString(std::vector<uint8_t> &out, const std::string &s);

/**
 * Bounds-checked decode cursor over an encoded payload. Throws
 * TraceFormatError on any overrun or malformed varint. The byte and
 * varint reads are inline: replay calls them several times per op.
 */
class Decoder
{
  public:
    Decoder(const uint8_t *data, size_t len) : cur(data), end(data + len)
    {}

    uint8_t
    u8()
    {
        if (cur == end)
            throwTruncated("u8");
        return *cur++;
    }

    uint64_t
    varint()
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (cur == end)
                throwTruncated("varint");
            uint8_t b = *cur++;
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
        }
        throwMalformedVarint();
    }

    int64_t
    varintSigned()
    {
        uint64_t u = varint();
        return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    }

    std::string string();

    /** Bytes not yet consumed. */
    size_t remaining() const { return static_cast<size_t>(end - cur); }

  private:
    [[noreturn]] static void throwTruncated(const char *what);
    [[noreturn]] static void throwMalformedVarint();

    const uint8_t *cur;
    const uint8_t *end;
};

/**
 * True when an op round-trips through the compact default encoding
 * (size 4, memory operands only on loads/stores, targets only on
 * control transfers); otherwise the encoder emits an extension byte.
 */
bool needsExtension(const MicroOp &op);

/** Default memory-operand presence implied by the op kind. */
constexpr bool
impliedHasMem(OpKind k)
{
    return k == OpKind::Load || k == OpKind::Store;
}

} // namespace tracefile

/** Human-readable op-kind name (dump/stats output). */
const char *toString(OpKind k);

} // namespace wcrt

#endif // WCRT_TRACEFILE_FORMAT_HH
