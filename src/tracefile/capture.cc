#include "tracefile/capture.hh"

#include <unistd.h>

#include <filesystem>

#include "tracefile/trace_writer.hh"

namespace wcrt {

CaptureResult
captureTrace(Workload &workload, const std::string &path, double scale)
{
    RunEnv env;
    workload.setup(env);
    // Mirror profileWorkload()'s driver frame exactly: replay fidelity
    // depends on the capture stream matching a live profile run.
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);

    TraceMeta meta;
    meta.workload = workload.name();
    meta.category = workload.category();
    meta.stackKind = workload.stack();
    meta.scale = scale;

    std::string tmp = path + ".tmp-" + std::to_string(::getpid());
    CaptureResult result;
    try {
        {
            TraceWriter writer(tmp, meta, env.layout);
            Tracer tracer(env.layout, writer);
            tracer.call(driver);
            workload.execute(env, tracer);
            tracer.ret();
            writer.finish(env.io, env.data);
            result.ops = writer.opsWritten();
            result.fileBytes = writer.bytesWritten();
        }
        std::filesystem::rename(tmp, path);
    } catch (...) {
        // A failed capture must not leave its half-written tmp file
        // polluting the trace-cache directory.
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        throw;
    }
    return result;
}

ServeResult
serveTrace(Workload &workload, ShmRing &ring, double scale,
           ShmPolicy policy)
{
    // Liveness must not depend on data flow: workload setup and the
    // gaps between chunk flushes can easily outlast the heartbeat
    // timeout, and an attached analyzer would wrongly truncate a
    // healthy stream. The background beater keeps the producer fresh
    // whenever this process is alive (idempotent if already started).
    ring.startHeartbeat();

    RunEnv env;
    workload.setup(env);
    // Same driver frame as captureTrace(): the streamed bytes must
    // match what the file path would have recorded.
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);

    TraceMeta meta;
    meta.workload = workload.name();
    meta.category = workload.category();
    meta.stackKind = workload.stack();
    meta.scale = scale;

    ShmChunkSink sink(ring, meta, env.layout, policy);
    Tracer tracer(env.layout, sink);
    tracer.call(driver);
    workload.execute(env, tracer);
    tracer.ret();
    sink.finish(env.io, env.data);

    ServeResult result;
    result.ops = sink.opsStreamed();
    result.streamBytes = sink.bytesStreamed();
    result.droppedOps = sink.opsDropped();
    result.droppedChunks = sink.chunksDropped();
    return result;
}

} // namespace wcrt
