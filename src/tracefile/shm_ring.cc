#include "tracefile/shm_ring.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

#include "base/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define WCRT_HAS_SHM 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>
#else
#define WCRT_HAS_SHM 0
#endif

namespace wcrt {

/**
 * The ring's control block, at offset 0 of the shared mapping; the
 * data region follows at byte 256. Layout and semantics are normative
 * — see docs/SHM_TRANSPORT.md §2 — and every field is fixed-offset so
 * independently built producer and analyzer binaries agree.
 *
 * Line 0 is immutable once `ready` is published; line 1 is written
 * only by the producer, line 2 only by the consumer, so the two sides
 * never contend for a cache line.
 */
struct ShmSuperblock
{
    // line 0 — fixed at create(), guarded by `ready`
    uint32_t magic;
    uint32_t version;
    uint64_t capacity;            //!< data bytes, power of two
    uint64_t heartbeatTimeoutNs;  //!< peer-death threshold
    uint64_t createNs;            //!< CLOCK_MONOTONIC at create()
    std::atomic<uint32_t> ready;  //!< 1 once the fields above are valid

    // line 1 — producer-published
    alignas(64) std::atomic<uint64_t> tail;  //!< bytes written, free-running
    std::atomic<uint64_t> producerBeat;      //!< CLOCK_MONOTONIC ns
    std::atomic<uint32_t> producerAttached;
    std::atomic<uint32_t> producerDone;      //!< clean end-of-stream mark
    std::atomic<uint64_t> droppedFrames;     //!< Drop-policy accounting
    std::atomic<uint64_t> droppedOps;

    // line 2 — consumer-published
    alignas(64) std::atomic<uint64_t> head;  //!< bytes read, free-running
    std::atomic<uint64_t> consumerBeat;
    std::atomic<uint32_t> consumerAttached;
    std::atomic<uint32_t> consumerEverAttached;  //!< sticky, never cleared

    // line 3 — reserved for future versions (zero)
    alignas(64) uint8_t reserved[64];
};

namespace {

/** Data region offset — one line of headroom beyond the superblock. */
constexpr uint64_t kDataOffset = 256;

/** "WRNG" little-endian. */
constexpr uint32_t kRingMagic = 0x474e5257;
constexpr uint32_t kRingVersion = 1;

static_assert(sizeof(ShmSuperblock) == kDataOffset,
              "superblock layout is normative (SHM_TRANSPORT.md)");
static_assert(offsetof(ShmSuperblock, tail) == 64);
static_assert(offsetof(ShmSuperblock, head) == 128);
static_assert(offsetof(ShmSuperblock, reserved) == 192);
static_assert(std::atomic<uint64_t>::is_always_lock_free &&
                  std::atomic<uint32_t>::is_always_lock_free,
              "shm rings need address-free lock-free atomics");

#if WCRT_HAS_SHM

uint64_t
nowNs()
{
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

/** Wait-loop granularity: long enough to stay off the bus, short
 * enough that heartbeats stay far below any sane timeout. */
void
sleepBriefly()
{
    timespec ts{0, 200000};  // 200 us
    ::nanosleep(&ts, nullptr);
}

std::string
shmPath(const std::string &name)
{
    return "/" + name;
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &name)
{
    throw TraceFormatError("cannot " + what + " shm ring " + name +
                           ": " + std::strerror(errno));
}

#endif // WCRT_HAS_SHM

void
validateRingName(const std::string &name)
{
    if (name.empty() || name.size() > 200 ||
        name.find('/') != std::string::npos)
        throw TraceFormatError(
            "invalid shm ring name (must be non-empty, < 200 chars, "
            "no '/'): " + name);
}

} // namespace

bool
shmAvailable()
{
    return WCRT_HAS_SHM != 0;
}

const char *
toString(ShmPolicy policy)
{
    return policy == ShmPolicy::Drop ? "drop" : "block";
}

bool
parseShmPolicy(const std::string &name, ShmPolicy &out)
{
    if (name == "block") {
        out = ShmPolicy::Block;
    } else if (name == "drop") {
        out = ShmPolicy::Drop;
    } else {
        return false;
    }
    return true;
}

ShmSuperblock *
ShmRing::sb() const
{
    return static_cast<ShmSuperblock *>(map);
}

uint8_t *
ShmRing::data() const
{
    return static_cast<uint8_t *>(map) + kDataOffset;
}

#if WCRT_HAS_SHM

/**
 * Background beater for one side's heartbeat slot (startHeartbeat()).
 * Holds the slot pointer, not the ShmRing — the mapping's address is
 * stable across ShmRing moves, so the thread never chases a moved
 * handle. Stopped (joined) before the owning handle unmaps.
 */
struct ShmRing::Heartbeat
{
    Heartbeat(std::atomic<uint64_t> &slot_, uint64_t period_ns)
        : slot(slot_), period(period_ns)
    {
        worker = std::thread([this] {
            std::unique_lock<std::mutex> lock(m);
            while (!stop) {
                slot.store(nowNs(), std::memory_order_release);
                cv.wait_for(lock, std::chrono::nanoseconds(period));
            }
        });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            stop = true;
        }
        cv.notify_one();
        worker.join();
    }

    std::atomic<uint64_t> &slot;
    uint64_t period;
    std::mutex m;
    std::condition_variable cv;
    bool stop = false;
    std::thread worker;
};

ShmRing
ShmRing::create(const std::string &name, Role role,
                uint64_t capacity_bytes, uint64_t heartbeat_timeout_ms)
{
    validateRingName(name);
    uint64_t cap = std::bit_ceil(std::max<uint64_t>(capacity_bytes, 16));
    int fd = ::shm_open(shmPath(name).c_str(),
                        O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0)
        throwErrno("create", name);
    uint64_t total = kDataOffset + cap;
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
        ::close(fd);
        ::shm_unlink(shmPath(name).c_str());
        throwErrno("size", name);
    }
    void *m = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (m == MAP_FAILED) {
        ::shm_unlink(shmPath(name).c_str());
        throwErrno("map", name);
    }

    // The pages arrive zeroed; value-initialize the superblock, fill
    // the immutable line, then publish it with `ready` so an opener
    // never reads half-initialized fields.
    auto *s = new (m) ShmSuperblock();
    s->magic = kRingMagic;
    s->version = kRingVersion;
    s->capacity = cap;
    s->heartbeatTimeoutNs =
        std::max<uint64_t>(heartbeat_timeout_ms, 1) * 1000000ull;
    s->createNs = nowNs();
    s->ready.store(1, std::memory_order_release);

    ShmRing ring;
    ring.ringName = name;
    ring.ringRole = role;
    ring.map = m;
    ring.mapBytes = total;
    if (role == Role::Producer) {
        s->producerAttached.store(1, std::memory_order_release);
    } else {
        s->consumerEverAttached.store(1, std::memory_order_release);
        s->consumerAttached.store(1, std::memory_order_release);
    }
    ring.beat();
    return ring;
}

ShmRing
ShmRing::open(const std::string &name, Role role,
              uint64_t attach_timeout_ms)
{
    validateRingName(name);
    uint64_t deadline = nowNs() + attach_timeout_ms * 1000000ull;
    int fd = -1;
    struct stat st{};
    while (true) {
        fd = ::shm_open(shmPath(name).c_str(), O_RDWR, 0);
        if (fd >= 0) {
            if (::fstat(fd, &st) != 0) {
                int e = errno;
                ::close(fd);
                errno = e;
                throwErrno("stat", name);
            }
            if (st.st_size >= static_cast<off_t>(kDataOffset))
                break;
            // A creator sits between shm_open(O_CREAT|O_EXCL) and
            // ftruncate for a moment, during which the object exists
            // with size 0. That is "not there yet", not corruption:
            // drop the fd and re-open by name (the stub may even be
            // unlinked and replaced wholesale) until the deadline.
            ::close(fd);
            fd = -1;
        } else if (errno != ENOENT) {
            throwErrno("open", name);
        }
        if (nowNs() >= deadline)
            throw TraceFormatError(
                "timed out waiting for shm ring to appear: " + name);
        sleepBriefly();
    }
    uint64_t total = static_cast<uint64_t>(st.st_size);
    void *m = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED)
        throwErrno("map", name);

    auto *s = static_cast<ShmSuperblock *>(m);
    while (s->ready.load(std::memory_order_acquire) == 0) {
        if (nowNs() >= deadline) {
            ::munmap(m, total);
            throw TraceFormatError(
                "timed out waiting for shm ring to initialize: " + name);
        }
        sleepBriefly();
    }
    if (s->magic != kRingMagic) {
        ::munmap(m, total);
        throw TraceFormatError("not a wcrt shm ring (bad magic): " +
                               name);
    }
    if (s->version != kRingVersion) {
        uint32_t v = s->version;
        ::munmap(m, total);
        throw TraceFormatError(
            "unsupported shm ring version " + std::to_string(v) +
            " (expected " + std::to_string(kRingVersion) + "): " + name);
    }
    if (!std::has_single_bit(s->capacity) ||
        total != kDataOffset + s->capacity) {
        ::munmap(m, total);
        throw TraceFormatError(
            "shm ring size disagrees with its superblock: " + name);
    }

    ShmRing ring;
    ring.ringName = name;
    ring.ringRole = role;
    ring.map = m;
    ring.mapBytes = total;
    if (role == Role::Producer) {
        s->producerAttached.store(1, std::memory_order_release);
    } else {
        s->consumerEverAttached.store(1, std::memory_order_release);
        s->consumerAttached.store(1, std::memory_order_release);
    }
    ring.beat();
    return ring;
}

void
ShmRing::unlink(const std::string &name)
{
    validateRingName(name);
    if (::shm_unlink(shmPath(name).c_str()) != 0 && errno != ENOENT)
        throwErrno("unlink", name);
}

ShmRing::~ShmRing()
{
    if (!map)
        return;
    heart.reset();  // stop beating into the mapping before unmapping
    // A consumer detaching cleanly hands the ring back to "waiting
    // for an analyzer": the producer must not mistake a deliberate
    // detach (restart/re-attach is supported) for a death. A producer
    // that detaches without finishProducer() stays attached — its
    // heartbeat going stale is exactly how consumers detect the
    // abnormal end.
    if (ringRole == Role::Consumer)
        sb()->consumerAttached.store(0, std::memory_order_release);
    ::munmap(map, mapBytes);
}

#else // !WCRT_HAS_SHM

struct ShmRing::Heartbeat
{
};

ShmRing
ShmRing::create(const std::string &name, Role, uint64_t, uint64_t)
{
    validateRingName(name);
    throw TraceFormatError(
        "shm rings are not supported on this platform: " + name);
}

ShmRing
ShmRing::open(const std::string &name, Role, uint64_t)
{
    validateRingName(name);
    throw TraceFormatError(
        "shm rings are not supported on this platform: " + name);
}

void
ShmRing::unlink(const std::string &name)
{
    validateRingName(name);
    throw TraceFormatError(
        "shm rings are not supported on this platform: " + name);
}

ShmRing::~ShmRing() = default;

#endif // WCRT_HAS_SHM

ShmRing::ShmRing(ShmRing &&other) noexcept
    : ringName(std::move(other.ringName)), ringRole(other.ringRole),
      map(other.map), mapBytes(other.mapBytes),
      noConsumerWaitNs(other.noConsumerWaitNs),
      heart(std::move(other.heart)), peerGone(other.peerGone),
      sawEof(other.sawEof), sawPeerDeath(other.sawPeerDeath)
{
    other.map = nullptr;
    other.mapBytes = 0;
}

ShmRing &
ShmRing::operator=(ShmRing &&other) noexcept
{
    if (this != &other) {
        this->~ShmRing();
        new (this) ShmRing(std::move(other));
    }
    return *this;
}

uint64_t
ShmRing::capacity() const
{
    return sb()->capacity;
}

uint64_t
ShmRing::used() const
{
    return sb()->tail.load(std::memory_order_acquire) -
           sb()->head.load(std::memory_order_acquire);
}

uint64_t
ShmRing::droppedFrames() const
{
    return sb()->droppedFrames.load(std::memory_order_relaxed);
}

uint64_t
ShmRing::droppedOps() const
{
    return sb()->droppedOps.load(std::memory_order_relaxed);
}

void
ShmRing::noteDropped(uint64_t frames, uint64_t ops)
{
    sb()->droppedFrames.fetch_add(frames, std::memory_order_relaxed);
    sb()->droppedOps.fetch_add(ops, std::memory_order_relaxed);
}

void
ShmRing::setNoConsumerTimeout(uint64_t timeout_ms)
{
    noConsumerWaitNs = timeout_ms * 1000000ull;
}

#if WCRT_HAS_SHM

void
ShmRing::beat()
{
    auto &slot = ringRole == Role::Producer ? sb()->producerBeat
                                            : sb()->consumerBeat;
    slot.store(nowNs(), std::memory_order_release);
}

void
ShmRing::startHeartbeat()
{
    if (heart)
        return;
    ShmSuperblock *s = sb();
    auto &slot = ringRole == Role::Producer ? s->producerBeat
                                            : s->consumerBeat;
    // A quarter of the timeout keeps a healthy peer far from the
    // staleness edge; the 100 ms cap bounds detach latency on huge
    // timeouts, the 100 µs floor bounds spin on absurdly small ones.
    uint64_t period = std::clamp<uint64_t>(s->heartbeatTimeoutNs / 4,
                                           100'000ull, 100'000'000ull);
    heart = std::make_unique<Heartbeat>(slot, period);
}

/**
 * Is the opposite side alive at `now_ns`? A side that has attached is
 * alive while its heartbeat is fresh; a side that has not attached
 * (yet, or detached cleanly) is treated as alive — "no peer" means
 * "waiting for one", and the callers that cannot wait forever bound
 * the wait themselves.
 */
bool
ShmRing::peerAlive(uint64_t now_ns) const
{
    const ShmSuperblock *s = sb();
    bool attached;
    uint64_t last_beat;
    if (ringRole == Role::Producer) {
        attached = s->consumerAttached.load(std::memory_order_acquire);
        last_beat = s->consumerBeat.load(std::memory_order_acquire);
    } else {
        attached = s->producerAttached.load(std::memory_order_acquire);
        last_beat = s->producerBeat.load(std::memory_order_acquire);
    }
    if (!attached)
        return true;
    return now_ns - last_beat <= s->heartbeatTimeoutNs;
}

bool
ShmRing::push(const uint8_t *src, size_t len, ShmPolicy policy)
{
    ShmSuperblock *s = sb();
    uint64_t cap = s->capacity;
    if (len > cap)
        throw TraceFormatError(
            "frame (" + std::to_string(len) +
            " bytes) exceeds shm ring capacity (" + std::to_string(cap) +
            "): " + ringName);
    // A push that already gave up on the peer failed the stream (a
    // Block frame was lost); fail every later push immediately so
    // teardown — footer frame, destructor flushes — does not stack
    // more full-length waits on a ring nobody is reading.
    if (peerGone)
        throw TraceFormatError(
            "shm ring stream already failed (consumer dead or never "
            "attached): " + ringName);

    uint64_t tail = s->tail.load(std::memory_order_relaxed);
    uint64_t wait_start = 0;
    while (cap - (tail - s->head.load(std::memory_order_acquire)) <
           len) {
        if (policy == ShmPolicy::Drop)
            return false;
        // Block: wait for the consumer to free space — but never on a
        // consumer that attached and then stopped beating. A consumer
        // that has not attached yet (serve starts before attach) is
        // waited for, but only within the configured no-consumer
        // bound: an analyzer that never shows up must produce an
        // error, not wedge capture forever. Once any consumer has
        // attached (sticky flag), a full ring is legitimate
        // backpressure — including across a clean detach/re-attach —
        // and is waited out indefinitely.
        uint64_t now = nowNs();
        if (!peerAlive(now)) {
            peerGone = true;
            throw TraceFormatError(
                "shm ring consumer stopped responding: " + ringName);
        }
        if (noConsumerWaitNs != 0 &&
            !s->consumerEverAttached.load(std::memory_order_acquire)) {
            if (wait_start == 0)
                wait_start = now;
            else if (now - wait_start > noConsumerWaitNs) {
                peerGone = true;
                throw TraceFormatError(
                    "no analyzer attached to shm ring within " +
                    std::to_string(noConsumerWaitNs / 1000000) +
                    " ms: " + ringName);
            }
        }
        beat();
        sleepBriefly();
    }

    uint64_t idx = tail & (cap - 1);
    size_t first = std::min<size_t>(len, cap - idx);
    std::memcpy(data() + idx, src, first);
    std::memcpy(data(), src + first, len - first);
    s->tail.store(tail + len, std::memory_order_release);
    beat();
    return true;
}

void
ShmRing::finishProducer()
{
    // Bytes first (release on tail in push), then the done mark with
    // release: a consumer that observes `done` and then re-checks the
    // ring is guaranteed to see every byte pushed before it.
    sb()->producerDone.store(1, std::memory_order_release);
    beat();
}

bool
ShmRing::awaitDrained(uint64_t timeout_ms)
{
    ShmSuperblock *s = sb();
    uint64_t deadline = nowNs() + timeout_ms * 1000000ull;
    while (s->head.load(std::memory_order_acquire) !=
           s->tail.load(std::memory_order_relaxed)) {
        uint64_t now = nowNs();
        if (now >= deadline || !peerAlive(now))
            return false;
        beat();
        sleepBriefly();
    }
    return true;
}

size_t
ShmRing::pull(uint8_t *out, size_t max)
{
    ShmSuperblock *s = sb();
    uint64_t cap = s->capacity;
    uint64_t head = s->head.load(std::memory_order_relaxed);
    uint64_t avail = s->tail.load(std::memory_order_acquire) - head;
    size_t n = static_cast<size_t>(std::min<uint64_t>(avail, max));
    if (n == 0)
        return 0;
    uint64_t idx = head & (cap - 1);
    size_t first = std::min<size_t>(n, cap - idx);
    std::memcpy(out, data() + idx, first);
    std::memcpy(out + first, data(), n - first);
    s->head.store(head + n, std::memory_order_release);
    beat();
    return n;
}

size_t
ShmRing::pullWait(uint8_t *out, size_t max)
{
    ShmSuperblock *s = sb();
    uint64_t wait_start = nowNs();
    while (true) {
        size_t n = pull(out, max);
        if (n)
            return n;
        if (s->producerDone.load(std::memory_order_acquire)) {
            // Re-check after observing `done`: bytes pushed before
            // the mark must be served before end-of-stream.
            n = pull(out, max);
            if (n)
                return n;
            sawEof = true;
            return 0;
        }
        uint64_t now = nowNs();
        bool absent =
            !s->producerAttached.load(std::memory_order_acquire) &&
            now - wait_start > s->heartbeatTimeoutNs;
        if (absent || !peerAlive(now)) {
            // Dead (stale heartbeat) or never showed up: a clean EOF
            // for the bytes already drained, flagged as peer death so
            // the analyzer can report the truncation's cause.
            sawPeerDeath = true;
            return 0;
        }
        beat();
        sleepBriefly();
    }
}

#else // !WCRT_HAS_SHM

void ShmRing::beat() {}
void ShmRing::startHeartbeat() {}
bool ShmRing::peerAlive(uint64_t) const { return false; }

bool
ShmRing::push(const uint8_t *, size_t, ShmPolicy)
{
    throw TraceFormatError(
        "shm rings are not supported on this platform: " + ringName);
}

void ShmRing::finishProducer() {}
bool ShmRing::awaitDrained(uint64_t) { return false; }
size_t ShmRing::pull(uint8_t *, size_t) { return 0; }

size_t
ShmRing::pullWait(uint8_t *, size_t)
{
    throw TraceFormatError(
        "shm rings are not supported on this platform: " + ringName);
}

#endif // WCRT_HAS_SHM

ShmChunkSink::ShmChunkSink(ShmRing &ring_, const TraceMeta &meta,
                           const CodeLayout &layout, ShmPolicy policy_,
                           uint32_t chunk_ops)
    : ring(ring_), policy(policy_), encoder(chunk_ops)
{
    // The header frame is never droppable: without it nothing that
    // follows can be decoded. Block even under Drop policy.
    std::vector<uint8_t> header =
        tracefile::encodeHeaderFrame(meta, layout);
    ring.push(header.data(), header.size(), ShmPolicy::Block);
    streamedBytes += header.size();
}

ShmChunkSink::~ShmChunkSink()
{
    if (!finished) {
        try {
            finish();
        } catch (const TraceFormatError &e) {
            warn("shm chunk sink teardown failed for ", ring.name(),
                 ": ", e.what());
        }
    }
}

void
ShmChunkSink::consume(const MicroOp &op)
{
    if (finished)
        wcrt_panic("ShmChunkSink::consume after finish");
    if (encoder.add(op))
        flushChunk();
}

void
ShmChunkSink::consumeBatch(const OpBlockView &ops)
{
    if (finished)
        wcrt_panic("ShmChunkSink::consumeBatch after finish");
    for (size_t i = 0; i < ops.count; ++i) {
        if (encoder.add(ops[i]))
            flushChunk();
    }
}

void
ShmChunkSink::flushChunk()
{
    uint32_t ops = encoder.pendingOps();
    if (ops == 0)
        return;
    encoder.takeFrame(frame);
    if (ring.push(frame.data(), frame.size(), policy)) {
        streamedOps += ops;
        streamedBytes += frame.size();
    } else {
        // Whole-chunk drop: the stream stays a valid chunk sequence
        // (chunks decode independently), it just has a hole. Account
        // it here and in the ring superblock so both sides can report
        // the loss.
        ++droppedChunks;
        droppedOps += ops;
        ring.noteDropped(1, ops);
    }
}

void
ShmChunkSink::finish(const IoCounters &io, const DataBehavior &data)
{
    if (finished)
        return;
    flushChunk();
    // The footer counts framed ops only: a reader cross-checks the
    // footer total against the ops it decoded, and dropped chunks
    // never reached the stream.
    std::vector<uint8_t> footer =
        tracefile::encodeFooterFrame(streamedOps, io, data);
    ring.push(footer.data(), footer.size(), ShmPolicy::Block);
    streamedBytes += footer.size();
    ring.finishProducer();
    finished = true;
}

ShmSource::ShmSource(ShmRing &ring)
{
    std::vector<uint8_t> buf;
    uint8_t scratch[64 * 1024];
    size_t n;
    while ((n = ring.pullWait(scratch, sizeof(scratch))) != 0)
        buf.insert(buf.end(), scratch, scratch + n);
    died = ring.peerDied();
    stream = std::make_shared<const std::vector<uint8_t>>(std::move(buf));
    fileBytes = stream->size();
}

ShmSource::ShmSource(std::shared_ptr<const std::vector<uint8_t>> bytes)
    : stream(std::move(bytes))
{
    if (!stream)
        stream = std::make_shared<const std::vector<uint8_t>>();
    fileBytes = stream->size();
}

} // namespace wcrt
