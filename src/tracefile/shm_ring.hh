/**
 * @file
 * Shared-memory ring transport for cross-process capture/replay.
 *
 * A ShmRing is a fixed-capacity SPSC byte ring in POSIX shared memory
 * (`shm_open` + `mmap`) carrying a framed `.wtrace` byte stream, so a
 * workload can be captured in one process and analyzed in another
 * without touching the filesystem — the "live profiling service" half
 * of the multi-process trace path (see docs/SHM_TRANSPORT.md for the
 * normative layout, memory-ordering and liveness rules).
 *
 * Three layers:
 *
 *  - ShmRing: the raw ring. Free-running 64-bit head/tail byte
 *    counters on separate cache lines, acquire/release publication,
 *    all-or-nothing frame pushes with Block or Drop backpressure, and
 *    heartbeat-based peer-death detection so a killed producer yields
 *    a clean end-of-stream instead of a hang (and a killed analyzer
 *    unblocks a waiting producer with an error).
 *  - ShmChunkSink: a TraceSink that encodes ops through the same
 *    ChunkEncoder TraceWriter uses and pushes whole frames (header,
 *    chunks, footer) into a ring — the byte stream is identical to
 *    the `.wtrace` file the same run would have written, except that
 *    Drop policy may omit whole chunks (the footer op count only
 *    counts framed ops, so the stream stays self-consistent).
 *  - ShmSource: a TraceSource that drains a ring to completion and
 *    then serves the buffered stream to TraceReader, so the SWAR fast
 *    cursor and every structural/CRC check run unchanged on ring
 *    bytes. The drained buffer is shared, so N readers (one per
 *    machine config) can replay one drained stream without copies.
 *
 * Multiplexing N producers into one analyzer is done with N rings,
 * one per producer (`name.0` … `name.N-1` by convention — see
 * `trace_tool serve` / `trace_tool attach`); each ring stays strictly
 * SPSC.
 *
 * Availability is gated like mmap: shmAvailable() reports platform
 * support, and create/open throw TraceFormatError where unsupported.
 */

#ifndef WCRT_TRACEFILE_SHM_RING_HH
#define WCRT_TRACEFILE_SHM_RING_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sysmon/sysmon.hh"
#include "trace/code_layout.hh"
#include "tracefile/trace_source.hh"
#include "tracefile/trace_writer.hh"

namespace wcrt {

/** True when this build has POSIX shared-memory rings. */
bool shmAvailable();

/** What a producer does when a frame does not fit in the ring. */
enum class ShmPolicy : uint8_t {
    Block,  //!< wait for the consumer to free space (lossless)
    Drop,   //!< discard the frame and account for it (lossy, non-blocking)
};

/** CLI spelling of a policy: block / drop. */
const char *toString(ShmPolicy policy);

/**
 * Parse a CLI policy name ("block", "drop").
 * @return false when the name matches no policy (`out` untouched).
 */
bool parseShmPolicy(const std::string &name, ShmPolicy &out);

struct ShmSuperblock;

/**
 * One SPSC shared-memory byte ring. Exactly one producer and one
 * consumer process (or thread) may be attached at a time; a consumer
 * may detach cleanly and a new one re-attach mid-stream. The object
 * is movable, not copyable; the mapping is released on destruction
 * but the ring object itself persists until unlink().
 */
class ShmRing
{
  public:
    /** Which side of the ring this handle drives. */
    enum class Role : uint8_t { Producer, Consumer };

    /** Default data capacity: 1 MiB. */
    static constexpr uint64_t defaultCapacity = 1ull << 20;

    /** Default peer heartbeat timeout. */
    static constexpr uint64_t defaultHeartbeatTimeoutMs = 2000;

    /**
     * Create a new ring object named `name` (no slashes) and attach
     * as `role`. Fails if the name already exists — a stale ring must
     * be unlink()ed first.
     *
     * @param name Ring name, e.g. "wcrt.serve.0".
     * @param role Side this handle drives.
     * @param capacity_bytes Data capacity; rounded up to a power of
     *        two.
     * @param heartbeat_timeout_ms Peer-death threshold stored in the
     *        superblock; both sides honour the creator's value.
     */
    static ShmRing create(
        const std::string &name, Role role,
        uint64_t capacity_bytes = defaultCapacity,
        uint64_t heartbeat_timeout_ms = defaultHeartbeatTimeoutMs);

    /**
     * Attach to an existing ring as `role`, waiting up to
     * `attach_timeout_ms` for the ring to appear and initialize —
     * `attach` in one shell may legitimately start before `serve` in
     * another. Throws TraceFormatError on timeout, bad magic, version
     * mismatch or a size that disagrees with the superblock.
     */
    static ShmRing open(const std::string &name, Role role,
                        uint64_t attach_timeout_ms = 10000);

    /** Remove a ring name from the system (missing name is not an error). */
    static void unlink(const std::string &name);

    ~ShmRing();
    ShmRing(ShmRing &&other) noexcept;
    ShmRing &operator=(ShmRing &&other) noexcept;
    ShmRing(const ShmRing &) = delete;
    ShmRing &operator=(const ShmRing &) = delete;

    const std::string &name() const { return ringName; }

    /** Data capacity in bytes (power of two). */
    uint64_t capacity() const;

    /** Bytes currently buffered (written, not yet read). */
    uint64_t used() const;

    /** @name Producer side */
    /** @{ */

    /**
     * Push one complete frame. All-or-nothing: the frame is either
     * fully in the ring when this returns true, or (Drop policy, ring
     * too full) not at all. Block policy waits for space, heartbeating
     * while it waits, and throws TraceFormatError if an attached
     * consumer stops beating or no consumer ever attaches within the
     * setNoConsumerTimeout() bound. Once a push has given up on the
     * peer, every later push on this handle fails fast — the stream
     * is missing a frame, so teardown (footer, flushes) must not
     * stack further full-length waits. A frame larger than the ring
     * capacity always throws.
     *
     * @return true when the frame was written, false when Drop policy
     *         discarded it (ring-level drop accounting is the
     *         caller's via noteDropped()).
     */
    bool push(const uint8_t *data, size_t len, ShmPolicy policy);

    /**
     * Mark the stream complete. Consumers drain the remaining bytes
     * and then see a clean end-of-stream. Must be the last producer
     * call; idempotent.
     */
    void finishProducer();

    /**
     * Wait until the consumer has read every byte (or died, or
     * `timeout_ms` passed). `serve` calls this after finishProducer()
     * so unlink() cannot race the analyzer's final reads.
     * @return true when the ring drained completely.
     */
    bool awaitDrained(uint64_t timeout_ms);

    /** Account frames/ops the producer discarded under Drop policy. */
    void noteDropped(uint64_t frames, uint64_t ops);

    /** @} */
    /** @name Consumer side */
    /** @{ */

    /**
     * Read up to `max` buffered bytes without blocking.
     * @return bytes read (0 when the ring is empty).
     */
    size_t pull(uint8_t *out, size_t max);

    /**
     * Read at least one byte, waiting for the producer if the ring is
     * empty. Returns 0 only at end of stream: either the producer
     * finished cleanly (endOfStream()) or its heartbeat went stale
     * (peerDied()) — a dead producer never hangs the consumer.
     */
    size_t pullWait(uint8_t *out, size_t max);

    /** True once pullWait() returned 0 after a clean finishProducer(). */
    bool endOfStream() const { return sawEof; }

    /** True once pullWait() gave up on a dead or absent producer. */
    bool peerDied() const { return sawPeerDeath; }

    /** @} */

    /** Frames discarded by the producer under Drop policy. */
    uint64_t droppedFrames() const;

    /** Ops inside those discarded frames. */
    uint64_t droppedOps() const;

    /** Refresh this side's heartbeat. push/pull do this implicitly. */
    void beat();

    /**
     * Start a background thread that refreshes this side's heartbeat
     * on a timer (a quarter of the ring's timeout), decoupling
     * liveness from data flow: a producer stuck in workload setup or
     * between sparse chunk flushes must not look dead to its
     * consumer. The thread dies with the process, so a SIGKILLed peer
     * still goes stale as usual. Idempotent; stops on destruction.
     * Forked children do not inherit the thread — they must beat()
     * themselves (or start their own).
     */
    void startHeartbeat();

    /**
     * Bound how long a Block push waits while no consumer has *ever*
     * attached (producer side; 0 = wait forever, the default). Once
     * any consumer has attached, legitimate backpressure — including
     * across a clean detach/re-attach — is waited out indefinitely;
     * only the "analyzer never showed up" case throws.
     */
    void setNoConsumerTimeout(uint64_t timeout_ms);

  private:
    ShmRing() = default;

    struct Heartbeat;

    ShmSuperblock *sb() const;
    uint8_t *data() const;
    bool peerAlive(uint64_t now_ns) const;

    std::string ringName;
    Role ringRole = Role::Consumer;
    void *map = nullptr;
    uint64_t mapBytes = 0;
    uint64_t noConsumerWaitNs = 0;
    std::unique_ptr<Heartbeat> heart;
    bool peerGone = false;
    bool sawEof = false;
    bool sawPeerDeath = false;
};

/**
 * TraceSink that streams the `.wtrace` encoding into a ShmRing. The
 * header frame is pushed on construction and the footer on finish();
 * both always use Block policy — dropping either would invalidate the
 * whole stream — while op chunks honour the configured policy.
 */
class ShmChunkSink : public TraceSink
{
  public:
    /**
     * @param ring Producer-attached ring to stream into.
     * @param meta Run identity for the header frame.
     * @param layout Code layout whose region table the header carries.
     * @param policy Backpressure policy for op-chunk frames.
     * @param chunk_ops Ops per chunk.
     */
    ShmChunkSink(ShmRing &ring, const TraceMeta &meta,
                 const CodeLayout &layout,
                 ShmPolicy policy = ShmPolicy::Block,
                 uint32_t chunk_ops = tracefile::defaultChunkOps);

    /** Finishes the stream (with empty accounting) if still open. */
    ~ShmChunkSink() override;

    ShmChunkSink(const ShmChunkSink &) = delete;
    ShmChunkSink &operator=(const ShmChunkSink &) = delete;

    void consume(const MicroOp &op) override;
    void consumeBatch(const OpBlockView &ops) override;

    /**
     * Flush the pending chunk, push the footer frame and mark the
     * producer finished. Must be the final call; consume() afterwards
     * is an error. The footer's op count covers framed ops only, so a
     * lossy (Drop) stream still satisfies the reader's op-count
     * cross-check.
     */
    void finish(const IoCounters &io = {}, const DataBehavior &data = {});

    /** Ops actually framed into the ring. */
    uint64_t opsStreamed() const { return streamedOps; }

    /** Ops discarded with their chunks under Drop policy. */
    uint64_t opsDropped() const { return droppedOps; }

    /** Whole chunks discarded under Drop policy. */
    uint64_t chunksDropped() const { return droppedChunks; }

    /** Stream bytes pushed (frames that were not dropped). */
    uint64_t bytesStreamed() const { return streamedBytes; }

  private:
    void flushChunk();

    ShmRing &ring;
    ShmPolicy policy;
    tracefile::ChunkEncoder encoder;
    std::vector<uint8_t> frame;  //!< reusable framed-chunk buffer
    uint64_t streamedOps = 0;
    uint64_t streamedBytes = 0;
    uint64_t droppedOps = 0;
    uint64_t droppedChunks = 0;
    bool finished = false;
};

/**
 * TraceSource over a ring's byte stream. The constructor drains the
 * ring to end-of-stream into one shared buffer — TraceReader's open
 * validation is itself a full pass, so a live partial stream could
 * never satisfy it — then serves reads from the buffer. Use the
 * buffer-sharing constructor to replay one drained stream through
 * many readers (e.g. one per machine config) without re-draining.
 */
class ShmSource : public TraceSource
{
  public:
    /** Drain `ring` to end-of-stream (or peer death) and serve it. */
    explicit ShmSource(ShmRing &ring);

    /** Serve an already-drained stream. */
    explicit ShmSource(std::shared_ptr<const std::vector<uint8_t>> bytes);

    /** The drained stream, shareable across further ShmSources. */
    std::shared_ptr<const std::vector<uint8_t>> payload() const
    {
        return stream;
    }

    /**
     * True when the drain ended on producer death rather than a clean
     * finish. The buffered prefix is still served — it decodes up to
     * the truncation point exactly like a truncated file.
     */
    bool peerDied() const { return died; }

    void seek(uint64_t off) override { pos = off; }

    const uint8_t *
    view(size_t n) override
    {
        const uint8_t *p = stream->data() + pos;
        pos += n;
        return p;
    }

    const char *name() const override { return "shm"; }

  private:
    std::shared_ptr<const std::vector<uint8_t>> stream;
    bool died = false;
};

} // namespace wcrt

#endif // WCRT_TRACEFILE_SHM_RING_HH
