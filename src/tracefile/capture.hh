/**
 * @file
 * One-call trace capture: execute a workload once and persist its
 * entire op stream (plus I/O and data-behaviour accounting) to a
 * `.wtrace` file.
 *
 * The emission flow is byte-for-byte the one `profileWorkload` and
 * `runThroughSink` drive — same driver function, same Tracer — so a
 * replayed trace reproduces a live run exactly.
 */

#ifndef WCRT_TRACEFILE_CAPTURE_HH
#define WCRT_TRACEFILE_CAPTURE_HH

#include <string>

#include "workloads/workload.hh"

namespace wcrt {

/** What one capture produced. */
struct CaptureResult
{
    uint64_t ops = 0;        //!< dynamic instructions recorded
    uint64_t fileBytes = 0;  //!< total trace file size
};

/**
 * Run `workload` once, recording the stream to `path`.
 *
 * The file is written to a temporary name and renamed into place on
 * success, so concurrent readers never observe a half-written trace.
 *
 * @param workload Workload to record (setup() must not have run).
 * @param path Destination trace file.
 * @param scale Dataset scale to store in the trace header.
 */
CaptureResult captureTrace(Workload &workload, const std::string &path,
                           double scale);

} // namespace wcrt

#endif // WCRT_TRACEFILE_CAPTURE_HH
