/**
 * @file
 * One-call trace capture: execute a workload once and persist its
 * entire op stream (plus I/O and data-behaviour accounting) to a
 * `.wtrace` file.
 *
 * The emission flow is byte-for-byte the one `profileWorkload` and
 * `runThroughSink` drive — same driver function, same Tracer — so a
 * replayed trace reproduces a live run exactly.
 */

#ifndef WCRT_TRACEFILE_CAPTURE_HH
#define WCRT_TRACEFILE_CAPTURE_HH

#include <string>

#include "tracefile/shm_ring.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** What one capture produced. */
struct CaptureResult
{
    uint64_t ops = 0;        //!< dynamic instructions recorded
    uint64_t fileBytes = 0;  //!< total trace file size
};

/** What one serveTrace() run streamed (and failed to stream). */
struct ServeResult
{
    uint64_t ops = 0;           //!< ops framed into the ring
    uint64_t streamBytes = 0;   //!< stream bytes pushed
    uint64_t droppedOps = 0;    //!< ops lost under Drop policy
    uint64_t droppedChunks = 0; //!< chunks lost under Drop policy
};

/**
 * Run `workload` once, recording the stream to `path`.
 *
 * The file is written to a temporary name and renamed into place on
 * success, so concurrent readers never observe a half-written trace.
 *
 * @param workload Workload to record (setup() must not have run).
 * @param path Destination trace file.
 * @param scale Dataset scale to store in the trace header.
 */
CaptureResult captureTrace(Workload &workload, const std::string &path,
                           double scale);

/**
 * Run `workload` once, streaming its ops into a producer-attached shm
 * ring instead of a file. The emission flow — driver frame, Tracer,
 * chunk encoder — is byte-for-byte captureTrace()'s, so an analyzer
 * draining the ring decodes the same stream the file would hold
 * (exactly, under Block policy; minus dropped chunks under Drop).
 *
 * @param workload Workload to record (setup() must not have run).
 * @param ring Ring created/opened with ShmRing::Role::Producer.
 * @param scale Dataset scale to store in the stream header.
 * @param policy Backpressure policy for op-chunk frames.
 */
ServeResult serveTrace(Workload &workload, ShmRing &ring, double scale,
                       ShmPolicy policy = ShmPolicy::Block);

} // namespace wcrt

#endif // WCRT_TRACEFILE_CAPTURE_HH
