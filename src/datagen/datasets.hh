/**
 * @file
 * The paper's Table 1: the seven datasets behind the seventeen
 * representative workloads, with BDGS-style scaling.
 *
 * The real datasets (4.3M Wikipedia articles, 128 GB inputs) are far
 * beyond what a trace-driven simulation can chew through, so the
 * catalog materializes statistically-similar scaled versions. The
 * `scale` factor multiplies record counts; metric convergence at small
 * scale is validated by tests.
 */

#ifndef WCRT_DATAGEN_DATASETS_HH
#define WCRT_DATAGEN_DATASETS_HH

#include <string>
#include <vector>

#include "datagen/graph.hh"
#include "datagen/table.hh"
#include "datagen/text.hh"

namespace wcrt {

/** Identity of a Table-1 dataset. */
enum class DatasetId : uint8_t {
    WikipediaEntries,
    AmazonMovieReviews,
    GoogleWebGraph,
    FacebookSocialNetwork,
    EcommerceTransactions,
    ProfSearchResumes,
    TpcdsWebTables,
};

/** Static description (the Table-1 row). */
struct DatasetInfo
{
    DatasetId id;
    const char *name;
    const char *description;  //!< the paper's "data set description"
    const char *generator;    //!< which BDGS generator scales it
};

/** All seven Table-1 rows. */
const std::vector<DatasetInfo> &datasetInfos();

/**
 * Materializes scaled datasets on demand against one virtual heap.
 *
 * Scale 1.0 targets trace-budget-friendly sizes (tens of thousands of
 * records); the constructor's scale multiplies every record count.
 */
class DatasetCatalog
{
  public:
    /**
     * @param heap Trace address space shared by the run.
     * @param scale Record-count multiplier (> 0).
     * @param seed Generator seed.
     */
    DatasetCatalog(VirtualHeap &heap, double scale = 1.0,
                   uint64_t seed = 7);

    /** Wikipedia-like article corpus (long Zipfian documents). */
    TextCorpus wikipedia() const;

    /** Amazon-movie-review-like corpus (short skewed documents). */
    TextCorpus amazonReviews() const;

    /** Google-web-graph-like directed graph. */
    Graph googleWebGraph() const;

    /** Facebook-like small social graph. */
    Graph facebookGraph() const;

    /** E-commerce ORDER table (4 columns). */
    DataTable ecommerceOrders() const;

    /** E-commerce ITEM table (6 columns). */
    DataTable ecommerceItems() const;

    /** ProfSearch resumes as sorted KV records. */
    KvDataset profSearch() const;

    /** TPC-DS web_sales fact table. */
    DataTable tpcdsWebSales() const;

    /** TPC-DS date dimension. */
    DataTable tpcdsDateDim() const;

    /** TPC-DS item dimension. */
    DataTable tpcdsItemDim() const;

    /** Scaled record count helper. */
    uint64_t scaled(uint64_t base) const;

  private:
    VirtualHeap &heap;
    double scale;
    uint64_t seed;
};

} // namespace wcrt

#endif // WCRT_DATAGEN_DATASETS_HH
