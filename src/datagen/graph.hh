/**
 * @file
 * BDGS-style graph generation (the "Graph Generator of BDGS").
 *
 * Preferential-attachment graphs reproduce the heavy-tailed degree
 * distributions of the paper's Google web graph and Facebook social
 * network datasets, which is what gives PageRank its skewed,
 * cache-unfriendly access pattern.
 */

#ifndef WCRT_DATAGEN_GRAPH_HH
#define WCRT_DATAGEN_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {

/**
 * Directed graph in CSR form with synthetic trace addresses.
 */
struct Graph
{
    uint32_t numNodes = 0;
    std::vector<uint64_t> offsets;  //!< CSR row offsets (n+1 entries)
    std::vector<uint32_t> targets;  //!< concatenated out-edges

    HeapRegion nodeRegion;   //!< per-node state (ranks, labels)
    HeapRegion edgeRegion;   //!< the CSR target array

    uint64_t numEdges() const { return targets.size(); }

    /** Out-degree of node `v`. */
    uint64_t outDegree(uint32_t v) const;

    /** Trace address of node v's per-node state slot (8 bytes each). */
    uint64_t nodeAddr(uint32_t v) const;

    /** Trace address of the k-th out-edge of node v. */
    uint64_t edgeAddr(uint32_t v, uint64_t k) const;
};

/** Graph generator tunables. */
struct GraphGenOptions
{
    uint32_t edgesPerNode = 6;  //!< average out-degree
    uint64_t seed = 3;
};

/**
 * Preferential-attachment (Barabasi-Albert flavoured) generator.
 */
class GraphGenerator
{
  public:
    explicit GraphGenerator(const GraphGenOptions &options);

    /** Generate a graph with `num_nodes` nodes. */
    Graph generate(VirtualHeap &heap, const std::string &name,
                   uint32_t num_nodes) const;

  private:
    GraphGenOptions opts;
};

} // namespace wcrt

#endif // WCRT_DATAGEN_GRAPH_HH
