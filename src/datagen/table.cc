#include "datagen/table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace wcrt {

size_t
Column::size() const
{
    switch (type) {
      case ColumnType::Int64:
        return ints.size();
      case ColumnType::Float64:
        return doubles.size();
      case ColumnType::Text:
        return texts.size();
    }
    return 0;
}

uint64_t
Column::valueBytes() const
{
    switch (type) {
      case ColumnType::Int64:
      case ColumnType::Float64:
        return 8;
      case ColumnType::Text:
        return 16;  // pointer + length representation
    }
    return 8;
}

const Column &
DataTable::column(const std::string &column_name) const
{
    return columns[columnIndex(column_name)];
}

size_t
DataTable::columnIndex(const std::string &column_name) const
{
    for (size_t i = 0; i < columns.size(); ++i)
        if (columns[i].name == column_name)
            return i;
    wcrt_panic("table '", name, "' has no column '", column_name, "'");
}

uint64_t
DataTable::cellAddr(size_t col, uint64_t row) const
{
    if (col >= columnRegions.size())
        wcrt_panic("column index ", col, " out of range");
    return columnRegions[col].element(row, columns[col].valueBytes());
}

void
DataTable::mapRegions(VirtualHeap &heap)
{
    columnRegions.clear();
    for (const auto &c : columns) {
        uint64_t bytes = std::max<uint64_t>(rows * c.valueBytes(), 1);
        columnRegions.push_back(heap.alloc(name + "." + c.name, bytes));
    }
}

uint64_t
KvDataset::keyAddr(size_t i) const
{
    return keyRegion.element(i, 32);
}

uint64_t
KvDataset::valueAddr(size_t i) const
{
    return valueRegion.element(i, valueBytes);
}

TableGenerator::TableGenerator(uint64_t seed) : seed(seed) {}

DataTable
TableGenerator::ecommerceOrders(VirtualHeap &heap, uint64_t rows) const
{
    Rng rng(seed ^ 0x0acc);
    DataTable t;
    t.name = "ecom_orders";
    t.rows = rows;

    Column order_id{"order_id", ColumnType::Int64, {}, {}, {}};
    Column buyer_id{"buyer_id", ColumnType::Int64, {}, {}, {}};
    Column create_date{"create_date", ColumnType::Int64, {}, {}, {}};
    Column amount{"amount", ColumnType::Float64, {}, {}, {}};
    for (uint64_t r = 0; r < rows; ++r) {
        order_id.ints.push_back(static_cast<int64_t>(r + 1));
        buyer_id.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(rows / 4 + 1)));
        create_date.ints.push_back(
            20120101 + static_cast<int64_t>(rng.nextBelow(365)));
        amount.doubles.push_back(1.0 + rng.nextDouble() * 500.0);
    }
    t.columns = {std::move(order_id), std::move(buyer_id),
                 std::move(create_date), std::move(amount)};
    t.mapRegions(heap);
    return t;
}

DataTable
TableGenerator::ecommerceItems(VirtualHeap &heap, uint64_t rows,
                               uint64_t order_rows) const
{
    Rng rng(seed ^ 0x17e5);
    DataTable t;
    t.name = "ecom_items";
    t.rows = rows;

    Column item_id{"item_id", ColumnType::Int64, {}, {}, {}};
    Column order_id{"order_id", ColumnType::Int64, {}, {}, {}};
    Column goods_id{"goods_id", ColumnType::Int64, {}, {}, {}};
    Column goods_number{"goods_number", ColumnType::Int64, {}, {}, {}};
    Column goods_price{"goods_price", ColumnType::Float64, {}, {}, {}};
    Column category{"category", ColumnType::Int64, {}, {}, {}};
    for (uint64_t r = 0; r < rows; ++r) {
        item_id.ints.push_back(static_cast<int64_t>(r + 1));
        order_id.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(order_rows) + 1));
        goods_id.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(10000)));
        goods_number.ints.push_back(
            static_cast<int64_t>(1 + rng.nextBelow(10)));
        goods_price.doubles.push_back(0.5 + rng.nextDouble() * 100.0);
        category.ints.push_back(static_cast<int64_t>(rng.nextBelow(64)));
    }
    t.columns = {std::move(item_id), std::move(order_id),
                 std::move(goods_id), std::move(goods_number),
                 std::move(goods_price), std::move(category)};
    t.mapRegions(heap);
    return t;
}

KvDataset
TableGenerator::profSearchResumes(VirtualHeap &heap, uint64_t rows) const
{
    Rng rng(seed ^ 0xbe5);
    KvDataset kv;
    kv.valueBytes = 1128;  // the paper's record size
    kv.keys.reserve(rows);
    kv.values.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
        // Zero-padded keys sort lexicographically like numerically.
        std::string key = "person-";
        std::string num = std::to_string(r);
        key += std::string(10 - num.size(), '0') + num;
        kv.keys.push_back(std::move(key));

        std::string value;
        value.reserve(kv.valueBytes);
        value += "name:applicant-" + num + ";education:";
        value += std::to_string(rng.nextBelow(5));
        value += ";occupation:" + std::to_string(rng.nextBelow(200));
        value += ";resume:";
        while (value.size() < kv.valueBytes)
            value.push_back(static_cast<char>('a' + rng.nextBelow(26)));
        kv.values.push_back(std::move(value));
    }
    kv.keyRegion = heap.alloc("profsearch.keys",
                              std::max<uint64_t>(rows * 32, 1));
    kv.valueRegion = heap.alloc(
        "profsearch.values", std::max<uint64_t>(rows * kv.valueBytes, 1));
    return kv;
}

DataTable
TableGenerator::tpcdsWebSales(VirtualHeap &heap, uint64_t rows) const
{
    Rng rng(seed ^ 0xd5);
    DataTable t;
    t.name = "web_sales";
    t.rows = rows;

    Column date_sk{"ws_sold_date_sk", ColumnType::Int64, {}, {}, {}};
    Column item_sk{"ws_item_sk", ColumnType::Int64, {}, {}, {}};
    Column cust_sk{"ws_bill_customer_sk", ColumnType::Int64, {}, {}, {}};
    Column quantity{"ws_quantity", ColumnType::Int64, {}, {}, {}};
    Column price{"ws_sales_price", ColumnType::Float64, {}, {}, {}};
    Column profit{"ws_net_profit", ColumnType::Float64, {}, {}, {}};
    for (uint64_t r = 0; r < rows; ++r) {
        date_sk.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(1461)));  // 4 years
        item_sk.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(18000)));
        cust_sk.ints.push_back(
            static_cast<int64_t>(rng.nextBelow(rows / 8 + 16)));
        quantity.ints.push_back(
            static_cast<int64_t>(1 + rng.nextBelow(100)));
        price.doubles.push_back(rng.nextDouble() * 300.0);
        profit.doubles.push_back(rng.nextDouble() * 60.0 - 10.0);
    }
    t.columns = {std::move(date_sk), std::move(item_sk),
                 std::move(cust_sk), std::move(quantity),
                 std::move(price), std::move(profit)};
    t.mapRegions(heap);
    return t;
}

DataTable
TableGenerator::tpcdsDateDim(VirtualHeap &heap, uint64_t days) const
{
    DataTable t;
    t.name = "date_dim";
    t.rows = days;

    Column date_sk{"d_date_sk", ColumnType::Int64, {}, {}, {}};
    Column year{"d_year", ColumnType::Int64, {}, {}, {}};
    Column moy{"d_moy", ColumnType::Int64, {}, {}, {}};
    Column dom{"d_dom", ColumnType::Int64, {}, {}, {}};
    for (uint64_t d = 0; d < days; ++d) {
        date_sk.ints.push_back(static_cast<int64_t>(d));
        year.ints.push_back(static_cast<int64_t>(1998 + d / 365));
        moy.ints.push_back(static_cast<int64_t>((d / 30) % 12 + 1));
        dom.ints.push_back(static_cast<int64_t>(d % 30 + 1));
    }
    t.columns = {std::move(date_sk), std::move(year), std::move(moy),
                 std::move(dom)};
    t.mapRegions(heap);
    return t;
}

DataTable
TableGenerator::tpcdsItemDim(VirtualHeap &heap, uint64_t items) const
{
    Rng rng(seed ^ 0x17e);
    DataTable t;
    t.name = "item";
    t.rows = items;

    Column item_sk{"i_item_sk", ColumnType::Int64, {}, {}, {}};
    Column category{"i_category_id", ColumnType::Int64, {}, {}, {}};
    Column manager{"i_manager_id", ColumnType::Int64, {}, {}, {}};
    Column price{"i_current_price", ColumnType::Float64, {}, {}, {}};
    for (uint64_t i = 0; i < items; ++i) {
        item_sk.ints.push_back(static_cast<int64_t>(i));
        category.ints.push_back(static_cast<int64_t>(rng.nextBelow(10)));
        manager.ints.push_back(static_cast<int64_t>(rng.nextBelow(100)));
        price.doubles.push_back(0.5 + rng.nextDouble() * 200.0);
    }
    t.columns = {std::move(item_sk), std::move(category),
                 std::move(manager), std::move(price)};
    t.mapRegions(heap);
    return t;
}

} // namespace wcrt
