#include "datagen/graph.hh"

#include <algorithm>

#include "base/logging.hh"

namespace wcrt {

uint64_t
Graph::outDegree(uint32_t v) const
{
    if (v >= numNodes)
        wcrt_panic("node ", v, " out of range ", numNodes);
    return offsets[v + 1] - offsets[v];
}

uint64_t
Graph::nodeAddr(uint32_t v) const
{
    return nodeRegion.element(v, 8);
}

uint64_t
Graph::edgeAddr(uint32_t v, uint64_t k) const
{
    if (v >= numNodes || k >= outDegree(v))
        wcrt_panic("edge (", v, ",", k, ") out of range");
    return edgeRegion.element(offsets[v] + k, 4);
}

GraphGenerator::GraphGenerator(const GraphGenOptions &options)
    : opts(options)
{
    if (opts.edgesPerNode == 0)
        wcrt_fatal("graph generator needs edgesPerNode >= 1");
}

Graph
GraphGenerator::generate(VirtualHeap &heap, const std::string &name,
                         uint32_t num_nodes) const
{
    if (num_nodes < 2)
        wcrt_fatal("graph generator needs at least two nodes");

    Rng rng(opts.seed);
    // Preferential attachment via the repeated-endpoints trick: keep a
    // pool of past edge endpoints; sampling uniformly from the pool is
    // proportional to degree.
    std::vector<uint32_t> pool;
    pool.reserve(static_cast<size_t>(num_nodes) * opts.edgesPerNode * 2);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(static_cast<size_t>(num_nodes) * opts.edgesPerNode);

    pool.push_back(0);
    for (uint32_t v = 1; v < num_nodes; ++v) {
        uint32_t fanout =
            1 + static_cast<uint32_t>(rng.nextBelow(2 * opts.edgesPerNode -
                                                    1));
        for (uint32_t e = 0; e < fanout; ++e) {
            uint32_t dst;
            if (rng.nextBool(0.15)) {
                dst = static_cast<uint32_t>(rng.nextBelow(v));
            } else {
                dst = pool[rng.nextBelow(pool.size())];
            }
            if (dst == v)
                dst = (dst + 1) % num_nodes;
            edges.emplace_back(v, dst);
            pool.push_back(dst);
        }
        pool.push_back(v);
    }

    std::sort(edges.begin(), edges.end());

    Graph g;
    g.numNodes = num_nodes;
    g.offsets.assign(num_nodes + 1, 0);
    g.targets.reserve(edges.size());
    for (const auto &[src, dst] : edges)
        ++g.offsets[src + 1];
    for (uint32_t v = 0; v < num_nodes; ++v)
        g.offsets[v + 1] += g.offsets[v];
    for (const auto &[src, dst] : edges)
        g.targets.push_back(dst);

    g.nodeRegion = heap.alloc(name + ".nodes",
                              static_cast<uint64_t>(num_nodes) * 8);
    g.edgeRegion = heap.alloc(
        name + ".edges",
        std::max<uint64_t>(g.targets.size() * 4, 1));
    return g;
}

} // namespace wcrt
