/**
 * @file
 * BDGS-style text generation (the "Text Generator of BDGS").
 *
 * Produces corpora with a Zipfian word-frequency distribution, the
 * statistical property that makes WordCount/Grep/Bayes behave like
 * they do on Wikipedia or review text: a few words dominate hash-table
 * hits while a long tail keeps the dictionary growing.
 */

#ifndef WCRT_DATAGEN_TEXT_HH
#define WCRT_DATAGEN_TEXT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {

/**
 * An in-memory corpus with synthetic trace addresses.
 *
 * Documents are real strings (the workloads genuinely tokenize,
 * compare and hash them); `region` maps the concatenated corpus into
 * the trace address space so cache behaviour matches the layout.
 */
struct TextCorpus
{
    std::vector<std::string> docs;
    std::vector<uint64_t> docOffsets;  //!< byte offset of each doc
    HeapRegion region;
    uint64_t totalBytes = 0;

    /** Trace address of byte `offset` within document `i`. */
    uint64_t docAddr(size_t i, uint64_t offset = 0) const;
};

/** Tunables for the text generator. */
struct TextGenOptions
{
    uint32_t vocabulary = 20000;  //!< distinct words
    double zipfSkew = 1.0;        //!< word-frequency skew
    uint32_t minWordLen = 2;
    uint32_t maxWordLen = 12;
    uint32_t wordsPerDoc = 200;
    uint64_t seed = 1;
};

/**
 * Deterministic Zipfian text generator.
 */
class TextGenerator
{
  public:
    explicit TextGenerator(const TextGenOptions &options);

    /**
     * Generate a corpus of `num_docs` documents, registering its bytes
     * in `heap` under `name`.
     */
    TextCorpus generate(VirtualHeap &heap, const std::string &name,
                        size_t num_docs) const;

    /** The generator's word list (rank order). */
    const std::vector<std::string> &vocabulary() const { return words; }

  private:
    TextGenOptions opts;
    std::vector<std::string> words;
};

} // namespace wcrt

#endif // WCRT_DATAGEN_TEXT_HH
