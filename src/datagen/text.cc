#include "datagen/text.hh"

#include "base/logging.hh"

namespace wcrt {

uint64_t
TextCorpus::docAddr(size_t i, uint64_t offset) const
{
    if (i >= docs.size())
        wcrt_panic("docAddr index ", i, " out of ", docs.size());
    return region.addr(docOffsets[i] + offset);
}

TextGenerator::TextGenerator(const TextGenOptions &options) : opts(options)
{
    if (opts.vocabulary == 0)
        wcrt_fatal("text generator needs a non-empty vocabulary");
    if (opts.minWordLen == 0 || opts.maxWordLen < opts.minWordLen)
        wcrt_fatal("bad word length bounds");

    // Build a deterministic vocabulary: lowercase pseudo-words whose
    // lengths follow the rank (frequent words tend to be short, like
    // natural language).
    Rng rng(opts.seed);
    words.reserve(opts.vocabulary);
    for (uint32_t rank = 0; rank < opts.vocabulary; ++rank) {
        uint32_t span = opts.maxWordLen - opts.minWordLen + 1;
        // Short words for low ranks, spreading longer with rank.
        uint32_t len = opts.minWordLen +
                       static_cast<uint32_t>(
                           (static_cast<uint64_t>(rank) * span) /
                           opts.vocabulary);
        len = std::min(
            opts.maxWordLen,
            std::max(opts.minWordLen,
                     len + static_cast<uint32_t>(rng.nextBelow(3))));
        std::string w;
        w.reserve(len);
        for (uint32_t c = 0; c < len; ++c)
            w.push_back(static_cast<char>('a' + rng.nextBelow(26)));
        words.push_back(std::move(w));
    }
}

TextCorpus
TextGenerator::generate(VirtualHeap &heap, const std::string &name,
                        size_t num_docs) const
{
    TextCorpus corpus;
    corpus.docs.reserve(num_docs);
    corpus.docOffsets.reserve(num_docs);

    Rng rng(opts.seed ^ 0xc0ffee);
    ZipfSampler zipf(words.size(), opts.zipfSkew);

    uint64_t offset = 0;
    for (size_t d = 0; d < num_docs; ++d) {
        std::string doc;
        doc.reserve(static_cast<size_t>(opts.wordsPerDoc) * 6);
        for (uint32_t w = 0; w < opts.wordsPerDoc; ++w) {
            if (w)
                doc.push_back(' ');
            doc += words[zipf.sample(rng)];
        }
        corpus.docOffsets.push_back(offset);
        offset += doc.size() + 1;  // +1 for the record separator
        corpus.docs.push_back(std::move(doc));
    }
    corpus.totalBytes = offset;
    corpus.region = heap.alloc(name, std::max<uint64_t>(offset, 1));
    return corpus;
}

} // namespace wcrt
