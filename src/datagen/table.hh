/**
 * @file
 * BDGS-style structured-data generation (the "Table Generator of
 * BDGS" and TPC DSGen stand-in).
 *
 * Provides a small columnar table representation plus generators for
 * the paper's structured datasets: the two e-commerce transaction
 * tables, ProfSearch person resumes (key-value records for the HBase
 * read workload), and TPC-DS-flavoured web tables.
 */

#ifndef WCRT_DATAGEN_TABLE_HH
#define WCRT_DATAGEN_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {

/** Column data types. */
enum class ColumnType : uint8_t { Int64, Float64, Text };

/** One column: a name, a type, and the matching value vector. */
struct Column
{
    std::string name;
    ColumnType type = ColumnType::Int64;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> texts;

    /** Number of values in whichever vector is active. */
    size_t size() const;

    /** Approximate bytes of one value (trace-address stride). */
    uint64_t valueBytes() const;
};

/**
 * Columnar table with synthetic trace addresses per column.
 */
struct DataTable
{
    std::string name;
    std::vector<Column> columns;
    std::vector<HeapRegion> columnRegions;  //!< parallel to columns
    uint64_t rows = 0;

    /** Column lookup by name; panics when missing. */
    const Column &column(const std::string &column_name) const;
    size_t columnIndex(const std::string &column_name) const;

    /** Trace address of cell (row, col). */
    uint64_t cellAddr(size_t col, uint64_t row) const;

    /** Register all column regions in the heap (called by makers). */
    void mapRegions(VirtualHeap &heap);
};

/** Key-value record set (ProfSearch resumes, HBase rows). */
struct KvDataset
{
    std::vector<std::string> keys;    //!< sorted ascending
    std::vector<std::string> values;  //!< ~1 KB blobs
    HeapRegion keyRegion;
    HeapRegion valueRegion;
    uint64_t valueBytes = 0;

    uint64_t keyAddr(size_t i) const;
    uint64_t valueAddr(size_t i) const;
};

/**
 * Generators for the paper's Table-1 structured datasets. All are
 * deterministic in the seed and scalable in the row count.
 */
class TableGenerator
{
  public:
    explicit TableGenerator(uint64_t seed = 5);

    /** E-commerce Table 1: ORDER(order_id, buyer_id, date, amount). */
    DataTable ecommerceOrders(VirtualHeap &heap, uint64_t rows) const;

    /**
     * E-commerce Table 2: ITEM(item_id, order_id, goods_id, number,
     * price, category). `order_rows` bounds the foreign keys.
     */
    DataTable ecommerceItems(VirtualHeap &heap, uint64_t rows,
                             uint64_t order_rows) const;

    /** ProfSearch resumes: ~1128-byte key-value records, sorted. */
    KvDataset profSearchResumes(VirtualHeap &heap, uint64_t rows) const;

    /**
     * TPC-DS-flavoured web_sales fact table (date key, item key,
     * customer key, quantity, price, profit).
     */
    DataTable tpcdsWebSales(VirtualHeap &heap, uint64_t rows) const;

    /** TPC-DS date dimension (date key, year, month, day). */
    DataTable tpcdsDateDim(VirtualHeap &heap, uint64_t days) const;

    /** TPC-DS item dimension (item key, category, price band). */
    DataTable tpcdsItemDim(VirtualHeap &heap, uint64_t items) const;

  private:
    uint64_t seed;
};

} // namespace wcrt

#endif // WCRT_DATAGEN_TABLE_HH
