#include "datagen/datasets.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace wcrt {

const std::vector<DatasetInfo> &
datasetInfos()
{
    static const std::vector<DatasetInfo> infos = {
        {DatasetId::WikipediaEntries, "Wikipedia Entries",
         "4,300,000 English articles", "Text Generator of BDGS"},
        {DatasetId::AmazonMovieReviews, "Amazon Movie Reviews",
         "7,911,684 reviews", "Text Generator of BDGS"},
        {DatasetId::GoogleWebGraph, "Google Web Graph",
         "875713 nodes, 5105039 edges", "Graph Generator of BDGS"},
        {DatasetId::FacebookSocialNetwork, "Facebook Social Network",
         "4039 nodes, 88234 edges", "Graph Generator of BDGS"},
        {DatasetId::EcommerceTransactions, "E-commerce Transaction Data",
         "Table 1: 4 columns, 38658 rows. Table 2: 6 columns, 242735 "
         "rows",
         "Table Generator of BDGS"},
        {DatasetId::ProfSearchResumes, "ProfSearch Person Resumes",
         "278956 resumes", "Table Generator of BDGS"},
        {DatasetId::TpcdsWebTables, "TPC-DS WebTable Data", "26 tables",
         "TPC DSGen"},
    };
    return infos;
}

DatasetCatalog::DatasetCatalog(VirtualHeap &heap, double scale,
                               uint64_t seed)
    : heap(heap), scale(scale), seed(seed)
{
    if (scale <= 0.0)
        wcrt_fatal("dataset scale must be positive, got ", scale);
}

uint64_t
DatasetCatalog::scaled(uint64_t base) const
{
    auto v = static_cast<uint64_t>(
        std::llround(static_cast<double>(base) * scale));
    return std::max<uint64_t>(v, 2);
}

TextCorpus
DatasetCatalog::wikipedia() const
{
    TextGenOptions o;
    o.vocabulary = 30000;
    o.zipfSkew = 1.05;
    o.wordsPerDoc = 200;  // long articles
    o.seed = seed ^ 0x1;
    return TextGenerator(o).generate(heap, "wikipedia", scaled(300));
}

TextCorpus
DatasetCatalog::amazonReviews() const
{
    TextGenOptions o;
    o.vocabulary = 12000;
    o.zipfSkew = 1.15;    // reviews reuse vocabulary heavily
    o.wordsPerDoc = 50;   // short reviews
    o.seed = seed ^ 0x2;
    return TextGenerator(o).generate(heap, "amazon", scaled(1000));
}

Graph
DatasetCatalog::googleWebGraph() const
{
    GraphGenOptions o;
    o.edgesPerNode = 6;   // 875k nodes / 5.1M edges ~ 5.8
    o.seed = seed ^ 0x3;
    return GraphGenerator(o).generate(
        heap, "google_web", static_cast<uint32_t>(scaled(8000)));
}

Graph
DatasetCatalog::facebookGraph() const
{
    GraphGenOptions o;
    o.edgesPerNode = 22;  // 4039 nodes / 88k edges ~ 21.8
    o.seed = seed ^ 0x4;
    return GraphGenerator(o).generate(
        heap, "facebook", static_cast<uint32_t>(scaled(4039)));
}

DataTable
DatasetCatalog::ecommerceOrders() const
{
    return TableGenerator(seed ^ 0x5).ecommerceOrders(heap,
                                                      scaled(38658 / 8));
}

DataTable
DatasetCatalog::ecommerceItems() const
{
    return TableGenerator(seed ^ 0x5).ecommerceItems(
        heap, scaled(242735 / 8), scaled(38658 / 8));
}

KvDataset
DatasetCatalog::profSearch() const
{
    return TableGenerator(seed ^ 0x6).profSearchResumes(heap,
                                                        scaled(10000));
}

DataTable
DatasetCatalog::tpcdsWebSales() const
{
    return TableGenerator(seed ^ 0x7).tpcdsWebSales(heap, scaled(30000));
}

DataTable
DatasetCatalog::tpcdsDateDim() const
{
    return TableGenerator(seed ^ 0x7).tpcdsDateDim(heap, 1461);
}

DataTable
DatasetCatalog::tpcdsItemDim() const
{
    return TableGenerator(seed ^ 0x7).tpcdsItemDim(heap, 18000);
}

} // namespace wcrt
