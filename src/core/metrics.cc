#include "core/metrics.hh"

#include "base/logging.hh"

namespace wcrt {

const std::array<MetricInfo, numMetrics> &
metricInfos()
{
    using MC = MetricCategory;
    static const std::array<MetricInfo, numMetrics> infos = {{
        // Instruction mix (11)
        {"mix.load_ratio", MC::InstructionMix},
        {"mix.store_ratio", MC::InstructionMix},
        {"mix.branch_ratio", MC::InstructionMix},
        {"mix.integer_ratio", MC::InstructionMix},
        {"mix.fp_ratio", MC::InstructionMix},
        {"mix.other_ratio", MC::InstructionMix},
        {"mix.int_address_share", MC::InstructionMix},
        {"mix.fp_address_share", MC::InstructionMix},
        {"mix.other_int_share", MC::InstructionMix},
        {"mix.data_movement_ratio", MC::InstructionMix},
        {"mix.data_movement_branch_ratio", MC::InstructionMix},
        // Cache behaviour (8)
        {"cache.l1i_mpki", MC::Cache},
        {"cache.l1i_miss_ratio", MC::Cache},
        {"cache.l1d_mpki", MC::Cache},
        {"cache.l1d_miss_ratio", MC::Cache},
        {"cache.l2_mpki", MC::Cache},
        {"cache.l2_miss_ratio", MC::Cache},
        {"cache.l3_mpki", MC::Cache},
        {"cache.l3_miss_ratio", MC::Cache},
        // TLB behaviour (2)
        {"tlb.itlb_mpki", MC::Tlb},
        {"tlb.dtlb_mpki", MC::Tlb},
        // Branch execution (3)
        {"branch.mispredict_ratio", MC::Branch},
        {"branch.taken_ratio", MC::Branch},
        {"branch.btb_miss_pki", MC::Branch},
        // Pipeline behaviour (6)
        {"pipe.ipc", MC::Pipeline},
        {"pipe.cpi", MC::Pipeline},
        {"pipe.frontend_stall_ratio", MC::Pipeline},
        {"pipe.backend_stall_ratio", MC::Pipeline},
        {"pipe.basic_block_size", MC::Pipeline},
        {"pipe.fp_pki", MC::Pipeline},
        // Off-core requests and snoop responses (5)
        {"offcore.request_pki", MC::OffCore},
        {"offcore.snoop_response_pki", MC::OffCore},
        {"offcore.memory_bytes_pki", MC::OffCore},
        {"offcore.code_footprint_kb", MC::OffCore},
        {"offcore.data_footprint_kb", MC::OffCore},
        // Parallelism (5)
        {"par.mlp", MC::Parallelism},
        {"par.ilp_width", MC::Parallelism},
        {"par.load_store_ratio", MC::Parallelism},
        {"par.call_pki", MC::Parallelism},
        {"par.indirect_pki", MC::Parallelism},
        // Operation intensity (5)
        {"intensity.fp_per_byte", MC::Intensity},
        {"intensity.int_per_byte", MC::Intensity},
        {"intensity.gflops", MC::Intensity},
        {"intensity.int_mul_div_pki", MC::Intensity},
        {"intensity.mem_pki", MC::Intensity},
    }};
    return infos;
}

MetricVector
toMetricVector(const CpuReport &r)
{
    MetricVector v{};
    size_t i = 0;
    auto put = [&](double value) { v[i++] = value; };

    // Instruction mix.
    put(r.loadRatio);
    put(r.storeRatio);
    put(r.branchRatio);
    put(r.integerRatio);
    put(r.fpRatio);
    put(r.otherRatio);
    put(r.intAddressShare);
    put(r.fpAddressShare);
    put(r.otherIntShare);
    put(r.dataMovementRatio);
    put(r.dataMovementWithBranchRatio);
    // Cache.
    put(r.l1iMpki);
    put(r.l1iMissRatio);
    put(r.l1dMpki);
    put(r.l1dMissRatio);
    put(r.l2Mpki);
    put(r.l2MissRatio);
    put(r.l3Mpki);
    put(r.l3MissRatio);
    // TLB.
    put(r.itlbMpki);
    put(r.dtlbMpki);
    // Branch.
    put(r.branchMispredictRatio);
    put(r.branchTakenRatio);
    put(r.btbMissPki);
    // Pipeline.
    put(r.ipc);
    put(r.cpi);
    put(r.frontendStallRatio);
    put(r.backendStallRatio);
    put(r.basicBlockSize);
    put(r.fpPki);
    // Off-core.
    put(r.offcoreRequestPki);
    put(r.snoopResponsePki);
    put(r.memoryBytesPki);
    put(r.codeFootprintKb);
    put(r.dataFootprintKb);
    // Parallelism.
    put(r.mlp);
    put(r.ipc * (1.0 - r.frontendStallRatio));  // usable issue width
    put(r.storeRatio > 0.0 ? r.loadRatio / r.storeRatio : r.loadRatio);
    put(r.basicBlockSize > 0.0 ? 1000.0 / r.basicBlockSize : 0.0);
    put(r.btbMissPki);  // indirect-transfer pressure proxy
    // Intensity.
    put(r.operationIntensity);
    put(r.integerIntensity);
    put(r.gflops);
    put(r.fpPki * r.fpAddressShare);
    put(r.memoryBytesPki / 64.0);

    if (i != numMetrics)
        wcrt_panic("metric vector construction filled ", i, " of ",
                   numMetrics);
    return v;
}

size_t
metricIndex(const std::string &name)
{
    const auto &infos = metricInfos();
    for (size_t i = 0; i < infos.size(); ++i)
        if (name == infos[i].name)
            return i;
    wcrt_panic("unknown metric '", name, "'");
}

} // namespace wcrt
