#include "core/cluster.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/summary.hh"

namespace wcrt {

double
ClusterRun::averageIpc() const
{
    Summary s;
    for (const auto &r : perNode)
        s.add(r.report.ipc);
    return s.mean();
}

double
ClusterRun::averageL1iMpki() const
{
    Summary s;
    for (const auto &r : perNode)
        s.add(r.report.l1iMpki);
    return s.mean();
}

ClusterRun
profileOnCluster(
    const std::function<WorkloadPtr(double scale, uint64_t seed)> &make,
    const MachineConfig &machine, double scale,
    const ClusterConfig &cluster)
{
    if (cluster.nodes == 0)
        wcrt_fatal("cluster needs at least one node");

    ClusterRun run;
    run.nodes = cluster.nodes;
    double shard = scale / cluster.nodes;

    double slowest = 0.0;
    double cross_bytes = 0.0;
    for (uint32_t node = 0; node < cluster.nodes; ++node) {
        WorkloadPtr w = make(shard, 7 + node * 101);
        WorkloadRun r = profileWorkload(*w, machine, cluster.node);
        slowest = std::max(slowest, r.sysProfile.wallSeconds);
        if (cluster.nodes > 1) {
            cross_bytes += static_cast<double>(r.io.networkBytes) *
                           cluster.shuffleCrossFraction;
        }
        run.perNode.push_back(std::move(r));
    }

    // The exchange crosses the interconnect; each node's NIC carries
    // its share concurrently.
    run.networkSeconds = cross_bytes /
                         (cluster.node.networkMBps * 1e6) /
                         cluster.nodes;
    run.wallSeconds = slowest + run.networkSeconds;

    // Reference: the whole dataset on a single node.
    WorkloadPtr single = make(scale, 7);
    WorkloadRun single_run =
        profileWorkload(*single, machine, cluster.node);
    run.singleNodeWallSeconds = single_run.sysProfile.wallSeconds;
    run.speedup = run.wallSeconds > 0.0
                      ? run.singleNodeWallSeconds / run.wallSeconds
                      : 0.0;
    return run;
}

} // namespace wcrt
