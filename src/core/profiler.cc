#include "core/profiler.hh"

#include "tracefile/replay.hh"

namespace wcrt {

WorkloadRun
profileWorkload(Workload &workload, const MachineConfig &machine,
                const NodeModel &node)
{
    WorkloadRun run;
    run.name = workload.name();
    run.category = workload.category();
    run.stackKind = workload.stack();

    RunEnv env;
    workload.setup(env);
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);
    SimCpu cpu(machine);
    Tracer tracer(env.layout, cpu);
    tracer.call(driver);
    workload.execute(env, tracer);
    tracer.ret();

    run.report = cpu.report();
    run.metrics = toMetricVector(run.report);
    run.io = env.io;
    run.data = env.data;
    run.sysProfile = computeProfile(run.report.instructions, env.io,
                                    node);
    run.sysBehavior = classifySystemBehavior(run.sysProfile);
    return run;
}

RunEnv
runThroughSink(Workload &workload, TraceSink &sink)
{
    RunEnv env;
    workload.setup(env);
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);
    Tracer tracer(env.layout, sink);
    tracer.call(driver);
    workload.execute(env, tracer);
    tracer.ret();
    return env;
}

WorkloadRun
profileWorkload(TraceReader &trace, const MachineConfig &machine,
                const NodeModel &node)
{
    WorkloadRun run;
    run.name = trace.meta().workload;
    run.category = trace.meta().category;
    run.stackKind = trace.meta().stackKind;

    SimCpu cpu(machine);
    trace.replayInto(cpu);

    run.report = cpu.report();
    run.metrics = toMetricVector(run.report);
    run.io = trace.io();
    run.data = trace.data();
    run.sysProfile = computeProfile(run.report.instructions, run.io,
                                    node);
    run.sysBehavior = classifySystemBehavior(run.sysProfile);
    return run;
}

std::vector<WorkloadRun>
profileTraces(const std::vector<std::string> &trace_paths,
              const MachineConfig &machine, const NodeModel &node,
              unsigned threads)
{
    std::vector<WorkloadRun> runs(trace_paths.size());
    parallelFor(trace_paths.size(), [&](size_t i) {
        TraceReader reader(trace_paths[i]);
        runs[i] = profileWorkload(reader, machine, node);
    }, threads);
    return runs;
}

} // namespace wcrt
