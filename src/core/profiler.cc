#include "core/profiler.hh"

namespace wcrt {

WorkloadRun
profileWorkload(Workload &workload, const MachineConfig &machine,
                const NodeModel &node)
{
    WorkloadRun run;
    run.name = workload.name();
    run.category = workload.category();
    run.stackKind = workload.stack();

    RunEnv env;
    workload.setup(env);
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);
    SimCpu cpu(machine);
    Tracer tracer(env.layout, cpu);
    tracer.call(driver);
    workload.execute(env, tracer);
    tracer.ret();

    run.report = cpu.report();
    run.metrics = toMetricVector(run.report);
    run.io = env.io;
    run.data = env.data;
    run.sysProfile = computeProfile(run.report.instructions, env.io,
                                    node);
    run.sysBehavior = classifySystemBehavior(run.sysProfile);
    return run;
}

RunEnv
runThroughSink(Workload &workload, TraceSink &sink)
{
    RunEnv env;
    workload.setup(env);
    FunctionId driver = env.layout.addFunction(
        "driver.main", CodeLayer::Application, 512);
    Tracer tracer(env.layout, sink);
    tracer.call(driver);
    workload.execute(env, tracer);
    tracer.ret();
    return env;
}

} // namespace wcrt
