#include "core/trace_cache.hh"

#include <cctype>
#include <cstdlib>
#include <filesystem>

#include "base/table.hh"
#include "tracefile/capture.hh"
#include "tracefile/trace_reader.hh"
#include "tracefile/trace_source.hh"

namespace wcrt {

TraceCache::TraceCache(std::string dir)
    : cacheDir(dir.empty() ? defaultDir() : std::move(dir))
{
    std::filesystem::create_directories(cacheDir);
}

std::string
TraceCache::defaultDir()
{
    if (const char *d = std::getenv("WCRT_TRACE_DIR"); d && *d)
        return d;
    return (std::filesystem::temp_directory_path() / "wcrt-traces")
        .string();
}

std::string
TraceCache::path(const std::string &key, double scale) const
{
    std::string safe;
    safe.reserve(key.size());
    for (char c : key)
        safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ||
                               c == '.' || c == '-'
                           ? c
                           : '_');
    return (std::filesystem::path(cacheDir) /
            (safe + "-s" + formatFixed(scale, 4) + ".wtrace"))
        .string();
}

bool
TraceCache::has(const std::string &key, double scale) const
{
    std::string file = path(key, scale);
    if (!std::filesystem::exists(file))
        return false;
    try {
        TraceReader reader(file);
        return true;
    } catch (const TraceFormatError &) {
        return false;
    }
}

std::string
TraceCache::ensure(const std::string &key, double scale,
                   const std::function<WorkloadPtr()> &make,
                   bool *captured)
{
    std::string file = path(key, scale);
    if (has(key, scale)) {
        if (captured)
            *captured = false;
        return file;
    }
    WorkloadPtr workload = make();
    captureTrace(*workload, file, scale);
    // The bytes were produced (and CRC'd) by this process just now, so
    // CrcMode::Once replays can skip re-verifying them.
    markTraceVerified(file);
    if (captured)
        *captured = true;
    return file;
}

} // namespace wcrt
