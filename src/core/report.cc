#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "base/logging.hh"
#include "base/table.hh"
#include "stats/pca.hh"

namespace wcrt {

namespace {

/** Cluster id of sample `i` in the report. */
size_t
clusterOf(const SubsetReport &report,
          const std::vector<std::string> &names, size_t i)
{
    for (const auto &c : report.clusters) {
        for (const auto &m : c.members)
            if (m == names[i])
                return c.id;
    }
    wcrt_panic("sample '", names[i], "' not in any cluster");
}

} // namespace

void
printPcaScatter(std::ostream &os, const SubsetReport &report,
                const std::vector<std::string> &names, size_t width,
                size_t height)
{
    const Matrix &proj = report.projected;
    if (proj.rows() == 0 || width < 8 || height < 4) {
        os << "(no projection to plot)\n";
        return;
    }
    size_t dims = proj.cols();

    double min_x = std::numeric_limits<double>::max();
    double max_x = std::numeric_limits<double>::lowest();
    double min_y = 0.0, max_y = 1.0;
    if (dims > 1) {
        min_y = min_x;
        max_y = max_x;
    }
    for (size_t r = 0; r < proj.rows(); ++r) {
        min_x = std::min(min_x, proj.at(r, 0));
        max_x = std::max(max_x, proj.at(r, 0));
        if (dims > 1) {
            min_y = std::min(min_y, proj.at(r, 1));
            max_y = std::max(max_y, proj.at(r, 1));
        }
    }
    double span_x = std::max(max_x - min_x, 1e-9);
    double span_y = std::max(max_y - min_y, 1e-9);

    std::vector<std::string> grid(height, std::string(width, ' '));
    for (size_t r = 0; r < proj.rows(); ++r) {
        double fx = (proj.at(r, 0) - min_x) / span_x;
        double fy = dims > 1 ? (proj.at(r, 1) - min_y) / span_y : 0.5;
        auto col = static_cast<size_t>(fx * (width - 1));
        auto row = static_cast<size_t>((1.0 - fy) * (height - 1));
        size_t cluster = clusterOf(report, names, r);
        bool is_rep =
            report.clusters[cluster].representative == names[r];
        char mark = is_rep ? static_cast<char>('A' + cluster % 26)
                           : static_cast<char>('0' + cluster % 10);
        grid[row][col] = mark;
    }

    os << "PC1 -> horizontal, PC2 -> vertical; digits are cluster ids "
          "(mod 10), letters mark representatives\n";
    os << "+" << std::string(width, '-') << "+\n";
    for (const auto &line : grid)
        os << "|" << line << "|\n";
    os << "+" << std::string(width, '-') << "+\n";
}

void
printClusterProfiles(std::ostream &os, const SubsetReport &report,
                     const std::vector<std::string> &names,
                     const std::vector<MetricVector> &metrics,
                     size_t top_k)
{
    if (names.size() != metrics.size())
        wcrt_fatal("names/metrics size mismatch in cluster profiles");

    // Z-score the metric matrix (same normalization the analyzer ran).
    Matrix samples(metrics.size(), numMetrics);
    for (size_t r = 0; r < metrics.size(); ++r)
        for (size_t c = 0; c < numMetrics; ++c)
            samples.at(r, c) = metrics[r][c];
    Normalized normalized = zscore(samples);

    const auto &infos = metricInfos();
    Table t({"cluster", "representative", "defining traits"});
    for (const auto &cluster : report.clusters) {
        // Mean z-score per metric over the cluster's members.
        std::vector<double> mean(numMetrics, 0.0);
        size_t members = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            if (clusterOf(report, names, i) != cluster.id)
                continue;
            ++members;
            for (size_t c = 0; c < numMetrics; ++c)
                mean[c] += normalized.data.at(i, c);
        }
        if (members == 0)
            continue;
        for (auto &v : mean)
            v /= static_cast<double>(members);

        std::vector<size_t> order(numMetrics);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return std::abs(mean[a]) > std::abs(mean[b]);
        });

        std::string traits;
        for (size_t k = 0; k < top_k && k < order.size(); ++k) {
            size_t m = order[k];
            if (!traits.empty())
                traits += ", ";
            traits += std::string(infos[m].name) +
                      (mean[m] >= 0 ? " +" : " ") +
                      formatFixed(mean[m], 1) + "sd";
        }
        t.cell(static_cast<uint64_t>(cluster.id + 1))
            .cell(cluster.representative)
            .cell(traits);
        t.endRow();
    }
    t.print(os);
}

void
writeMetricsCsv(std::ostream &os, const std::vector<std::string> &names,
                const std::vector<MetricVector> &metrics)
{
    const auto &infos = metricInfos();
    os << "workload";
    for (const auto &info : infos)
        os << "," << info.name;
    os << "\n";
    for (size_t r = 0; r < names.size(); ++r) {
        os << names[r];
        for (size_t c = 0; c < numMetrics; ++c)
            os << "," << metrics[r][c];
        os << "\n";
    }
}

} // namespace wcrt
