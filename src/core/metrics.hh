/**
 * @file
 * The 45 micro-architectural metrics of the paper's Section 3.
 *
 * The paper characterizes each workload by 45 metrics spanning eight
 * categories: instruction mix, cache behaviour, TLB behaviour, branch
 * execution, pipeline behaviour, off-core requests and snoop
 * responses, parallelism, and operation intensity. This header fixes
 * the exact metric list used throughout the toolkit and converts a
 * SimCpu report into the flat vector the analyzer consumes.
 */

#ifndef WCRT_CORE_METRICS_HH
#define WCRT_CORE_METRICS_HH

#include <array>
#include <string>

#include "sim/sim_cpu.hh"

namespace wcrt {

/** Number of characterization metrics. */
inline constexpr size_t numMetrics = 45;

/** Metric categories (for reporting). */
enum class MetricCategory : uint8_t {
    InstructionMix,
    Cache,
    Tlb,
    Branch,
    Pipeline,
    OffCore,
    Parallelism,
    Intensity,
};

/** Static description of one metric. */
struct MetricInfo
{
    const char *name;
    MetricCategory category;
};

/** Name and category of every metric, index-aligned with the vector. */
const std::array<MetricInfo, numMetrics> &metricInfos();

/** Flat metric vector for one workload run. */
using MetricVector = std::array<double, numMetrics>;

/** Flatten a CpuReport into the 45-metric vector. */
MetricVector toMetricVector(const CpuReport &report);

/** Index of a metric by name; panics on unknown names. */
size_t metricIndex(const std::string &name);

} // namespace wcrt

#endif // WCRT_CORE_METRICS_HH
