/**
 * @file
 * The WCRT analyzer: the paper's Section-3 reduction pipeline.
 *
 * Metric vectors from many workload runs are z-score normalized (the
 * paper's "normalize to a Gaussian distribution"), reduced with PCA,
 * and clustered with K-means; one representative per cluster (the
 * member nearest its centroid) forms the reduced benchmark suite —
 * 77 workloads in, 17 representatives out.
 */

#ifndef WCRT_CORE_ANALYZER_HH
#define WCRT_CORE_ANALYZER_HH

#include <string>
#include <vector>

#include "core/metrics.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"

namespace wcrt {

/** Analyzer tunables. */
struct AnalyzerOptions
{
    double pcaVarianceTarget = 0.9;  //!< variance the PCs must retain
    size_t clusters = 17;            //!< 0 = pick k by silhouette
    size_t minClusters = 8;          //!< auto-k search range
    size_t maxClusters = 24;
    uint64_t seed = 42;
};

/** One cluster of the subset report. */
struct ClusterSummary
{
    size_t id = 0;
    std::string representative;            //!< nearest-centroid member
    std::vector<std::string> members;      //!< all member names
};

/** The analyzer's output. */
struct SubsetReport
{
    size_t inputWorkloads = 0;
    size_t retainedComponents = 0;         //!< PCs kept
    double explainedVariance = 0.0;        //!< cumulative, kept PCs
    double silhouetteScore = 0.0;
    double wcss = 0.0;
    std::vector<ClusterSummary> clusters;
    Matrix projected;                      //!< samples in PC space

    /** Names of all representatives, cluster order. */
    std::vector<std::string> representatives() const;
};

/**
 * Run the full reduction pipeline.
 *
 * @param names One name per metric vector.
 * @param metrics One 45-metric vector per workload.
 * @param opts Tunables; opts.clusters == 0 selects k by silhouette.
 */
SubsetReport reduceWorkloads(const std::vector<std::string> &names,
                             const std::vector<MetricVector> &metrics,
                             const AnalyzerOptions &opts = {});

} // namespace wcrt

#endif // WCRT_CORE_ANALYZER_HH
