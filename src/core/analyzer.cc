#include "core/analyzer.hh"

#include "base/logging.hh"

namespace wcrt {

std::vector<std::string>
SubsetReport::representatives() const
{
    std::vector<std::string> out;
    out.reserve(clusters.size());
    for (const auto &c : clusters)
        out.push_back(c.representative);
    return out;
}

SubsetReport
reduceWorkloads(const std::vector<std::string> &names,
                const std::vector<MetricVector> &metrics,
                const AnalyzerOptions &opts)
{
    if (names.size() != metrics.size())
        wcrt_fatal("analyzer got ", names.size(), " names for ",
                   metrics.size(), " metric vectors");
    if (metrics.size() < 2)
        wcrt_fatal("analyzer needs at least two workloads");

    // Assemble the workload-by-metric matrix.
    Matrix samples(metrics.size(), numMetrics);
    for (size_t r = 0; r < metrics.size(); ++r)
        for (size_t c = 0; c < numMetrics; ++c)
            samples.at(r, c) = metrics[r][c];

    // Normalize and project.
    Normalized normalized = zscore(samples);
    PcaModel pca = fitPca(normalized.data, opts.pcaVarianceTarget);
    Matrix projected = pca.project(normalized.data);

    SubsetReport report;
    report.inputWorkloads = metrics.size();
    report.retainedComponents = pca.retained;
    for (size_t i = 0; i < pca.retained; ++i)
        report.explainedVariance += pca.explained[i];
    report.projected = projected;

    // Cluster.
    size_t k = opts.clusters;
    KMeansResult best;
    if (k == 0) {
        double best_sil = -2.0;
        size_t hi =
            std::min(opts.maxClusters, metrics.size() - 1);
        for (size_t kk = opts.minClusters; kk <= hi; ++kk) {
            KMeansResult r =
                kMeans(projected, kk, {.seed = opts.seed});
            double sil = silhouette(projected, r.assignment, kk);
            if (sil > best_sil) {
                best_sil = sil;
                best = std::move(r);
                k = kk;
            }
        }
        report.silhouetteScore = best_sil;
    } else {
        if (k > metrics.size())
            wcrt_fatal("cannot form ", k, " clusters from ",
                       metrics.size(), " workloads");
        best = kMeans(projected, k, {.seed = opts.seed});
        report.silhouetteScore =
            silhouette(projected, best.assignment, k);
    }
    report.wcss = best.wcss;

    auto reps = best.representatives(projected);
    report.clusters.resize(k);
    for (size_t ci = 0; ci < k; ++ci) {
        report.clusters[ci].id = ci;
        report.clusters[ci].representative = names[reps[ci]];
    }
    for (size_t i = 0; i < names.size(); ++i)
        report.clusters[best.assignment[i]].members.push_back(names[i]);
    return report;
}

} // namespace wcrt
