/**
 * @file
 * Shared-nothing cluster model — the paper's 5-node deployment.
 *
 * The paper's Section 1 frames big data systems as shared-nothing
 * partitioned parallelism: data is split across nodes, each node runs
 * the same stack over its shard, and nodes exchange only shuffle
 * traffic. The micro-architectural metrics the paper reports are
 * per-node (that is why single-node simulation reproduces them); what
 * the cluster adds is wall-clock behaviour: per-node compute shrinks
 * with the shard while shuffle traffic crosses the interconnect.
 *
 * profileOnCluster() runs one stack instance per node over a 1/N
 * shard (independent seeds model the partition), derives each node's
 * wall time from the sysmon model, charges the cross-node portion of
 * the shuffle to the network, and reports scale-out speedup next to
 * the per-node micro-architecture (which should be shard-invariant).
 */

#ifndef WCRT_CORE_CLUSTER_HH
#define WCRT_CORE_CLUSTER_HH

#include <functional>
#include <vector>

#include "core/profiler.hh"

namespace wcrt {

/** Cluster description. */
struct ClusterConfig
{
    uint32_t nodes = 5;           //!< the paper's deployment size
    NodeModel node;               //!< per-node throughput model
    double shuffleCrossFraction = 0.8;  //!< shuffle share leaving a node
};

/** Result of one cluster run. */
struct ClusterRun
{
    uint32_t nodes = 0;
    std::vector<WorkloadRun> perNode;   //!< one profile per node

    double wallSeconds = 0.0;           //!< slowest node + exchange
    double singleNodeWallSeconds = 0.0; //!< the same job on one node
    double speedup = 0.0;               //!< single-node / cluster wall
    double networkSeconds = 0.0;        //!< cross-node shuffle time

    /** Average of a per-node metric (micro-arch is shard-invariant). */
    double averageIpc() const;
    double averageL1iMpki() const;
};

/**
 * Run a workload across a simulated shared-nothing cluster.
 *
 * @param make Factory producing the workload for a given (shard
 *        scale, shard seed); the registry entries' `make` adapted via
 *        a seed-aware wrapper fits here.
 * @param machine Per-node machine model.
 * @param scale Total dataset scale (each node receives scale/nodes).
 * @param cluster Cluster description.
 */
ClusterRun profileOnCluster(
    const std::function<WorkloadPtr(double scale, uint64_t seed)> &make,
    const MachineConfig &machine, double scale,
    const ClusterConfig &cluster = {});

} // namespace wcrt

#endif // WCRT_CORE_CLUSTER_HH
