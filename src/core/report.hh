/**
 * @file
 * Presentation of the analyzer's results: the PCA-space scatter (the
 * paper's workload-similarity picture), per-cluster metric profiles
 * (which micro-architectural traits define each cluster), and CSV
 * export of the full workload-by-metric matrix for external tools.
 */

#ifndef WCRT_CORE_REPORT_HH
#define WCRT_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "core/metrics.hh"

namespace wcrt {

/**
 * Render an ASCII scatter of the samples' first two principal
 * components, one digit per sample (its cluster id mod 10); cluster
 * representatives print as letters (A = cluster 0).
 *
 * @param report A SubsetReport whose `projected` matrix has >= 2
 *        columns (1-column projections print a strip).
 * @param names Sample names, index-aligned with the projection.
 * @param width Plot width in characters.
 * @param height Plot height in rows.
 */
void printPcaScatter(std::ostream &os, const SubsetReport &report,
                     const std::vector<std::string> &names,
                     size_t width = 72, size_t height = 24);

/**
 * Per-cluster metric profile: for each cluster, the metrics whose
 * cluster-mean z-scores deviate most from the roster mean — i.e. what
 * makes this cluster a distinct class of workload.
 *
 * @param metrics The raw 45-metric vectors, index-aligned with the
 *        report's membership.
 * @param top_k Traits listed per cluster.
 */
void printClusterProfiles(std::ostream &os, const SubsetReport &report,
                          const std::vector<std::string> &names,
                          const std::vector<MetricVector> &metrics,
                          size_t top_k = 3);

/** Dump the full workload-by-metric matrix as CSV. */
void writeMetricsCsv(std::ostream &os,
                     const std::vector<std::string> &names,
                     const std::vector<MetricVector> &metrics);

} // namespace wcrt

#endif // WCRT_CORE_REPORT_HH
