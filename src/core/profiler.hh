/**
 * @file
 * The WCRT profiler: runs a workload on a machine model and collects
 * everything the paper measures — the 45 micro-architectural metrics,
 * the system-behaviour profile and the data-behaviour labels.
 *
 * This is the stand-in for the paper's per-node profiler (perf +
 * /proc sampling); the analyzer half of WCRT lives in analyzer.hh.
 */

#ifndef WCRT_CORE_PROFILER_HH
#define WCRT_CORE_PROFILER_HH

#include <string>
#include <vector>

#include "core/metrics.hh"
#include "sim/machine.hh"
#include "tracefile/trace_reader.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** Everything one profiled run produced. */
struct WorkloadRun
{
    std::string name;
    AppCategory category = AppCategory::DataAnalysis;
    StackKind stackKind = StackKind::Hadoop;

    CpuReport report;             //!< micro-architecture counters
    MetricVector metrics{};       //!< the 45-metric vector
    IoCounters io;                //!< accumulated I/O volume
    DataBehavior data;            //!< input/intermediate/output
    SystemProfile sysProfile;     //!< derived utilization profile
    SystemBehavior sysBehavior = SystemBehavior::Hybrid;
};

/**
 * Run a workload against a machine configuration and collect the full
 * measurement set.
 *
 * @param workload The workload (setup() must not have been called).
 * @param machine Machine model to simulate.
 * @param node Node throughput model for system-behaviour analysis.
 */
WorkloadRun profileWorkload(Workload &workload,
                            const MachineConfig &machine,
                            const NodeModel &node = {});

/**
 * Run a workload through an arbitrary trace sink (cache sweeps, mix
 * counting). Returns the populated run environment accounting.
 */
RunEnv runThroughSink(Workload &workload, TraceSink &sink);

/**
 * Replay a stored trace against a machine configuration instead of
 * re-executing the workload. Produces the same WorkloadRun a live
 * profileWorkload() of the captured workload would: the op stream,
 * I/O volumes and data behaviour all come from the trace file.
 */
WorkloadRun profileWorkload(TraceReader &trace,
                            const MachineConfig &machine,
                            const NodeModel &node = {});

/**
 * Replay many stored traces against one machine configuration in
 * parallel (results in input order). Fans out via parallelFor on the
 * process-wide WorkerPool::shared(), so the cap composes with every
 * other pooled replay path instead of spawning its own threads.
 *
 * @param trace_paths Trace files to replay.
 * @param machine Machine model to simulate.
 * @param node Node throughput model for system-behaviour analysis.
 * @param threads Executor cap (0 → hardware threads, 1 → strictly
 *        serial on the caller).
 */
std::vector<WorkloadRun> profileTraces(
    const std::vector<std::string> &trace_paths,
    const MachineConfig &machine, const NodeModel &node = {},
    unsigned threads = 0);

} // namespace wcrt

#endif // WCRT_CORE_PROFILER_HH
