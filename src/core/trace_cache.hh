/**
 * @file
 * On-disk trace cache: record each workload once, replay it from then
 * on.
 *
 * Traces are keyed by roster name and dataset scale under one cache
 * directory (`--trace-dir` in the bench binaries, `WCRT_TRACE_DIR` in
 * the environment, a per-user temp directory by default). ensure()
 * returns a hit instantly and captures on miss — so a full experiment
 * sweep pays one workload execution per (workload, scale) instead of
 * one per (workload, scale, machine config, figure).
 *
 * The cache is content-checked, not content-addressed: a hit is
 * re-validated by parsing the file header and footer, and any
 * corrupt, truncated or version-mismatched file is silently
 * re-captured. Workload *code* changes are not detected — delete the
 * directory (or bump the format version) after editing emission code.
 */

#ifndef WCRT_CORE_TRACE_CACHE_HH
#define WCRT_CORE_TRACE_CACHE_HH

#include <functional>
#include <string>

#include "workloads/workload.hh"

namespace wcrt {

/** One directory of reusable `.wtrace` files. */
class TraceCache
{
  public:
    /**
     * @param dir Cache directory, created if missing; empty selects
     *        defaultDir().
     */
    explicit TraceCache(std::string dir = "");

    /** `WCRT_TRACE_DIR`, or `<system temp>/wcrt-traces`. */
    static std::string defaultDir();

    /** The directory this cache stores traces under. */
    const std::string &directory() const { return cacheDir; }

    /** Cache file path for a (roster name, scale) key. */
    std::string path(const std::string &key, double scale) const;

    /** True when a readable, valid trace exists for the key. */
    bool has(const std::string &key, double scale) const;

    /**
     * Return the trace path for the key, capturing the workload first
     * when the cache misses (or holds a corrupt file).
     *
     * @param key Roster name (unique across rosters).
     * @param scale Dataset scale.
     * @param make Factory producing a fresh workload for capture.
     * @param captured Optional out-flag: true when a capture ran.
     */
    std::string ensure(const std::string &key, double scale,
                       const std::function<WorkloadPtr()> &make,
                       bool *captured = nullptr);

  private:
    std::string cacheDir;
};

} // namespace wcrt

#endif // WCRT_CORE_TRACE_CACHE_HH
