/**
 * @file
 * K-means clustering with k-means++ seeding plus the cluster-quality
 * scores the reduction study reports (WCSS, silhouette).
 *
 * This is the final stage of the paper's Section-3 pipeline: the
 * PCA-projected workload vectors are clustered and one representative
 * per cluster (the member closest to its centroid) is selected.
 */

#ifndef WCRT_STATS_KMEANS_HH
#define WCRT_STATS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "stats/matrix.hh"

namespace wcrt {

/** Result of one k-means run. */
struct KMeansResult
{
    Matrix centroids;                 //!< k x d centroid matrix
    std::vector<size_t> assignment;   //!< cluster id per sample
    std::vector<size_t> sizes;        //!< member count per cluster
    double wcss = 0.0;                //!< within-cluster sum of squares
    int iterations = 0;               //!< Lloyd iterations executed
    bool converged = false;           //!< true if assignments stabilized

    /**
     * Index of the sample nearest to each centroid — the cluster
     * representatives the reduction study selects.
     */
    std::vector<size_t> representatives(const Matrix &samples) const;
};

/** Tunables for kMeans(). */
struct KMeansOptions
{
    int max_iterations = 200;
    int restarts = 8;          //!< best-of-N independent runs
    uint64_t seed = 42;
};

/**
 * Cluster samples (rows) into k clusters.
 *
 * Runs Lloyd's algorithm from k-means++ seeds, restarting a few times
 * and keeping the lowest-WCSS result. Deterministic given the seed.
 *
 * @param samples Sample matrix, one row per sample.
 * @param k Number of clusters, 1 <= k <= samples.rows().
 */
KMeansResult kMeans(const Matrix &samples, size_t k,
                    const KMeansOptions &opts = {});

/**
 * Mean silhouette coefficient of a clustering, in [-1, 1]; higher is
 * better separated. Returns 0 for degenerate clusterings (k < 2).
 */
double silhouette(const Matrix &samples,
                  const std::vector<size_t> &assignment, size_t k);

/** Squared Euclidean distance between two equal-length vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

} // namespace wcrt

#endif // WCRT_STATS_KMEANS_HH
