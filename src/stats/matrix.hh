/**
 * @file
 * Minimal dense row-major matrix for the analyzer's linear algebra.
 *
 * The analyzer works on workload-by-metric matrices that are tiny
 * (77 x 45), so clarity beats blocking/vectorization here.
 */

#ifndef WCRT_STATS_MATRIX_HH
#define WCRT_STATS_MATRIX_HH

#include <cstddef>
#include <vector>

namespace wcrt {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialized to a fill value. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Build from nested initializer-style data; rows must be uniform. */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(size_t n);

    double &at(size_t r, size_t c);
    double at(size_t r, size_t c) const;

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    /** One row as a vector copy. */
    std::vector<double> row(size_t r) const;

    /** One column as a vector copy. */
    std::vector<double> col(size_t c) const;

    /** Matrix product; dimensions must agree. */
    Matrix multiply(const Matrix &rhs) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Frobenius norm of (this - rhs); dimensions must agree. */
    double distance(const Matrix &rhs) const;

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> data;
};

} // namespace wcrt

#endif // WCRT_STATS_MATRIX_HH
