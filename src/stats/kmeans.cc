#include "stats/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace wcrt {

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        wcrt_panic("squaredDistance dimension mismatch");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

namespace {

double
distToRow(const Matrix &m, size_t r, const std::vector<double> &v)
{
    double s = 0.0;
    for (size_t c = 0; c < m.cols(); ++c) {
        double d = m.at(r, c) - v[c];
        s += d * d;
    }
    return s;
}

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
Matrix
seedCentroids(const Matrix &samples, size_t k, Rng &rng)
{
    size_t n = samples.rows();
    size_t d = samples.cols();
    Matrix centroids(k, d);

    size_t first = rng.nextBelow(n);
    for (size_t c = 0; c < d; ++c)
        centroids.at(0, c) = samples.at(first, c);

    std::vector<double> dist(n, std::numeric_limits<double>::max());
    for (size_t ci = 1; ci < k; ++ci) {
        double total = 0.0;
        for (size_t r = 0; r < n; ++r) {
            double dd = distToRow(samples, r, centroids.row(ci - 1));
            dist[r] = std::min(dist[r], dd);
            total += dist[r];
        }
        size_t chosen = 0;
        if (total <= 0.0) {
            chosen = rng.nextBelow(n);
        } else {
            double u = rng.nextDouble() * total;
            double acc = 0.0;
            for (size_t r = 0; r < n; ++r) {
                acc += dist[r];
                if (acc >= u) {
                    chosen = r;
                    break;
                }
            }
        }
        for (size_t c = 0; c < d; ++c)
            centroids.at(ci, c) = samples.at(chosen, c);
    }
    return centroids;
}

KMeansResult
lloyd(const Matrix &samples, size_t k, int max_iterations, Rng &rng)
{
    size_t n = samples.rows();
    size_t d = samples.cols();

    KMeansResult res;
    res.centroids = seedCentroids(samples, k, rng);
    res.assignment.assign(n, 0);
    res.sizes.assign(k, 0);

    for (int iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        for (size_t r = 0; r < n; ++r) {
            size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (size_t ci = 0; ci < k; ++ci) {
                double dd = 0.0;
                for (size_t c = 0; c < d; ++c) {
                    double diff =
                        samples.at(r, c) - res.centroids.at(ci, c);
                    dd += diff * diff;
                    if (dd >= best_d)
                        break;
                }
                if (dd < best_d) {
                    best_d = dd;
                    best = ci;
                }
            }
            if (res.assignment[r] != best) {
                res.assignment[r] = best;
                changed = true;
            }
        }

        res.iterations = iter + 1;
        if (!changed && iter > 0) {
            res.converged = true;
            break;
        }

        // Recompute centroids; re-seed empty clusters from the sample
        // farthest from its centroid to keep k populated clusters.
        Matrix sums(k, d);
        std::vector<size_t> counts(k, 0);
        for (size_t r = 0; r < n; ++r) {
            size_t ci = res.assignment[r];
            ++counts[ci];
            for (size_t c = 0; c < d; ++c)
                sums.at(ci, c) += samples.at(r, c);
        }
        for (size_t ci = 0; ci < k; ++ci) {
            if (counts[ci] == 0) {
                size_t worst = 0;
                double worst_d = -1.0;
                for (size_t r = 0; r < n; ++r) {
                    double dd = distToRow(
                        samples, r, res.centroids.row(res.assignment[r]));
                    if (dd > worst_d) {
                        worst_d = dd;
                        worst = r;
                    }
                }
                for (size_t c = 0; c < d; ++c)
                    res.centroids.at(ci, c) = samples.at(worst, c);
                continue;
            }
            for (size_t c = 0; c < d; ++c)
                res.centroids.at(ci, c) =
                    sums.at(ci, c) / static_cast<double>(counts[ci]);
        }
    }

    res.sizes.assign(k, 0);
    res.wcss = 0.0;
    for (size_t r = 0; r < n; ++r) {
        size_t ci = res.assignment[r];
        ++res.sizes[ci];
        res.wcss += distToRow(samples, r, res.centroids.row(ci));
    }
    return res;
}

} // namespace

std::vector<size_t>
KMeansResult::representatives(const Matrix &samples) const
{
    size_t k = centroids.rows();
    std::vector<size_t> rep(k, 0);
    std::vector<double> best(k, std::numeric_limits<double>::max());
    for (size_t r = 0; r < samples.rows(); ++r) {
        size_t ci = assignment[r];
        double dd = squaredDistance(samples.row(r), centroids.row(ci));
        if (dd < best[ci]) {
            best[ci] = dd;
            rep[ci] = r;
        }
    }
    return rep;
}

KMeansResult
kMeans(const Matrix &samples, size_t k, const KMeansOptions &opts)
{
    if (k == 0 || k > samples.rows())
        wcrt_fatal("k-means k=", k, " invalid for ", samples.rows(),
                   " samples");
    Rng rng(opts.seed);
    KMeansResult best;
    best.wcss = std::numeric_limits<double>::max();
    for (int run = 0; run < std::max(1, opts.restarts); ++run) {
        KMeansResult r = lloyd(samples, k, opts.max_iterations, rng);
        if (r.wcss < best.wcss)
            best = std::move(r);
    }
    return best;
}

double
silhouette(const Matrix &samples, const std::vector<size_t> &assignment,
           size_t k)
{
    size_t n = samples.rows();
    if (k < 2 || n < 2)
        return 0.0;

    double total = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> mean_dist(k, 0.0);
        std::vector<size_t> counts(k, 0);
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            double d = std::sqrt(
                squaredDistance(samples.row(i), samples.row(j)));
            mean_dist[assignment[j]] += d;
            ++counts[assignment[j]];
        }
        size_t own = assignment[i];
        if (counts[own] == 0)
            continue; // singleton cluster: silhouette undefined, skip
        double a = mean_dist[own] / static_cast<double>(counts[own]);
        double b = std::numeric_limits<double>::max();
        for (size_t ci = 0; ci < k; ++ci) {
            if (ci == own || counts[ci] == 0)
                continue;
            b = std::min(b,
                         mean_dist[ci] / static_cast<double>(counts[ci]));
        }
        if (b == std::numeric_limits<double>::max())
            continue;
        double s = (b - a) / std::max(a, b);
        total += s;
        ++counted;
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

} // namespace wcrt
