#include "stats/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.hh"

namespace wcrt {

Normalized
zscore(const Matrix &samples)
{
    Normalized out;
    size_t n = samples.rows();
    size_t d = samples.cols();
    out.data = Matrix(n, d);
    out.mean.assign(d, 0.0);
    out.stddev.assign(d, 1.0);
    if (n == 0)
        return out;

    for (size_t c = 0; c < d; ++c) {
        double mean = 0.0;
        for (size_t r = 0; r < n; ++r)
            mean += samples.at(r, c);
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (size_t r = 0; r < n; ++r) {
            double dv = samples.at(r, c) - mean;
            var += dv * dv;
        }
        var /= static_cast<double>(n);
        double sd = std::sqrt(var);
        out.mean[c] = mean;
        out.stddev[c] = sd > 1e-12 ? sd : 1.0;
        for (size_t r = 0; r < n; ++r) {
            double z = (samples.at(r, c) - mean) / out.stddev[c];
            out.data.at(r, c) = sd > 1e-12 ? z : 0.0;
        }
    }
    return out;
}

EigenResult
jacobiEigen(const Matrix &input, int max_sweeps)
{
    if (input.rows() != input.cols())
        wcrt_panic("jacobiEigen needs a square matrix");
    size_t n = input.rows();
    Matrix a = input;
    Matrix v = Matrix::identity(n);

    auto off_diag = [&]() {
        double s = 0.0;
        for (size_t r = 0; r < n; ++r)
            for (size_t c = r + 1; c < n; ++c)
                s += a.at(r, c) * a.at(r, c);
        return s;
    };

    for (int sweep = 0; sweep < max_sweeps && off_diag() > 1e-20; ++sweep) {
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double apq = a.at(p, q);
                if (std::abs(apq) < 1e-15)
                    continue;
                double app = a.at(p, p);
                double aqq = a.at(q, q);
                double theta = (aqq - app) / (2.0 * apq);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::abs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    double akp = a.at(k, p);
                    double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    double apk = a.at(p, k);
                    double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    double vkp = v.at(k, p);
                    double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a.at(x, x) > a.at(y, y);
    });

    EigenResult res;
    res.values.resize(n);
    res.vectors = Matrix(n, n);
    for (size_t i = 0; i < n; ++i) {
        res.values[i] = a.at(order[i], order[i]);
        for (size_t r = 0; r < n; ++r)
            res.vectors.at(r, i) = v.at(r, order[i]);
    }
    return res;
}

Matrix
PcaModel::project(const Matrix &normalized_samples) const
{
    return normalized_samples.multiply(components.transposed());
}

PcaModel
fitPca(const Matrix &normalized, double variance_target)
{
    if (variance_target <= 0.0 || variance_target > 1.0)
        wcrt_fatal("PCA variance target must be in (0, 1], got ",
                   variance_target);
    size_t n = normalized.rows();
    size_t d = normalized.cols();
    if (n < 2)
        wcrt_fatal("PCA needs at least two samples");

    // Covariance of z-scored data; population normalization matches
    // the z-score step.
    Matrix cov(d, d);
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            double s = 0.0;
            for (size_t r = 0; r < n; ++r)
                s += normalized.at(r, i) * normalized.at(r, j);
            s /= static_cast<double>(n);
            cov.at(i, j) = s;
            cov.at(j, i) = s;
        }
    }

    EigenResult eig = jacobiEigen(cov);
    double total = 0.0;
    for (double ev : eig.values)
        total += std::max(ev, 0.0);
    if (total <= 0.0)
        total = 1.0;

    PcaModel model;
    model.eigenvalues = eig.values;
    model.explained.resize(eig.values.size());
    for (size_t i = 0; i < eig.values.size(); ++i)
        model.explained[i] = std::max(eig.values[i], 0.0) / total;

    double acc = 0.0;
    size_t keep = 0;
    while (keep < d && acc < variance_target) {
        acc += model.explained[keep];
        ++keep;
    }
    keep = std::max<size_t>(keep, 1);
    model.retained = keep;
    model.components = Matrix(keep, d);
    for (size_t k = 0; k < keep; ++k)
        for (size_t c = 0; c < d; ++c)
            model.components.at(k, c) = eig.vectors.at(c, k);
    return model;
}

} // namespace wcrt
