/**
 * @file
 * Z-score normalization and principal component analysis.
 *
 * Implements the analyzer pipeline from the paper's Section 3: metric
 * values are normalized to a standard Gaussian per column, the
 * covariance matrix is eigendecomposed (cyclic Jacobi — exact for the
 * symmetric 45x45 matrices involved), and samples are projected onto
 * the components that retain a requested fraction of total variance.
 */

#ifndef WCRT_STATS_PCA_HH
#define WCRT_STATS_PCA_HH

#include <vector>

#include "stats/matrix.hh"

namespace wcrt {

/**
 * Column-wise z-score normalization result.
 */
struct Normalized
{
    Matrix data;                 //!< normalized samples (rows = samples)
    std::vector<double> mean;    //!< per-column mean of the input
    std::vector<double> stddev;  //!< per-column stddev (1 for constants)
};

/**
 * Normalize each column to zero mean, unit variance.
 *
 * Constant columns (zero variance) are mapped to all-zeros rather than
 * NaN so that degenerate metrics cannot poison the PCA.
 */
Normalized zscore(const Matrix &samples);

/**
 * Eigendecomposition of a symmetric matrix.
 */
struct EigenResult
{
    std::vector<double> values;  //!< eigenvalues, descending
    Matrix vectors;              //!< columns are matching eigenvectors
};

/**
 * Cyclic Jacobi eigensolver for symmetric matrices.
 *
 * @param m Symmetric input (asymmetry beyond tolerance is a bug).
 * @param max_sweeps Safety bound on full Jacobi sweeps.
 */
EigenResult jacobiEigen(const Matrix &m, int max_sweeps = 64);

/**
 * A fitted PCA model.
 */
struct PcaModel
{
    std::vector<double> eigenvalues;   //!< all eigenvalues, descending
    Matrix components;                 //!< rows = retained components
    std::vector<double> explained;     //!< variance fraction per PC
    size_t retained = 0;               //!< number of PCs kept

    /** Project normalized samples onto the retained components. */
    Matrix project(const Matrix &normalized_samples) const;
};

/**
 * Fit PCA on normalized samples, keeping the smallest number of leading
 * components whose cumulative explained variance reaches the target.
 *
 * @param normalized Samples with zero-mean unit-variance columns.
 * @param variance_target Fraction of variance to retain, in (0, 1].
 */
PcaModel fitPca(const Matrix &normalized, double variance_target = 0.9);

} // namespace wcrt

#endif // WCRT_STATS_PCA_HH
