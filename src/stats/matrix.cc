#include "stats/matrix.hh"

#include <cmath>

#include "base/logging.hh"

namespace wcrt {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : nRows(rows), nCols(cols), data(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return {};
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.nCols)
            wcrt_panic("ragged rows in Matrix::fromRows");
        for (size_t c = 0; c < m.nCols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    if (r >= nRows || c >= nCols)
        wcrt_panic("Matrix index (", r, ",", c, ") out of ", nRows, "x",
                   nCols);
    return data[r * nCols + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    if (r >= nRows || c >= nCols)
        wcrt_panic("Matrix index (", r, ",", c, ") out of ", nRows, "x",
                   nCols);
    return data[r * nCols + c];
}

std::vector<double>
Matrix::row(size_t r) const
{
    std::vector<double> out(nCols);
    for (size_t c = 0; c < nCols; ++c)
        out[c] = at(r, c);
    return out;
}

std::vector<double>
Matrix::col(size_t c) const
{
    std::vector<double> out(nRows);
    for (size_t r = 0; r < nRows; ++r)
        out[r] = at(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    if (nCols != rhs.nRows)
        wcrt_panic("Matrix multiply ", nRows, "x", nCols, " * ", rhs.nRows,
                   "x", rhs.nCols);
    Matrix out(nRows, rhs.nCols);
    for (size_t r = 0; r < nRows; ++r) {
        for (size_t k = 0; k < nCols; ++k) {
            double v = at(r, k);
            if (v == 0.0)
                continue;
            for (size_t c = 0; c < rhs.nCols; ++c)
                out.at(r, c) += v * rhs.at(k, c);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(nCols, nRows);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

double
Matrix::distance(const Matrix &rhs) const
{
    if (nRows != rhs.nRows || nCols != rhs.nCols)
        wcrt_panic("Matrix distance dimension mismatch");
    double sum = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
        double d = data[i] - rhs.data[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

} // namespace wcrt
