#include "workloads/ml_workloads.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strings.hh"

namespace wcrt {

namespace {

/** Records carrying point/node indices for the JVM-stack pipelines. */
Record
indexRecord(const std::string &key, uint64_t index, uint64_t key_addr,
            uint64_t value_addr)
{
    Record r;
    r.key = key;
    r.value = std::to_string(index);
    r.keyAddr = key_addr;
    r.valueAddr = value_addr;
    return r;
}

} // namespace

MlWorkload::MlWorkload(MlAlgorithm algorithm, StackKind stack,
                       double scale, uint64_t seed)
    : algo(algorithm), stackKind(stack), scale(scale), seed(seed)
{
    if (stack != StackKind::Hadoop && stack != StackKind::Spark &&
        stack != StackKind::Mpi) {
        wcrt_fatal("ML workloads support Hadoop/Spark/MPI stacks");
    }
}

std::string
MlWorkload::name() const
{
    std::string prefix = stackKind == StackKind::Hadoop ? "H-"
                         : stackKind == StackKind::Spark ? "S-"
                                                         : "M-";
    switch (algo) {
      case MlAlgorithm::KMeans:
        return prefix + "Kmeans";
      case MlAlgorithm::PageRank:
        return prefix + "PageRank";
      case MlAlgorithm::NaiveBayes:
        return prefix + "NaiveBayes";
      case MlAlgorithm::ConnectedComponents:
        return prefix + "ConnComp";
    }
    return prefix + "?";
}

AppCategory
MlWorkload::category() const
{
    return AppCategory::DataAnalysis;
}

void
MlWorkload::setup(RunEnv &env)
{
    DatasetCatalog catalog(env.heap, scale, seed);
    kernels = std::make_unique<AppKernels>(env.layout);

    switch (algo) {
      case MlAlgorithm::KMeans: {
        // Points around k true Gaussian blobs — the Facebook-dataset
        // stand-in (94-byte records ~ 8 doubles + key).
        Rng rng(seed ^ 0x137);
        uint32_t n = static_cast<uint32_t>(catalog.scaled(4039));
        points.assign(n, std::vector<double>(kmeansDims));
        for (uint32_t p = 0; p < n; ++p) {
            uint32_t blob = p % kmeansK;
            for (uint32_t d = 0; d < kmeansDims; ++d)
                points[p][d] =
                    3.0 * blob + rng.nextGaussian(0.0, 0.6);
        }
        centers.assign(kmeansK, std::vector<double>(kmeansDims));
        for (uint32_t c = 0; c < kmeansK; ++c)
            centers[c] = points[c * (n / kmeansK)];
        pointsRegion = env.heap.alloc(
            "kmeans.points",
            static_cast<uint64_t>(n) * kmeansDims * 8);
        centersRegion = env.heap.alloc(
            "kmeans.centers",
            static_cast<uint64_t>(kmeansK) * kmeansDims * 8);
        break;
      }
      case MlAlgorithm::PageRank: {
        graph = catalog.googleWebGraph();
        ranks.assign(graph->numNodes, 1.0);
        break;
      }
      case MlAlgorithm::NaiveBayes: {
        corpus = catalog.amazonReviews();
        modelRegion = env.heap.alloc("bayes.model", 512 * 1024);
        break;
      }
      case MlAlgorithm::ConnectedComponents: {
        graph = catalog.facebookGraph();
        labels.resize(graph->numNodes);
        for (uint32_t v = 0; v < graph->numNodes; ++v)
            labels[v] = v;
        break;
      }
    }

    switch (stackKind) {
      case StackKind::Hadoop: {
        MapReduceConfig cfg;
        // Count-style jobs (Bayes training) combine map-side.
        cfg.useCombiner = algo == MlAlgorithm::NaiveBayes;
        hadoop = std::make_unique<MapReduceEngine>(env.layout, cfg);
        break;
      }
      case StackKind::Spark:
        spark = std::make_unique<RddEngine>(env.layout);
        break;
      default:
        mpi = std::make_unique<NativeEngine>(env.layout);
        break;
    }
}

void
MlWorkload::execute(RunEnv &env, Tracer &t)
{
    switch (algo) {
      case MlAlgorithm::KMeans:
        runKmeans(env, t);
        break;
      case MlAlgorithm::PageRank:
        runPageRank(env, t);
        break;
      case MlAlgorithm::NaiveBayes:
        runNaiveBayes(env, t);
        break;
      case MlAlgorithm::ConnectedComponents:
        runConnectedComponents(env, t);
        break;
    }
}

// ---------------------------------------------------------------------
// K-means
// ---------------------------------------------------------------------

namespace {

/** Map side of one K-means iteration: assign points to centers. */
class KmeansMapper : public Mapper
{
  public:
    KmeansMapper(AppKernels &kernels,
                 const std::vector<std::vector<double>> &points,
                 const std::vector<std::vector<double>> &centers,
                 uint64_t points_base, uint64_t centers_base,
                 uint32_t dims)
        : kernels(kernels), points(points), centers(centers),
          pointsBase(points_base), centersBase(centers_base), dims(dims)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        auto index = static_cast<size_t>(std::stoll(in.value));
        uint64_t point_addr = pointsBase + index * dims * 8;
        uint32_t cluster = kernels.closestCenter(
            t, points[index].data(), point_addr, centers, centersBase,
            dims);
        Record r = in;
        r.key = std::to_string(cluster);
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
    const std::vector<std::vector<double>> &points;
    const std::vector<std::vector<double>> &centers;
    uint64_t pointsBase;
    uint64_t centersBase;
    uint32_t dims;
};

/** Reduce side: vector-sum the members of each cluster. */
class KmeansReducer : public Reducer
{
  public:
    KmeansReducer(AppKernels &kernels,
                  const std::vector<std::vector<double>> &points,
                  uint64_t points_base, uint32_t dims,
                  std::vector<std::vector<double>> &new_centers,
                  std::vector<uint64_t> &counts)
        : kernels(kernels), points(points), pointsBase(points_base),
          dims(dims), newCenters(new_centers), counts(counts)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        auto cluster = static_cast<size_t>(std::stoll(key));
        for (const auto &v : values) {
            auto index = static_cast<size_t>(std::stoll(v.value));
            uint64_t addr = pointsBase + index * dims * 8;
            // Vector add: the real accumulation plus its FP trace.
            t.loop(dims, [&](uint64_t d) {
                t.intAlu(IntPurpose::FpAddress, 1);
                t.load(addr + d * 8, 8);
                t.fpAlu(1);
                newCenters[cluster][d] += points[index][d];
            });
            ++counts[cluster];
        }
        Record r;
        r.key = key;
        r.value = kernels.formatValue(
            t, static_cast<int64_t>(values.size()));
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
    const std::vector<std::vector<double>> &points;
    uint64_t pointsBase;
    uint32_t dims;
    std::vector<std::vector<double>> &newCenters;
    std::vector<uint64_t> &counts;
};

/** MPI K-means: local assignment + partial sums, tiny exchange. */
class MpiKmeansKernel : public NativeKernel
{
  public:
    MpiKmeansKernel(AppKernels &kernels,
                    const std::vector<std::vector<double>> &points,
                    const std::vector<std::vector<double>> &centers,
                    uint64_t points_base, uint64_t centers_base,
                    uint32_t dims, uint32_t k,
                    std::vector<std::vector<double>> &new_centers,
                    std::vector<uint64_t> &counts)
        : kernels(kernels), points(points), centers(centers),
          pointsBase(points_base), centersBase(centers_base), dims(dims),
          k(k), newCenters(new_centers), counts(counts)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    processPartition(Tracer &t, const RecordVec &in,
                     std::vector<RecordVec> &to_ranks) override
    {
        std::vector<std::vector<double>> local_sums(
            k, std::vector<double>(dims, 0.0));
        std::vector<uint64_t> local_counts(k, 0);
        for (const auto &rec : in) {
            auto index = static_cast<size_t>(std::stoll(rec.value));
            uint64_t addr = pointsBase + index * dims * 8;
            uint32_t cluster = kernels.closestCenter(
                t, points[index].data(), addr, centers, centersBase,
                dims);
            t.loop(dims, [&](uint64_t d) {
                t.intAlu(IntPurpose::FpAddress, 1);
                t.load(addr + d * 8, 8);
                t.fpAlu(1);
                local_sums[cluster][d] += points[index][d];
            });
            ++local_counts[cluster];
        }
        // Ship one partial-sum record per cluster to rank 0.
        for (uint32_t c = 0; c < k; ++c) {
            if (local_counts[c] == 0)
                continue;
            Record r;
            r.key = std::to_string(c);
            r.value = std::to_string(local_counts[c]);
            r.keyAddr = centersBase + c * dims * 8;
            r.valueAddr = r.keyAddr;
            to_ranks[0].push_back(std::move(r));
            for (uint32_t d = 0; d < dims; ++d)
                newCenters[c][d] += local_sums[c][d];
            counts[c] += local_counts[c];
        }
    }

    void
    finalize(Tracer &t, const RecordVec &received, RecordVec &out)
        override
    {
        for (const auto &rec : received) {
            t.intAlu(IntPurpose::FpAddress, 1);
            t.fpAlu(static_cast<uint32_t>(dims));
            out.push_back(rec);
        }
    }

  private:
    AppKernels &kernels;
    const std::vector<std::vector<double>> &points;
    const std::vector<std::vector<double>> &centers;
    uint64_t pointsBase;
    uint64_t centersBase;
    uint32_t dims;
    uint32_t k;
    std::vector<std::vector<double>> &newCenters;
    std::vector<uint64_t> &counts;
};

} // namespace

void
MlWorkload::runKmeans(RunEnv &env, Tracer &t)
{
    RecordVec input;
    input.reserve(points.size());
    for (size_t p = 0; p < points.size(); ++p) {
        input.push_back(indexRecord(
            std::to_string(p), p, pointsRegion.base + p * kmeansDims * 8,
            pointsRegion.base + p * kmeansDims * 8));
    }

    for (uint32_t iter = 0; iter < kmeansIterations; ++iter) {
        std::vector<std::vector<double>> sums(
            kmeansK, std::vector<double>(kmeansDims, 0.0));
        std::vector<uint64_t> counts(kmeansK, 0);

        if (stackKind == StackKind::Hadoop) {
            KmeansMapper m(*kernels, points, centers, pointsRegion.base,
                           centersRegion.base, kmeansDims);
            KmeansReducer r(*kernels, points, pointsRegion.base,
                            kmeansDims, sums, counts);
            hadoop->run(env, t, input, m, r);
        } else if (stackKind == StackKind::Spark) {
            KmeansMapper m(*kernels, points, centers, pointsRegion.base,
                           centersRegion.base, kmeansDims);
            Rdd assigned = spark->parallelize(input).map(
                [&m](Tracer &tt, const Record &rec, RecordVec &out) {
                    m.map(tt, rec, out);
                },
                "map:assign");
            Rdd combined = assigned.reduceByKey(
                [this, &sums, &counts](Tracer &tt, const Record &a,
                                       const Record &b) {
                    auto cluster =
                        static_cast<size_t>(std::stoll(a.key));
                    auto index =
                        static_cast<size_t>(std::stoll(b.value));
                    tt.loop(kmeansDims, [&](uint64_t d) {
                        tt.intAlu(IntPurpose::FpAddress, 1);
                        tt.load(pointsRegion.base +
                                    index * kmeansDims * 8 + d * 8,
                                8);
                        tt.fpAlu(1);
                        sums[cluster][d] += points[index][d];
                    });
                    ++counts[cluster];
                    return a;
                });
            combined.collect(env, t);
            // reduceByKey's first-record-per-key bypasses the combine
            // callback; account those members host-side.
            for (auto &c : counts)
                c = std::max<uint64_t>(c, 1);
        } else {
            MpiKmeansKernel kernel(*kernels, points, centers,
                                   pointsRegion.base, centersRegion.base,
                                   kmeansDims, kmeansK, sums, counts);
            mpi->run(env, t, input, kernel);
        }

        // New centers (host arithmetic + the trace of the division).
        for (uint32_t c = 0; c < kmeansK; ++c) {
            if (counts[c] == 0)
                continue;
            t.fpDiv(kmeansDims);
            for (uint32_t d = 0; d < kmeansDims; ++d)
                centers[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }
    }
}

// ---------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------

void
MlWorkload::runPageRank(RunEnv &env, Tracer &t)
{
    const Graph &g = *graph;
    RecordVec input;
    input.reserve(g.numNodes);
    for (uint32_t v = 0; v < g.numNodes; ++v)
        input.push_back(indexRecord(std::to_string(v), v, g.nodeAddr(v),
                                    g.nodeAddr(v)));

    for (uint32_t iter = 0; iter < pagerankIterations; ++iter) {
        std::vector<double> next(g.numNodes, 0.15);

        auto contribute = [&](Tracer &tt, uint32_t v,
                              RecordVec *out) {
            uint64_t degree = g.outDegree(v);
            if (degree == 0)
                return;
            kernels->rankContribute(tt, g.nodeAddr(v), ranks[v], degree,
                                    g.edgeAddr(v, 0));
            double share = 0.85 * ranks[v] /
                           static_cast<double>(degree);
            for (uint64_t e = 0; e < degree; ++e) {
                uint32_t dst = g.targets[g.offsets[v] + e];
                next[dst] += share;
                if (out) {
                    Record r;
                    r.key = std::to_string(dst);
                    r.value = std::string(1, 'c');
                    r.keyAddr = g.nodeAddr(dst);
                    r.valueAddr = g.edgeAddr(v, e);
                    out->push_back(std::move(r));
                }
            }
        };

        if (stackKind == StackKind::Spark) {
            Rdd contribs = spark->parallelize(input).map(
                [&](Tracer &tt, const Record &rec, RecordVec &out) {
                    auto v = static_cast<uint32_t>(
                        std::stoul(rec.value));
                    contribute(tt, v, &out);
                },
                "flatMap:contribute");
            Rdd summed = contribs.reduceByKey(
                [](Tracer &tt, const Record &a, const Record &b) {
                    tt.fpAlu(1);
                    (void)b;
                    return a;
                });
            summed.collect(env, t);
        } else if (stackKind == StackKind::Hadoop) {
            class PrMapper : public Mapper
            {
              public:
                PrMapper(std::function<void(Tracer &, uint32_t,
                                            RecordVec *)>
                             fn)
                    : fn(std::move(fn))
                {
                }
                void registerCode(CodeLayout &) override {}
                void
                map(Tracer &tt, const Record &in, RecordVec &out)
                    override
                {
                    fn(tt, static_cast<uint32_t>(std::stoul(in.value)),
                       &out);
                }

              private:
                std::function<void(Tracer &, uint32_t, RecordVec *)> fn;
            };
            class PrReducer : public Reducer
            {
              public:
                void registerCode(CodeLayout &) override {}
                void
                reduce(Tracer &tt, const std::string &key,
                       const RecordVec &values, RecordVec &out) override
                {
                    tt.fpAlu(static_cast<uint32_t>(values.size()));
                    Record r;
                    r.key = key;
                    r.value = std::to_string(values.size());
                    r.keyAddr = values.front().keyAddr;
                    r.valueAddr = values.front().valueAddr;
                    out.push_back(std::move(r));
                }
            };
            PrMapper m(contribute);
            PrReducer r;
            hadoop->run(env, t, input, m, r);
        } else {
            class MpiPrKernel : public NativeKernel
            {
              public:
                MpiPrKernel(const Graph &g,
                            std::function<void(Tracer &, uint32_t,
                                               RecordVec *)>
                                fn,
                            uint32_t ranks_count)
                    : g(g), fn(std::move(fn)), ranksCount(ranks_count)
                {
                }
                void registerCode(CodeLayout &) override {}
                void
                processPartition(Tracer &tt, const RecordVec &in,
                                 std::vector<RecordVec> &to_ranks)
                    override
                {
                    // Local aggregation per destination partition: MPI
                    // codes ship dense partial vectors, not records.
                    for (const auto &rec : in) {
                        auto v = static_cast<uint32_t>(
                            std::stoul(rec.value));
                        fn(tt, v, nullptr);
                    }
                    // One aggregate message per rank.
                    for (uint32_t r = 0; r < ranksCount; ++r) {
                        Record msg;
                        msg.key = std::to_string(r);
                        msg.value = std::string(64, 'p');
                        msg.keyAddr = g.nodeRegion.base;
                        msg.valueAddr = g.nodeRegion.base;
                        to_ranks[r].push_back(std::move(msg));
                    }
                }
                void
                finalize(Tracer &tt, const RecordVec &received,
                         RecordVec &out) override
                {
                    tt.fpAlu(
                        static_cast<uint32_t>(received.size() * 8));
                    out = received;
                }

              private:
                const Graph &g;
                std::function<void(Tracer &, uint32_t, RecordVec *)> fn;
                uint32_t ranksCount;
            };
            MpiPrKernel kernel(g, contribute, mpi->config().ranks);
            mpi->run(env, t, input, kernel);
        }

        ranks = std::move(next);
    }
}

// ---------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------

namespace {

/** Training map: emit (class#token, 1) for every token. */
class BayesMapper : public Mapper
{
  public:
    BayesMapper(AppKernels &kernels, uint32_t classes)
        : kernels(kernels), classes(classes)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        uint32_t cls = static_cast<uint32_t>(fnv1a(in.key) % classes);
        auto tokens = kernels.tokenize(t, in.value, in.valueAddr);
        const char *base = in.value.data();
        for (auto tok : tokens) {
            Record r;
            r.key = std::to_string(cls) + "#" + std::string(tok);
            r.value = std::string(1, '1');
            r.keyAddr =
                in.valueAddr + static_cast<uint64_t>(tok.data() - base);
            r.valueAddr = r.keyAddr;
            out.push_back(std::move(r));
        }
    }

  private:
    AppKernels &kernels;
    uint32_t classes;
};

class BayesReducer : public Reducer
{
  public:
    BayesReducer(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        int64_t total = 0;
        for (const auto &v : values)
            total += kernels.parseInt(t, v.value, v.valueAddr);
        Record r;
        r.key = key;
        r.value = kernels.formatValue(t, total);
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
};

/** MPI Bayes: local count tables, merged via the exchange. */
class MpiBayesKernel : public NativeKernel
{
  public:
    MpiBayesKernel(AppKernels &kernels, uint32_t classes,
                   uint32_t ranks_count)
        : kernels(kernels), classes(classes), ranksCount(ranks_count)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    processPartition(Tracer &t, const RecordVec &in,
                     std::vector<RecordVec> &to_ranks) override
    {
        std::unordered_map<std::string, int64_t> counts;
        for (const auto &rec : in) {
            uint32_t cls =
                static_cast<uint32_t>(fnv1a(rec.key) % classes);
            auto tokens = kernels.tokenize(t, rec.value, rec.valueAddr);
            for (auto tok : tokens) {
                t.intMul(1);
                t.intAlu(IntPurpose::IntAddress, 2);
                ++counts[std::to_string(cls) + "#" + std::string(tok)];
            }
        }
        for (const auto &[key, count] : counts) {
            Record r;
            r.key = key;
            r.value = std::to_string(count);
            r.keyAddr = in.front().valueAddr;
            r.valueAddr = in.front().valueAddr;
            to_ranks[fnv1a(key) % ranksCount].push_back(std::move(r));
        }
    }

    void
    finalize(Tracer &t, const RecordVec &received, RecordVec &out)
        override
    {
        std::unordered_map<std::string, int64_t> merged;
        for (const auto &rec : received) {
            t.intMul(1);
            t.intAlu(IntPurpose::Compute, 1);
            merged[rec.key] +=
                kernels.parseInt(t, rec.value, rec.valueAddr);
        }
        for (const auto &[key, count] : merged) {
            Record r;
            r.key = key;
            r.value = std::to_string(count);
            out.push_back(std::move(r));
        }
    }

  private:
    AppKernels &kernels;
    uint32_t classes;
    uint32_t ranksCount;
};

} // namespace

void
MlWorkload::runNaiveBayes(RunEnv &env, Tracer &t)
{
    RecordVec input;
    input.reserve(corpus->docs.size());
    for (size_t d = 0; d < corpus->docs.size(); ++d) {
        Record r;
        r.key = "doc" + std::to_string(d);
        r.value = corpus->docs[d];
        r.keyAddr = corpus->docAddr(d);
        r.valueAddr = corpus->docAddr(d);
        input.push_back(std::move(r));
    }

    // Training pass.
    if (stackKind == StackKind::Hadoop) {
        BayesMapper m(*kernels, bayesClasses);
        BayesReducer r(*kernels);
        hadoop->run(env, t, input, m, r);
    } else if (stackKind == StackKind::Spark) {
        BayesMapper m(*kernels, bayesClasses);
        Rdd counts =
            spark->parallelize(input)
                .map(
                    [&m](Tracer &tt, const Record &rec, RecordVec &out) {
                        m.map(tt, rec, out);
                    },
                    "flatMap:classTokens")
                .reduceByKey([this](Tracer &tt, const Record &a,
                                    const Record &b) {
                    int64_t sum =
                        kernels->parseInt(tt, a.value, a.valueAddr) +
                        kernels->parseInt(tt, b.value, b.valueAddr);
                    Record r = a;
                    r.value = kernels->formatValue(tt, sum);
                    return r;
                });
        counts.collect(env, t);
    } else {
        MpiBayesKernel kernel(*kernels, bayesClasses,
                              mpi->config().ranks);
        mpi->run(env, t, input, kernel);
    }

    // Scoring pass over a sample of documents (app-level FP work).
    size_t sample = std::min<size_t>(corpus->docs.size(), 256);
    for (size_t d = 0; d < sample; ++d) {
        auto tokens =
            kernels->tokenize(t, corpus->docs[d], corpus->docAddr(d));
        const char *base = corpus->docs[d].data();
        for (auto tok : tokens) {
            kernels->bayesAccumulate(
                t,
                corpus->docAddr(d) +
                    static_cast<uint64_t>(tok.data() - base),
                modelRegion.base +
                    (fnv1a(tok) % (modelRegion.bytes / 64)) * 64,
                bayesClasses);
        }
    }
}

// ---------------------------------------------------------------------
// Connected components (label propagation)
// ---------------------------------------------------------------------

void
MlWorkload::runConnectedComponents(RunEnv &env, Tracer &t)
{
    const Graph &g = *graph;
    RecordVec input;
    input.reserve(g.numNodes);
    for (uint32_t v = 0; v < g.numNodes; ++v)
        input.push_back(indexRecord(std::to_string(v), v, g.nodeAddr(v),
                                    g.nodeAddr(v)));

    // Min-label propagation until quiescent (bounded rounds).
    for (int round = 0; round < 4; ++round) {
        std::vector<uint32_t> next = labels;
        bool changed = false;

        auto propagate = [&](Tracer &tt, uint32_t v, RecordVec *out) {
            uint64_t degree = g.outDegree(v);
            tt.intAlu(IntPurpose::IntAddress, 1);
            tt.load(g.nodeAddr(v), 8);
            tt.loop(degree, [&](uint64_t e) {
                uint32_t dst = g.targets[g.offsets[v] + e];
                tt.intAlu(IntPurpose::IntAddress, 1);
                tt.load(g.nodeAddr(dst), 8);
                tt.intAlu(IntPurpose::Compute, 1);
                bool lower = labels[v] < next[dst];
                tt.branchForward(lower, 16);
                if (lower) {
                    next[dst] = labels[v];
                    changed = true;
                    tt.store(g.nodeAddr(dst), 8);
                    if (out) {
                        Record r;
                        r.key = std::to_string(dst);
                        r.value = std::to_string(labels[v]);
                        r.keyAddr = g.nodeAddr(dst);
                        r.valueAddr = g.nodeAddr(v);
                        out->push_back(std::move(r));
                    }
                }
            });
        };

        if (stackKind == StackKind::Spark) {
            spark->parallelize(input)
                .map(
                    [&](Tracer &tt, const Record &rec, RecordVec &out) {
                        auto v = static_cast<uint32_t>(
                            std::stoul(rec.value));
                        propagate(tt, v, &out);
                    },
                    "flatMap:labels")
                .reduceByKey([](Tracer &tt, const Record &a,
                                const Record &b) {
                    tt.intAlu(IntPurpose::Compute, 1);
                    return std::stoll(a.value) <= std::stoll(b.value)
                               ? a
                               : b;
                })
                .collect(env, t);
        } else if (stackKind == StackKind::Hadoop) {
            class CcMapper : public Mapper
            {
              public:
                explicit CcMapper(
                    std::function<void(Tracer &, uint32_t, RecordVec *)>
                        fn)
                    : fn(std::move(fn))
                {
                }
                void registerCode(CodeLayout &) override {}
                void
                map(Tracer &tt, const Record &in, RecordVec &out)
                    override
                {
                    fn(tt, static_cast<uint32_t>(std::stoul(in.value)),
                       &out);
                }

              private:
                std::function<void(Tracer &, uint32_t, RecordVec *)> fn;
            };
            class MinReducer : public Reducer
            {
              public:
                void registerCode(CodeLayout &) override {}
                void
                reduce(Tracer &tt, const std::string &key,
                       const RecordVec &values, RecordVec &out) override
                {
                    int64_t best = std::stoll(values.front().value);
                    for (const auto &v : values) {
                        tt.intAlu(IntPurpose::Compute, 1);
                        best = std::min<int64_t>(best, std::stoll(v.value));
                    }
                    Record r = values.front();
                    r.key = key;
                    r.value = std::to_string(best);
                    out.push_back(std::move(r));
                }
            };
            CcMapper m(propagate);
            MinReducer r;
            hadoop->run(env, t, input, m, r);
        } else {
            class MpiCcKernel : public NativeKernel
            {
              public:
                MpiCcKernel(std::function<void(Tracer &, uint32_t,
                                               RecordVec *)>
                                fn,
                            uint32_t ranks_count)
                    : fn(std::move(fn)), ranksCount(ranks_count)
                {
                }
                void registerCode(CodeLayout &) override {}
                void
                processPartition(Tracer &tt, const RecordVec &in,
                                 std::vector<RecordVec> &to_ranks)
                    override
                {
                    for (const auto &rec : in) {
                        fn(tt,
                           static_cast<uint32_t>(std::stoul(rec.value)),
                           nullptr);
                    }
                    for (uint32_t r = 0; r < ranksCount; ++r) {
                        Record msg;
                        msg.key = std::to_string(r);
                        msg.value = std::string(32, 'l');
                        to_ranks[r].push_back(std::move(msg));
                    }
                }
                void
                finalize(Tracer &tt, const RecordVec &received,
                         RecordVec &out) override
                {
                    tt.intAlu(IntPurpose::Compute,
                              static_cast<uint32_t>(received.size()));
                    out = received;
                }

              private:
                std::function<void(Tracer &, uint32_t, RecordVec *)> fn;
                uint32_t ranksCount;
            };
            MpiCcKernel kernel(propagate, mpi->config().ranks);
            mpi->run(env, t, input, kernel);
        }

        labels = std::move(next);
        if (!changed)
            break;
    }
}

} // namespace wcrt
