/**
 * @file
 * The machine-learning / graph workloads: K-means, PageRank and
 * Naive Bayes, implementable on the Spark, Hadoop and MPI stacks.
 *
 * Table-2 mapping: S-Kmeans (#11), S-PageRank (#13), H-NaiveBayes
 * (#16), plus the M-Bayes / M-Kmeans / M-PageRank contrast
 * implementations of Section 5.5 (and Hadoop/Spark roster variants).
 */

#ifndef WCRT_WORKLOADS_ML_WORKLOADS_HH
#define WCRT_WORKLOADS_ML_WORKLOADS_HH

#include <memory>
#include <optional>

#include "datagen/datasets.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/native/engine.hh"
#include "stack/rdd/engine.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** Which ML/graph algorithm an MlWorkload instance runs. */
enum class MlAlgorithm : uint8_t {
    KMeans,
    PageRank,
    NaiveBayes,
    ConnectedComponents,
};

/**
 * One ML workload bound to a stack.
 */
class MlWorkload : public Workload
{
  public:
    MlWorkload(MlAlgorithm algorithm, StackKind stack, double scale = 1.0,
               uint64_t seed = 7);

    std::string name() const override;
    AppCategory category() const override;
    StackKind stack() const override { return stackKind; }
    void setup(RunEnv &env) override;
    void execute(RunEnv &env, Tracer &t) override;

  private:
    void runKmeans(RunEnv &env, Tracer &t);
    void runPageRank(RunEnv &env, Tracer &t);
    void runNaiveBayes(RunEnv &env, Tracer &t);
    void runConnectedComponents(RunEnv &env, Tracer &t);

    MlAlgorithm algo;
    StackKind stackKind;
    double scale;
    uint64_t seed;

    // K-means state.
    std::vector<std::vector<double>> points;
    std::vector<std::vector<double>> centers;
    HeapRegion pointsRegion;
    HeapRegion centersRegion;
    static constexpr uint32_t kmeansK = 8;
    static constexpr uint32_t kmeansDims = 8;
    static constexpr uint32_t kmeansIterations = 3;

    // PageRank / connected-components state.
    std::optional<Graph> graph;
    std::vector<double> ranks;
    std::vector<uint32_t> labels;
    static constexpr uint32_t pagerankIterations = 3;

    // Bayes state.
    std::optional<TextCorpus> corpus;
    HeapRegion modelRegion;
    static constexpr uint32_t bayesClasses = 2;

    std::unique_ptr<AppKernels> kernels;
    std::unique_ptr<MapReduceEngine> hadoop;
    std::unique_ptr<RddEngine> spark;
    std::unique_ptr<NativeEngine> mpi;
};

} // namespace wcrt

#endif // WCRT_WORKLOADS_ML_WORKLOADS_HH
