#include "workloads/query_workloads.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.hh"
#include "base/strings.hh"

namespace wcrt {

namespace {

/** Zero-pad an integer for lexicographic ordering. */
std::string
padKey(int64_t v, size_t width = 12)
{
    std::string s = std::to_string(v);
    if (s.size() < width)
        s = std::string(width - s.size(), '0') + s;
    return s;
}

/** Compact row serialization for the JVM-stack record pipelines. */
std::string
rowString(const DataTable &t, uint64_t row)
{
    std::string s;
    for (const auto &c : t.columns) {
        if (!s.empty())
            s += '|';
        switch (c.type) {
          case ColumnType::Int64:
            s += std::to_string(c.ints[row]);
            break;
          case ColumnType::Float64:
            s += std::to_string(static_cast<int64_t>(c.doubles[row]));
            break;
          case ColumnType::Text:
            s += c.texts[row];
            break;
        }
    }
    return s;
}

} // namespace

QueryWorkload::QueryWorkload(QueryKind query, StackKind stack,
                             double scale, uint64_t seed)
    : query(query), stackKind(stack), scale(scale), seed(seed)
{
    if (stack != StackKind::Hive && stack != StackKind::Shark &&
        stack != StackKind::Impala) {
        wcrt_fatal("query workloads support Hive/Shark/Impala stacks");
    }
}

std::string
QueryWorkload::name() const
{
    std::string prefix = stackKind == StackKind::Hive ? "H-"
                         : stackKind == StackKind::Shark ? "S-"
                                                         : "I-";
    switch (query) {
      case QueryKind::SelectQuery:
        return prefix + "SelectQuery";
      case QueryKind::Project:
        return prefix + "Project";
      case QueryKind::OrderBy:
        return prefix + "OrderBy";
      case QueryKind::Difference:
        return prefix + "Difference";
      case QueryKind::Aggregation:
        return prefix + "Aggregation";
      case QueryKind::Join:
        return prefix + "Join";
      case QueryKind::TpcdsQ3:
        return prefix + "TPC-DS-query3";
      case QueryKind::TpcdsQ8:
        return prefix + "TPC-DS-query8";
      case QueryKind::TpcdsQ10:
        return prefix + "TPC-DS-query10";
    }
    return prefix + "?";
}

AppCategory
QueryWorkload::category() const
{
    return AppCategory::InteractiveAnalysis;
}

void
QueryWorkload::setup(RunEnv &env)
{
    DatasetCatalog catalog(env.heap, scale, seed);
    kernels = std::make_unique<AppKernels>(env.layout);

    switch (query) {
      case QueryKind::SelectQuery:
      case QueryKind::Project:
        items = catalog.ecommerceItems();
        break;
      case QueryKind::OrderBy:
        orders = catalog.ecommerceOrders();
        break;
      case QueryKind::Difference:
      case QueryKind::Join:
        orders = catalog.ecommerceOrders();
        items = catalog.ecommerceItems();
        break;
      case QueryKind::Aggregation:
        orders = catalog.ecommerceOrders();
        break;
      case QueryKind::TpcdsQ3:
      case QueryKind::TpcdsQ8:
      case QueryKind::TpcdsQ10:
        sales = catalog.tpcdsWebSales();
        dateDim = catalog.tpcdsDateDim();
        itemDim = catalog.tpcdsItemDim();
        break;
    }

    switch (stackKind) {
      case StackKind::Impala:
        impala = std::make_unique<VectorizedEngine>(env.layout);
        break;
      case StackKind::Hive:
        hive = std::make_unique<MapReduceEngine>(env.layout);
        break;
      default:
        shark = std::make_unique<RddEngine>(env.layout);
        break;
    }
}

RecordVec
QueryWorkload::tableRecords(const DataTable &table,
                            const std::string &key_col) const
{
    size_t kc = table.columnIndex(key_col);
    const auto &col = table.columns[kc];
    RecordVec out;
    out.reserve(table.rows);
    for (uint64_t r = 0; r < table.rows; ++r) {
        Record rec;
        rec.key = padKey(col.type == ColumnType::Float64
                             ? static_cast<int64_t>(col.doubles[r])
                             : col.ints[r]);
        rec.value = rowString(table, r);
        rec.keyAddr = table.cellAddr(kc, r);
        rec.valueAddr = table.cellAddr(0, r);
        out.push_back(std::move(rec));
    }
    return out;
}

void
QueryWorkload::execute(RunEnv &env, Tracer &t)
{
    switch (stackKind) {
      case StackKind::Impala:
        runImpala(env, t);
        break;
      case StackKind::Hive:
        runHive(env, t);
        break;
      default:
        runShark(env, t);
        break;
    }
}

// ---------------------------------------------------------------------
// Impala backend: native vectorized plans.
// ---------------------------------------------------------------------

void
QueryWorkload::runImpala(RunEnv &env, Tracer &t)
{
    switch (query) {
      case QueryKind::SelectQuery: {
        Selection all = impala->scan(env, t, *items);
        Selection cheap = impala->filterFloat64(
            env, t, *items, "goods_price", all,
            [](double p) { return p < 20.0; });
        impala->project(env, t, *items, {"item_id", "goods_id"}, cheap);
        break;
      }
      case QueryKind::Project: {
        Selection all = impala->scan(env, t, *items);
        impala->project(env, t, *items, {"order_id", "goods_price"},
                        all);
        break;
      }
      case QueryKind::OrderBy: {
        Selection all = impala->scan(env, t, *orders);
        Selection sorted =
            impala->orderByInt64(env, t, *orders, "create_date", all);
        impala->project(env, t, *orders,
                        {"order_id", "buyer_id", "create_date"}, sorted);
        break;
      }
      case QueryKind::Difference: {
        Selection all_orders = impala->scan(env, t, *orders);
        Selection all_items = impala->scan(env, t, *items);
        Selection only = impala->differenceInt64(
            env, t, *orders, "order_id", all_orders, *items, "order_id",
            all_items);
        impala->project(env, t, *orders, {"order_id", "amount"}, only);
        break;
      }
      case QueryKind::Aggregation: {
        Selection all = impala->scan(env, t, *orders);
        impala->aggregateSum(env, t, *orders, "buyer_id", "amount",
                             all);
        break;
      }
      case QueryKind::Join: {
        Selection all_orders = impala->scan(env, t, *orders);
        Selection all_items = impala->scan(env, t, *items);
        auto joined = impala->hashJoinInt64(
            env, t, *orders, "order_id", all_orders, *items, "order_id",
            all_items);
        env.io.diskWriteBytes += joined.size() * 24;
        env.data.outputBytes += joined.size() * 24;
        break;
      }
      case QueryKind::TpcdsQ3: {
        Selection all_sales = impala->scan(env, t, *sales);
        Selection all_dates = impala->scan(env, t, *dateDim);
        Selection nov = impala->filterInt64(
            env, t, *dateDim, "d_moy", all_dates,
            [](int64_t m) { return m == 11; });
        auto joined = impala->hashJoinInt64(
            env, t, *sales, "ws_sold_date_sk", all_sales, *dateDim,
            "d_date_sk", nov);
        Selection sold;
        sold.reserve(joined.size());
        for (auto &[srow, drow] : joined)
            sold.push_back(srow);
        impala->aggregateSum(env, t, *sales, "ws_item_sk",
                             "ws_sales_price", sold);
        break;
      }
      case QueryKind::TpcdsQ8: {
        Selection all_sales = impala->scan(env, t, *sales);
        Selection pricey = impala->filterFloat64(
            env, t, *sales, "ws_sales_price", all_sales,
            [](double p) { return p > 250.0; });
        impala->aggregateSum(env, t, *sales, "ws_bill_customer_sk",
                             "ws_net_profit", pricey);
        break;
      }
      case QueryKind::TpcdsQ10: {
        Selection all_sales = impala->scan(env, t, *sales);
        Selection bulk = impala->filterInt64(
            env, t, *sales, "ws_quantity", all_sales,
            [](int64_t q) { return q > 90; });
        auto agg = impala->aggregateSum(env, t, *sales, "ws_item_sk",
                                        "ws_sales_price", bulk);
        (void)agg;
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Hive backend: SQL compiled onto the MapReduce engine.
// ---------------------------------------------------------------------

namespace {

/** Map with a per-row predicate/transform; reduce passes through. */
class RowMapper : public Mapper
{
  public:
    using Fn = std::function<void(Tracer &, const Record &, RecordVec &)>;

    explicit RowMapper(Fn fn) : fn(std::move(fn)) {}
    void registerCode(CodeLayout &) override {}
    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        fn(t, in, out);
    }

  private:
    Fn fn;
};

class PassThroughReducer : public Reducer
{
  public:
    void registerCode(CodeLayout &) override {}
    void
    reduce(Tracer &t, const std::string &, const RecordVec &values,
           RecordVec &out) override
    {
        for (const auto &v : values) {
            t.intAlu(IntPurpose::IntAddress, 1);
            out.push_back(v);
        }
    }
};

/** Reduce that sums a numeric value per key (aggregations). */
class SumReducer : public Reducer
{
  public:
    explicit SumReducer(AppKernels &kernels) : kernels(kernels) {}
    void registerCode(CodeLayout &) override {}
    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        int64_t total = 0;
        for (const auto &v : values)
            total += kernels.parseInt(t, v.value, v.valueAddr);
        Record r;
        r.key = key;
        r.value = kernels.formatValue(t, total);
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
};

/** Reduce for EXCEPT: keep groups whose members are all "A"-tagged. */
class DifferenceReducer : public Reducer
{
  public:
    void registerCode(CodeLayout &) override {}
    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        bool only_a = true;
        for (const auto &v : values) {
            t.load(v.valueAddr, 1);
            t.intAlu(IntPurpose::Compute, 1);
            bool is_b = !v.value.empty() && v.value[0] == 'B';
            t.branchForward(is_b, 16);
            if (is_b)
                only_a = false;
        }
        if (only_a && !values.empty()) {
            Record r = values.front();
            r.key = key;
            out.push_back(std::move(r));
        }
    }
};

} // namespace

void
QueryWorkload::runHive(RunEnv &env, Tracer &t)
{
    PassThroughReducer pass;
    switch (query) {
      case QueryKind::SelectQuery: {
        RecordVec input = tableRecords(*items, "item_id");
        size_t price_col = items->columnIndex("goods_price");
        const auto &prices = items->columns[price_col].doubles;
        RowMapper m([&](Tracer &tt, const Record &in, RecordVec &out) {
            // item_id is 1-based; the row index is item_id - 1.
            auto row = static_cast<uint64_t>(std::stoll(in.key)) - 1;
            tt.load(items->cellAddr(price_col, row), 8);
            tt.fpAlu(1);
            bool keep = prices[row] < 20.0;
            tt.branchForward(keep, 16);
            if (keep)
                out.push_back(in);
        });
        hive->run(env, t, input, m, pass);
        break;
      }
      case QueryKind::Project: {
        RecordVec input = tableRecords(*items, "item_id");
        RowMapper m([&](Tracer &tt, const Record &in, RecordVec &out) {
            Record r = in;
            // Keep only two fields of the row string.
            auto fields = split(in.value, '|');
            tt.intAlu(IntPurpose::IntAddress,
                      static_cast<uint32_t>(fields.size()));
            r.value = fields.size() > 4 ? fields[1] + "|" + fields[4]
                                        : in.value;
            out.push_back(std::move(r));
        });
        hive->run(env, t, input, m, pass);
        break;
      }
      case QueryKind::OrderBy: {
        // Keys are the sort column; the framework's sort/merge is the
        // actual order-by.
        RecordVec input = tableRecords(*orders, "create_date");
        RowMapper m([](Tracer &tt, const Record &in, RecordVec &out) {
            tt.intAlu(IntPurpose::IntAddress, 2);
            out.push_back(in);
        });
        hive->run(env, t, input, m, pass);
        break;
      }
      case QueryKind::Difference: {
        RecordVec input = tableRecords(*orders, "order_id");
        for (auto &r : input)
            r.value = "A" + r.value;
        RecordVec items_recs = tableRecords(*items, "order_id");
        for (auto &r : items_recs) {
            r.value = "B" + r.value;
            input.push_back(std::move(r));
        }
        RowMapper m([](Tracer &tt, const Record &in, RecordVec &out) {
            tt.intAlu(IntPurpose::IntAddress, 2);
            out.push_back(in);
        });
        DifferenceReducer diff;
        hive->run(env, t, input, m, diff);
        break;
      }
      case QueryKind::Aggregation: {
        // GROUP BY buyer_id SUM(amount): keys carry the group column,
        // values the (integer) amount; the sum happens reduce-side.
        RecordVec input = tableRecords(*orders, "buyer_id");
        size_t amount_col = orders->columnIndex("amount");
        const auto &amounts = orders->columns[amount_col].doubles;
        uint64_t row_counter = 0;
        RowMapper m([&](Tracer &tt, const Record &in, RecordVec &out) {
            uint64_t row = row_counter++;
            tt.load(orders->cellAddr(amount_col, row), 8);
            tt.intAlu(IntPurpose::IntAddress, 1);
            Record r = in;
            r.value = std::to_string(
                static_cast<int64_t>(amounts[row]));
            out.push_back(std::move(r));
        });
        SumReducer sum(*kernels);
        hive->run(env, t, input, m, sum);
        break;
      }
      case QueryKind::Join: {
        // Reduce-side join: both tables tagged and keyed on order_id;
        // the reducer pairs A-rows with B-rows per key group.
        RecordVec input = tableRecords(*orders, "order_id");
        for (auto &r : input)
            r.value = "A" + r.value;
        RecordVec items_recs = tableRecords(*items, "order_id");
        for (auto &r : items_recs) {
            r.value = "B" + r.value;
            input.push_back(std::move(r));
        }
        RowMapper m([](Tracer &tt, const Record &in, RecordVec &out) {
            tt.intAlu(IntPurpose::IntAddress, 2);
            out.push_back(in);
        });
        class JoinReducer : public Reducer
        {
          public:
            void registerCode(CodeLayout &) override {}
            void
            reduce(Tracer &tt, const std::string &key,
                   const RecordVec &values, RecordVec &out) override
            {
                RecordVec left, right;
                for (const auto &v : values) {
                    tt.load(v.valueAddr, 1);
                    tt.intAlu(IntPurpose::Compute, 1);
                    (v.value.size() && v.value[0] == 'A' ? left
                                                         : right)
                        .push_back(v);
                }
                for (const auto &a : left) {
                    for (const auto &b : right) {
                        tt.intAlu(IntPurpose::IntAddress, 2);
                        tt.load(a.valueAddr, 8);
                        tt.load(b.valueAddr, 8);
                        Record r;
                        r.key = key;
                        // std::string(1, ...) sidesteps a GCC 12 -O3
                        // -Wrestrict false positive on assign("J").
                        r.value = std::string(1, 'J');
                        r.keyAddr = a.keyAddr;
                        r.valueAddr = b.keyAddr;
                        out.push_back(std::move(r));
                    }
                }
            }
        };
        JoinReducer join;
        hive->run(env, t, input, m, join);
        break;
      }
      case QueryKind::TpcdsQ3:
      case QueryKind::TpcdsQ8:
      case QueryKind::TpcdsQ10: {
        // Map-side broadcast join against the dimension tables, then a
        // reduce-side aggregation — Hive's common plan for Q3-like
        // star queries.
        std::unordered_set<int64_t> nov_dates;
        const auto &moy = dateDim->column("d_moy").ints;
        const auto &dsk = dateDim->column("d_date_sk").ints;
        for (size_t i = 0; i < moy.size(); ++i)
            if (moy[i] == 11)
                nov_dates.insert(dsk[i]);

        RecordVec input = tableRecords(*sales, "ws_item_sk");
        size_t date_col = sales->columnIndex("ws_sold_date_sk");
        size_t qty_col = sales->columnIndex("ws_quantity");
        size_t price_col = sales->columnIndex("ws_sales_price");
        const auto &dates = sales->columns[date_col].ints;
        const auto &qty = sales->columns[qty_col].ints;
        const auto &price = sales->columns[price_col].doubles;
        QueryKind q = query;
        uint64_t row_counter = 0;
        RowMapper m([&, q](Tracer &tt, const Record &in,
                           RecordVec &out) {
            uint64_t row = row_counter++;
            tt.load(sales->cellAddr(date_col, row), 8);
            tt.intMul(1);  // hash the dim key
            bool keep = false;
            switch (q) {
              case QueryKind::TpcdsQ3:
                keep = nov_dates.count(dates[row]) > 0;
                break;
              case QueryKind::TpcdsQ8:
                tt.load(sales->cellAddr(price_col, row), 8);
                tt.fpAlu(1);
                keep = price[row] > 250.0;
                break;
              default:
                tt.load(sales->cellAddr(qty_col, row), 8);
                tt.intAlu(IntPurpose::Compute, 1);
                keep = qty[row] > 90;
                break;
            }
            tt.branchForward(keep, 24);
            if (keep) {
                Record r = in;
                r.value = std::to_string(
                    static_cast<int64_t>(price[row]));
                out.push_back(std::move(r));
            }
        });
        SumReducer sum(*kernels);
        hive->run(env, t, input, m, sum);
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Shark backend: SQL compiled onto the RDD engine.
// ---------------------------------------------------------------------

void
QueryWorkload::runShark(RunEnv &env, Tracer &t)
{
    switch (query) {
      case QueryKind::SelectQuery: {
        RecordVec input = tableRecords(*items, "item_id");
        size_t price_col = items->columnIndex("goods_price");
        const auto &prices = items->columns[price_col].doubles;
        shark->parallelize(input)
            .filter(
                [&](Tracer &tt, const Record &rec) {
                    // item_id is 1-based; row index is item_id - 1.
                    auto row =
                        static_cast<uint64_t>(std::stoll(rec.key)) - 1;
                    tt.load(items->cellAddr(price_col, row), 8);
                    tt.fpAlu(1);
                    return prices[row] < 20.0;
                },
                "filter:price")
            .collect(env, t);
        break;
      }
      case QueryKind::Project: {
        RecordVec input = tableRecords(*items, "item_id");
        shark->parallelize(input)
            .map(
                [](Tracer &tt, const Record &rec, RecordVec &out) {
                    Record r = rec;
                    auto fields = split(rec.value, '|');
                    tt.intAlu(IntPurpose::IntAddress,
                              static_cast<uint32_t>(fields.size()));
                    r.value = fields.size() > 4
                                  ? fields[1] + "|" + fields[4]
                                  : rec.value;
                    out.push_back(std::move(r));
                },
                "map:project")
            .collect(env, t);
        break;
      }
      case QueryKind::OrderBy: {
        RecordVec input = tableRecords(*orders, "create_date");
        shark->parallelize(input).sortByKey().collect(env, t);
        break;
      }
      case QueryKind::Difference: {
        RecordVec input = tableRecords(*orders, "order_id");
        for (auto &r : input)
            r.value = "A" + r.value;
        RecordVec items_recs = tableRecords(*items, "order_id");
        for (auto &r : items_recs) {
            r.value = "B" + r.value;
            input.push_back(std::move(r));
        }
        shark->parallelize(input)
            .reduceByKey([](Tracer &tt, const Record &a,
                            const Record &b) {
                tt.load(b.valueAddr, 1);
                tt.intAlu(IntPurpose::Compute, 1);
                bool b_side = !b.value.empty() && b.value[0] == 'B';
                tt.branchForward(b_side, 16);
                Record r = a;
                if (b_side)
                    r.value = "B" + r.value;
                return r;
            })
            .filter(
                [](Tracer &tt, const Record &rec) {
                    tt.load(rec.valueAddr, 1);
                    tt.intAlu(IntPurpose::Compute, 1);
                    return !rec.value.empty() && rec.value[0] == 'A';
                },
                "filter:onlyA")
            .collect(env, t);
        break;
      }
      case QueryKind::Aggregation: {
        RecordVec input = tableRecords(*orders, "buyer_id");
        size_t amount_col = orders->columnIndex("amount");
        const auto &amounts = orders->columns[amount_col].doubles;
        auto row_counter = std::make_shared<uint64_t>(0);
        shark->parallelize(input)
            .map(
                [&, row_counter](Tracer &tt, const Record &rec,
                                 RecordVec &out) {
                    uint64_t row = (*row_counter)++;
                    tt.load(orders->cellAddr(amount_col, row), 8);
                    Record r = rec;
                    r.value = std::to_string(
                        static_cast<int64_t>(amounts[row]));
                    out.push_back(std::move(r));
                },
                "map:amount")
            .reduceByKey([this](Tracer &tt, const Record &a,
                                const Record &b) {
                int64_t sum =
                    kernels->parseInt(tt, a.value, a.valueAddr) +
                    kernels->parseInt(tt, b.value, b.valueAddr);
                Record r = a;
                r.value = kernels->formatValue(tt, sum);
                return r;
            })
            .collect(env, t);
        break;
      }
      case QueryKind::Join: {
        // Shuffle join: tag both sides, group on the key, and pair
        // within each group (the combine concatenates tags, which
        // models the per-key join work).
        RecordVec input = tableRecords(*orders, "order_id");
        for (auto &r : input)
            r.value = std::string(1, 'A');
        RecordVec items_recs = tableRecords(*items, "order_id");
        for (auto &r : items_recs) {
            r.value = std::string(1, 'B');
            input.push_back(std::move(r));
        }
        shark->parallelize(input)
            .reduceByKey([](Tracer &tt, const Record &a,
                            const Record &b) {
                tt.load(a.valueAddr, 1);
                tt.load(b.valueAddr, 1);
                tt.intAlu(IntPurpose::Compute, 2);
                Record r = a;
                if (r.value.size() < 64)
                    r.value += b.value;
                return r;
            })
            .filter(
                [](Tracer &tt, const Record &rec) {
                    tt.intAlu(IntPurpose::Compute, 1);
                    // Keep keys that matched rows from both sides.
                    return rec.value.find('A') != std::string::npos &&
                           rec.value.find('B') != std::string::npos;
                },
                "filter:matched")
            .collect(env, t);
        break;
      }
      case QueryKind::TpcdsQ3:
      case QueryKind::TpcdsQ8:
      case QueryKind::TpcdsQ10: {
        std::unordered_set<int64_t> nov_dates;
        const auto &moy = dateDim->column("d_moy").ints;
        const auto &dsk = dateDim->column("d_date_sk").ints;
        for (size_t i = 0; i < moy.size(); ++i)
            if (moy[i] == 11)
                nov_dates.insert(dsk[i]);

        RecordVec input = tableRecords(*sales, "ws_item_sk");
        size_t date_col = sales->columnIndex("ws_sold_date_sk");
        size_t qty_col = sales->columnIndex("ws_quantity");
        size_t price_col = sales->columnIndex("ws_sales_price");
        const auto &dates = sales->columns[date_col].ints;
        const auto &qty = sales->columns[qty_col].ints;
        const auto &price = sales->columns[price_col].doubles;
        QueryKind q = query;
        auto row_counter = std::make_shared<uint64_t>(0);
        shark->parallelize(input)
            .map(
                [&, q, row_counter](Tracer &tt, const Record &rec,
                                    RecordVec &out) {
                    uint64_t row = (*row_counter)++;
                    tt.load(sales->cellAddr(date_col, row), 8);
                    tt.intMul(1);
                    bool keep = false;
                    switch (q) {
                      case QueryKind::TpcdsQ3:
                        keep = nov_dates.count(dates[row]) > 0;
                        break;
                      case QueryKind::TpcdsQ8:
                        tt.load(sales->cellAddr(price_col, row), 8);
                        tt.fpAlu(1);
                        keep = price[row] > 250.0;
                        break;
                      default:
                        tt.load(sales->cellAddr(qty_col, row), 8);
                        tt.intAlu(IntPurpose::Compute, 1);
                        keep = qty[row] > 90;
                        break;
                    }
                    tt.branchForward(keep, 24);
                    if (keep) {
                        Record r = rec;
                        r.value = std::to_string(
                            static_cast<int64_t>(price[row]));
                        out.push_back(std::move(r));
                    }
                },
                "map:starFilter")
            .reduceByKey([this](Tracer &tt, const Record &a,
                                const Record &b) {
                int64_t sum =
                    kernels->parseInt(tt, a.value, a.valueAddr) +
                    kernels->parseInt(tt, b.value, b.valueAddr);
                Record r = a;
                r.value = kernels->formatValue(tt, sum);
                return r;
            })
            .collect(env, t);
        break;
      }
    }
}

} // namespace wcrt
