#include "workloads/text_workloads.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strings.hh"
#include "trace/idioms.hh"

namespace wcrt {

namespace {

/** Build the WordCount/Grep/Sort input: one record per document. */
RecordVec
makeCorpusRecords(const TextCorpus &corpus, TextAlgorithm algo)
{
    RecordVec records;
    if (algo == TextAlgorithm::Sort) {
        // TeraSort-style input: many ~128-byte records, keyed on their
        // leading bytes. Each document is chunked into lines.
        constexpr size_t chunk = 128;
        for (size_t d = 0; d < corpus.docs.size(); ++d) {
            const std::string &doc = corpus.docs[d];
            for (size_t off = 0; off < doc.size(); off += chunk) {
                Record r;
                size_t len = std::min(chunk, doc.size() - off);
                r.key = doc.substr(off, std::min<size_t>(len, 10));
                r.value = doc.substr(off, len);
                r.keyAddr = corpus.docAddr(d, off);
                r.valueAddr = corpus.docAddr(d, off);
                records.push_back(std::move(r));
            }
        }
        return records;
    }
    records.reserve(corpus.docs.size());
    for (size_t d = 0; d < corpus.docs.size(); ++d) {
        Record r;
        r.key = std::to_string(d);
        r.value = corpus.docs[d];
        r.keyAddr = corpus.docAddr(d);
        r.valueAddr = corpus.docAddr(d);
        records.push_back(std::move(r));
    }
    return records;
}

/** Hadoop WordCount map: tokenize and emit (word, 1). */
class WordCountMapper : public Mapper
{
  public:
    WordCountMapper(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        auto tokens = kernels.tokenize(t, in.value, in.valueAddr);
        const char *base = in.value.data();
        for (auto tok : tokens) {
            Record r;
            r.key = std::string(tok);
            r.value = std::string(1, '1');
            r.keyAddr =
                in.valueAddr + static_cast<uint64_t>(tok.data() - base);
            r.valueAddr = r.keyAddr;
            out.push_back(std::move(r));
        }
    }

  private:
    AppKernels &kernels;
};

/** Hadoop WordCount reduce: sum the 1s. */
class WordCountReducer : public Reducer
{
  public:
    WordCountReducer(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        int64_t total = 0;
        for (const auto &v : values) {
            total += kernels.parseInt(t, v.value, v.valueAddr);
            kernels.addCount(t, v.valueAddr);
        }
        Record r;
        r.key = key;
        r.value = kernels.formatValue(t, total);
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
};

/** Hadoop Grep map: pattern search, emit per-document match counts. */
class GrepMapper : public Mapper
{
  public:
    GrepMapper(AppKernels &kernels, std::string pattern)
        : kernels(kernels), pattern(std::move(pattern))
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        uint64_t hits =
            kernels.grepMatch(t, in.value, in.valueAddr, pattern);
        if (hits > 0) {
            Record r;
            r.key = pattern;
            r.value = kernels.formatValue(
                t, static_cast<int64_t>(hits));
            r.keyAddr = in.keyAddr;
            r.valueAddr = in.valueAddr;
            out.push_back(std::move(r));
        }
    }

  private:
    AppKernels &kernels;
    std::string pattern;
};

/** Grep reduce: total the match counts (tiny output). */
class GrepReducer : public Reducer
{
  public:
    GrepReducer(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        int64_t total = 0;
        for (const auto &v : values)
            total += kernels.parseInt(t, v.value, v.valueAddr);
        Record r;
        r.key = key;
        r.value = kernels.formatValue(t, total);
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
};

/** Inverted-index map: emit one (term, doc-id) posting per distinct
 *  term in the document. */
class IndexMapper : public Mapper
{
  public:
    IndexMapper(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        auto tokens = kernels.tokenize(t, in.value, in.valueAddr);
        const char *base = in.value.data();
        std::set<std::string_view> seen;
        for (auto tok : tokens) {
            t.intAlu(IntPurpose::IntAddress, 2);
            t.intMul(1);  // dedupe-set probe
            if (!seen.insert(tok).second)
                continue;
            Record r;
            r.key = std::string(tok);
            r.value = in.key;  // document id
            r.keyAddr =
                in.valueAddr + static_cast<uint64_t>(tok.data() - base);
            r.valueAddr = in.keyAddr;
            out.push_back(std::move(r));
        }
    }

  private:
    AppKernels &kernels;
};

/** Inverted-index reduce: merge a term's postings into a sorted list. */
class IndexReducer : public Reducer
{
  public:
    IndexReducer(AppKernels &kernels) : kernels(kernels) {}

    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        std::vector<int64_t> postings;
        postings.reserve(values.size());
        for (const auto &v : values)
            postings.push_back(
                kernels.parseInt(t, v.value, v.valueAddr));
        std::sort(postings.begin(), postings.end());
        t.loop(postings.size(), [&](uint64_t) {
            t.intAlu(IntPurpose::Compute, 2);
        });
        std::string list;
        for (int64_t p : postings) {
            if (!list.empty())
                list += ',';
            list += std::to_string(p);
        }
        Record r;
        r.key = key;
        r.value = std::move(list);
        r.keyAddr = values.front().keyAddr;
        r.valueAddr = values.front().valueAddr;
        out.push_back(std::move(r));
    }

  private:
    AppKernels &kernels;
};

/** Sort map/reduce: identity — the framework's sort does the work. */
class IdentityMapper : public Mapper
{
  public:
    void registerCode(CodeLayout &) override {}

    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        t.intAlu(IntPurpose::IntAddress, 2);
        out.push_back(in);
    }
};

class IdentityReducer : public Reducer
{
  public:
    void registerCode(CodeLayout &) override {}

    void
    reduce(Tracer &t, const std::string &, const RecordVec &values,
           RecordVec &out) override
    {
        for (const auto &v : values) {
            t.intAlu(IntPurpose::IntAddress, 1);
            out.push_back(v);
        }
    }
};

/** MPI kernels: the same algorithms on the thin stack. */
class MpiTextKernel : public NativeKernel
{
  public:
    MpiTextKernel(AppKernels &kernels, TextAlgorithm algo,
                  std::string pattern, uint32_t ranks)
        : kernels(kernels), algo(algo), pattern(std::move(pattern)),
          ranks(ranks)
    {
    }

    void registerCode(CodeLayout &) override {}

    void
    processPartition(Tracer &t, const RecordVec &in,
                     std::vector<RecordVec> &to_ranks) override
    {
        switch (algo) {
          case TextAlgorithm::WordCount: {
            // Local pre-aggregation in a real hash table.
            std::unordered_map<std::string_view, int64_t> counts;
            for (const auto &rec : in) {
                auto tokens =
                    kernels.tokenize(t, rec.value, rec.valueAddr);
                for (auto tok : tokens) {
                    t.intAlu(IntPurpose::IntAddress, 2);
                    t.intMul(1);  // hash probe
                    ++counts[tok];
                }
            }
            for (const auto &[word, count] : counts) {
                Record r;
                r.key = std::string(word);
                r.value = kernels.formatValue(t, count);
                r.keyAddr = in.front().valueAddr;
                r.valueAddr = in.front().valueAddr;
                to_ranks[fnv1a(r.key) % ranks].push_back(std::move(r));
            }
            break;
          }
          case TextAlgorithm::Grep: {
            for (const auto &rec : in) {
                uint64_t hits = kernels.grepMatch(t, rec.value,
                                                  rec.valueAddr,
                                                  pattern);
                if (hits > 0) {
                    Record r;
                    r.key = pattern;
                    r.value = kernels.formatValue(
                        t, static_cast<int64_t>(hits));
                    r.keyAddr = rec.keyAddr;
                    r.valueAddr = rec.valueAddr;
                    to_ranks[0].push_back(std::move(r));
                }
            }
            break;
          }
          case TextAlgorithm::InvertedIndex: {
            std::map<std::string, std::vector<int64_t>> index;
            for (const auto &rec : in) {
                auto tokens =
                    kernels.tokenize(t, rec.value, rec.valueAddr);
                int64_t doc = 0;
                for (char c : rec.key)
                    if (c >= '0' && c <= '9')
                        doc = doc * 10 + (c - '0');
                for (auto tok : tokens) {
                    t.intAlu(IntPurpose::IntAddress, 2);
                    t.intMul(1);
                    index[std::string(tok)].push_back(doc);
                }
            }
            for (auto &[term, postings] : index) {
                Record r;
                r.key = term;
                r.value = std::to_string(postings.size());
                r.keyAddr = in.front().valueAddr;
                r.valueAddr = in.front().valueAddr;
                to_ranks[fnv1a(term) % ranks].push_back(std::move(r));
            }
            break;
          }
          case TextAlgorithm::Sort: {
            // Range partition on the first key byte, sort locally.
            RecordVec local = in;
            std::sort(local.begin(), local.end(),
                      [&](const Record &a, const Record &b) {
                          idioms::compareBytes(
                              t, a.keyAddr, b.keyAddr,
                              std::min<uint64_t>(
                                  std::min(a.key.size(), b.key.size()),
                                  8) + 1);
                          return a.key < b.key;
                      });
            for (auto &rec : local) {
                unsigned char first =
                    rec.key.empty()
                        ? 0
                        : static_cast<unsigned char>(rec.key[0]);
                t.intAlu(IntPurpose::Compute, 2);
                to_ranks[first % ranks].push_back(std::move(rec));
            }
            break;
          }
        }
    }

    void
    finalize(Tracer &t, const RecordVec &received, RecordVec &out)
        override
    {
        switch (algo) {
          case TextAlgorithm::WordCount: {
            std::unordered_map<std::string, int64_t> counts;
            for (const auto &rec : received) {
                t.intMul(1);
                t.intAlu(IntPurpose::IntAddress, 2);
                counts[rec.key] +=
                    kernels.parseInt(t, rec.value, rec.valueAddr);
            }
            for (const auto &[word, count] : counts) {
                Record r;
                r.key = word;
                r.value = kernels.formatValue(t, count);
                out.push_back(std::move(r));
            }
            break;
          }
          case TextAlgorithm::Grep: {
            int64_t total = 0;
            for (const auto &rec : received)
                total += kernels.parseInt(t, rec.value, rec.valueAddr);
            if (!received.empty()) {
                Record r;
                r.key = pattern;
                r.value = kernels.formatValue(t, total);
                out.push_back(std::move(r));
            }
            break;
          }
          case TextAlgorithm::InvertedIndex: {
            std::map<std::string, int64_t> merged;
            for (const auto &rec : received) {
                t.intMul(1);
                t.intAlu(IntPurpose::Compute, 1);
                merged[rec.key] +=
                    kernels.parseInt(t, rec.value, rec.valueAddr);
            }
            for (const auto &[term, count] : merged) {
                Record r;
                r.key = term;
                r.value = std::to_string(count);
                out.push_back(std::move(r));
            }
            break;
          }
          case TextAlgorithm::Sort: {
            RecordVec sorted = received;
            std::sort(sorted.begin(), sorted.end(),
                      [&](const Record &a, const Record &b) {
                          idioms::compareBytes(
                              t, a.keyAddr, b.keyAddr,
                              std::min<uint64_t>(
                                  std::min(a.key.size(), b.key.size()),
                                  8) + 1);
                          return a.key < b.key;
                      });
            out = std::move(sorted);
            break;
          }
        }
    }

  private:
    AppKernels &kernels;
    TextAlgorithm algo;
    std::string pattern;
    uint32_t ranks;
};

} // namespace

TextWorkload::TextWorkload(TextAlgorithm algorithm, StackKind stack,
                           double scale, uint64_t seed,
                           CorpusChoice corpus_choice)
    : algo(algorithm), stackKind(stack), scale(scale), seed(seed),
      corpusChoice(corpus_choice)
{
    if (stack != StackKind::Hadoop && stack != StackKind::Spark &&
        stack != StackKind::Mpi) {
        wcrt_fatal("text workloads support Hadoop/Spark/MPI stacks");
    }
}

std::string
TextWorkload::name() const
{
    std::string prefix = stackKind == StackKind::Hadoop ? "H-"
                         : stackKind == StackKind::Spark ? "S-"
                                                         : "M-";
    switch (algo) {
      case TextAlgorithm::WordCount:
        return prefix + "WordCount";
      case TextAlgorithm::Grep:
        return prefix + "Grep";
      case TextAlgorithm::Sort:
        return prefix + "Sort";
      case TextAlgorithm::InvertedIndex:
        return prefix + "Index";
    }
    return prefix + "?";
}

AppCategory
TextWorkload::category() const
{
    return AppCategory::DataAnalysis;
}

void
TextWorkload::setup(RunEnv &env)
{
    DatasetCatalog catalog(env.heap, scale, seed);
    corpus = corpusChoice == CorpusChoice::Wikipedia
                 ? catalog.wikipedia()
                 : catalog.amazonReviews();
    kernels = std::make_unique<AppKernels>(env.layout);
    switch (stackKind) {
      case StackKind::Hadoop: {
        MapReduceConfig cfg;
        // Real Hadoop WordCount/Grep jobs run a combiner, which is
        // what makes their intermediate data << input (Table 2).
        cfg.useCombiner = algo == TextAlgorithm::WordCount ||
                          algo == TextAlgorithm::Grep;
        if (hadoopOverride)
            cfg = *hadoopOverride;
        hadoop = std::make_unique<MapReduceEngine>(env.layout, cfg);
        break;
      }
      case StackKind::Spark:
        spark = std::make_unique<RddEngine>(env.layout);
        break;
      default:
        mpi = std::make_unique<NativeEngine>(env.layout);
        break;
    }
}

RecordVec
TextWorkload::corpusRecords() const
{
    return makeCorpusRecords(*corpus, algo);
}

void
TextWorkload::execute(RunEnv &env, Tracer &t)
{
    switch (stackKind) {
      case StackKind::Hadoop:
        runHadoop(env, t);
        break;
      case StackKind::Spark:
        runSpark(env, t);
        break;
      default:
        runMpi(env, t);
        break;
    }
}

void
TextWorkload::runHadoop(RunEnv &env, Tracer &t)
{
    RecordVec input = corpusRecords();
    switch (algo) {
      case TextAlgorithm::WordCount: {
        WordCountMapper m(*kernels);
        WordCountReducer r(*kernels);
        hadoop->run(env, t, input, m, r);
        break;
      }
      case TextAlgorithm::Grep: {
        GrepMapper m(*kernels, std::string(grepPattern));
        GrepReducer r(*kernels);
        hadoop->run(env, t, input, m, r);
        break;
      }
      case TextAlgorithm::Sort: {
        IdentityMapper m;
        IdentityReducer r;
        hadoop->run(env, t, input, m, r);
        break;
      }
      case TextAlgorithm::InvertedIndex: {
        IndexMapper m(*kernels);
        IndexReducer r(*kernels);
        hadoop->run(env, t, input, m, r);
        break;
      }
    }
}

void
TextWorkload::runSpark(RunEnv &env, Tracer &t)
{
    RecordVec input = corpusRecords();
    Rdd source = spark->parallelize(input);
    switch (algo) {
      case TextAlgorithm::WordCount: {
        Rdd counts =
            source
                .map(
                    [this](Tracer &tt, const Record &rec,
                           RecordVec &out) {
                        WordCountMapper m(*kernels);
                        m.map(tt, rec, out);
                    },
                    "flatMap:tokenize")
                .reduceByKey([this](Tracer &tt, const Record &a,
                                    const Record &b) {
                    int64_t sum =
                        kernels->parseInt(tt, a.value, a.valueAddr) +
                        kernels->parseInt(tt, b.value, b.valueAddr);
                    Record r = a;
                    r.value = kernels->formatValue(tt, sum);
                    return r;
                });
        counts.collect(env, t);
        break;
      }
      case TextAlgorithm::Grep: {
        std::string pattern(grepPattern);
        Rdd matches = source.filter(
            [this, pattern](Tracer &tt, const Record &rec) {
                return kernels->grepMatch(tt, rec.value, rec.valueAddr,
                                          pattern) > 0;
            },
            "filter:grep");
        matches.collect(env, t);
        break;
      }
      case TextAlgorithm::Sort: {
        source.sortByKey().collect(env, t);
        break;
      }
      case TextAlgorithm::InvertedIndex: {
        source
            .map(
                [this](Tracer &tt, const Record &rec, RecordVec &out) {
                    IndexMapper m(*kernels);
                    m.map(tt, rec, out);
                },
                "flatMap:postings")
            .groupByKey()
            .collect(env, t);
        break;
      }
    }
}

void
TextWorkload::runMpi(RunEnv &env, Tracer &t)
{
    RecordVec input = corpusRecords();
    MpiTextKernel kernel(*kernels, algo, std::string(grepPattern),
                         mpi->config().ranks);
    mpi->run(env, t, input, kernel);
}

} // namespace wcrt
