/**
 * @file
 * The service workload of Table 2: H-Read (#1), the basic HBase read
 * operation serving a Zipfian GET stream over the ProfSearch dataset.
 */

#ifndef WCRT_WORKLOADS_SERVICE_WORKLOADS_HH
#define WCRT_WORKLOADS_SERVICE_WORKLOADS_HH

#include <memory>
#include <optional>

#include "datagen/datasets.hh"
#include "stack/kvstore/store.hh"
#include "workloads/workload.hh"

namespace wcrt {

/**
 * HBase-Read: the region-server read path under a stochastic client.
 */
class HBaseReadWorkload : public Workload
{
  public:
    explicit HBaseReadWorkload(double scale = 1.0, uint64_t seed = 7);

    std::string name() const override { return "H-Read"; }
    AppCategory category() const override { return AppCategory::Service; }
    StackKind stack() const override { return StackKind::HBase; }
    void setup(RunEnv &env) override;
    void execute(RunEnv &env, Tracer &t) override;

  private:
    double scale;
    uint64_t seed;
    std::optional<KvDataset> data;
    std::unique_ptr<KvStore> store;
};

} // namespace wcrt

#endif // WCRT_WORKLOADS_SERVICE_WORKLOADS_HH
