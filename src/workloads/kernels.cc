#include "workloads/kernels.hh"

#include <algorithm>
#include <array>
#include <cctype>

#include "trace/idioms.hh"

namespace wcrt {

AppKernels::AppKernels(CodeLayout &layout)
{
    auto app = [&](const char *name, uint32_t bytes) {
        return layout.addFunction(std::string("app.") + name,
                                  CodeLayer::Application, bytes);
    };
    // Application kernels are small: the paper notes big data analysis
    // kernel code is simple (ComputeDist is ~40 lines).
    tokenizeFn = app("tokenize", 768);
    grepFn = app("grepMatch", 640);
    parseFn = app("parseInt", 256);
    countFn = app("addCount", 192);
    distanceFn = app("computeDist", 512);
    assignFn = app("closestCenter", 448);
    rankFn = app("rankContribute", 512);
    bayesFn = app("bayesAccumulate", 576);
    formatFn = app("formatValue", 320);
}

std::vector<std::string_view>
AppKernels::tokenize(Tracer &t, std::string_view doc, uint64_t doc_addr)
{
    Tracer::Scope fn(t, tokenizeFn);
    std::vector<std::string_view> tokens;
    size_t i = 0;
    // Count tokens first (cheap, host-side) so the emitted scan loop
    // can model per-token bookkeeping faithfully.
    while (i < doc.size()) {
        while (i < doc.size() && doc[i] == ' ')
            ++i;
        size_t start = i;
        while (i < doc.size() && doc[i] != ' ')
            ++i;
        if (i > start)
            tokens.push_back(doc.substr(start, i - start));
    }
    idioms::scanTokens(t, doc_addr, doc.size(), tokens.size());
    return tokens;
}

uint64_t
AppKernels::grepMatch(Tracer &t, std::string_view text,
                      uint64_t text_addr, std::string_view pattern)
{
    Tracer::Scope fn(t, grepFn);
    if (pattern.empty() || text.size() < pattern.size())
        return 0;

    uint64_t matches = 0;
    // Boyer-Moore-Horspool-flavoured scan: compute the skip table for
    // real, walk the text, emit the compare work actually performed.
    std::array<size_t, 256> skip;
    skip.fill(pattern.size());
    for (size_t i = 0; i + 1 < pattern.size(); ++i)
        skip[static_cast<unsigned char>(pattern[i])] =
            pattern.size() - 1 - i;
    t.loop(pattern.size(), [&](uint64_t) {
        t.intAlu(IntPurpose::IntAddress, 1);
        t.intAlu(IntPurpose::Compute, 1);
    });

    size_t pos = 0;
    uint64_t steps = 0;
    while (pos + pattern.size() <= text.size()) {
        ++steps;
        size_t last = pos + pattern.size() - 1;
        // Tail-byte check then (rarely) the full compare.
        size_t matched = 0;
        while (matched < pattern.size() &&
               text[last - matched] ==
                   pattern[pattern.size() - 1 - matched])
            ++matched;
        bool hit = matched == pattern.size();
        if (hit)
            ++matches;
        pos += hit ? pattern.size()
                   : skip[static_cast<unsigned char>(text[last])];
        if (steps <= 4096) {
            // Emit the probe: one load + compare + branch, plus the
            // extra compares a partial match performed.
            t.intAlu(IntPurpose::IntAddress, 1);
            t.load(text_addr + last, 1);
            t.intAlu(IntPurpose::Compute, 1);
            t.branchForward(matched > 0, 24);
            if (matched > 1)
                idioms::compareBytes(t, text_addr + pos, text_addr + pos,
                                     std::min<uint64_t>(matched, 16));
        }
    }
    // For very long texts the emission above caps at 4096 probes; fold
    // the remainder into a compressed loop so mix ratios stay right.
    if (steps > 4096) {
        t.loop((steps - 4096) / 8 + 1, [&](uint64_t k) {
            t.intAlu(IntPurpose::IntAddress, 1);
            t.load(text_addr + (k * 64) % text.size(), 8);
            t.intAlu(IntPurpose::Compute, 1);
            t.branchForward(false, 24);
        });
    }
    return matches;
}

int64_t
AppKernels::parseInt(Tracer &t, std::string_view text, uint64_t addr)
{
    Tracer::Scope fn(t, parseFn);
    int64_t v = 0;
    size_t digits = 0;
    for (char ch : text) {
        if (!std::isdigit(static_cast<unsigned char>(ch)))
            break;
        v = v * 10 + (ch - '0');
        ++digits;
    }
    t.loop(std::max<uint64_t>(digits, 1), [&](uint64_t k) {
        t.intAlu(IntPurpose::IntAddress, 1);
        t.load(addr + k, 1);
        t.intMul(1);
        t.intAlu(IntPurpose::Compute, 1);
    });
    return v;
}

void
AppKernels::addCount(Tracer &t, uint64_t value_addr)
{
    Tracer::Scope fn(t, countFn);
    t.load(value_addr, 8);
    t.intAlu(IntPurpose::Compute, 1);
    t.store(value_addr, 8);
}

double
AppKernels::distance(Tracer &t, const double *a, uint64_t a_addr,
                     const double *b, uint64_t b_addr, uint32_t dims)
{
    Tracer::Scope fn(t, distanceFn);
    double sum = 0.0;
    t.loop(dims, [&](uint64_t d) {
        t.intAlu(IntPurpose::FpAddress, 2);
        t.load(a_addr + d * 8, 8);
        t.load(b_addr + d * 8, 8);
        t.fpAlu(1);  // subtract
        t.fpMul(1);  // square
        t.fpAlu(1);  // accumulate
        double diff = a[d] - b[d];
        sum += diff * diff;
    });
    return sum;
}

uint32_t
AppKernels::closestCenter(Tracer &t, const double *point,
                          uint64_t point_addr,
                          const std::vector<std::vector<double>> &centers,
                          uint64_t centers_addr, uint32_t dims)
{
    Tracer::Scope fn(t, assignFn);
    double min_dist = 0.0;
    uint32_t index = 0;
    // Algorithm 1 of the paper: the judgement-heavy main loop.
    t.loop(centers.size(), [&](uint64_t c) {
        double dist = distance(t, point, point_addr, centers[c].data(),
                               centers_addr + c * dims * 8, dims);
        bool closer = c == 0 || dist < min_dist;
        t.fpAlu(1);  // compare
        t.branchForward(closer, 16);
        if (closer) {
            t.intAlu(IntPurpose::Compute, 2);
            min_dist = dist;
            index = static_cast<uint32_t>(c);
        }
    });
    return index;
}

void
AppKernels::rankContribute(Tracer &t, uint64_t node_addr, double rank,
                           uint64_t degree, uint64_t first_edge_addr)
{
    Tracer::Scope fn(t, rankFn);
    t.intAlu(IntPurpose::FpAddress, 1);
    t.load(node_addr, 8);
    t.fpDiv(1);  // rank / degree
    (void)rank;
    t.loop(degree, [&](uint64_t e) {
        t.intAlu(IntPurpose::IntAddress, 1);
        t.load(first_edge_addr + e * 4, 4);  // neighbour id (CSR)
    });
}

void
AppKernels::bayesAccumulate(Tracer &t, uint64_t token_addr,
                            uint64_t model_addr, uint32_t classes)
{
    Tracer::Scope fn(t, bayesFn);
    idioms::hashBytes(t, token_addr, 8);
    t.loop(classes, [&](uint64_t c) {
        t.intAlu(IntPurpose::FpAddress, 1);
        t.load(model_addr + c * 8, 8);
        t.fpAlu(1);  // log-prob accumulate
    });
}

std::string
AppKernels::formatValue(Tracer &t, int64_t v)
{
    Tracer::Scope fn(t, formatFn);
    std::string s = std::to_string(v);
    t.loop(s.size(), [&](uint64_t) {
        t.intDiv(1);
        t.intAlu(IntPurpose::Compute, 1);
    });
    return s;
}

} // namespace wcrt
