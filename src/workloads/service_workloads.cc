#include "workloads/service_workloads.hh"

namespace wcrt {

HBaseReadWorkload::HBaseReadWorkload(double scale, uint64_t seed)
    : scale(scale), seed(seed)
{
}

void
HBaseReadWorkload::setup(RunEnv &env)
{
    DatasetCatalog catalog(env.heap, scale, seed);
    data = catalog.profSearch();
    store = std::make_unique<KvStore>(env.layout, *data);
}

void
HBaseReadWorkload::execute(RunEnv &env, Tracer &t)
{
    Rng rng(seed ^ 0x5e);
    // One request per stored row on average: Output=Input (Table 2).
    store->serve(t, env, data->keys.size(), rng);
}

} // namespace wcrt
