/**
 * @file
 * The workload abstraction every benchmark implementation satisfies.
 *
 * A workload owns its dataset generation and its trace emission; the
 * runner (core/profiler) supplies the machine model and collects the
 * 45 metrics plus system/data behaviour. Table 2's columns map onto
 * this interface: name/abbreviation, application category, software
 * stack, data behaviour (accounted in RunEnv) and system behaviour
 * (derived by sysmon from the I/O counters).
 */

#ifndef WCRT_WORKLOADS_WORKLOAD_HH
#define WCRT_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>

#include "stack/run_env.hh"
#include "trace/tracer.hh"

namespace wcrt {

/** The paper's three application categories (Section 3.2.3). */
enum class AppCategory : uint8_t {
    Service,
    DataAnalysis,
    InteractiveAnalysis,
};

/** Human-readable category name. */
const char *toString(AppCategory c);

/** Software stacks a workload can be implemented on. */
enum class StackKind : uint8_t {
    Hadoop,  //!< MapReduce engine (JVM-like deep stack)
    Spark,   //!< RDD engine (JVM-like, deeper)
    Mpi,     //!< native thin stack
    Hive,    //!< SQL compiled onto the MapReduce engine
    Shark,   //!< SQL compiled onto the RDD engine
    Impala,  //!< SQL on the native vectorized executor
    HBase,   //!< KV-store service path
};

/** Human-readable stack name. */
const char *toString(StackKind s);

/**
 * One runnable benchmark.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Table-2 style name, e.g. "S-WordCount". */
    virtual std::string name() const = 0;

    /** Application category. */
    virtual AppCategory category() const = 0;

    /** Software stack this implementation uses. */
    virtual StackKind stack() const = 0;

    /**
     * Generate datasets and register all code regions (engine and app)
     * against the environment. Must be called exactly once, before
     * execute().
     */
    virtual void setup(RunEnv &env) = 0;

    /** Run the workload, emitting the trace through `t`. */
    virtual void execute(RunEnv &env, Tracer &t) = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace wcrt

#endif // WCRT_WORKLOADS_WORKLOAD_HH
