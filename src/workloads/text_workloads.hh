/**
 * @file
 * The text-analytics workloads: WordCount, Grep, Sort and
 * InvertedIndex, each
 * implementable on the Hadoop, Spark and MPI stacks (the six MPI
 * versions of the paper's Section 5.5 include all three).
 *
 * Table-2 mapping: S-WordCount (#5), H-Grep (#7), H-WordCount (#15),
 * S-Grep (#14), S-Sort (#17), plus the M-WordCount / M-Grep / M-Sort
 * contrast implementations.
 */

#ifndef WCRT_WORKLOADS_TEXT_WORKLOADS_HH
#define WCRT_WORKLOADS_TEXT_WORKLOADS_HH

#include <memory>
#include <optional>

#include "datagen/datasets.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/native/engine.hh"
#include "stack/rdd/engine.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** Which text algorithm a TextWorkload instance runs. */
enum class TextAlgorithm : uint8_t {
    WordCount,
    Grep,
    Sort,
    InvertedIndex,
};

/** Which Table-1 corpus feeds the workload. */
enum class CorpusChoice : uint8_t { Wikipedia, AmazonReviews };

/**
 * One text workload: an algorithm bound to a stack and a corpus.
 */
class TextWorkload : public Workload
{
  public:
    /**
     * @param algorithm WordCount, Grep or Sort.
     * @param stack Hadoop, Spark or Mpi.
     * @param scale Dataset scale factor.
     * @param seed Dataset seed.
     * @param corpus_choice Which corpus to process.
     */
    TextWorkload(TextAlgorithm algorithm, StackKind stack,
                 double scale = 1.0, uint64_t seed = 7,
                 CorpusChoice corpus_choice = CorpusChoice::Wikipedia);

    std::string name() const override;
    AppCategory category() const override;
    StackKind stack() const override { return stackKind; }
    void setup(RunEnv &env) override;
    void execute(RunEnv &env, Tracer &t) override;

    /** Override the MapReduce engine config (ablation studies). */
    void
    setHadoopConfig(const MapReduceConfig &config)
    {
        hadoopOverride = config;
    }

  private:
    void runHadoop(RunEnv &env, Tracer &t);
    void runSpark(RunEnv &env, Tracer &t);
    void runMpi(RunEnv &env, Tracer &t);

    RecordVec corpusRecords() const;

    TextAlgorithm algo;
    StackKind stackKind;
    double scale;
    uint64_t seed;
    CorpusChoice corpusChoice;

    std::optional<TextCorpus> corpus;
    std::optional<MapReduceConfig> hadoopOverride;
    std::unique_ptr<AppKernels> kernels;
    std::unique_ptr<MapReduceEngine> hadoop;
    std::unique_ptr<RddEngine> spark;
    std::unique_ptr<NativeEngine> mpi;

    static constexpr const char *grepPattern = "the";
};

} // namespace wcrt

#endif // WCRT_WORKLOADS_TEXT_WORKLOADS_HH
