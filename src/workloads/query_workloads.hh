/**
 * @file
 * The interactive-analysis (SQL) workloads of Table 2: select/filter,
 * project, order-by, set difference and the TPC-DS queries Q3/Q8/Q10,
 * each implementable on Hive (SQL→MapReduce), Shark (SQL→RDD) and
 * Impala (native vectorized).
 *
 * Table-2 mapping: H-Difference (#2), I-SelectQuery (#3),
 * H-TPC-DS-query3 (#4), I-OrderBy (#6), S-TPC-DS-query10 (#8),
 * S-Project (#9), S-OrderBy (#10), S-TPC-DS-query8 (#12).
 */

#ifndef WCRT_WORKLOADS_QUERY_WORKLOADS_HH
#define WCRT_WORKLOADS_QUERY_WORKLOADS_HH

#include <memory>
#include <optional>

#include "datagen/datasets.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/rdd/engine.hh"
#include "stack/sql/vectorized.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

namespace wcrt {

/** Which relational operation a QueryWorkload runs. */
enum class QueryKind : uint8_t {
    SelectQuery,
    Project,
    OrderBy,
    Difference,
    Aggregation,
    Join,
    TpcdsQ3,
    TpcdsQ8,
    TpcdsQ10,
};

/**
 * One SQL workload bound to a backend stack.
 */
class QueryWorkload : public Workload
{
  public:
    QueryWorkload(QueryKind query, StackKind stack, double scale = 1.0,
                  uint64_t seed = 7);

    std::string name() const override;
    AppCategory category() const override;
    StackKind stack() const override { return stackKind; }
    void setup(RunEnv &env) override;
    void execute(RunEnv &env, Tracer &t) override;

  private:
    void runImpala(RunEnv &env, Tracer &t);
    void runHive(RunEnv &env, Tracer &t);
    void runShark(RunEnv &env, Tracer &t);

    /** Row records keyed by a column (zero-padded for ordering). */
    RecordVec tableRecords(const DataTable &table,
                           const std::string &key_col) const;

    QueryKind query;
    StackKind stackKind;
    double scale;
    uint64_t seed;

    std::optional<DataTable> orders;
    std::optional<DataTable> items;
    std::optional<DataTable> sales;
    std::optional<DataTable> dateDim;
    std::optional<DataTable> itemDim;

    std::unique_ptr<AppKernels> kernels;
    std::unique_ptr<VectorizedEngine> impala;
    std::unique_ptr<MapReduceEngine> hive;
    std::unique_ptr<RddEngine> shark;
};

} // namespace wcrt

#endif // WCRT_WORKLOADS_QUERY_WORKLOADS_HH
