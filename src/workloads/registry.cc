#include "workloads/registry.hh"

#include <memory>

#include "base/logging.hh"
#include "workloads/ml_workloads.hh"
#include "workloads/query_workloads.hh"
#include "workloads/service_workloads.hh"
#include "workloads/text_workloads.hh"

namespace wcrt {

namespace {

WorkloadEntry
text(const std::string &name, int id, int represents, TextAlgorithm algo,
     StackKind stack, double factor = 1.0,
     CorpusChoice corpus = CorpusChoice::Wikipedia)
{
    return {name, id, represents, [=](double scale) -> WorkloadPtr {
                return std::make_unique<TextWorkload>(
                    algo, stack, scale * factor, 7, corpus);
            }};
}

WorkloadEntry
ml(const std::string &name, int id, int represents, MlAlgorithm algo,
   StackKind stack, double factor = 1.0)
{
    return {name, id, represents, [=](double scale) -> WorkloadPtr {
                return std::make_unique<MlWorkload>(algo, stack,
                                                    scale * factor);
            }};
}

WorkloadEntry
sql(const std::string &name, int id, int represents, QueryKind q,
    StackKind stack, double factor = 1.0)
{
    return {name, id, represents, [=](double scale) -> WorkloadPtr {
                return std::make_unique<QueryWorkload>(q, stack,
                                                       scale * factor);
            }};
}

WorkloadEntry
service(const std::string &name, int id, int represents,
        double factor = 1.0)
{
    return {name, id, represents, [=](double scale) -> WorkloadPtr {
                return std::make_unique<HBaseReadWorkload>(scale *
                                                           factor);
            }};
}

} // namespace

const std::vector<WorkloadEntry> &
representativeWorkloads()
{
    using TA = TextAlgorithm;
    using MA = MlAlgorithm;
    using QK = QueryKind;
    using SK = StackKind;
    static const std::vector<WorkloadEntry> entries = {
        service("H-Read", 1, 10),
        sql("H-Difference", 2, 9, QK::Difference, SK::Hive),
        sql("I-SelectQuery", 3, 9, QK::SelectQuery, SK::Impala),
        sql("H-TPC-DS-query3", 4, 9, QK::TpcdsQ3, SK::Hive),
        text("S-WordCount", 5, 8, TA::WordCount, SK::Spark),
        sql("I-OrderBy", 6, 7, QK::OrderBy, SK::Impala),
        text("H-Grep", 7, 7, TA::Grep, SK::Hadoop),
        sql("S-TPC-DS-query10", 8, 4, QK::TpcdsQ10, SK::Shark),
        sql("S-Project", 9, 4, QK::Project, SK::Shark),
        sql("S-OrderBy", 10, 3, QK::OrderBy, SK::Shark),
        ml("S-Kmeans", 11, 1, MA::KMeans, SK::Spark),
        sql("S-TPC-DS-query8", 12, 1, QK::TpcdsQ8, SK::Shark),
        ml("S-PageRank", 13, 1, MA::PageRank, SK::Spark),
        text("S-Grep", 14, 1, TA::Grep, SK::Spark),
        text("H-WordCount", 15, 1, TA::WordCount, SK::Hadoop),
        ml("H-NaiveBayes", 16, 1, MA::NaiveBayes, SK::Hadoop),
        text("S-Sort", 17, 1, TA::Sort, SK::Spark),
    };
    return entries;
}

const std::vector<WorkloadEntry> &
mpiWorkloads()
{
    using TA = TextAlgorithm;
    using MA = MlAlgorithm;
    using SK = StackKind;
    static const std::vector<WorkloadEntry> entries = {
        ml("M-Bayes", 0, 0, MA::NaiveBayes, SK::Mpi),
        ml("M-Kmeans", 0, 0, MA::KMeans, SK::Mpi),
        ml("M-PageRank", 0, 0, MA::PageRank, SK::Mpi),
        text("M-Grep", 0, 0, TA::Grep, SK::Mpi),
        text("M-WordCount", 0, 0, TA::WordCount, SK::Mpi),
        text("M-Sort", 0, 0, TA::Sort, SK::Mpi),
    };
    return entries;
}

const std::vector<WorkloadEntry> &
fullRoster()
{
    using TA = TextAlgorithm;
    using MA = MlAlgorithm;
    using QK = QueryKind;
    using SK = StackKind;

    static const std::vector<WorkloadEntry> entries = [] {
        std::vector<WorkloadEntry> v;

        // 24 text workloads: 4 operations x 3 stacks x 2 corpora.
        const std::pair<TA, const char *> algos[] = {
            {TA::WordCount, "WordCount"},
            {TA::Grep, "Grep"},
            {TA::Sort, "Sort"},
            {TA::InvertedIndex, "Index"},
        };
        const std::pair<SK, const char *> stacks[] = {
            {SK::Hadoop, "H"},
            {SK::Spark, "S"},
            {SK::Mpi, "M"},
        };
        const std::pair<CorpusChoice, const char *> corpora[] = {
            {CorpusChoice::Wikipedia, "wiki"},
            {CorpusChoice::AmazonReviews, "amazon"},
        };
        for (auto [algo, aname] : algos)
            for (auto [stack, sname] : stacks)
                for (auto [corpus, cname] : corpora)
                    v.push_back(text(std::string(sname) + "-" + aname +
                                         "@" + cname,
                                     0, 0, algo, stack, 1.0, corpus));

        // 12 half-input text variants (WordCount and Sort, the two
        // data-volume-sensitive operations).
        for (auto algo : {TA::WordCount, TA::Sort}) {
            const char *aname =
                algo == TA::WordCount ? "WordCount" : "Sort";
            for (auto [stack, sname] : stacks)
                for (auto [corpus, cname] : corpora)
                    v.push_back(text(std::string(sname) + "-" + aname +
                                         "@" + cname + "-half",
                                     0, 0, algo, stack, 0.5, corpus));
        }

        // 27 queries: 9 relational operations x 3 SQL stacks.
        const std::pair<QK, const char *> queries[] = {
            {QK::SelectQuery, "SelectQuery"},
            {QK::Project, "Project"},
            {QK::OrderBy, "OrderBy"},
            {QK::Difference, "Difference"},
            {QK::Aggregation, "Aggregation"},
            {QK::Join, "Join"},
            {QK::TpcdsQ3, "TPC-DS-query3"},
            {QK::TpcdsQ8, "TPC-DS-query8"},
            {QK::TpcdsQ10, "TPC-DS-query10"},
        };
        const std::pair<SK, const char *> sql_stacks[] = {
            {SK::Hive, "H"},
            {SK::Shark, "S"},
            {SK::Impala, "I"},
        };
        for (auto [q, qname] : queries)
            for (auto [stack, sname] : sql_stacks)
                v.push_back(sql(std::string(sname) + "-" + qname, 0, 0,
                                q, stack));

        // 12 ML/graph workloads: 4 algorithms x 3 stacks.
        const std::pair<MA, const char *> mls[] = {
            {MA::KMeans, "Kmeans"},
            {MA::PageRank, "PageRank"},
            {MA::NaiveBayes, "NaiveBayes"},
            {MA::ConnectedComponents, "ConnComp"},
        };
        for (auto [algo, aname] : mls)
            for (auto [stack, sname] : stacks)
                v.push_back(ml(std::string(sname) + "-" + aname, 0, 0,
                               algo, stack));

        // 2 service variants.
        v.push_back(service("H-Read", 0, 0, 1.0));
        v.push_back(service("H-Read-half", 0, 0, 0.5));

        if (v.size() != 77)
            wcrt_panic("roster has ", v.size(), " entries, expected 77");
        return v;
    }();
    return entries;
}

const WorkloadEntry &
findWorkload(const std::string &name)
{
    for (const auto *list :
         {&representativeWorkloads(), &mpiWorkloads(), &fullRoster()}) {
        for (const auto &e : *list)
            if (e.name == name)
                return e;
    }
    wcrt_panic("unknown workload '", name, "'");
}

} // namespace wcrt
