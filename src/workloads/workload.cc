#include "workloads/workload.hh"

namespace wcrt {

const char *
toString(AppCategory c)
{
    switch (c) {
      case AppCategory::Service:
        return "service";
      case AppCategory::DataAnalysis:
        return "data analysis";
      case AppCategory::InteractiveAnalysis:
        return "interactive analysis";
    }
    return "?";
}

const char *
toString(StackKind s)
{
    switch (s) {
      case StackKind::Hadoop:
        return "Hadoop";
      case StackKind::Spark:
        return "Spark";
      case StackKind::Mpi:
        return "MPI";
      case StackKind::Hive:
        return "Hive";
      case StackKind::Shark:
        return "Shark";
      case StackKind::Impala:
        return "Impala";
      case StackKind::HBase:
        return "HBase";
    }
    return "?";
}

} // namespace wcrt
