/**
 * @file
 * Shared application kernels.
 *
 * The same algorithm appears under several stacks (the whole point of
 * the paper's Section 5.5), so the data-dependent emission lives here
 * once: tokenization, pattern match, hash-count, distance computation,
 * rank propagation, Bayes scoring. Each kernel registers small
 * application-layer functions (these are the tight loops that stay
 * L1I-resident) and performs real work on real data while emitting.
 */

#ifndef WCRT_WORKLOADS_KERNELS_HH
#define WCRT_WORKLOADS_KERNELS_HH

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/code_layout.hh"
#include "trace/tracer.hh"

namespace wcrt {

/**
 * Registers and emits the application-layer kernels. One instance per
 * run; registration happens in the constructor.
 */
class AppKernels
{
  public:
    explicit AppKernels(CodeLayout &layout);

    /**
     * Tokenize a document (really splitting it) while emitting the
     * scan loop.
     *
     * @param doc Document text.
     * @param doc_addr Trace address of the document bytes.
     * @return The actual tokens.
     */
    std::vector<std::string_view> tokenize(Tracer &t,
                                           std::string_view doc,
                                           uint64_t doc_addr);

    /**
     * Substring search (really executed) emitting the match loop.
     *
     * @return Number of occurrences of `pattern` in `text`.
     */
    uint64_t grepMatch(Tracer &t, std::string_view text,
                       uint64_t text_addr, std::string_view pattern);

    /** Parse an ASCII integer (e.g. a count value) with emission. */
    int64_t parseInt(Tracer &t, std::string_view text, uint64_t addr);

    /** Sum a value into a running counter (combine step). */
    void addCount(Tracer &t, uint64_t value_addr);

    /**
     * Squared Euclidean distance between two `dims`-dimensional
     * points, emitting the FP loop; values are computed for real.
     */
    double distance(Tracer &t, const double *a, uint64_t a_addr,
                    const double *b, uint64_t b_addr, uint32_t dims);

    /**
     * The K-means inner loop of the paper's Algorithm 1: find the
     * closest of `k` centers to a point. Emits the compare/branch
     * pattern the paper highlights.
     *
     * @return Index of the closest center.
     */
    uint32_t closestCenter(Tracer &t, const double *point,
                           uint64_t point_addr,
                           const std::vector<std::vector<double>> &centers,
                           uint64_t centers_addr, uint32_t dims);

    /**
     * PageRank contribution pass for one node: read its rank, divide
     * by degree, push to each neighbour (loads through the real CSR).
     */
    void rankContribute(Tracer &t, uint64_t node_addr, double rank,
                        uint64_t degree, uint64_t first_edge_addr);

    /** Naive Bayes per-token log-probability accumulation. */
    void bayesAccumulate(Tracer &t, uint64_t token_addr,
                         uint64_t model_addr, uint32_t classes);

    /** Format a record value (int to string) with emission. */
    std::string formatValue(Tracer &t, int64_t v);

  private:
    FunctionId tokenizeFn;
    FunctionId grepFn;
    FunctionId parseFn;
    FunctionId countFn;
    FunctionId distanceFn;
    FunctionId assignFn;
    FunctionId rankFn;
    FunctionId bayesFn;
    FunctionId formatFn;
};

} // namespace wcrt

#endif // WCRT_WORKLOADS_KERNELS_HH
