/**
 * @file
 * The workload catalog: Table 2's seventeen representative workloads,
 * the six MPI contrast implementations of Section 5.5, and the full
 * 77-entry BigDataBench-style roster the reduction study starts from.
 *
 * Roster composition (77 = 36 + 21 + 15 + 3 + 2):
 *  - 36 text workloads: {WordCount, Grep, Sort} x {Hadoop, Spark, MPI}
 *    x {Wikipedia, Amazon} x {full, half input};
 *  - 21 queries: {Select, Project, OrderBy, Difference, Q3, Q8, Q10}
 *    x {Hive, Shark, Impala};
 *  - 15 ML/graph: {KMeans, PageRank, Bayes} x {Hadoop, Spark, MPI}
 *    plus half-input KMeans and PageRank variants on all three stacks;
 *  - 3 large-input Bayes variants;
 *  - 2 H-Read service variants (full / half store).
 */

#ifndef WCRT_WORKLOADS_REGISTRY_HH
#define WCRT_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace wcrt {

/** A named workload constructor. */
struct WorkloadEntry
{
    std::string name;             //!< unique roster name
    int table2Id = 0;             //!< 1..17 when representative, else 0
    int represents = 0;           //!< Table-2 cluster size (paper's "(n)")
    std::function<WorkloadPtr(double scale)> make;
};

/** The seventeen representative workloads in Table-2 order. */
const std::vector<WorkloadEntry> &representativeWorkloads();

/** The six MPI implementations added in Section 5.5. */
const std::vector<WorkloadEntry> &mpiWorkloads();

/** The full 77-workload roster for the reduction study. */
const std::vector<WorkloadEntry> &fullRoster();

/** Find an entry by name in any of the above; panics when missing. */
const WorkloadEntry &findWorkload(const std::string &name);

} // namespace wcrt

#endif // WCRT_WORKLOADS_REGISTRY_HH
