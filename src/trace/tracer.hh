/**
 * @file
 * Tracer: the emission engine workloads and stack engines drive.
 *
 * The tracer keeps a call stack of synthetic function frames. Each
 * emitted op gets a pc inside the active function's range; pcs advance
 * linearly and wrap, so a static code site produces stable addresses
 * (what branch predictors and the BTB key on), while data-dependent
 * control flow produces data-dependent pc paths.
 *
 * Framework functions additionally emit an automatic "overhead walk"
 * on every call: a deterministic stream of generic bookkeeping ops
 * (loads, stores, integer ALU, predictable branches) that sweeps the
 * function's code range from a per-call rotating start offset. This is
 * how the instruction-footprint difference between thin and deep
 * software stacks becomes a measurable cache phenomenon: deep stacks
 * execute more framework code spread over more static bytes.
 *
 * Transport: emitted ops accumulate into an OpBlock and reach the sink
 * as whole blocks via TraceSink::consumeBatch, not one virtual call
 * per op. The block drains automatically when it fills, when the call
 * stack returns to depth zero, and on destruction; call flush()
 * explicitly before inspecting sink state mid-emission.
 */

#ifndef WCRT_TRACE_TRACER_HH
#define WCRT_TRACE_TRACER_HH

#include <cstdint>
#include <vector>

#include "trace/code_layout.hh"
#include "trace/microop.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {

/**
 * Emission engine. One Tracer per simulated workload run.
 */
class Tracer
{
  public:
    /**
     * @param layout Code layout shared by the run.
     * @param sink Consumer of the op stream (not owned).
     */
    Tracer(const CodeLayout &layout, TraceSink &sink);

    /** Delivers any buffered ops to the sink (best-effort: a sink
     * that throws loses the tail with a warning — never terminate). */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Push every buffered op to the sink now and drain() it, so the
     * sink's state is safe to read on return even when the sink
     * pipelines (TeeSink with workers). Emission flushes automatically
     * when the block fills (without draining — that keeps the
     * pipeline overlapped) and when the call stack empties; use this
     * before reading sink state while frames are still active.
     */
    void flush();

    /** Direct call: emits the Call op and the callee's overhead walk. */
    void call(FunctionId f);

    /** Indirect call (virtual dispatch / function pointer). */
    void callIndirect(FunctionId f);

    /** Return to the caller frame. */
    void ret();

    /** RAII call/ret pair. */
    class Scope
    {
      public:
        Scope(Tracer &tracer, FunctionId f, bool indirect = false);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Tracer &tracer;
    };

    /** @name Straight-line op emission in the active frame. */
    /** @{ */
    void intAlu(IntPurpose purpose = IntPurpose::Compute, uint32_t n = 1);
    void intMul(uint32_t n = 1);
    void intDiv(uint32_t n = 1);
    void fpAlu(uint32_t n = 1);
    void fpMul(uint32_t n = 1);
    void fpDiv(uint32_t n = 1);
    void load(uint64_t addr, uint8_t size = 8);
    void store(uint64_t addr, uint8_t size = 8);
    void other(uint32_t n = 1);
    /** @} */

    /**
     * Conditional branch at the current pc.
     *
     * @param taken Outcome.
     * @param target_offset Destination offset within the active
     *        function (captured e.g. by loopTop()); the pc moves there
     *        when taken.
     */
    void branch(bool taken, uint64_t target_offset);

    /** Forward conditional branch skipping `skip_bytes` when taken. */
    void branchForward(bool taken, uint32_t skip_bytes = 32);

    /** Indirect jump through a table (switch); selector picks target. */
    void branchIndirect(uint64_t selector);

    /** Current offset within the active function (loop targets). */
    uint64_t hereOffset() const;

    /**
     * Counted loop idiom: run `body(i)` n times, emitting the loop's
     * backward conditional branch with a stable pc after the first
     * iteration (taken n-1 times, then falls through).
     *
     * @param n Iteration count (n == 0 emits one not-taken guard).
     * @param body Callable receiving the iteration index.
     */
    template <typename Body>
    void
    loop(uint64_t n, Body &&body)
    {
        uint64_t top = hereOffset();
        if (n == 0) {
            branch(false, top);
            return;
        }
        uint64_t end = 0;
        for (uint64_t i = 0; i < n; ++i) {
            body(i);
            if (i == 0)
                end = hereOffset();
            else
                setOffset(end);
            branch(i + 1 < n, top);
        }
    }

    /** Total ops emitted so far. */
    uint64_t opCount() const { return emitted; }

    /** Current call depth. */
    size_t depth() const { return frames.size(); }

    /** The layout this tracer draws code addresses from. */
    const CodeLayout &codeLayout() const { return layout; }

  private:
    struct Frame
    {
        FunctionId fid;
        uint64_t base;
        uint32_t bytes;
        uint64_t cursor;    //!< offset of the next op within the function
        uint64_t returnPc;  //!< caller pc to return to
    };

    void enter(FunctionId f, bool indirect);

    /** Hand the buffered block to the sink without draining it. */
    void deliverBlock();

    void emit(OpKind kind, IntPurpose purpose, uint64_t mem_addr,
              uint8_t mem_size, uint64_t target, bool taken);
    void overheadWalk(const Frame &frame, const CallProfile &profile,
                      uint64_t start_offset);
    void setOffset(uint64_t offset);
    Frame &top();
    const Frame &top() const;

    const CodeLayout &layout;
    TraceSink &sink;
    OpBlock block;  //!< ops accumulated since the last flush
    std::vector<Frame> frames;
    std::vector<uint32_t> callCounts;    //!< indexed by FunctionId
    std::vector<uint64_t> scratchBase;   //!< per-function scratch data
    VirtualHeap scratchHeap;
    uint64_t emitted = 0;

    /**
     * Sticky: set when the sink throws out of a block delivery. The
     * stream is dead from that point, so later deliveries discard
     * their ops instead of re-poking the sink — emission that happens
     * while the original exception unwinds (Scope destructors calling
     * ret()) must neither overflow the block nor throw a second time.
     */
    bool sinkFailed = false;

    static constexpr uint32_t opBytes = 4;
    static constexpr uint64_t scratchBytes = 2048;

    /** Bytes at each function's start reserved for user emission. */
    static constexpr uint64_t userReserve = 256;
};

} // namespace wcrt

#endif // WCRT_TRACE_TRACER_HH
