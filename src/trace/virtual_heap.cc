#include "trace/virtual_heap.hh"

#include "base/logging.hh"

namespace wcrt {

uint64_t
HeapRegion::addr(uint64_t offset) const
{
    if (offset >= bytes)
        wcrt_panic("region '", name, "' offset ", offset, " out of ",
                   bytes, " bytes");
    return base + offset;
}

uint64_t
HeapRegion::element(uint64_t index, uint64_t stride) const
{
    return addr(index * stride);
}

VirtualHeap::VirtualHeap() = default;

HeapRegion
VirtualHeap::alloc(const std::string &name, uint64_t bytes)
{
    if (bytes == 0)
        wcrt_panic("zero-byte allocation for region '", name, "'");
    uint64_t rounded = (bytes + pageBytes - 1) & ~(pageBytes - 1);
    HeapRegion r;
    r.name = name;
    r.base = cursor;
    r.bytes = rounded;
    cursor += rounded;
    return r;
}

} // namespace wcrt
