/**
 * @file
 * Reusable instruction-emission idioms.
 *
 * Common code shapes (byte compares, copies, hashing, binary search)
 * appear in nearly every workload; centralizing their emission keeps
 * the per-workload kernels readable and the modelled mixes consistent.
 * All helpers emit through the caller's active tracer frame.
 */

#ifndef WCRT_TRACE_IDIOMS_HH
#define WCRT_TRACE_IDIOMS_HH

#include <cstdint>
#include <string_view>

#include "trace/tracer.hh"

namespace wcrt::idioms {

/**
 * memcmp-style loop: compare two byte ranges until a mismatch.
 *
 * @param t Active tracer.
 * @param a First operand base address.
 * @param b Second operand base address.
 * @param compared Bytes actually examined (match length + 1, capped).
 */
void compareBytes(Tracer &t, uint64_t a, uint64_t b, uint64_t compared);

/** memcpy-style loop moving `bytes` in 8-byte chunks. */
void copyBytes(Tracer &t, uint64_t src, uint64_t dst, uint64_t bytes);

/** Byte-wise hash loop over a buffer (FNV-like shape). */
void hashBytes(Tracer &t, uint64_t addr, uint64_t bytes);

/**
 * Tokenizer pass over a text buffer: per byte, load + classify branch;
 * per token, a small amount of bookkeeping.
 *
 * @param bytes Buffer length.
 * @param tokens Number of tokens found (drives bookkeeping count).
 */
void scanTokens(Tracer &t, uint64_t addr, uint64_t bytes,
                uint64_t tokens);

/**
 * Binary search over a sorted array.
 *
 * @param base Array base address.
 * @param elems Element count.
 * @param stride Element size in bytes.
 * @param probes Number of probe steps actually taken (~log2(elems)).
 * @param found Whether the final compare hit.
 */
void binarySearch(Tracer &t, uint64_t base, uint64_t elems,
                  uint64_t stride, uint32_t probes, bool found);

/**
 * Emit the loads+arithmetic of reading `n` doubles from an array and
 * accumulating (dot-product / distance shape): per element one FP
 * address calc, one load, one FP multiply, one FP add.
 */
void fpAccumulate(Tracer &t, uint64_t base, uint64_t n);

} // namespace wcrt::idioms

#endif // WCRT_TRACE_IDIOMS_HH
