/**
 * @file
 * Instruction-mix accounting sink (Figures 1 and 2).
 *
 * Counts dynamic ops by kind and integer ops by purpose, and derives
 * the ratios the paper reports: branch %, integer %, FP %, load/store
 * %, the data-movement share (loads + stores + address arithmetic) and
 * the same including branches.
 */

#ifndef WCRT_TRACE_MIX_COUNTER_HH
#define WCRT_TRACE_MIX_COUNTER_HH

#include <array>
#include <cstdint>

#include "trace/microop.hh"

namespace wcrt {

/** Aggregated instruction-mix counts and derived ratios. */
class MixCounter : public TraceSink
{
  public:
    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: histograms the block's kinds[] / purposes[]
     * arrays into flat tallies and commits once. The scalar loop is
     * written to autovectorize; on x86-64 an AVX2 compare/popcount
     * path takes over at runtime when the CPU supports it.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** Total dynamic ops observed. */
    uint64_t total() const { return totalOps; }

    /** Raw count for one kind. */
    uint64_t count(OpKind k) const;

    /** @name Mix ratios in [0, 1] (Figure 1). */
    /** @{ */
    double branchRatio() const;     //!< all control transfers
    double loadRatio() const;
    double storeRatio() const;
    double integerRatio() const;    //!< integer ALU/mul/div
    double fpRatio() const;         //!< FP ALU/mul/div
    double otherRatio() const;
    /** @} */

    /** @name Integer-purpose breakdown of integer ALU ops (Figure 2). */
    /** @{ */
    double intAddressShare() const;
    double fpAddressShare() const;
    double otherIntShare() const;
    /** @} */

    /**
     * Fraction of all instructions that move data: loads, stores and
     * address-calculation integer ops (the paper reports ~73%).
     */
    double dataMovementRatio() const;

    /** Data movement plus branches (the paper's 92% headline). */
    double dataMovementWithBranchRatio() const;

    /** Merge counts from another counter. */
    void merge(const MixCounter &other);

    /**
     * Commit tallies a caller accumulated while walking a block
     * itself. Batch-native sinks that already branch on op kind per
     * op (SimCpu's event loop) use this to fold mix counting into
     * their own pass instead of re-reading the block. `compute_int`
     * must follow the consume() convention: every IntAlu, IntMul and
     * IntDiv op except the two address flavours.
     */
    void
    addTallies(const std::array<uint64_t, numOpKinds> &kinds,
               uint64_t int_addr, uint64_t fp_addr,
               uint64_t compute_int, uint64_t total)
    {
        for (size_t k = 0; k < numOpKinds; ++k)
            kindCounts[k] += kinds[k];
        intAddressOps += int_addr;
        fpAddressOps += fp_addr;
        computeIntOps += compute_int;
        totalOps += total;
    }

  private:
    std::array<uint64_t, numOpKinds> kindCounts{};
    uint64_t intAddressOps = 0;
    uint64_t fpAddressOps = 0;
    uint64_t computeIntOps = 0;
    uint64_t totalOps = 0;
};

} // namespace wcrt

#endif // WCRT_TRACE_MIX_COUNTER_HH
