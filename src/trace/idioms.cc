#include "trace/idioms.hh"

#include <algorithm>

namespace wcrt::idioms {

void
compareBytes(Tracer &t, uint64_t a, uint64_t b, uint64_t compared)
{
    // Compiled memcmp compares word-at-a-time; short compares (the
    // common case — most key pairs diverge in the first word) are a
    // single predictable iteration.
    uint64_t words = compared / 8 + 1;
    t.loop(words, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 2);
        t.load(a + i * 8, 8);
        t.load(b + i * 8, 8);
        t.intAlu(IntPurpose::Compute, 1);
    });
}

void
copyBytes(Tracer &t, uint64_t src, uint64_t dst, uint64_t bytes)
{
    uint64_t words = (bytes + 7) / 8;
    t.loop(words, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 2);
        t.load(src + i * 8, 8);
        t.store(dst + i * 8, 8);
    });
}

void
hashBytes(Tracer &t, uint64_t addr, uint64_t bytes)
{
    // Word-at-a-time hashing (how production hash functions consume
    // short keys): one predictable iteration for keys up to 8 bytes.
    uint64_t words = bytes / 8 + 1;
    t.loop(words, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 1);
        t.load(addr + i * 8, 8);
        t.intAlu(IntPurpose::Compute, 1);
        t.intMul(1);
    });
}

void
scanTokens(Tracer &t, uint64_t addr, uint64_t bytes, uint64_t tokens)
{
    // The per-byte classify loop: load, compare, branch on delimiter.
    // Emitting one iteration per byte would dominate run time for large
    // corpora, so the loop models 8-byte strides with the same per-byte
    // op balance compressed into wider steps.
    uint64_t steps = bytes / 8 + 1;
    uint64_t token_every = tokens ? std::max<uint64_t>(steps / tokens, 1)
                                  : steps + 1;
    t.loop(steps, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 1);
        t.load(addr + i * 8, 8);
        t.intAlu(IntPurpose::Compute, 2);
        bool token_end = (i % token_every) == token_every - 1;
        t.branchForward(token_end, 24);
        if (token_end)
            t.intAlu(IntPurpose::Compute, 3);
    });
}

void
binarySearch(Tracer &t, uint64_t base, uint64_t elems, uint64_t stride,
             uint32_t probes, bool found)
{
    uint64_t lo = 0;
    uint64_t hi = elems;
    t.loop(probes, [&](uint64_t i) {
        uint64_t mid = (lo + hi) / 2;
        t.intAlu(IntPurpose::IntAddress, 2);
        t.load(base + mid * stride, 8);
        t.intAlu(IntPurpose::Compute, 1);
        // Direction alternates with the probe path; model with a
        // data-dependent branch.
        bool go_left = ((mid ^ i) & 1) != 0;
        t.branchForward(go_left, 16);
        if (go_left)
            hi = mid;
        else
            lo = mid + 1;
        if (hi <= lo)
            hi = lo + 1;
    });
    t.branchForward(found, 16);
}

void
fpAccumulate(Tracer &t, uint64_t base, uint64_t n)
{
    t.loop(n, [&](uint64_t i) {
        t.intAlu(IntPurpose::FpAddress, 1);
        t.load(base + i * 8, 8);
        t.fpMul(1);
        t.fpAlu(1);
    });
}

} // namespace wcrt::idioms
