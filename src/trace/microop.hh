/**
 * @file
 * The abstract micro-op stream every workload emits.
 *
 * The paper measures retired-instruction behaviour with hardware
 * counters; this reproduction replaces the hardware with a trace-driven
 * model, and MicroOp is the trace record. Workload kernels and the
 * software-stack engines emit one MicroOp per modelled dynamic
 * instruction while they process real data, so instruction mix, branch
 * outcomes and memory reuse are data-dependent rather than synthetic.
 */

#ifndef WCRT_TRACE_MICROOP_HH
#define WCRT_TRACE_MICROOP_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wcrt {

/** Dynamic instruction classes (Figure 1's breakdown). */
enum class OpKind : uint8_t {
    IntAlu,          //!< integer add/sub/logic/compare
    IntMul,          //!< integer multiply
    IntDiv,          //!< integer divide
    FpAlu,           //!< floating point add/sub/compare
    FpMul,           //!< floating point multiply
    FpDiv,           //!< floating point divide/sqrt
    Load,            //!< memory read
    Store,           //!< memory write
    BranchCond,      //!< conditional direct branch
    BranchUncond,    //!< unconditional direct jump
    BranchIndirect,  //!< indirect jump (switch tables, virtual calls)
    Call,            //!< direct call
    CallIndirect,    //!< indirect call (function pointer / vtable)
    Return,          //!< return
    Other,           //!< fences, system, no-ops
};

/** Number of OpKind values (for counter arrays). */
inline constexpr size_t numOpKinds = 15;

/**
 * What an integer ALU op is computing — the paper's Figure 2 splits
 * integer instructions into integer-address calculation, FP-address
 * calculation and other computation.
 */
enum class IntPurpose : uint8_t {
    None,        //!< not an integer ALU op
    IntAddress,  //!< address arithmetic for integer/byte data
    FpAddress,   //!< address arithmetic for floating-point data
    Compute,     //!< data computation or branch-condition evaluation
};

/** True for the three branch kinds. */
constexpr bool
isBranch(OpKind k)
{
    return k == OpKind::BranchCond || k == OpKind::BranchUncond ||
           k == OpKind::BranchIndirect;
}

/** True for control-transfer ops of any kind (branch/call/return). */
constexpr bool
isControl(OpKind k)
{
    return isBranch(k) || k == OpKind::Call ||
           k == OpKind::CallIndirect || k == OpKind::Return;
}

/** True for FP arithmetic. */
constexpr bool
isFp(OpKind k)
{
    return k == OpKind::FpAlu || k == OpKind::FpMul || k == OpKind::FpDiv;
}

/** True for integer arithmetic. */
constexpr bool
isInt(OpKind k)
{
    return k == OpKind::IntAlu || k == OpKind::IntMul ||
           k == OpKind::IntDiv;
}

/**
 * One modelled dynamic instruction.
 */
struct MicroOp
{
    OpKind kind = OpKind::Other;
    IntPurpose purpose = IntPurpose::None;
    uint64_t pc = 0;        //!< code address (from the CodeLayout)
    uint8_t size = 4;       //!< instruction bytes at that pc
    uint64_t memAddr = 0;   //!< effective address for Load/Store
    uint8_t memSize = 0;    //!< access width in bytes (0 = no access)
    uint64_t target = 0;    //!< control-transfer destination
    bool taken = false;     //!< conditional-branch outcome
};

/**
 * Default capacity of an OpBlock: 4096 ops ≈ 160 KB, large enough to
 * amortize a virtual dispatch down to noise, small enough that a block
 * plus a hot sink's tables stays cache-resident while it drains.
 */
inline constexpr size_t defaultOpBlockOps = 4096;

/**
 * A fixed-capacity, reusable buffer of MicroOps — the unit of
 * transport between emitters and sinks.
 *
 * Emitters (Tracer, TraceReader) fill a block and hand the whole thing
 * to TraceSink::consumeBatch in one virtual call instead of one call
 * per op. The storage is allocated once and recycled with clear(), so
 * steady-state emission performs no allocation.
 */
class OpBlock
{
  public:
    explicit OpBlock(size_t capacity = defaultOpBlockOps)
        : buf(capacity ? capacity : 1)
    {
    }

    /** Append one op; the caller must check full() first. */
    void push(const MicroOp &op) { buf[used++] = op; }

    /** Drop the contents, keep the storage. */
    void clear() { used = 0; }

    const MicroOp *data() const { return buf.data(); }
    size_t size() const { return used; }
    size_t capacity() const { return buf.size(); }
    bool empty() const { return used == 0; }
    bool full() const { return used == buf.size(); }

    /** Span view over the filled prefix. */
    std::span<const MicroOp> span() const { return {buf.data(), used}; }

    const MicroOp &operator[](size_t i) const { return buf[i]; }

    const MicroOp *begin() const { return buf.data(); }
    const MicroOp *end() const { return buf.data() + used; }

  private:
    std::vector<MicroOp> buf;  //!< sized to capacity once, never grown
    size_t used = 0;
};

/**
 * Consumer of a micro-op stream. Implementations include the mix
 * counter (Figures 1-2), the micro-architecture simulator (Figures
 * 3-5) and the cache-capacity sweeper (Figures 6-9).
 *
 * Transport contract: emitters deliver ops either one at a time via
 * consume() or in blocks via consumeBatch(). The default
 * consumeBatch() loops over consume(), so a sink that only implements
 * consume() observes the exact per-op sequence either way; hot sinks
 * override consumeBatch() with a tight loop and must produce
 * bit-identical state for any partitioning of the same stream
 * (enforced by tests/batch_dispatch_test.cc).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one dynamic instruction. */
    virtual void consume(const MicroOp &op) = 0;

    /**
     * Consume `count` dynamic instructions in emission order. The
     * default preserves per-op semantics for sinks that don't
     * override it.
     */
    virtual void
    consumeBatch(const MicroOp *ops, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            consume(ops[i]);
    }

    /** Convenience: consume a whole block. */
    void consumeBlock(const OpBlock &block)
    {
        consumeBatch(block.data(), block.size());
    }
};

/** A sink that fans one stream out to several consumers. */
class TeeSink : public TraceSink
{
  public:
    /** Attach another downstream sink; not owned. */
    void addSink(TraceSink *sink) { sinks.push_back(sink); }

    void
    consume(const MicroOp &op) override
    {
        for (auto *s : sinks)
            s->consume(op);
    }

    /** Whole blocks go to each downstream sink — no per-op fan-out. */
    void
    consumeBatch(const MicroOp *ops, size_t count) override
    {
        for (auto *s : sinks)
            s->consumeBatch(ops, count);
    }

  private:
    std::vector<TraceSink *> sinks;
};

} // namespace wcrt

#endif // WCRT_TRACE_MICROOP_HH
