/**
 * @file
 * The abstract micro-op stream every workload emits.
 *
 * The paper measures retired-instruction behaviour with hardware
 * counters; this reproduction replaces the hardware with a trace-driven
 * model, and MicroOp is the trace record. Workload kernels and the
 * software-stack engines emit one MicroOp per modelled dynamic
 * instruction while they process real data, so instruction mix, branch
 * outcomes and memory reuse are data-dependent rather than synthetic.
 */

#ifndef WCRT_TRACE_MICROOP_HH
#define WCRT_TRACE_MICROOP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/worker_pool.hh"

namespace wcrt {

/** Dynamic instruction classes (Figure 1's breakdown). */
enum class OpKind : uint8_t {
    IntAlu,          //!< integer add/sub/logic/compare
    IntMul,          //!< integer multiply
    IntDiv,          //!< integer divide
    FpAlu,           //!< floating point add/sub/compare
    FpMul,           //!< floating point multiply
    FpDiv,           //!< floating point divide/sqrt
    Load,            //!< memory read
    Store,           //!< memory write
    BranchCond,      //!< conditional direct branch
    BranchUncond,    //!< unconditional direct jump
    BranchIndirect,  //!< indirect jump (switch tables, virtual calls)
    Call,            //!< direct call
    CallIndirect,    //!< indirect call (function pointer / vtable)
    Return,          //!< return
    Other,           //!< fences, system, no-ops
};

/** Number of OpKind values (for counter arrays). */
inline constexpr size_t numOpKinds = 15;

/**
 * What an integer ALU op is computing — the paper's Figure 2 splits
 * integer instructions into integer-address calculation, FP-address
 * calculation and other computation.
 */
enum class IntPurpose : uint8_t {
    None,        //!< not an integer ALU op
    IntAddress,  //!< address arithmetic for integer/byte data
    FpAddress,   //!< address arithmetic for floating-point data
    Compute,     //!< data computation or branch-condition evaluation
};

/** True for the three branch kinds. */
constexpr bool
isBranch(OpKind k)
{
    return k == OpKind::BranchCond || k == OpKind::BranchUncond ||
           k == OpKind::BranchIndirect;
}

/** True for control-transfer ops of any kind (branch/call/return). */
constexpr bool
isControl(OpKind k)
{
    return isBranch(k) || k == OpKind::Call ||
           k == OpKind::CallIndirect || k == OpKind::Return;
}

/** True for FP arithmetic. */
constexpr bool
isFp(OpKind k)
{
    return k == OpKind::FpAlu || k == OpKind::FpMul || k == OpKind::FpDiv;
}

/** True for integer arithmetic. */
constexpr bool
isInt(OpKind k)
{
    return k == OpKind::IntAlu || k == OpKind::IntMul ||
           k == OpKind::IntDiv;
}

/**
 * One modelled dynamic instruction.
 */
struct MicroOp
{
    OpKind kind = OpKind::Other;
    IntPurpose purpose = IntPurpose::None;
    uint64_t pc = 0;        //!< code address (from the CodeLayout)
    uint8_t size = 4;       //!< instruction bytes at that pc
    uint64_t memAddr = 0;   //!< effective address for Load/Store
    uint8_t memSize = 0;    //!< access width in bytes (0 = no access)
    uint64_t target = 0;    //!< control-transfer destination
    bool taken = false;     //!< conditional-branch outcome
};

/**
 * Default capacity of an OpBlock: 4096 ops ≈ 112 KB across the field
 * arrays, large enough to amortize a virtual dispatch down to noise,
 * small enough that a block plus a hot sink's tables stays
 * cache-resident while it drains.
 */
inline constexpr size_t defaultOpBlockOps = 4096;

/**
 * Read-only struct-of-arrays view of a run of micro-ops.
 *
 * Each MicroOp field lives in its own contiguous array, so a sink that
 * reads a single field (the mix counter reads kinds[], the footprint
 * sweep mostly memAddrs[]) streams exactly that array through cache
 * instead of dragging whole 40-byte records. Sinks that want whole
 * records use operator[], which materializes one MicroOp from the
 * arrays — that shim keeps per-op code compiling unchanged.
 *
 * A view does not own storage; it stays valid only while the OpBlock
 * (or arrays) it points into are alive and unmodified.
 */
struct OpBlockView
{
    const OpKind *kinds = nullptr;
    const IntPurpose *purposes = nullptr;
    const uint64_t *pcs = nullptr;
    const uint8_t *sizes = nullptr;
    const uint64_t *memAddrs = nullptr;
    const uint8_t *memSizes = nullptr;
    const uint64_t *targets = nullptr;
    const uint8_t *takens = nullptr;  //!< 0/1; not vector<bool>
    size_t count = 0;

    bool empty() const { return count == 0; }
    size_t size() const { return count; }

    /** Materialize op `i` from the field arrays. */
    MicroOp
    operator[](size_t i) const
    {
        MicroOp op;
        op.kind = kinds[i];
        op.purpose = purposes[i];
        op.pc = pcs[i];
        op.size = sizes[i];
        op.memAddr = memAddrs[i];
        op.memSize = memSizes[i];
        op.target = targets[i];
        op.taken = takens[i] != 0;
        return op;
    }

    /** Zero-copy sub-view of `len` ops starting at `offset`. */
    OpBlockView
    slice(size_t offset, size_t len) const
    {
        OpBlockView v;
        v.kinds = kinds + offset;
        v.purposes = purposes + offset;
        v.pcs = pcs + offset;
        v.sizes = sizes + offset;
        v.memAddrs = memAddrs + offset;
        v.memSizes = memSizes + offset;
        v.targets = targets + offset;
        v.takens = takens + offset;
        v.count = len;
        return v;
    }
};

/**
 * A fixed-capacity, reusable struct-of-arrays buffer of micro-ops —
 * the unit of transport between emitters and sinks.
 *
 * Emitters (Tracer, TraceReader) fill a block and hand its view() to
 * TraceSink::consumeBatch in one virtual call instead of one call per
 * op. The storage is allocated once and recycled with clear(), so
 * steady-state emission performs no allocation. The trace decoder
 * writes straight into the field arrays via the mutable raw*()
 * pointers and then publishes the fill with setUsed().
 */
class OpBlock
{
  public:
    explicit OpBlock(size_t capacity = defaultOpBlockOps)
        : cap(capacity ? capacity : 1), kinds(cap), purposes(cap),
          pcs(cap), sizes(cap), memAddrs(cap), memSizes(cap),
          targets(cap), takens(cap)
    {
    }

    /** Append one op, scattering fields; the caller checks full(). */
    void
    push(const MicroOp &op)
    {
        kinds[used] = op.kind;
        purposes[used] = op.purpose;
        pcs[used] = op.pc;
        sizes[used] = op.size;
        memAddrs[used] = op.memAddr;
        memSizes[used] = op.memSize;
        targets[used] = op.target;
        takens[used] = op.taken ? 1 : 0;
        ++used;
    }

    /** Drop the contents, keep the storage. */
    void clear() { used = 0; }

    size_t size() const { return used; }
    size_t capacity() const { return cap; }
    bool empty() const { return used == 0; }
    bool full() const { return used == cap; }

    /** SoA view over the filled prefix. */
    OpBlockView
    view() const
    {
        OpBlockView v;
        v.kinds = kinds.data();
        v.purposes = purposes.data();
        v.pcs = pcs.data();
        v.sizes = sizes.data();
        v.memAddrs = memAddrs.data();
        v.memSizes = memSizes.data();
        v.targets = targets.data();
        v.takens = takens.data();
        v.count = used;
        return v;
    }

    /** Materialize op `i` (per-op accessor shim). */
    MicroOp operator[](size_t i) const { return view()[i]; }

    /**
     * Mutable field arrays for decoders that fill the block directly;
     * after writing `n` ops into every array, publish with setUsed(n).
     */
    OpKind *rawKinds() { return kinds.data(); }
    IntPurpose *rawPurposes() { return purposes.data(); }
    uint64_t *rawPcs() { return pcs.data(); }
    uint8_t *rawSizes() { return sizes.data(); }
    uint64_t *rawMemAddrs() { return memAddrs.data(); }
    uint8_t *rawMemSizes() { return memSizes.data(); }
    uint64_t *rawTargets() { return targets.data(); }
    uint8_t *rawTakens() { return takens.data(); }
    void setUsed(size_t n) { used = n; }

  private:
    size_t cap;  //!< fixed at construction, never grown
    std::vector<OpKind> kinds;
    std::vector<IntPurpose> purposes;
    std::vector<uint64_t> pcs;
    std::vector<uint8_t> sizes;
    std::vector<uint64_t> memAddrs;
    std::vector<uint8_t> memSizes;
    std::vector<uint64_t> targets;
    std::vector<uint8_t> takens;
    size_t used = 0;
};

/**
 * Consumer of a micro-op stream. Implementations include the mix
 * counter (Figures 1-2), the micro-architecture simulator (Figures
 * 3-5) and the cache-capacity sweeper (Figures 6-9).
 *
 * Transport contract: emitters deliver ops either one at a time via
 * consume() or in struct-of-arrays blocks via consumeBatch(). The
 * default consumeBatch() materializes each op and loops over
 * consume(), so a sink that only implements consume() observes the
 * exact per-op sequence either way; hot sinks override consumeBatch()
 * with a tight loop over the field arrays and must produce
 * bit-identical state for any partitioning of the same stream
 * (enforced by tests/batch_dispatch_test.cc).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one dynamic instruction. */
    virtual void consume(const MicroOp &op) = 0;

    /**
     * Consume `ops.count` dynamic instructions in emission order. The
     * default preserves per-op semantics for sinks that don't
     * override it.
     */
    virtual void
    consumeBatch(const OpBlockView &ops)
    {
        for (size_t i = 0; i < ops.count; ++i)
            consume(ops[i]);
    }

    /** Convenience: consume a whole block. */
    void consumeBlock(const OpBlock &block) { consumeBatch(block.view()); }

    /**
     * Convenience for callers holding an array-of-structs run: chunks
     * the ops through a reused thread-local OpBlock and delivers them
     * via consumeBatch(). Runs longer than the scratch capacity arrive
     * as several batches — equivalent by the partitioning contract.
     */
    void consumeOps(const MicroOp *ops, size_t count);

    /**
     * Settle any asynchronously in-flight ops. Pipelined sinks
     * (TeeSink with a pool) may return from consumeBatch() before
     * their children have consumed the block; a caller that is about
     * to read downstream state must drain() first. Sinks that wrap
     * other sinks forward the call; synchronous sinks need nothing.
     * Emission-side entry points (Tracer::flush, TraceReader's
     * replayInto) drain on the caller's behalf.
     */
    virtual void drain() {}
};

/**
 * A sink that fans one stream out to several consumers.
 *
 * By default children are fed sequentially on the calling thread. With
 * `workers > 0` the fan-out runs on the process-wide
 * WorkerPool::shared() as bounded-claim tickets (at most `workers`
 * pool threads per block — the process owns exactly one pool),
 * double-buffered: consumeBatch() copies the block into one of two
 * internal staging slots, submits the fan-out, and returns while the
 * children are still draining — the emitter fills block N+1 while the
 * pool drains block N, so slow children (SimCpu, the footprint sweep)
 * hide behind fast ones and behind emission itself.
 * A per-block completion ticket replaces the old full barrier: block
 * N is only submitted after every child finished block N-1, so each
 * child still observes the exact per-op sequence in order.
 *
 * Children registered with `concurrentSafe = false` are always fed
 * synchronously by the calling thread. Because the pipelined path
 * returns early, read downstream state only after drain() — the
 * emission-side entry points (Tracer::flush, TraceReader::replayInto)
 * do this automatically.
 *
 * The TeeSink itself is not re-entrant: deliver to it from one thread.
 */
class TeeSink : public TraceSink
{
  public:
    /**
     * `workers` = shared-pool claim budget per staged block; 0 = fully
     * sequential fan-out on the calling thread.
     */
    explicit TeeSink(unsigned workers = 0);
    ~TeeSink() override;

    TeeSink(const TeeSink &) = delete;
    TeeSink &operator=(const TeeSink &) = delete;

    /**
     * Attach another downstream sink; not owned. Children flagged
     * `concurrentSafe = false` never leave the calling thread.
     */
    void addSink(TraceSink *sink, bool concurrentSafe = true);

    /** Per-op fan-out; settles in-flight blocks first. */
    void consume(const MicroOp &op) override;

    /** Whole blocks go to each downstream sink — no per-op fan-out. */
    void consumeBatch(const OpBlockView &ops) override;

    /** Wait for in-flight blocks, then drain the children. */
    void drain() override;

  private:
    std::vector<TraceSink *> safeSinks;  //!< may run on pool threads
    std::vector<TraceSink *> seqSinks;   //!< calling thread only

    // Double buffer: consumeBatch copies the incoming view into
    // stage[nextSlot] and tracks the outstanding fan-out per slot.
    // inFlight[s] is the bounded-claim ticket (on the shared pool)
    // for the batch staged in stage[s]; waiting it both releases the
    // storage for reuse and acts as the previous block's completion
    // latch.
    unsigned poolClaims = 0;  //!< pool-thread budget per block
    OpBlock stage[2];
    WorkerPool::Ticket inFlight[2];
    size_t nextSlot = 0;
};

} // namespace wcrt

#endif // WCRT_TRACE_MICROOP_HH
