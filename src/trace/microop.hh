/**
 * @file
 * The abstract micro-op stream every workload emits.
 *
 * The paper measures retired-instruction behaviour with hardware
 * counters; this reproduction replaces the hardware with a trace-driven
 * model, and MicroOp is the trace record. Workload kernels and the
 * software-stack engines emit one MicroOp per modelled dynamic
 * instruction while they process real data, so instruction mix, branch
 * outcomes and memory reuse are data-dependent rather than synthetic.
 */

#ifndef WCRT_TRACE_MICROOP_HH
#define WCRT_TRACE_MICROOP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcrt {

/** Dynamic instruction classes (Figure 1's breakdown). */
enum class OpKind : uint8_t {
    IntAlu,          //!< integer add/sub/logic/compare
    IntMul,          //!< integer multiply
    IntDiv,          //!< integer divide
    FpAlu,           //!< floating point add/sub/compare
    FpMul,           //!< floating point multiply
    FpDiv,           //!< floating point divide/sqrt
    Load,            //!< memory read
    Store,           //!< memory write
    BranchCond,      //!< conditional direct branch
    BranchUncond,    //!< unconditional direct jump
    BranchIndirect,  //!< indirect jump (switch tables, virtual calls)
    Call,            //!< direct call
    CallIndirect,    //!< indirect call (function pointer / vtable)
    Return,          //!< return
    Other,           //!< fences, system, no-ops
};

/** Number of OpKind values (for counter arrays). */
inline constexpr size_t numOpKinds = 15;

/**
 * What an integer ALU op is computing — the paper's Figure 2 splits
 * integer instructions into integer-address calculation, FP-address
 * calculation and other computation.
 */
enum class IntPurpose : uint8_t {
    None,        //!< not an integer ALU op
    IntAddress,  //!< address arithmetic for integer/byte data
    FpAddress,   //!< address arithmetic for floating-point data
    Compute,     //!< data computation or branch-condition evaluation
};

/** True for the three branch kinds. */
constexpr bool
isBranch(OpKind k)
{
    return k == OpKind::BranchCond || k == OpKind::BranchUncond ||
           k == OpKind::BranchIndirect;
}

/** True for control-transfer ops of any kind (branch/call/return). */
constexpr bool
isControl(OpKind k)
{
    return isBranch(k) || k == OpKind::Call ||
           k == OpKind::CallIndirect || k == OpKind::Return;
}

/** True for FP arithmetic. */
constexpr bool
isFp(OpKind k)
{
    return k == OpKind::FpAlu || k == OpKind::FpMul || k == OpKind::FpDiv;
}

/** True for integer arithmetic. */
constexpr bool
isInt(OpKind k)
{
    return k == OpKind::IntAlu || k == OpKind::IntMul ||
           k == OpKind::IntDiv;
}

/**
 * One modelled dynamic instruction.
 */
struct MicroOp
{
    OpKind kind = OpKind::Other;
    IntPurpose purpose = IntPurpose::None;
    uint64_t pc = 0;        //!< code address (from the CodeLayout)
    uint8_t size = 4;       //!< instruction bytes at that pc
    uint64_t memAddr = 0;   //!< effective address for Load/Store
    uint8_t memSize = 0;    //!< access width in bytes (0 = no access)
    uint64_t target = 0;    //!< control-transfer destination
    bool taken = false;     //!< conditional-branch outcome
};

/**
 * Consumer of a micro-op stream. Implementations include the mix
 * counter (Figures 1-2), the micro-architecture simulator (Figures
 * 3-5) and the cache-capacity sweeper (Figures 6-9).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one dynamic instruction. */
    virtual void consume(const MicroOp &op) = 0;
};

/** A sink that fans one stream out to several consumers. */
class TeeSink : public TraceSink
{
  public:
    /** Attach another downstream sink; not owned. */
    void addSink(TraceSink *sink) { sinks.push_back(sink); }

    void
    consume(const MicroOp &op) override
    {
        for (auto *s : sinks)
            s->consume(op);
    }

  private:
    std::vector<TraceSink *> sinks;
};

} // namespace wcrt

#endif // WCRT_TRACE_MICROOP_HH
