#include "trace/sampling.hh"

#include <algorithm>

#include "base/logging.hh"

namespace wcrt {

std::vector<SampleWindow>
paperSampleWindows()
{
    // Map 0-1%, 50-51%, 99-100%, reduce 0-1%, reduce 99-100%: with the
    // map phase roughly the first 60% of a job's trace and reduce the
    // last 40%, the five windows land at these absolute positions.
    return {
        {0.00, 0.01},  // map start
        {0.30, 0.31},  // map middle
        {0.59, 0.60},  // map end
        {0.60, 0.61},  // reduce start
        {0.99, 1.00},  // reduce end
    };
}

SamplingSink::SamplingSink(TraceSink &downstream, uint64_t expected_ops,
                           std::vector<SampleWindow> windows)
    : downstream(downstream)
{
    if (expected_ops == 0)
        wcrt_fatal("sampling needs a non-zero expected length");
    double prev_end = 0.0;
    uint64_t prev_hi = 0;
    for (const auto &w : windows) {
        if (!(w.begin >= prev_end && w.end > w.begin && w.end <= 1.0))
            wcrt_fatal("sample windows must be sorted, disjoint and "
                       "within [0, 1]");
        prev_end = w.end;
        auto lo = static_cast<uint64_t>(w.begin *
                                        static_cast<double>(expected_ops));
        auto hi = static_cast<uint64_t>(w.end *
                                        static_cast<double>(expected_ops));
        // Tiny windows or small expected_ops can collapse several
        // windows onto the same integer index. Keep every window at
        // least one op wide, push it past the previous window's end so
        // the integer ranges stay disjoint, and clamp to the expected
        // length; a window squeezed entirely past the end vanishes
        // (it has no representable op).
        if (hi < lo + 1)
            hi = lo + 1;
        if (lo < prev_hi)
            lo = prev_hi;
        if (hi < lo + 1)
            hi = lo + 1;
        if (hi > expected_ops)
            hi = expected_ops;
        if (lo >= hi)
            continue;
        ranges.emplace_back(lo, hi);
        prev_hi = hi;
    }
    // Re-validate after conversion: both delivery paths assume the
    // integer ranges are non-empty, sorted and disjoint.
    for (size_t r = 0; r < ranges.size(); ++r) {
        bool ordered = ranges[r].first < ranges[r].second &&
                       ranges[r].second <= expected_ops &&
                       (r == 0 || ranges[r - 1].second <= ranges[r].first);
        if (!ordered)
            wcrt_fatal("sample window conversion produced an invalid "
                       "integer range");
    }
}

void
SamplingSink::consume(const MicroOp &op)
{
    uint64_t index = seen++;
    while (cursor < ranges.size() && index >= ranges[cursor].second)
        ++cursor;
    if (cursor < ranges.size() && index >= ranges[cursor].first) {
        ++forwarded;
        downstream.consume(op);
    }
}

void
SamplingSink::consumeBatch(const OpBlockView &ops)
{
    size_t count = ops.count;
    uint64_t base = seen;
    seen += count;
    size_t i = 0;
    while (i < count && cursor < ranges.size()) {
        uint64_t index = base + i;
        // Retire ranges the stream has passed, exactly as the per-op
        // path would at this index.
        while (cursor < ranges.size() && index >= ranges[cursor].second)
            ++cursor;
        if (cursor == ranges.size())
            break;
        auto [lo, hi] = ranges[cursor];
        if (index < lo) {
            // Jump to the window start (or the end of this block).
            i += static_cast<size_t>(
                std::min<uint64_t>(lo - index, count - i));
            continue;
        }
        // Forward the contiguous in-window run in one call.
        auto run = static_cast<size_t>(
            std::min<uint64_t>(hi - index, count - i));
        downstream.consumeBatch(ops.slice(i, run));
        forwarded += run;
        i += run;
    }
}

double
SamplingSink::sampledFraction()
const
{
    return seen ? static_cast<double>(forwarded) /
                      static_cast<double>(seen)
                : 0.0;
}

} // namespace wcrt
