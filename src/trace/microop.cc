/**
 * @file
 * Out-of-line pieces of the micro-op transport: the AoS convenience
 * packer and the parallel TeeSink fan-out.
 */

#include "trace/microop.hh"

namespace wcrt {

void
TraceSink::consumeOps(const MicroOp *ops, size_t count)
{
    OpBlock block(count);
    for (size_t i = 0; i < count; ++i)
        block.push(ops[i]);
    consumeBatch(block.view());
}

TeeSink::TeeSink(unsigned workers)
{
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        pool.emplace_back([this] { workerLoop(); });
}

TeeSink::~TeeSink()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    workReady.notify_all();
    for (auto &t : pool)
        t.join();
}

void
TeeSink::addSink(TraceSink *sink, bool concurrentSafe)
{
    if (concurrentSafe)
        safeSinks.push_back(sink);
    else
        seqSinks.push_back(sink);
}

bool
TeeSink::claimChild(uint64_t gen, size_t &idx)
{
    // The claim counter carries the generation in its upper bits so a
    // worker still spinning on the previous batch can never steal an
    // index from the next one: a stale claimer sees either its own
    // generation exhausted or a foreign generation, and backs off
    // without touching the counter.
    uint64_t v = claimState.load(std::memory_order_acquire);
    while ((v >> claimIndexBits) == (gen & claimGenMask) &&
           (v & claimIndexMask) < safeSinks.size()) {
        if (claimState.compare_exchange_weak(v, v + 1,
                                             std::memory_order_acq_rel)) {
            idx = v & claimIndexMask;
            return true;
        }
    }
    return false;
}

void
TeeSink::consumeBatch(const OpBlockView &ops)
{
    if (pool.empty() || safeSinks.size() <= 1) {
        for (auto *s : safeSinks)
            s->consumeBatch(ops);
        for (auto *s : seqSinks)
            s->consumeBatch(ops);
        return;
    }

    uint64_t gen;
    {
        std::lock_guard<std::mutex> lock(mtx);
        current = &ops;
        gen = ++generation;
        remaining.store(safeSinks.size(), std::memory_order_relaxed);
        claimState.store((gen & claimGenMask) << claimIndexBits,
                         std::memory_order_release);
    }
    workReady.notify_all();

    // The calling thread owns the non-thread-safe children and then
    // helps drain the shared claim queue instead of idling.
    for (auto *s : seqSinks)
        s->consumeBatch(ops);
    size_t idx;
    while (claimChild(gen, idx)) {
        safeSinks[idx]->consumeBatch(ops);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
    }

    // Full barrier: the emitter reuses the block as soon as we return.
    std::unique_lock<std::mutex> lock(mtx);
    workDone.wait(lock, [this] {
        return remaining.load(std::memory_order_acquire) == 0;
    });
    current = nullptr;
}

void
TeeSink::workerLoop()
{
    uint64_t seen = 0;
    while (true) {
        const OpBlockView *ops = nullptr;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workReady.wait(lock, [this, seen] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            ops = current;
        }
        size_t idx;
        while (claimChild(seen, idx)) {
            safeSinks[idx]->consumeBatch(*ops);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(mtx);
                workDone.notify_all();
            }
        }
    }
}

} // namespace wcrt
