/**
 * @file
 * Out-of-line pieces of the micro-op transport: the AoS convenience
 * packer and the double-buffered TeeSink fan-out.
 */

#include "trace/microop.hh"

#include <algorithm>
#include <cstring>

namespace wcrt {

void
TraceSink::consumeOps(const MicroOp *ops, size_t count)
{
    // One scratch block per thread, allocated once and reused, so the
    // compatibility path stops churning the allocator when replay
    // loops call it per run. Capped at the default block size: longer
    // runs arrive as several batches, which the partitioning contract
    // makes equivalent.
    static thread_local OpBlock scratch(defaultOpBlockOps);
    for (size_t i = 0; i < count; i += scratch.capacity()) {
        size_t n = std::min(scratch.capacity(), count - i);
        scratch.clear();
        for (size_t j = 0; j < n; ++j)
            scratch.push(ops[i + j]);
        consumeBatch(scratch.view());
    }
}

namespace {

/** Copy a view's arrays into a block, regrowing it if undersized. */
void
copyInto(OpBlock &dst, const OpBlockView &src)
{
    if (dst.capacity() < src.count)
        dst = OpBlock(src.count);
    std::memcpy(dst.rawKinds(), src.kinds, src.count * sizeof(OpKind));
    std::memcpy(dst.rawPurposes(), src.purposes,
                src.count * sizeof(IntPurpose));
    std::memcpy(dst.rawPcs(), src.pcs, src.count * sizeof(uint64_t));
    std::memcpy(dst.rawSizes(), src.sizes, src.count * sizeof(uint8_t));
    std::memcpy(dst.rawMemAddrs(), src.memAddrs,
                src.count * sizeof(uint64_t));
    std::memcpy(dst.rawMemSizes(), src.memSizes,
                src.count * sizeof(uint8_t));
    std::memcpy(dst.rawTargets(), src.targets,
                src.count * sizeof(uint64_t));
    std::memcpy(dst.rawTakens(), src.takens, src.count * sizeof(uint8_t));
    dst.setUsed(src.count);
}

} // namespace

TeeSink::TeeSink(unsigned workers) : poolClaims(workers) {}

TeeSink::~TeeSink()
{
    // Settle in-flight batches before the staging blocks the shared
    // pool's workers read go away.
    for (auto &t : inFlight) {
        if (t)
            WorkerPool::shared().wait(t);
    }
}

void
TeeSink::addSink(TraceSink *sink, bool concurrentSafe)
{
    if (concurrentSafe)
        safeSinks.push_back(sink);
    else
        seqSinks.push_back(sink);
}

void
TeeSink::consume(const MicroOp &op)
{
    drain();
    for (auto *s : safeSinks)
        s->consume(op);
    for (auto *s : seqSinks)
        s->consume(op);
}

void
TeeSink::consumeBatch(const OpBlockView &ops)
{
    if (poolClaims == 0 || safeSinks.size() <= 1) {
        for (auto *s : safeSinks)
            s->consumeBatch(ops);
        for (auto *s : seqSinks)
            s->consumeBatch(ops);
        return;
    }

    WorkerPool &pool = WorkerPool::shared();

    // Stage the block so the emitter may reuse its storage the moment
    // we return. Two slots alternate: reclaiming this slot waits on
    // the batch from two calls ago, leaving the previous batch free
    // to drain while we copy.
    size_t slot = nextSlot;
    nextSlot ^= 1;
    if (inFlight[slot]) {
        pool.wait(inFlight[slot]);
        inFlight[slot].reset();
    }
    copyInto(stage[slot], ops);

    // Per-block completion latch: every child must finish block N-1
    // before any child sees block N, preserving each child's per-op
    // order without serializing emission behind the slowest child.
    size_t prev = slot ^ 1;
    if (inFlight[prev]) {
        pool.wait(inFlight[prev]);
        inFlight[prev].reset();
    }
    inFlight[slot] = pool.submitBounded(
        safeSinks.size(), poolClaims, [this, slot](size_t c) {
            safeSinks[c]->consumeBatch(stage[slot].view());
        });

    // Non-thread-safe children run here, overlapping the pool's drain.
    for (auto *s : seqSinks)
        s->consumeBatch(ops);
}

void
TeeSink::drain()
{
    for (auto &t : inFlight) {
        if (t) {
            WorkerPool::shared().wait(t);
            t.reset();
        }
    }
    // Children may themselves pipeline (nested tees): propagate.
    for (auto *s : safeSinks)
        s->drain();
    for (auto *s : seqSinks)
        s->drain();
}

} // namespace wcrt
