/**
 * @file
 * Synthetic static code layout.
 *
 * The paper's central front-end observation is that deep software
 * stacks (Hadoop, Spark) execute framework code with an instruction
 * working set around 1 MB, while thin stacks (MPI) and PARSEC fit in
 * ~128 KB. To make that *emerge* from a cache model instead of being
 * asserted, every modelled function registers here and receives a
 * contiguous synthetic address range sized like its real counterpart.
 * The tracer then walks pcs inside the active function's range, so the
 * I-side reference stream has a realistic static layout: hot loops
 * re-touch small ranges, deep per-record stack traversals touch many
 * distant ranges.
 */

#ifndef WCRT_TRACE_CODE_LAYOUT_HH
#define WCRT_TRACE_CODE_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wcrt {

/**
 * Which layer of the software stack a function belongs to. Layers only
 * label provenance (for reports); the cache model sees addresses.
 */
enum class CodeLayer : uint8_t {
    Kernel,      //!< OS kernel / syscall paths
    Runtime,     //!< language runtime (JVM-like services, GC, JIT stubs)
    Framework,   //!< Hadoop/Spark/SQL-engine style middleware
    Library,     //!< libc / compression / serialization libraries
    Application, //!< the algorithm kernel itself
};

/** Handle to a registered function. */
struct FunctionId
{
    uint32_t index = UINT32_MAX;

    bool valid() const { return index != UINT32_MAX; }
};

/**
 * Per-function emission profile: how much automatic bookkeeping a call
 * executes and how its code range is swept.
 */
struct CallProfile
{
    /** Ops emitted automatically per invocation (0 for app kernels). */
    uint32_t overheadOps = 0;

    /**
     * Rotation stride in bytes between consecutive invocations' start
     * offsets. Non-zero rotation makes repeated calls take different
     * paths through a large function, as real framework code does.
     */
    uint32_t rotationBytes = 0;
};

/**
 * Registry that lays registered functions out in one synthetic text
 * segment.
 */
class CodeLayout
{
  public:
    /** Metadata for one registered function. */
    struct Function
    {
        std::string name;
        CodeLayer layer;
        uint64_t base;   //!< first code byte
        uint32_t bytes;  //!< static size of the function
        CallProfile profile;  //!< automatic per-call emission
    };

    CodeLayout();

    /**
     * Register a function and allocate its address range.
     *
     * @param name Diagnostic name (need not be unique).
     * @param layer Stack layer the function belongs to.
     * @param bytes Static code size; rounded up to 16 bytes.
     * @param profile Automatic per-call overhead emission.
     */
    FunctionId addFunction(const std::string &name, CodeLayer layer,
                           uint32_t bytes, CallProfile profile = {});

    /** Metadata lookup. */
    const Function &function(FunctionId id) const;

    /** Number of registered functions. */
    size_t size() const { return funcs.size(); }

    /** Total static code bytes laid out. */
    uint64_t totalBytes() const { return cursor - textBase; }

    /** Base of the synthetic text segment. */
    static constexpr uint64_t textBase = 0x400000;

  private:
    std::vector<Function> funcs;
    uint64_t cursor = textBase;
};

} // namespace wcrt

#endif // WCRT_TRACE_CODE_LAYOUT_HH
