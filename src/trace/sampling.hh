/**
 * @file
 * Segment sampling — the paper's Section 5.4 simulation methodology.
 *
 * MARSSx86 is too slow to execute whole Hadoop jobs, so the paper
 * simulates five 1% execution windows (map 0-1%, map 50-51%, map
 * 99-100%, reduce 0-1%, reduce 99-100%) and weights the results. This
 * sink reproduces that: it forwards only the ops falling inside the
 * configured windows (positions are fractions of an expected total),
 * letting capacity sweeps run at a fraction of the cost. The expected
 * length comes from a cheap counting pre-pass.
 */

#ifndef WCRT_TRACE_SAMPLING_HH
#define WCRT_TRACE_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "trace/microop.hh"

namespace wcrt {

/** One sampling window, as fractions of the whole run. */
struct SampleWindow
{
    double begin = 0.0;  //!< inclusive, in [0, 1)
    double end = 0.0;    //!< exclusive, in (0, 1]
};

/** The paper's five windows (1% at the edges and middle of phases). */
std::vector<SampleWindow> paperSampleWindows();

/**
 * Sink forwarding only the ops inside the sample windows.
 */
class SamplingSink : public TraceSink
{
  public:
    /**
     * @param downstream Receives the sampled ops (not owned).
     * @param expected_ops Anticipated total trace length (from a
     *        counting pre-pass); window positions are scaled by it.
     * @param windows Sampling windows; must be disjoint and sorted.
     */
    SamplingSink(TraceSink &downstream, uint64_t expected_ops,
                 std::vector<SampleWindow> windows =
                     paperSampleWindows());

    void consume(const MicroOp &op) override;

    /**
     * Batch-native path: forwards each contiguous in-window slice of
     * the block downstream in one consumeBatch call, skipping
     * out-of-window stretches without touching the ops at all.
     */
    void consumeBatch(const OpBlockView &ops) override;

    /** Wrapper sink: settling means settling the downstream sink. */
    void drain() override { downstream.drain(); }

    /** Ops seen in total. */
    uint64_t totalOps() const { return seen; }

    /** Ops forwarded downstream. */
    uint64_t sampledOps() const { return forwarded; }

    /** Fraction of the trace forwarded. */
    double sampledFraction() const;

  private:
    TraceSink &downstream;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;  //!< op indices
    uint64_t seen = 0;
    uint64_t forwarded = 0;
    size_t cursor = 0;
};

/** Sink that only counts ops (the cheap pre-pass). */
class CountingSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override { ++count; }

    void
    consumeBatch(const OpBlockView &ops) override
    {
        count += ops.count;
    }

    uint64_t ops() const { return count; }

  private:
    uint64_t count = 0;
};

} // namespace wcrt

#endif // WCRT_TRACE_SAMPLING_HH
