#include "trace/mix_counter.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define WCRT_MIX_AVX2 1
#endif

namespace wcrt {

void
MixCounter::consume(const MicroOp &op)
{
    ++totalOps;
    ++kindCounts[static_cast<size_t>(op.kind)];
    if (op.kind == OpKind::IntAlu) {
        switch (op.purpose) {
          case IntPurpose::IntAddress:
            ++intAddressOps;
            break;
          case IntPurpose::FpAddress:
            ++fpAddressOps;
            break;
          default:
            ++computeIntOps;
            break;
        }
    } else if (isInt(op.kind)) {
        ++computeIntOps;
    }
}

namespace {

/** Per-block tallies accumulated on the stack, committed once. */
struct MixTally
{
    uint64_t kinds[numOpKinds] = {};
    uint64_t intAddr = 0;
    uint64_t fpAddr = 0;
    uint64_t compute = 0;
};

/**
 * Scalar kind/purpose tally over the SoA arrays. Reading two narrow
 * byte arrays with no per-op branches gives the compiler a clean
 * autovectorization target; it is also the tail loop behind the AVX2
 * path.
 */
void
tallyScalar(const OpKind *kinds, const IntPurpose *purposes,
            size_t begin, size_t end, MixTally &t)
{
    for (size_t i = begin; i < end; ++i) {
        OpKind k = kinds[i];
        ++t.kinds[static_cast<size_t>(k)];
        uint64_t is_alu = k == OpKind::IntAlu;
        uint64_t ia =
            is_alu & (purposes[i] == IntPurpose::IntAddress ? 1u : 0u);
        uint64_t fa =
            is_alu & (purposes[i] == IntPurpose::FpAddress ? 1u : 0u);
        t.intAddr += ia;
        t.fpAddr += fa;
        // isInt covers IntAlu too, so subtracting the two address
        // flavours leaves exactly the per-op path's compute bump.
        t.compute += (isInt(k) ? 1u : 0u) - ia - fa;
    }
}

#ifdef WCRT_MIX_AVX2

/**
 * AVX2 tally: per 32-op vector, one compare/movemask/popcount per
 * kind builds the histogram, two paired compares classify IntAlu
 * purposes, and a signed `kind < 3` compare counts integer arithmetic
 * (IntAlu=0, IntMul=1, IntDiv=2). Returns the index tallied up to;
 * the caller finishes the tail with tallyScalar.
 */
__attribute__((target("avx2"))) size_t
tallyAvx2(const OpKind *kinds, const IntPurpose *purposes, size_t count,
          MixTally &t)
{
    const auto *kb = reinterpret_cast<const int8_t *>(kinds);
    const auto *pb = reinterpret_cast<const int8_t *>(purposes);
    const __m256i v_alu =
        _mm256_set1_epi8(static_cast<int8_t>(OpKind::IntAlu));
    const __m256i v_ia =
        _mm256_set1_epi8(static_cast<int8_t>(IntPurpose::IntAddress));
    const __m256i v_fa =
        _mm256_set1_epi8(static_cast<int8_t>(IntPurpose::FpAddress));
    const __m256i v_three = _mm256_set1_epi8(3);
    size_t i = 0;
    for (; i + 32 <= count; i += 32) {
        __m256i vk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(kb + i));
        for (size_t k = 0; k < numOpKinds; ++k) {
            __m256i eq = _mm256_cmpeq_epi8(
                vk, _mm256_set1_epi8(static_cast<int8_t>(k)));
            t.kinds[k] += static_cast<unsigned>(
                __builtin_popcount(_mm256_movemask_epi8(eq)));
        }
        __m256i vp = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb + i));
        __m256i alu = _mm256_cmpeq_epi8(vk, v_alu);
        uint64_t ia = static_cast<unsigned>(__builtin_popcount(
            _mm256_movemask_epi8(
                _mm256_and_si256(alu, _mm256_cmpeq_epi8(vp, v_ia)))));
        uint64_t fa = static_cast<unsigned>(__builtin_popcount(
            _mm256_movemask_epi8(
                _mm256_and_si256(alu, _mm256_cmpeq_epi8(vp, v_fa)))));
        // All kind values are < 127, so signed compare is safe.
        uint64_t is_int = static_cast<unsigned>(__builtin_popcount(
            _mm256_movemask_epi8(_mm256_cmpgt_epi8(v_three, vk))));
        t.intAddr += ia;
        t.fpAddr += fa;
        t.compute += is_int - ia - fa;
    }
    return i;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

#endif // WCRT_MIX_AVX2

} // namespace

void
MixCounter::consumeBatch(const OpBlockView &ops)
{
    // Accumulate in stack locals so the inner loop touches no member
    // state; commit once per block. The purpose breakdown is computed
    // branchlessly — op kinds arrive in data-dependent order, so any
    // per-op branch here is a mispredict, not a hint. Only kinds[]
    // and purposes[] are read: 2 bytes of cache traffic per op.
    MixTally t;
    size_t i = 0;
#ifdef WCRT_MIX_AVX2
    if (ops.count >= 64 && haveAvx2())
        i = tallyAvx2(ops.kinds, ops.purposes, ops.count, t);
#endif
    tallyScalar(ops.kinds, ops.purposes, i, ops.count, t);
    for (size_t k = 0; k < numOpKinds; ++k)
        kindCounts[k] += t.kinds[k];
    intAddressOps += t.intAddr;
    fpAddressOps += t.fpAddr;
    computeIntOps += t.compute;
    totalOps += ops.count;
}

uint64_t
MixCounter::count(OpKind k) const
{
    return kindCounts[static_cast<size_t>(k)];
}

namespace {

double
ratio(uint64_t part, uint64_t whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

} // namespace

double
MixCounter::branchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    return ratio(b, totalOps);
}

double
MixCounter::loadRatio() const
{
    return ratio(count(OpKind::Load), totalOps);
}

double
MixCounter::storeRatio() const
{
    return ratio(count(OpKind::Store), totalOps);
}

double
MixCounter::integerRatio() const
{
    uint64_t i = count(OpKind::IntAlu) + count(OpKind::IntMul) +
                 count(OpKind::IntDiv);
    return ratio(i, totalOps);
}

double
MixCounter::fpRatio() const
{
    uint64_t f = count(OpKind::FpAlu) + count(OpKind::FpMul) +
                 count(OpKind::FpDiv);
    return ratio(f, totalOps);
}

double
MixCounter::otherRatio() const
{
    return ratio(count(OpKind::Other), totalOps);
}

double
MixCounter::intAddressShare() const
{
    return ratio(intAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::fpAddressShare() const
{
    return ratio(fpAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::otherIntShare() const
{
    return ratio(computeIntOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::dataMovementRatio() const
{
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps;
    return ratio(moves, totalOps);
}

double
MixCounter::dataMovementWithBranchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps + b;
    return ratio(moves, totalOps);
}

void
MixCounter::merge(const MixCounter &other)
{
    for (size_t i = 0; i < kindCounts.size(); ++i)
        kindCounts[i] += other.kindCounts[i];
    intAddressOps += other.intAddressOps;
    fpAddressOps += other.fpAddressOps;
    computeIntOps += other.computeIntOps;
    totalOps += other.totalOps;
}

} // namespace wcrt
