#include "trace/mix_counter.hh"

namespace wcrt {

void
MixCounter::consume(const MicroOp &op)
{
    ++totalOps;
    ++kindCounts[static_cast<size_t>(op.kind)];
    if (op.kind == OpKind::IntAlu) {
        switch (op.purpose) {
          case IntPurpose::IntAddress:
            ++intAddressOps;
            break;
          case IntPurpose::FpAddress:
            ++fpAddressOps;
            break;
          default:
            ++computeIntOps;
            break;
        }
    } else if (isInt(op.kind)) {
        ++computeIntOps;
    }
}

uint64_t
MixCounter::count(OpKind k) const
{
    return kindCounts[static_cast<size_t>(k)];
}

namespace {

double
ratio(uint64_t part, uint64_t whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

} // namespace

double
MixCounter::branchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    return ratio(b, totalOps);
}

double
MixCounter::loadRatio() const
{
    return ratio(count(OpKind::Load), totalOps);
}

double
MixCounter::storeRatio() const
{
    return ratio(count(OpKind::Store), totalOps);
}

double
MixCounter::integerRatio() const
{
    uint64_t i = count(OpKind::IntAlu) + count(OpKind::IntMul) +
                 count(OpKind::IntDiv);
    return ratio(i, totalOps);
}

double
MixCounter::fpRatio() const
{
    uint64_t f = count(OpKind::FpAlu) + count(OpKind::FpMul) +
                 count(OpKind::FpDiv);
    return ratio(f, totalOps);
}

double
MixCounter::otherRatio() const
{
    return ratio(count(OpKind::Other), totalOps);
}

double
MixCounter::intAddressShare() const
{
    return ratio(intAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::fpAddressShare() const
{
    return ratio(fpAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::otherIntShare() const
{
    return ratio(computeIntOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::dataMovementRatio() const
{
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps;
    return ratio(moves, totalOps);
}

double
MixCounter::dataMovementWithBranchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps + b;
    return ratio(moves, totalOps);
}

void
MixCounter::merge(const MixCounter &other)
{
    for (size_t i = 0; i < kindCounts.size(); ++i)
        kindCounts[i] += other.kindCounts[i];
    intAddressOps += other.intAddressOps;
    fpAddressOps += other.fpAddressOps;
    computeIntOps += other.computeIntOps;
    totalOps += other.totalOps;
}

} // namespace wcrt
