#include "trace/mix_counter.hh"

namespace wcrt {

void
MixCounter::consume(const MicroOp &op)
{
    ++totalOps;
    ++kindCounts[static_cast<size_t>(op.kind)];
    if (op.kind == OpKind::IntAlu) {
        switch (op.purpose) {
          case IntPurpose::IntAddress:
            ++intAddressOps;
            break;
          case IntPurpose::FpAddress:
            ++fpAddressOps;
            break;
          default:
            ++computeIntOps;
            break;
        }
    } else if (isInt(op.kind)) {
        ++computeIntOps;
    }
}

void
MixCounter::consumeBatch(const MicroOp *ops, size_t count)
{
    // Accumulate in stack locals so the inner loop touches no member
    // state; commit once per block. The purpose breakdown is computed
    // branchlessly — op kinds arrive in data-dependent order, so any
    // per-op branch here is a mispredict, not a hint — and the loop
    // runs two ops per trip into disjoint accumulators so runs of the
    // same kind don't serialize on one counter's store-to-load
    // forwarding.
    uint64_t kinds_a[numOpKinds] = {};
    uint64_t kinds_b[numOpKinds] = {};
    uint64_t int_addr = 0;
    uint64_t fp_addr = 0;
    uint64_t compute = 0;
    auto tally = [&](const MicroOp &op, uint64_t *kinds) {
        ++kinds[static_cast<size_t>(op.kind)];
        uint64_t is_alu = op.kind == OpKind::IntAlu;
        uint64_t ia =
            is_alu & (op.purpose == IntPurpose::IntAddress ? 1u : 0u);
        uint64_t fa =
            is_alu & (op.purpose == IntPurpose::FpAddress ? 1u : 0u);
        int_addr += ia;
        fp_addr += fa;
        // isInt covers IntAlu too, so subtracting the two address
        // flavours leaves exactly the per-op path's compute bump.
        compute += (isInt(op.kind) ? 1u : 0u) - ia - fa;
    };
    size_t i = 0;
    for (; i + 1 < count; i += 2) {
        tally(ops[i], kinds_a);
        tally(ops[i + 1], kinds_b);
    }
    if (i < count)
        tally(ops[i], kinds_a);
    for (size_t k = 0; k < numOpKinds; ++k)
        kindCounts[k] += kinds_a[k] + kinds_b[k];
    intAddressOps += int_addr;
    fpAddressOps += fp_addr;
    computeIntOps += compute;
    totalOps += count;
}

uint64_t
MixCounter::count(OpKind k) const
{
    return kindCounts[static_cast<size_t>(k)];
}

namespace {

double
ratio(uint64_t part, uint64_t whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

} // namespace

double
MixCounter::branchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    return ratio(b, totalOps);
}

double
MixCounter::loadRatio() const
{
    return ratio(count(OpKind::Load), totalOps);
}

double
MixCounter::storeRatio() const
{
    return ratio(count(OpKind::Store), totalOps);
}

double
MixCounter::integerRatio() const
{
    uint64_t i = count(OpKind::IntAlu) + count(OpKind::IntMul) +
                 count(OpKind::IntDiv);
    return ratio(i, totalOps);
}

double
MixCounter::fpRatio() const
{
    uint64_t f = count(OpKind::FpAlu) + count(OpKind::FpMul) +
                 count(OpKind::FpDiv);
    return ratio(f, totalOps);
}

double
MixCounter::otherRatio() const
{
    return ratio(count(OpKind::Other), totalOps);
}

double
MixCounter::intAddressShare() const
{
    return ratio(intAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::fpAddressShare() const
{
    return ratio(fpAddressOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::otherIntShare() const
{
    return ratio(computeIntOps,
                 intAddressOps + fpAddressOps + computeIntOps);
}

double
MixCounter::dataMovementRatio() const
{
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps;
    return ratio(moves, totalOps);
}

double
MixCounter::dataMovementWithBranchRatio() const
{
    uint64_t b = count(OpKind::BranchCond) + count(OpKind::BranchUncond) +
                 count(OpKind::BranchIndirect) + count(OpKind::Call) +
                 count(OpKind::CallIndirect) + count(OpKind::Return);
    uint64_t moves = count(OpKind::Load) + count(OpKind::Store) +
                     intAddressOps + fpAddressOps + b;
    return ratio(moves, totalOps);
}

void
MixCounter::merge(const MixCounter &other)
{
    for (size_t i = 0; i < kindCounts.size(); ++i)
        kindCounts[i] += other.kindCounts[i];
    intAddressOps += other.intAddressOps;
    fpAddressOps += other.fpAddressOps;
    computeIntOps += other.computeIntOps;
    totalOps += other.totalOps;
}

} // namespace wcrt
