#include "trace/tracer.hh"

#include "base/logging.hh"

namespace wcrt {

namespace {

/** Cheap deterministic per-offset hash for overhead-walk decisions. */
uint64_t
mixOffset(uint64_t base, uint64_t offset)
{
    uint64_t x = base + offset;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

Tracer::Tracer(const CodeLayout &layout, TraceSink &sink)
    : layout(layout), sink(sink)
{
    callCounts.resize(layout.size(), 0);
    scratchBase.resize(layout.size(), 0);
}

Tracer::~Tracer()
{
    // Best-effort: delivering buffered ops to a sink that is already
    // broken (a shm ring whose analyzer died or never attached) must
    // not throw out of a destructor — during exception unwinding that
    // would be std::terminate, not an error report.
    try {
        flush();
    } catch (const std::exception &e) {
        warn("tracer teardown lost buffered ops: ", e.what());
    }
}

void
Tracer::flush()
{
    deliverBlock();
    // flush() promises the caller may read sink state: settle any
    // blocks a pipelined sink still has in flight.
    sink.drain();
}

void
Tracer::deliverBlock()
{
    if (block.empty())
        return;
    if (sinkFailed) {
        // The stream already failed; discard instead of re-poking a
        // dead sink so ops emitted while the original exception
        // unwinds (Scope destructors ret()) stay harmless.
        block.clear();
        return;
    }
    try {
        sink.consumeBlock(block);
    } catch (...) {
        // The block must come back empty either way: leaving it full
        // would make the next emit() write past the fixed-capacity
        // arrays (push is unchecked by contract, and full() can never
        // fire again once used passes cap).
        sinkFailed = true;
        block.clear();
        throw;
    }
    block.clear();
}

Tracer::Frame &
Tracer::top()
{
    if (frames.empty())
        wcrt_panic("tracer has no active frame; call() a root first");
    return frames.back();
}

const Tracer::Frame &
Tracer::top() const
{
    if (frames.empty())
        wcrt_panic("tracer has no active frame; call() a root first");
    return frames.back();
}

void
Tracer::emit(OpKind kind, IntPurpose purpose, uint64_t mem_addr,
             uint8_t mem_size, uint64_t target, bool taken)
{
    Frame &f = top();
    MicroOp op;
    op.kind = kind;
    op.purpose = purpose;
    op.pc = f.base + f.cursor;
    op.size = opBytes;
    op.memAddr = mem_addr;
    op.memSize = mem_size;
    op.target = target;
    op.taken = taken;
    f.cursor = (f.cursor + opBytes) % f.bytes;
    ++emitted;
    block.push(op);
    // Auto-flush hands the sink the block but does not drain it: a
    // pipelined sink keeps filling and draining overlapped.
    if (block.full())
        deliverBlock();
}

void
Tracer::enter(FunctionId f, bool indirect)
{
    const auto &fn = layout.function(f);
    if (f.index >= callCounts.size()) {
        // The layout grew after this tracer was constructed.
        callCounts.resize(layout.size(), 0);
        scratchBase.resize(layout.size(), 0);
    }
    uint64_t return_pc = 0;
    if (!frames.empty()) {
        // The call op itself sits in the caller's frame.
        emit(indirect ? OpKind::CallIndirect : OpKind::Call,
             IntPurpose::None, 0, 0, fn.base, true);
        return_pc = frames.back().base + frames.back().cursor;
    }
    Frame frame;
    frame.fid = f;
    frame.base = fn.base;
    frame.bytes = fn.bytes;
    frame.cursor = 0;
    frame.returnPc = return_pc;
    frames.push_back(frame);

    const CallProfile &profile = fn.profile;
    uint32_t nth = callCounts[f.index]++;
    if (profile.overheadOps > 0) {
        // The walk rotates through the function's upper region; the
        // first userReserve bytes are left for the caller's own
        // emission so data-dependent app branches keep stable pcs.
        uint64_t start = userReserve;
        uint64_t span = fn.bytes > userReserve ? fn.bytes - userReserve
                                               : fn.bytes;
        if (profile.rotationBytes > 0) {
            start = (fn.bytes > userReserve ? userReserve : 0) +
                    (static_cast<uint64_t>(nth) * profile.rotationBytes) %
                        span;
        }
        overheadWalk(frames.back(), profile, start % fn.bytes);
        // Park the cursor at the stable user-code region.
        frames.back().cursor = 0;
    }
}

void
Tracer::call(FunctionId f)
{
    enter(f, false);
}

void
Tracer::callIndirect(FunctionId f)
{
    enter(f, true);
}

void
Tracer::ret()
{
    if (frames.empty())
        wcrt_panic("ret() with empty call stack");
    uint64_t target = frames.back().returnPc;
    emit(OpKind::Return, IntPurpose::None, 0, 0, target, true);
    frames.pop_back();
    // The run is complete once the root frame returns; drain the
    // block so callers can read sink state without an explicit flush.
    if (frames.empty())
        flush();
}

Tracer::Scope::Scope(Tracer &tracer, FunctionId f, bool indirect)
    : tracer(tracer)
{
    if (indirect)
        tracer.callIndirect(f);
    else
        tracer.call(f);
}

Tracer::Scope::~Scope()
{
    tracer.ret();
}

void
Tracer::intAlu(IntPurpose purpose, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::IntAlu, purpose, 0, 0, 0, false);
}

void
Tracer::intMul(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::IntMul, IntPurpose::Compute, 0, 0, 0, false);
}

void
Tracer::intDiv(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::IntDiv, IntPurpose::Compute, 0, 0, 0, false);
}

void
Tracer::fpAlu(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::FpAlu, IntPurpose::None, 0, 0, 0, false);
}

void
Tracer::fpMul(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::FpMul, IntPurpose::None, 0, 0, 0, false);
}

void
Tracer::fpDiv(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::FpDiv, IntPurpose::None, 0, 0, 0, false);
}

void
Tracer::load(uint64_t addr, uint8_t size)
{
    emit(OpKind::Load, IntPurpose::None, addr, size, 0, false);
}

void
Tracer::store(uint64_t addr, uint8_t size)
{
    emit(OpKind::Store, IntPurpose::None, addr, size, 0, false);
}

void
Tracer::other(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(OpKind::Other, IntPurpose::None, 0, 0, 0, false);
}

void
Tracer::branch(bool taken, uint64_t target_offset)
{
    Frame &f = top();
    uint64_t target = f.base + (target_offset % f.bytes);
    emit(OpKind::BranchCond, IntPurpose::None, 0, 0, target, taken);
    if (taken)
        f.cursor = target_offset % f.bytes;
}

void
Tracer::branchForward(bool taken, uint32_t skip_bytes)
{
    Frame &f = top();
    uint64_t target_offset = (f.cursor + opBytes + skip_bytes) % f.bytes;
    branch(taken, target_offset);
}

void
Tracer::branchIndirect(uint64_t selector)
{
    Frame &f = top();
    // Model a jump table: the selector picks one of up to 64 16-byte
    // aligned targets spread over the function body.
    uint64_t slot = mixOffset(f.base, selector) % 64;
    uint64_t target_offset = (slot * (f.bytes / 64 ? f.bytes / 64 : 16)) %
                             f.bytes;
    uint64_t target = f.base + target_offset;
    emit(OpKind::BranchIndirect, IntPurpose::None, 0, 0, target, true);
    f.cursor = target_offset;
}

uint64_t
Tracer::hereOffset() const
{
    return top().cursor;
}

void
Tracer::setOffset(uint64_t offset)
{
    Frame &f = top();
    f.cursor = offset % f.bytes;
}

void
Tracer::overheadWalk(const Frame &frame, const CallProfile &profile,
                     uint64_t start_offset)
{
    // Lazily give each function a small scratch data region so its
    // bookkeeping loads/stores have stable, function-local addresses.
    uint64_t &scratch = scratchBase[frame.fid.index];
    if (scratch == 0) {
        scratch = scratchHeap
                      .alloc(layout.function(frame.fid).name + ".scratch",
                             scratchBytes)
                      .base;
    }

    Frame &f = top();
    f.cursor = start_offset % f.bytes;
    for (uint32_t i = 0; i < profile.overheadOps; ++i) {
        uint64_t h = mixOffset(f.base, f.cursor);
        // Control transfers are placed by walk position (constant per
        // call for a given overheadOps), so the *number* of branches a
        // call contributes to global history is deterministic; data-
        // dependent app branches interleaved with walks then see a
        // consistent history structure, as they would in real code.
        if (i % 9 == 4) {
            // Bookkeeping conditional: an error/boundary check that
            // essentially never fires. Falls through, so it needs
            // neither predictor training nor a BTB entry.
            uint64_t target_offset =
                (f.cursor + opBytes + ((h >> 24) % 13) * 16) % f.bytes;
            emit(OpKind::BranchCond, IntPurpose::None, 0, 0,
                 f.base + target_offset, false);
            continue;
        }
        if (i % 41 == 20) {
            // Unconditional skip over a cold block — how compiled
            // framework code actually jumps around; costs at most a
            // BTB resteer, never a direction mispredict.
            uint64_t target_offset =
                (f.cursor + opBytes + ((h >> 24) % 13) * 16) % f.bytes;
            emit(OpKind::BranchUncond, IntPurpose::None, 0, 0,
                 f.base + target_offset, true);
            f.cursor = target_offset;
            continue;
        }
        uint64_t pick = h % 89;
        if (pick < 33) {
            uint64_t addr = scratch + (h >> 8) % scratchBytes;
            emit(OpKind::Load, IntPurpose::None, addr & ~7ull, 8, 0,
                 false);
        } else if (pick < 44) {
            uint64_t addr = scratch + (h >> 8) % scratchBytes;
            emit(OpKind::Store, IntPurpose::None, addr & ~7ull, 8, 0,
                 false);
        } else if (pick < 80) {
            // Framework integer work is overwhelmingly address
            // arithmetic: record offsets, buffer positions, object
            // field displacements.
            IntPurpose purpose = ((h >> 12) % 20) < 17
                                     ? IntPurpose::IntAddress
                                     : IntPurpose::Compute;
            emit(OpKind::IntAlu, purpose, 0, 0, 0, false);
        } else if (pick < 83) {
            emit(OpKind::IntMul, IntPurpose::Compute, 0, 0, 0, false);
        } else {
            emit(OpKind::Other, IntPurpose::None, 0, 0, 0, false);
        }
    }
}

} // namespace wcrt
