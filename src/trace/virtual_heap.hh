/**
 * @file
 * Deterministic synthetic data-address space.
 *
 * Workloads keep their actual data in ordinary containers, but the
 * addresses they *report* to the cache model come from this arena so
 * runs are reproducible regardless of the host allocator and ASLR.
 * Regions are page-aligned and never overlap; the layout is a simple
 * bump allocator over a synthetic heap segment.
 */

#ifndef WCRT_TRACE_VIRTUAL_HEAP_HH
#define WCRT_TRACE_VIRTUAL_HEAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wcrt {

/** A named, contiguous synthetic allocation. */
struct HeapRegion
{
    std::string name;
    uint64_t base = 0;
    uint64_t bytes = 0;

    /** Address of byte `offset`, bounds-checked. */
    uint64_t addr(uint64_t offset) const;

    /** Address of element `index` of an array of `stride`-byte items. */
    uint64_t element(uint64_t index, uint64_t stride) const;
};

/**
 * Bump allocator handing out non-overlapping page-aligned regions.
 */
class VirtualHeap
{
  public:
    VirtualHeap();

    /** Allocate a region; bytes are rounded up to a full page. */
    HeapRegion alloc(const std::string &name, uint64_t bytes);

    /** Total bytes allocated so far. */
    uint64_t allocated() const { return cursor - heapBase; }

    /** Synthetic heap segment base. */
    static constexpr uint64_t heapBase = 0x10'0000'0000ull;

    /** Page size used for alignment (matches the TLB model). */
    static constexpr uint64_t pageBytes = 4096;

  private:
    uint64_t cursor = heapBase;
};

} // namespace wcrt

#endif // WCRT_TRACE_VIRTUAL_HEAP_HH
