#include "trace/code_layout.hh"

#include "base/logging.hh"

namespace wcrt {

CodeLayout::CodeLayout() = default;

FunctionId
CodeLayout::addFunction(const std::string &name, CodeLayer layer,
                        uint32_t bytes, CallProfile profile)
{
    if (bytes == 0)
        wcrt_panic("function '", name, "' registered with zero size");
    uint32_t rounded = (bytes + 15u) & ~15u;
    Function f;
    f.name = name;
    f.layer = layer;
    f.base = cursor;
    f.bytes = rounded;
    f.profile = profile;
    cursor += rounded;
    funcs.push_back(std::move(f));
    return FunctionId{static_cast<uint32_t>(funcs.size() - 1)};
}

const CodeLayout::Function &
CodeLayout::function(FunctionId id) const
{
    if (!id.valid() || id.index >= funcs.size())
        wcrt_panic("invalid FunctionId");
    return funcs[id.index];
}

} // namespace wcrt
