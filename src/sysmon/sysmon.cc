#include "sysmon/sysmon.hh"

#include <algorithm>

namespace wcrt {

const char *
toString(SystemBehavior b)
{
    switch (b) {
      case SystemBehavior::CpuIntensive:
        return "CPU-Intensive";
      case SystemBehavior::IoIntensive:
        return "IO-Intensive";
      case SystemBehavior::Hybrid:
        return "Hybrid";
    }
    return "?";
}

SystemProfile
computeProfile(uint64_t instructions, const IoCounters &io,
               const NodeModel &node)
{
    SystemProfile p;
    p.cpuSeconds =
        static_cast<double>(instructions) / (node.cpuGips * 1e9);
    double disk_bytes = static_cast<double>(io.diskReadBytes) +
                        static_cast<double>(io.diskWriteBytes);
    p.diskSeconds = disk_bytes / (node.diskMBps * 1e6);
    p.networkSeconds =
        static_cast<double>(io.networkBytes) / (node.networkMBps * 1e6);

    // Pipelined overlap: the longer side dominates; 15% of the shorter
    // side resists overlap (setup, dependency stalls).
    double io_seconds = p.diskSeconds + p.networkSeconds;
    double longer = std::max(p.cpuSeconds, io_seconds);
    double shorter = std::min(p.cpuSeconds, io_seconds);
    p.wallSeconds = std::max(longer + 0.15 * shorter, 1e-12);

    p.cpuUtilization = p.cpuSeconds / p.wallSeconds;
    p.ioWaitRatio =
        std::max(0.0, io_seconds - p.cpuSeconds) / p.wallSeconds;
    p.weightedDiskIoTimeRatio =
        p.diskSeconds * node.diskQueueDepth / p.wallSeconds;
    p.diskReadMBps = static_cast<double>(io.diskReadBytes) / 1e6 /
                     p.wallSeconds;
    p.diskWriteMBps = static_cast<double>(io.diskWriteBytes) / 1e6 /
                      p.wallSeconds;
    p.networkMBps = static_cast<double>(io.networkBytes) / 1e6 /
                    p.wallSeconds;
    return p;
}

SystemBehavior
classifySystemBehavior(const SystemProfile &p)
{
    if (p.cpuUtilization > 0.85)
        return SystemBehavior::CpuIntensive;
    bool heavy_io = p.weightedDiskIoTimeRatio > 10.0 ||
                    p.ioWaitRatio > 0.20;
    if (heavy_io && p.cpuUtilization < 0.60)
        return SystemBehavior::IoIntensive;
    return SystemBehavior::Hybrid;
}

const char *
toString(DataVolume v)
{
    switch (v) {
      case DataVolume::MuchLess:
        return "<<Input";
      case DataVolume::Less:
        return "<Input";
      case DataVolume::Equal:
        return "=Input";
      case DataVolume::Greater:
        return ">Input";
    }
    return "?";
}

DataVolume
classifyDataVolume(uint64_t numerator_bytes, uint64_t input_bytes)
{
    double ratio = input_bytes
                       ? static_cast<double>(numerator_bytes) /
                             static_cast<double>(input_bytes)
                       : 0.0;
    if (ratio >= 1.1)
        return DataVolume::Greater;
    if (ratio >= 0.9)
        return DataVolume::Equal;
    if (ratio >= 0.01)
        return DataVolume::Less;
    return DataVolume::MuchLess;
}

DataVolume
DataBehavior::outputVsInput() const
{
    return classifyDataVolume(outputBytes, inputBytes);
}

DataVolume
DataBehavior::intermediateVsInput() const
{
    return classifyDataVolume(intermediateBytes, inputBytes);
}

std::string
DataBehavior::describe() const
{
    std::string s = "Output";
    s += toString(outputVsInput());
    if (intermediateBytes == 0) {
        s += ", no Intermediate";
    } else {
        s += ", Intermediate";
        s += toString(intermediateVsInput());
    }
    return s;
}

} // namespace wcrt
