/**
 * @file
 * System-behaviour model: the paper's Section 3.2.1/3.2.2 rules.
 *
 * The stack engines report the I/O they perform (split reads, spills,
 * shuffle transfers, output writes); combined with the traced
 * instruction count and a node resource model this yields the CPU
 * utilization, I/O wait ratio and weighted-disk-I/O-time metrics the
 * paper uses to classify workloads as CPU-intensive, I/O-intensive or
 * hybrid, and the input/intermediate/output ratios behind the data
 * behaviour labels in Table 2.
 */

#ifndef WCRT_SYSMON_SYSMON_HH
#define WCRT_SYSMON_SYSMON_HH

#include <cstdint>
#include <string>

namespace wcrt {

/** Hardware throughput assumptions for one node (Table 3 testbed). */
struct NodeModel
{
    /**
     * Effective instruction rate. The traces compress the JVM stacks'
     * per-record instruction counts, so this is lower than the
     * hardware's raw rate; 2 GIPS maximizes agreement with the
     * paper's Table-2 system-behaviour labels.
     */
    double cpuGips = 2.0;
    double diskMBps = 140.0;     //!< sequential disk bandwidth
    double networkMBps = 110.0;  //!< ~1 GbE
    double diskQueueDepth = 8.0; //!< in-flight requests while streaming
};

/** I/O volume accumulated while a workload runs. */
struct IoCounters
{
    uint64_t diskReadBytes = 0;
    uint64_t diskWriteBytes = 0;
    uint64_t networkBytes = 0;

    void
    merge(const IoCounters &o)
    {
        diskReadBytes += o.diskReadBytes;
        diskWriteBytes += o.diskWriteBytes;
        networkBytes += o.networkBytes;
    }
};

/** The paper's three system-behaviour classes. */
enum class SystemBehavior : uint8_t { CpuIntensive, IoIntensive, Hybrid };

/** Human-readable class name. */
const char *toString(SystemBehavior b);

/** Derived system-behaviour profile for one run. */
struct SystemProfile
{
    double cpuSeconds = 0.0;
    double diskSeconds = 0.0;
    double networkSeconds = 0.0;
    double wallSeconds = 0.0;
    double cpuUtilization = 0.0;        //!< fraction of wall time on CPU
    double ioWaitRatio = 0.0;           //!< fraction waiting on disk
    double weightedDiskIoTimeRatio = 0.0; //!< avg in-flight IO weighting
    double diskReadMBps = 0.0;
    double diskWriteMBps = 0.0;
    double networkMBps = 0.0;
};

/**
 * Compute the profile for a run.
 *
 * Wall time models pipelined CPU/IO overlap: the longer of the two
 * dominates and a fraction of the shorter resists overlap.
 *
 * @param instructions Dynamic instructions the workload executed.
 * @param io I/O volumes the stack reported.
 * @param node Node throughput model.
 */
SystemProfile computeProfile(uint64_t instructions, const IoCounters &io,
                             const NodeModel &node = {});

/**
 * The paper's classification rule: CPU-intensive when CPU utilization
 * exceeds 85%; I/O-intensive when the weighted disk-I/O-time ratio
 * exceeds 10 or the I/O-wait ratio exceeds 20% while CPU utilization
 * stays below 60%; hybrid otherwise.
 */
SystemBehavior classifySystemBehavior(const SystemProfile &profile);

/** Data-capacity comparison labels (Section 3.2.2). */
enum class DataVolume : uint8_t {
    MuchLess,  //!< ratio < 0.01           (“Output<<Input”)
    Less,      //!< 0.01 <= ratio < 0.9    (“Output<Input”)
    Equal,     //!< 0.9 <= ratio < 1.1     (“Output=Input”)
    Greater,   //!< ratio >= 1.1           (“Output>Input”)
};

/** Human-readable volume label relative to the input. */
const char *toString(DataVolume v);

/** Apply the paper's thresholds to an output/input byte ratio. */
DataVolume classifyDataVolume(uint64_t numerator_bytes,
                              uint64_t input_bytes);

/** Input/intermediate/output volumes of one run. */
struct DataBehavior
{
    uint64_t inputBytes = 0;
    uint64_t intermediateBytes = 0;
    uint64_t outputBytes = 0;

    DataVolume outputVsInput() const;
    DataVolume intermediateVsInput() const;

    /** Formatted like Table 2, e.g. "Output<<Input, Intermediate<Input". */
    std::string describe() const;
};

} // namespace wcrt

#endif // WCRT_SYSMON_SYSMON_HH
